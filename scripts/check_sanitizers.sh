#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (-DGPBFT_SANITIZE=ON) in a separate build directory and runs the full test
# suite under them. Any leak, out-of-bounds access, or UB aborts the run
# (-fno-sanitize-recover=all), so a green exit means the suite is clean.
#
# Knobs:
#   GPBFT_SANITIZE_BUILD_DIR=build-asan   build directory (default build-asan)
#   GPBFT_SANITIZE_JOBS=N                 parallel ctest jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${GPBFT_SANITIZE_BUILD_DIR:-build-asan}"
JOBS="${GPBFT_SANITIZE_JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -G Ninja -DGPBFT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}"

ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Wire-tamper acceptance sweep (docs/protocol.md §12), under the same
# sanitizers: 20-seed Replace (MITM) storms across all four protocols with
# every other fault family quiet, the 20-seed REJECT-SAFE Inject pairs
# (tampered tip must be byte-identical to the clean tip at the same seed),
# and the fuzz corpus + seeded mutation sweep over every decode target.
# Zero crashes, zero sanitizer reports, zero invariant violations.
"${BUILD_DIR}/tools/gpbft_cli" chaos --tamper --seeds 20 --intensity none >/dev/null
"${BUILD_DIR}/tools/gpbft_cli" chaos --reject-safe --seeds 20 >/dev/null
"${BUILD_DIR}/tools/gpbft_fuzz" replay fuzz/corpus
"${BUILD_DIR}/tools/gpbft_fuzz" mutate --seed 1 --iters 2000
