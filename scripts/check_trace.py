#!/usr/bin/env python3
"""Schema check for the telemetry exporters (stdlib only).

Usage: check_trace.py TRACE_JSON METRICS_JSONL

Validates that
  - TRACE_JSON is valid JSON with a non-empty "traceEvents" array, every
    event carries the Chrome trace-event required fields (name, ph, pid,
    tid, ts except for metadata events), phases are limited to the set the
    recorder emits (X/i/b/e/M), async begin/end events pair up per id, and
    thread-name metadata covers every tid that emits events;
  - METRICS_JSONL is one JSON object per line, each with a metric "name",
    a "node" id and a "kind" in {counter, gauge, histogram}, sorted by
    (name, node) within each kind block the exporter writes.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import sys

TRACE_PHASES = {"X", "i", "b", "e", "M"}
METRIC_KINDS = {"counter", "gauge", "histogram"}


def fail(message: str) -> None:
    print(f"check_trace: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents array")
    named_tids = set()
    emitting_tids = set()
    open_async = {}
    for index, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                fail(f"{path}: event {index} lacks required field {field!r}")
        phase = event["ph"]
        if phase not in TRACE_PHASES:
            fail(f"{path}: event {index} has unexpected phase {phase!r}")
        if phase == "M":
            if event["name"] == "thread_name":
                named_tids.add(event["tid"])
            continue
        if "ts" not in event:
            fail(f"{path}: event {index} ({event['name']}) lacks ts")
        emitting_tids.add(event["tid"])
        if phase in ("b", "e"):
            if "id" not in event:
                fail(f"{path}: async event {index} lacks id")
            key = (event["name"], event["id"])
            if phase == "b":
                open_async[key] = open_async.get(key, 0) + 1
            elif open_async.get(key, 0) > 0:
                open_async[key] -= 1
            else:
                fail(f"{path}: async end without begin for {key}")
    unnamed = emitting_tids - named_tids
    if unnamed:
        fail(f"{path}: tids without thread_name metadata: {sorted(unnamed)}")
    print(
        f"check_trace: {path}: {len(events)} events, "
        f"{len(emitting_tids)} timeline rows, "
        f"{sum(open_async.values())} unclosed async spans"
    )


def check_metrics(path: str) -> None:
    rows = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{path}:{lineno}: not valid JSON: {err}")
            for field in ("name", "node", "kind"):
                if field not in row:
                    fail(f"{path}:{lineno}: lacks required field {field!r}")
            if row["kind"] not in METRIC_KINDS:
                fail(f"{path}:{lineno}: unexpected kind {row['kind']!r}")
            if row["kind"] == "histogram" and "count" not in row:
                fail(f"{path}:{lineno}: histogram lacks count")
            rows.append(row)
    if not rows:
        fail(f"{path}: no metric rows")
    # The exporter writes each kind as one block sorted by (name, node).
    for kind in METRIC_KINDS:
        block = [(r["name"], r["node"]) for r in rows if r["kind"] == kind]
        if block != sorted(block):
            fail(f"{path}: {kind} rows are not sorted by (name, node)")
    print(f"check_trace: {path}: {len(rows)} metric rows")


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: check_trace.py TRACE_JSON METRICS_JSONL")
    check_trace(sys.argv[1])
    check_metrics(sys.argv[2])


if __name__ == "__main__":
    main()
