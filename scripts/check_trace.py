#!/usr/bin/env python3
"""Schema check for the telemetry exporters (stdlib only).

Usage: check_trace.py TRACE_JSON METRICS_JSONL
           [--profile PROFILE_JSON]...
           [--profile-same A_JSON B_JSON]

Validates that
  - TRACE_JSON is valid JSON with a non-empty "traceEvents" array, every
    event carries the Chrome trace-event required fields (name, ph, pid,
    tid, ts except for metadata events), phases are limited to the set the
    recorder emits (X/i/b/e/M), async begin/end events pair up per id, and
    thread-name metadata covers every tid that emits events;
  - METRICS_JSONL is one JSON object per line, each with a metric "name",
    a "node" id and a "kind" in {counter, gauge, histogram}, sorted by
    (name, node) within each kind block the exporter writes;
  - each --profile PROFILE_JSON (gpbft_cli profile --profile-out) is a
    {"profiler": {"sites": N, "tree": ...}} document whose tree nodes all
    carry name/calls/wall_ns/self_ns/children with self_ns <= wall_ns;
  - --profile-same A B: the two profile exports agree on every
    DETERMINISTIC field (tree shape, site names, call counts). Wall-clock
    fields (wall_ns / self_ns) are machine noise by design and are
    excluded — this is the double-run gate for profiling itself: same
    seed profiled twice must visit the identical call tree the identical
    number of times.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

TRACE_PHASES = {"X", "i", "b", "e", "M"}
METRIC_KINDS = {"counter", "gauge", "histogram"}


def fail(message: str) -> None:
    print(f"check_trace: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents array")
    named_tids = set()
    emitting_tids = set()
    open_async = {}
    for index, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                fail(f"{path}: event {index} lacks required field {field!r}")
        phase = event["ph"]
        if phase not in TRACE_PHASES:
            fail(f"{path}: event {index} has unexpected phase {phase!r}")
        if phase == "M":
            if event["name"] == "thread_name":
                named_tids.add(event["tid"])
            continue
        if "ts" not in event:
            fail(f"{path}: event {index} ({event['name']}) lacks ts")
        emitting_tids.add(event["tid"])
        if phase in ("b", "e"):
            if "id" not in event:
                fail(f"{path}: async event {index} lacks id")
            key = (event["name"], event["id"])
            if phase == "b":
                open_async[key] = open_async.get(key, 0) + 1
            elif open_async.get(key, 0) > 0:
                open_async[key] -= 1
            else:
                fail(f"{path}: async end without begin for {key}")
    unnamed = emitting_tids - named_tids
    if unnamed:
        fail(f"{path}: tids without thread_name metadata: {sorted(unnamed)}")
    print(
        f"check_trace: {path}: {len(events)} events, "
        f"{len(emitting_tids)} timeline rows, "
        f"{sum(open_async.values())} unclosed async spans"
    )


def check_metrics(path: str) -> None:
    rows = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{path}:{lineno}: not valid JSON: {err}")
            for field in ("name", "node", "kind"):
                if field not in row:
                    fail(f"{path}:{lineno}: lacks required field {field!r}")
            if row["kind"] not in METRIC_KINDS:
                fail(f"{path}:{lineno}: unexpected kind {row['kind']!r}")
            if row["kind"] == "histogram" and "count" not in row:
                fail(f"{path}:{lineno}: histogram lacks count")
            rows.append(row)
    if not rows:
        fail(f"{path}: no metric rows")
    # The exporter writes each kind as one block sorted by (name, node).
    for kind in METRIC_KINDS:
        block = [(r["name"], r["node"]) for r in rows if r["kind"] == kind]
        if block != sorted(block):
            fail(f"{path}: {kind} rows are not sorted by (name, node)")
    print(f"check_trace: {path}: {len(rows)} metric rows")


PROFILE_NODE_FIELDS = {"name": str, "calls": int, "wall_ns": int, "self_ns": int,
                       "children": list}


def load_profile(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"{path}: not valid JSON: {err}")
    profiler = doc.get("profiler")
    if not isinstance(profiler, dict):
        fail(f"{path}: missing top-level 'profiler' object")
    if not isinstance(profiler.get("sites"), int) or profiler["sites"] < 0:
        fail(f"{path}: profiler.sites must be a non-negative integer")
    if "tree" not in profiler:
        fail(f"{path}: profiler lacks 'tree'")
    return doc


def check_profile(path: str) -> None:
    doc = load_profile(path)
    nodes = 0

    def walk(node, trail):
        nonlocal nodes
        nodes += 1
        if not isinstance(node, dict):
            fail(f"{path}: node at {trail} is not an object")
        for field, kind in PROFILE_NODE_FIELDS.items():
            if not isinstance(node.get(field), kind):
                fail(f"{path}: node at {trail} lacks {kind.__name__} field {field!r}")
        if node["self_ns"] > node["wall_ns"]:
            fail(f"{path}: node {node['name']!r} at {trail}: self_ns > wall_ns")
        if min(node["calls"], node["wall_ns"], node["self_ns"]) < 0:
            fail(f"{path}: node {node['name']!r} at {trail}: negative sample field")
        for i, child in enumerate(node["children"]):
            walk(child, f"{trail}/{i}")

    walk(doc["profiler"]["tree"], "tree")
    print(f"check_trace: {path}: profile OK, {nodes} tree nodes")


def profile_shape(node):
    """The deterministic projection of a profile tree: names, call counts
    and structure survive a same-seed re-run; wall_ns/self_ns do not."""
    return (node["name"], node["calls"],
            [profile_shape(c) for c in node["children"]])


def check_profile_same(path_a: str, path_b: str) -> None:
    doc_a, doc_b = load_profile(path_a), load_profile(path_b)
    if doc_a["profiler"]["sites"] != doc_b["profiler"]["sites"]:
        fail(f"profile mismatch: sites {doc_a['profiler']['sites']} != "
             f"{doc_b['profiler']['sites']} ({path_a} vs {path_b})")
    shape_a = profile_shape(doc_a["profiler"]["tree"])
    shape_b = profile_shape(doc_b["profiler"]["tree"])
    if shape_a != shape_b:
        fail(f"profile mismatch: deterministic fields (tree shape / names / "
             f"call counts) differ between {path_a} and {path_b}")
    print(f"check_trace: {path_a} == {path_b} on deterministic profile fields")


def main() -> None:
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument("trace")
    parser.add_argument("metrics")
    parser.add_argument("--profile", action="append", default=[])
    parser.add_argument("--profile-same", nargs=2, default=None,
                        metavar=("A_JSON", "B_JSON"))
    try:
        args = parser.parse_args()
    except SystemExit:
        fail("usage: check_trace.py TRACE_JSON METRICS_JSONL "
             "[--profile P]... [--profile-same A B]")
    check_trace(args.trace)
    check_metrics(args.metrics)
    for path in args.profile:
        check_profile(path)
    if args.profile_same:
        check_profile_same(*args.profile_same)


if __name__ == "__main__":
    main()
