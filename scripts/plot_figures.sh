#!/usr/bin/env bash
# Regenerates the paper's figures as data files + gnuplot scripts.
#
# Uses gpbft_cli sweeps (CSV) for the latency figures and cost runs for the
# communication figures, then writes plots/*.gp. If gnuplot is installed the
# PNGs are rendered; otherwise the .dat/.gp files are left for any tool.
#
#   scripts/plot_figures.sh [runs-per-point]   (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."
RUNS="${1:-3}"
CLI=build/tools/gpbft_cli
GRID="4,22,40,58,76,94,112,130,148,166,184,202"
EXT_GRID="$GRID,223,244,265,286"

mkdir -p plots

echo "sweeping PBFT latency ($RUNS runs/point)..."
$CLI sweep --protocol pbft --nodes "$GRID" --runs "$RUNS" --csv | tail -n +2 \
  > plots/fig3a_pbft.dat
echo "sweeping G-PBFT latency ($RUNS runs/point)..."
$CLI sweep --protocol gpbft --nodes "$EXT_GRID" --runs "$RUNS" --csv | tail -n +2 \
  > plots/fig3b_gpbft.dat
echo "sweeping communication costs..."
$CLI cost --protocol pbft --nodes "$GRID" --csv | tail -n +2 > plots/fig5a_pbft.dat
$CLI cost --protocol gpbft --nodes "$EXT_GRID" --csv | tail -n +2 > plots/fig5b_gpbft.dat

cat > plots/figures.gp <<'EOF'
set datafile separator ","
set terminal pngcairo size 900,600
set grid

# Fig. 3/4: consensus latency vs nodes (columns: 2=nodes, 4..8=boxplot, 9=mean)
set output "plots/fig4_latency.png"
set title "Average consensus latency (paper Fig. 4)"
set xlabel "number of nodes"; set ylabel "latency (s)"; set key top left
plot "plots/fig3a_pbft.dat"  using 2:9 with linespoints title "PBFT", \
     "plots/fig3b_gpbft.dat" using 2:9 with linespoints title "G-PBFT"

set output "plots/fig3_boxes.png"
set title "Consensus latency spread (paper Fig. 3): whiskers = min/max, box = q1/q3"
plot "plots/fig3a_pbft.dat"  using 2:6:4:8:7 with candlesticks title "PBFT", \
     "plots/fig3b_gpbft.dat" using 2:6:4:8:7 with candlesticks title "G-PBFT"

# Fig. 5/6: communication cost (column 10 = consensus KB)
set output "plots/fig6_costs.png"
set title "Communication cost per transaction (paper Fig. 6)"
set ylabel "consensus traffic (KB)"
plot "plots/fig5a_pbft.dat"  using 2:10 with linespoints title "PBFT", \
     "plots/fig5b_gpbft.dat" using 2:10 with linespoints title "G-PBFT"
EOF

if command -v gnuplot >/dev/null 2>&1; then
  gnuplot plots/figures.gp
  echo "rendered plots/*.png"
else
  echo "gnuplot not found; data in plots/*.dat, script in plots/figures.gp"
fi
