#!/usr/bin/env python3
"""Bench-trajectory report and perf-regression gate over BENCH_scale.json.

The repo records one JSONL row per bench_scale point per recorded build
label (GPBFT_BENCH_SCALE_LABEL). This tool turns that history into the
trend view the perf-parity goldens cannot give: goldens pin *what* was
computed, this pins *how fast* it was computed, per build, per series.

Modes
-----
report (default):
    Markdown trend table of events/sec per (series, nodes) across build
    labels (label order = first appearance in the file), with the delta
    versus the previous label in each cell. This is how the known
    batched-pipeline regression reads straight out of the checked-in
    history: scale.pbft n=202 478178 -> 260218 events/sec (-45.6%).

        bench_report.py report [--json BENCH_scale.json] [--series REGEX]

gate:
    Perf-regression gate for CI. Compares the newest rows of the current
    label (--current-label, default the newest label in the file) against
    the previous recorded label per (series, nodes) key and fails (exit 1)
    when events/sec dropped by more than --max-drop (fraction, default
    0.60 — generous because CI machines differ; override with
    GPBFT_PERF_MAX_DROP). Keys present in only one label are reported but
    never fail the gate.

        bench_report.py gate --json merged.jsonl [--max-drop 0.6]

self-test:
    Proves the gate trips: synthesizes a history with an injected 2x
    slowdown and asserts gate() fails on it, then synthesizes a flat
    history and asserts gate() passes. Exits 0 only if both hold.

Rows older than the PR 7 time-to-done fix carry sim_seconds=1000 (idle
tail included); newer rows carry time-to-done. events_per_sec uses wall
seconds only, so the trend stays comparable across that fix; committed/s
does not, which is why this tool gates on events/sec.
"""

import argparse
import json
import os
import re
import sys

DEFAULT_MAX_DROP = 0.60


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{line_no}: bad JSON: {err}")
            if row.get("bench") != "bench_scale":
                continue
            for field in ("build", "series", "nodes", "events_per_sec"):
                if field not in row:
                    raise SystemExit(f"{path}:{line_no}: missing field {field!r}")
            rows.append(row)
    return rows


def label_order(rows):
    """Build labels in first-appearance order (the recording order)."""
    order = []
    for row in rows:
        if row["build"] not in order:
            order.append(row["build"])
    return order


def series_key(row):
    return (row["series"], row["nodes"])


def latest_by_key(rows):
    """label -> {(series, nodes) -> row}, keeping the last row per key
    (re-recorded points supersede earlier rows under the same label)."""
    table = {}
    for row in rows:
        table.setdefault(row["build"], {})[series_key(row)] = row
    return table


def fmt_rate(value):
    return f"{value:,.0f}".replace(",", " ")


def report(rows, series_filter=None):
    if series_filter:
        pattern = re.compile(series_filter)
        rows = [r for r in rows if pattern.search(r["series"])]
    if not rows:
        print("bench_report: no matching rows")
        return 0
    labels = label_order(rows)
    table = latest_by_key(rows)
    keys = sorted({series_key(r) for r in rows})

    header = ["series", "nodes"] + [f"`{label}`" for label in labels]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join(["---"] * len(header)) + "|"]
    for key in keys:
        series, nodes = key
        cells = [series, str(nodes)]
        previous = None
        for label in labels:
            row = table.get(label, {}).get(key)
            if row is None:
                cells.append("—")
                continue
            rate = row["events_per_sec"]
            cell = fmt_rate(rate)
            if previous not in (None, 0):
                delta = (rate - previous) / previous
                cell += f" ({delta:+.1%})"
            previous = rate
            cells.append(cell)
        lines.append("| " + " | ".join(cells) + " |")
    print("\n".join(lines))
    print(f"\nevents/sec per build label; delta vs previous label in parentheses.")
    print(f"labels (recording order): {', '.join(labels)}")
    return 0


def gate(rows, max_drop, current_label=None):
    labels = label_order(rows)
    if len(labels) < 2:
        print(f"bench_report gate: need >= 2 build labels, have {labels} — nothing to gate")
        return 0
    table = latest_by_key(rows)
    if current_label is None:
        current_label = labels[-1]
    if current_label not in table:
        raise SystemExit(f"bench_report gate: label {current_label!r} not in history")
    previous_labels = [l for l in labels if l != current_label]
    baseline_label = previous_labels[-1]

    current = table[current_label]
    baseline = table[baseline_label]
    failures = []
    print(f"bench_report gate: {current_label!r} vs {baseline_label!r} "
          f"(max allowed events/sec drop {max_drop:.0%})")
    for key in sorted(current):
        series, nodes = key
        cur = current[key]["events_per_sec"]
        base_row = baseline.get(key)
        if base_row is None:
            print(f"  {series} n={nodes}: {fmt_rate(cur)} (new point, no baseline)")
            continue
        base = base_row["events_per_sec"]
        if base <= 0:
            continue
        delta = (cur - base) / base
        verdict = "ok"
        if delta < -max_drop:
            verdict = "REGRESSION"
            failures.append((series, nodes, base, cur, delta))
        print(f"  {series} n={nodes}: {fmt_rate(base)} -> {fmt_rate(cur)} "
              f"({delta:+.1%}) {verdict}")
    if failures:
        print(f"bench_report gate: {len(failures)} series regressed beyond "
              f"{max_drop:.0%} — investigate with `gpbft_cli profile` "
              "(docs/observability.md)")
        return 1
    print("bench_report gate: OK")
    return 0


def synth_rows(slowdown):
    """Two-label synthetic history; the second label is `slowdown`x slower."""
    rows = []
    for label, factor in (("base", 1.0), ("current", 1.0 / slowdown)):
        for series, nodes, rate in (("scale.pbft", 20, 600000),
                                    ("scale.gpbft", 20, 580000)):
            rows.append({"bench": "bench_scale", "build": label, "series": series,
                         "nodes": nodes, "events_per_sec": rate * factor})
    return rows


def self_test(max_drop):
    # The injected slowdown scales with the threshold: its drop (1 - 1/s)
    # always lands well beyond max_drop, however generous the gate is.
    slowdown = 2.0 / (1.0 - max_drop) if max_drop < 1.0 else 100.0
    print(f"bench_report self-test: injected {slowdown:.1f}x slowdown must trip the gate")
    if gate(synth_rows(slowdown), max_drop) != 1:
        print(f"self-test FAILED: gate passed an injected {slowdown:.1f}x slowdown")
        return 1
    print("\nbench_report self-test: flat history must pass the gate")
    if gate(synth_rows(1.0), max_drop) != 0:
        print("self-test FAILED: gate rejected a flat history")
        return 1
    print("\nbench_report self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("mode", nargs="?", default="report",
                        choices=["report", "gate", "self-test"])
    parser.add_argument("--json", default="BENCH_scale.json",
                        help="bench_scale JSONL history (default BENCH_scale.json)")
    parser.add_argument("--series", default=None,
                        help="report: regex filter on series names")
    parser.add_argument("--current-label", default=None,
                        help="gate: label under test (default: newest in file)")
    parser.add_argument("--max-drop", type=float,
                        default=float(os.environ.get("GPBFT_PERF_MAX_DROP",
                                                     DEFAULT_MAX_DROP)),
                        help="gate: max allowed fractional events/sec drop "
                             f"(default {DEFAULT_MAX_DROP}, env GPBFT_PERF_MAX_DROP)")
    args = parser.parse_args()

    if args.mode == "self-test":
        return self_test(args.max_drop)
    rows = load_rows(args.json)
    if args.mode == "report":
        return report(rows, args.series)
    return gate(rows, args.max_drop, args.current_label)


if __name__ == "__main__":
    sys.exit(main())
