#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer (-DGPBFT_SANITIZE=thread) in a
# separate build directory and runs the suites that exercise real threads:
# the parallel MAC plane (ordered-runner unit tests + the 20-seed
# determinism-under-parallelism sweep) and the crypto tests that hammer the
# shared KeyRegistry caches from worker threads. Any data race aborts the
# run, so a green exit means the worker-pool plane is race-clean.
#
# Kept separate from check_sanitizers.sh because TSan and ASan cannot be
# combined in one binary; each gets its own tree.
#
# Knobs:
#   GPBFT_TSAN_BUILD_DIR=build-tsan   build directory (default build-tsan)
#   GPBFT_TSAN_JOBS=N                 parallel ctest jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${GPBFT_TSAN_BUILD_DIR:-build-tsan}"
JOBS="${GPBFT_TSAN_JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -G Ninja -DGPBFT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}"

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
ctest --test-dir "${BUILD_DIR}" -L tier1-parallel --output-on-failure -j "${JOBS}"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
ctest --test-dir "${BUILD_DIR}" -R "Authenticator|HmacKey|Seal\." \
  --output-on-failure -j "${JOBS}"

# End-to-end threaded run under TSan: a full seeded scenario with the MAC
# plane fanned out over 8 threads, byte-compared against the same build's
# single-threaded run. Covers the worker/sequencer/lazy-payload interplay a
# unit test cannot.
TSAN_DIR="${BUILD_DIR}/tsan-ci"
mkdir -p "${TSAN_DIR}"
for threads in 1 8; do
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  "${BUILD_DIR}/tools/gpbft_cli" run --scenario scenarios/telemetry_smoke.scenario \
    --threads "${threads}" \
    --trace-out "${TSAN_DIR}/trace.t${threads}.json" \
    --metrics-out "${TSAN_DIR}/metrics.t${threads}.jsonl" >/dev/null
done
cmp "${TSAN_DIR}/trace.t1.json" "${TSAN_DIR}/trace.t8.json"
cmp "${TSAN_DIR}/metrics.t1.jsonl" "${TSAN_DIR}/metrics.t8.jsonl"
