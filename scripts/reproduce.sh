#!/usr/bin/env bash
# Reproduces the whole evaluation: build, test, every figure/table harness,
# ablations and micro-benchmarks. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
#
# Knobs:
#   GPBFT_BENCH_RUNS=10   the paper's ten runs per Fig. 3 point (default 3)
#   GPBFT_BENCH_QUICK=1   coarse grids; finishes in about a minute
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in \
      build/bench/fig3a_pbft_latency \
      build/bench/fig3b_gpbft_latency \
      build/bench/fig4_latency_comparison \
      build/bench/fig5_comm_costs \
      build/bench/fig6_comm_comparison \
      build/bench/table3_summary \
      build/bench/table4_consensus_matrix \
      build/bench/ablation_era_period \
      build/bench/ablation_committee_size \
      build/bench/ablation_geo_threshold \
      build/bench/ablation_processing_rate \
      build/bench/ablation_batch_size \
      build/bench/ablation_heterogeneity \
      build/bench/micro_crypto \
      build/bench/micro_geo \
      build/bench/micro_serde \
      build/bench/micro_sim; do
    echo "=== ${b##*/} ==="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
