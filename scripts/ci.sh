#!/usr/bin/env bash
# Fast CI gate: configure, build, run the tier-1 test label (everything
# except the long-running torture/chaos suites — those run in the full
# `ctest` sweep, see scripts/reproduce.sh) and smoke one bench harness on
# the coarse GPBFT_BENCH_QUICK grid so bench regressions surface before a
# full reproduction run.
#
# Knobs:
#   GPBFT_CI_BUILD_DIR=build   build directory (default build)
#   GPBFT_CI_JOBS=N            parallel ctest jobs (default nproc)
#   GPBFT_CI_SANITIZE=1        also run the ASan/UBSan and TSan legs
#                              (scripts/check_sanitizers.sh + check_tsan.sh;
#                              off by default — each configures and builds
#                              its own tree)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${GPBFT_CI_BUILD_DIR:-build}"
JOBS="${GPBFT_CI_JOBS:-$(nproc)}"

# No -G: reuse whatever generator an existing build directory was
# configured with (fresh checkouts get the platform default).
cmake -B "${BUILD_DIR}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

# Adversarial election gate. `-L tier1` above already matches the compound
# tier1-adversarial label; this leg re-selects it explicitly so a label
# regression (test renamed, label dropped) fails loudly instead of silently
# shrinking the fast gate, then drives the four election-attack scenarios.
# Each scenario run arms the invariant monitor and exits non-zero on any
# SYBIL-SEATED / COMMITTEE-QUALITY / ERA-CONVERGENCE violation, agreement
# break or liveness miss.
ctest --test-dir "${BUILD_DIR}" -L tier1-adversarial -j "${JOBS}" --output-on-failure

# Batched-pipeline gate (same label-regression rationale as above): the
# batch.size=1 golden-equivalence tests, the client-table replay tests and
# the million-device WorkloadPlane determinism tests (docs/protocol.md §11).
ctest --test-dir "${BUILD_DIR}" -L tier1-batch -j "${JOBS}" --output-on-failure
for sc in election_sybil_burst election_targeted_crash \
          election_boundary_oscillation election_churn_long; do
  "${BUILD_DIR}/tools/gpbft_cli" run --scenario "scenarios/${sc}.scenario" >/dev/null
done

# Wire-tamper gate (docs/protocol.md §12). Label re-selection first (same
# rationale as the legs above), then the pinned MITM storm scenario run
# twice with telemetry exports: the run must finish with zero invariant
# violations AND byte-identical artifacts — the adversary draws from its
# own forked RNG stream, so a seeded storm replays exactly.
ctest --test-dir "${BUILD_DIR}" -L tier1-tamper -j "${JOBS}" --output-on-failure
TAMPER_DIR="${BUILD_DIR}/tamper-ci"
mkdir -p "${TAMPER_DIR}"
for run in 1 2; do
  "${BUILD_DIR}/tools/gpbft_cli" run --scenario scenarios/tamper_storm.scenario \
    --trace-out "${TAMPER_DIR}/trace.${run}.json" \
    --metrics-out "${TAMPER_DIR}/metrics.${run}.jsonl" >/dev/null
done
cmp "${TAMPER_DIR}/trace.1.json" "${TAMPER_DIR}/trace.2.json"
cmp "${TAMPER_DIR}/metrics.1.jsonl" "${TAMPER_DIR}/metrics.2.jsonl"

# Parallel MAC plane gate (docs/performance.md "Parallel MAC plane"). Label
# re-selection first (same rationale as the legs above): the ordered-runner
# unit tests plus the 20-seed determinism-under-parallelism sweep. Then the
# end-to-end check: the same seeded scenario at 1 and 8 threads must export
# byte-identical telemetry — `--threads` is a host-performance knob, never
# a model parameter.
ctest --test-dir "${BUILD_DIR}" -L tier1-parallel -j "${JOBS}" --output-on-failure
PAR_DIR="${BUILD_DIR}/parallel-ci"
mkdir -p "${PAR_DIR}"
for threads in 1 8; do
  "${BUILD_DIR}/tools/gpbft_cli" run --scenario scenarios/telemetry_smoke.scenario \
    --threads "${threads}" \
    --trace-out "${PAR_DIR}/trace.t${threads}.json" \
    --metrics-out "${PAR_DIR}/metrics.t${threads}.jsonl" >/dev/null
done
cmp "${PAR_DIR}/trace.t1.json" "${PAR_DIR}/trace.t8.json"
cmp "${PAR_DIR}/metrics.t1.jsonl" "${PAR_DIR}/metrics.t8.jsonl"

# Fuzz gate: replay the checked-in malformed corpus and run a seeded
# mutation sweep over every wire-decode target. Each target carries its own
# totality + re-encode fixed-point oracle, so a decoder defect aborts the
# driver; zero crashes is the pass condition. (The coverage-guided
# libFuzzer leg needs Clang — GPBFT_FUZZ=ON — and is not part of this gate.)
"${BUILD_DIR}/tools/gpbft_fuzz" replay fuzz/corpus
"${BUILD_DIR}/tools/gpbft_fuzz" mutate --seed 1 --iters 2000

# Telemetry gate: one seeded scenario exports a Perfetto trace and a
# metrics snapshot, twice; the artifacts must be schema-valid (when python3
# is available) and byte-identical across the two same-seed runs.
OBS_DIR="${BUILD_DIR}/telemetry-ci"
mkdir -p "${OBS_DIR}"
for run in 1 2; do
  "${BUILD_DIR}/tools/gpbft_cli" run --scenario scenarios/telemetry_smoke.scenario \
    --trace-out "${OBS_DIR}/trace.${run}.json" \
    --metrics-out "${OBS_DIR}/metrics.${run}.jsonl" >/dev/null
done
cmp "${OBS_DIR}/trace.1.json" "${OBS_DIR}/trace.2.json"
cmp "${OBS_DIR}/metrics.1.jsonl" "${OBS_DIR}/metrics.2.jsonl"
# Same determinism bar under attack: the Sybil-burst scenario's forked
# attack RNG streams, reputation strikes and quarantine decisions must all
# replay byte-identically from the same seed.
for run in 1 2; do
  "${BUILD_DIR}/tools/gpbft_cli" run --scenario scenarios/election_sybil_burst.scenario \
    --trace-out "${OBS_DIR}/attack-trace.${run}.json" \
    --metrics-out "${OBS_DIR}/attack-metrics.${run}.jsonl" >/dev/null
done
cmp "${OBS_DIR}/attack-trace.1.json" "${OBS_DIR}/attack-trace.2.json"
cmp "${OBS_DIR}/attack-metrics.1.jsonl" "${OBS_DIR}/attack-metrics.2.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_trace.py "${OBS_DIR}/trace.1.json" "${OBS_DIR}/metrics.1.jsonl"
else
  echo "ci: python3 not found; skipping telemetry schema check"
fi

# Profiler gate (docs/observability.md "Profiling & perf analytics").
# Label re-selection first (same rationale as the legs above): the probe
# unit tests plus the guard test proving a profiled run's chain tip,
# metrics and trace are byte-identical to an unprofiled run. Then the
# end-to-end check: the same seeded scenario profiled twice must produce
# byte-identical telemetry AND profile exports that agree on every
# deterministic field (tree shape, site names, call counts — wall-clock
# ns are machine noise and excluded by check_trace.py --profile-same).
ctest --test-dir "${BUILD_DIR}" -L tier1-profile -j "${JOBS}" --output-on-failure
PROF_DIR="${BUILD_DIR}/profile-ci"
mkdir -p "${PROF_DIR}"
for run in 1 2; do
  "${BUILD_DIR}/tools/gpbft_cli" profile --scenario scenarios/profile_pbft20.scenario \
    --profile-out "${PROF_DIR}/profile.${run}.json" \
    --collapsed-out "${PROF_DIR}/collapsed.${run}.txt" \
    --trace-out "${PROF_DIR}/trace.${run}.json" \
    --metrics-out "${PROF_DIR}/metrics.${run}.jsonl" >/dev/null
done
cmp "${PROF_DIR}/trace.1.json" "${PROF_DIR}/trace.2.json"
cmp "${PROF_DIR}/metrics.1.jsonl" "${PROF_DIR}/metrics.2.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_trace.py "${PROF_DIR}/trace.1.json" "${PROF_DIR}/metrics.1.jsonl" \
    --profile "${PROF_DIR}/profile.1.json" --profile "${PROF_DIR}/profile.2.json" \
    --profile-same "${PROF_DIR}/profile.1.json" "${PROF_DIR}/profile.2.json"
else
  echo "ci: python3 not found; skipping profile schema check"
fi

# One declarative-harness bench end to end: the Fig. 3(b) harness drives
# G-PBFT deployments through the ScenarioSpec factory on the coarse grid,
# single run per point (~7 s).
GPBFT_BENCH_QUICK=1 GPBFT_BENCH_RUNS=1 "${BUILD_DIR}/bench/fig3b_gpbft_latency"

# Perf smoke + regression gate: the message-plane scaling harness at its
# smallest point (n=20, both protocols, ~1 s). The harness itself exits
# nonzero if a seeded run's chain tip drifts from its golden hash; on top
# of that, the fresh events/sec rows are appended (under an ephemeral
# "ci-smoke" label, to a COPY of the checked-in history — the repo file
# only gains rows deliberately, via GPBFT_BENCH_SCALE_LABEL) and
# bench_report.py gates the trajectory: a drop beyond GPBFT_PERF_MAX_DROP
# (default 60% — generous, CI machines differ) vs the last recorded label
# fails the build. The self-test leg proves the gate actually trips on an
# injected slowdown, so a silently-broken gate cannot pass. See
# docs/performance.md.
PERF_DIR="${BUILD_DIR}/perf-ci"
mkdir -p "${PERF_DIR}"
cp BENCH_scale.json "${PERF_DIR}/history.jsonl"
GPBFT_BENCH_SCALE_JSON="${PERF_DIR}/history.jsonl" \
  GPBFT_BENCH_SCALE_LABEL=ci-smoke \
  "${BUILD_DIR}/bench/bench_scale" --smoke
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_report.py self-test
  python3 scripts/bench_report.py gate --json "${PERF_DIR}/history.jsonl" \
    --current-label ci-smoke
else
  echo "ci: python3 not found; skipping perf-regression gate"
fi

# Million-device plane smoke: a 10^6-virtual-device diurnal workload over
# O(regions) concrete endpoints, run twice from the same seed. Gates on
# byte-identical tips, open-loop completeness (every submission commits)
# and the wall budget (GPBFT_PLANE_BUDGET_SECS, default 120 s per run).
"${BUILD_DIR}/bench/bench_scale" --plane

# Opt-in sanitizer legs: a full ASan/UBSan build + test sweep, then a TSan
# build running the threaded suites (the two sanitizers cannot share one
# binary, so each gets its own build directory). Kept off the default path
# so the fast gate stays fast.
if [[ "${GPBFT_CI_SANITIZE:-0}" == "1" ]]; then
  scripts/check_sanitizers.sh
  scripts/check_tsan.sh
fi

echo "ci: OK"
