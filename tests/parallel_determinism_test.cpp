// Determinism-under-parallelism sweep (label: tier1-parallel).
//
// The parallel MAC plane's contract is that `sim.threads` is a pure
// host-performance knob: for every seed and every fault mix, a run at
// threads=N must be byte-identical to the single-threaded run — same chain
// tip, same metrics JSONL, same Perfetto trace. The sequencer makes this
// structural (seal/open are pure functions released in submission order),
// and this suite pins it empirically: a 20-seed sweep across
// threads in {1, 2, 8} for clean MACs-on runs, node-fault chaos runs and
// wire-tamper storm runs. Any divergence — a reordered event, a
// double-counted metric, a worker-perturbed RNG draw — fails the sweep.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "crypto/sha256.hpp"
#include "sim/chaos.hpp"
#include "sim/deployment.hpp"
#include "sim/scenario.hpp"

namespace gpbft::sim {
namespace {

enum class Flavor { Clean, Chaos, Tamper };

const char* flavor_name(Flavor flavor) {
  switch (flavor) {
    case Flavor::Clean: return "clean";
    case Flavor::Chaos: return "chaos";
    case Flavor::Tamper: return "tamper";
  }
  return "?";
}

struct RunDigests {
  std::string tip;
  std::string metrics_sha256;
  std::string trace_sha256;
  std::uint64_t committed{0};

  friend bool operator==(const RunDigests&, const RunDigests&) = default;
};

/// One seeded PBFT run (MACs on) at the given thread count, digested over
/// the full observable surface. The spec and the fault plan depend only on
/// the seed and flavor — never on `threads` — so differing digests can only
/// come from the parallel plane itself.
RunDigests run_and_digest(std::uint64_t seed, Flavor flavor, std::size_t threads) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = seed;
  spec.threads = threads;
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 3;
  spec.engine.compute_macs = true;

  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->telemetry().set_trace_enabled(true);

  FaultPlan plan;
  if (flavor != Flavor::Clean) {
    ChaosProfile profile =
        flavor == Flavor::Chaos ? ChaosProfile::light() : profile_for("none");
    if (flavor == Flavor::Tamper) {
      // A dense storm of in-flight mutations: every opened window must
      // produce the same REJECTs and the same survivor set at any thread
      // count, because verification verdicts are sequenced, not raced.
      profile.tamper_chance = 0.6;
    }
    const std::vector<NodeId> victims = deployment->fault_targets();
    profile.max_faulty = victims.empty() ? 0 : (victims.size() - 1) / 3;
    plan = FaultPlan::random(seed, profile, victims, Duration::seconds(20));
    FaultPlan::ChaosHandlers handlers;
    handlers.set_byzantine = [&deployment](NodeId id, pbft::FaultMode mode) {
      deployment->set_fault_mode(id, mode);
    };
    plan.schedule(deployment->simulator(), deployment->network(), handlers);
  }

  deployment->start();
  LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->run_for(Duration::seconds(45));
  deployment->stop();
  deployment->finalize_telemetry();

  RunDigests digests;
  digests.committed = deployment->committed_count();
  auto* pbft = dynamic_cast<PbftCluster*>(deployment.get());
  digests.tip = pbft->replica(0).chain().tip().hash().hex();
  digests.metrics_sha256 = crypto::sha256(deployment->telemetry().metrics().to_jsonl()).hex();
  digests.trace_sha256 =
      crypto::sha256(deployment->telemetry().trace().to_perfetto_json()).hex();
  EXPECT_EQ(deployment->telemetry().trace().dropped(), 0u);
  return digests;
}

constexpr std::uint64_t kSeeds = 20;

void sweep(Flavor flavor) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const RunDigests baseline = run_and_digest(seed, flavor, 1);
    // A clean run this size must actually commit; a sweep of empty chains
    // would vacuously "agree". Chaos/tamper runs may legitimately stall.
    if (flavor == Flavor::Clean) {
      ASSERT_GT(baseline.committed, 0u) << "seed " << seed;
    }
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const RunDigests parallel = run_and_digest(seed, flavor, threads);
      ASSERT_EQ(parallel.tip, baseline.tip)
          << flavor_name(flavor) << " seed " << seed << " threads " << threads;
      ASSERT_EQ(parallel.metrics_sha256, baseline.metrics_sha256)
          << flavor_name(flavor) << " seed " << seed << " threads " << threads;
      ASSERT_EQ(parallel.trace_sha256, baseline.trace_sha256)
          << flavor_name(flavor) << " seed " << seed << " threads " << threads;
      ASSERT_EQ(parallel.committed, baseline.committed)
          << flavor_name(flavor) << " seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelDeterminism, CleanMacsOnRunsAreByteIdenticalAcrossThreadCounts) {
  sweep(Flavor::Clean);
}

TEST(ParallelDeterminism, NodeFaultChaosRunsAreByteIdenticalAcrossThreadCounts) {
  sweep(Flavor::Chaos);
}

TEST(ParallelDeterminism, WireTamperStormRunsAreByteIdenticalAcrossThreadCounts) {
  sweep(Flavor::Tamper);
}

// G-PBFT exercises the roster fan-out, era switches and geo gossip on top
// of the MAC plane; one smaller sweep guards the protocol-specific paths.
TEST(ParallelDeterminism, GpbftEraSwitchRunsAreByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioSpec spec;
    spec.protocol = ProtocolKind::Gpbft;
    spec.nodes = 6;
    spec.clients = 2;
    spec.seed = seed;
    spec.committee.era_period = Duration::seconds(15);
    spec.geo.report_period = Duration::seconds(3);
    spec.geo.window = Duration::seconds(12);
    spec.geo.min_reports = 2;
    spec.geo.promotion_threshold = Duration::seconds(20);
    spec.workload.period = Duration::seconds(2);
    spec.workload.txs_per_client = 3;

    std::string baseline_tip;
    std::string baseline_metrics;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      spec.threads = threads;
      const std::unique_ptr<Deployment> deployment = make_deployment(spec);
      deployment->start();
      LatencyRecorder recorder;
      deployment->schedule_workload(spec.workload, &recorder);
      deployment->run_for(Duration::seconds(45));
      deployment->stop();
      deployment->finalize_telemetry();
      auto* gpbft = dynamic_cast<GpbftCluster*>(deployment.get());
      const std::string tip = gpbft->endorser(0).chain().tip().hash().hex();
      const std::string metrics =
          crypto::sha256(deployment->telemetry().metrics().to_jsonl()).hex();
      if (threads == 1) {
        baseline_tip = tip;
        baseline_metrics = metrics;
      } else {
        ASSERT_EQ(tip, baseline_tip) << "seed " << seed;
        ASSERT_EQ(metrics, baseline_metrics) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace gpbft::sim
