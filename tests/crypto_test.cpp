// Crypto known-answer and property tests: SHA-256 (NIST FIPS 180-4 vectors),
// HMAC-SHA256 (RFC 4231 vectors), Merkle trees, authenticators, addresses.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "crypto/address.hpp"
#include "crypto/authenticator.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace gpbft::crypto {
namespace {

// --- SHA-256 known answers -----------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(ctx.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string message = "the quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (char c : message) ctx.update(std::string_view(&c, 1));
  EXPECT_EQ(ctx.finalize(), sha256(message));
}

TEST(Sha256, BoundarySizesConsistent) {
  // Exercise the padding logic at block boundaries (55/56/63/64/65 bytes).
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    const std::string message(len, 'x');
    Sha256 a;
    a.update(message);
    Sha256 b;
    b.update(message.substr(0, len / 2));
    b.update(message.substr(len / 2));
    EXPECT_EQ(a.finalize(), b.finalize()) << "length " << len;
  }
}

TEST(Sha256, Sha256dDiffersFromSingle) {
  const Bytes data = {1, 2, 3};
  EXPECT_NE(sha256d(data), sha256(BytesView(data.data(), data.size())));
}

TEST(Hash256, HexAndShortHex) {
  Hash256 h;
  h.bytes[0] = 0xab;
  h.bytes[1] = 0xcd;
  EXPECT_EQ(h.hex().substr(0, 4), "abcd");
  EXPECT_EQ(h.short_hex(), "abcd0000");
  EXPECT_FALSE(h.is_zero());
  EXPECT_TRUE(Hash256{}.is_zero());
}

// --- HMAC-SHA256 (RFC 4231) -------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string data = "Hi There";
  const Hash256 mac = hmac_sha256(BytesView(key.data(), key.size()),
                                  BytesView(reinterpret_cast<const std::uint8_t*>(data.data()),
                                            data.size()));
  EXPECT_EQ(mac.hex(), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Hash256 mac =
      hmac_sha256(BytesView(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
                  BytesView(reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(mac.hex(), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const Hash256 mac =
      hmac_sha256(BytesView(key.data(), key.size()), BytesView(data.data(), data.size()));
  EXPECT_EQ(mac.hex(), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Hash256 mac =
      hmac_sha256(BytesView(key.data(), key.size()),
                  BytesView(reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(mac.hex(), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, ConstantTimeEqual) {
  const Bytes a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4}, d{1, 2};
  EXPECT_TRUE(constant_time_equal(BytesView(a.data(), a.size()), BytesView(b.data(), b.size())));
  EXPECT_FALSE(constant_time_equal(BytesView(a.data(), a.size()), BytesView(c.data(), c.size())));
  EXPECT_FALSE(constant_time_equal(BytesView(a.data(), a.size()), BytesView(d.data(), d.size())));
}

// --- Merkle tree ---------------------------------------------------------------------

std::vector<Hash256> make_leaves(std::size_t n, std::uint64_t seed = 0) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(sha256("leaf-" + std::to_string(seed) + "-" + std::to_string(i)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasStableRoot) {
  MerkleTree a({}), b({});
  EXPECT_EQ(a.root(), b.root());
}

TEST(Merkle, SingleLeafProofVerifies) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_TRUE(MerkleTree::verify(leaves[0], tree.prove(0), tree.root()));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash256 original = MerkleTree::compute_root(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].bytes[0] ^= 0x01;
    EXPECT_NE(MerkleTree::compute_root(mutated), original) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  auto swapped = leaves;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(MerkleTree::compute_root(leaves), MerkleTree::compute_root(swapped));
}

TEST(Merkle, ProofFailsForWrongLeaf) {
  const auto leaves = make_leaves(6);
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(2);
  EXPECT_TRUE(MerkleTree::verify(leaves[2], proof, tree.root()));
  EXPECT_FALSE(MerkleTree::verify(leaves[3], proof, tree.root()));
}

TEST(Merkle, ProofFailsForTamperedStep) {
  const auto leaves = make_leaves(6);
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(4);
  proof[0].sibling.bytes[5] ^= 0xff;
  EXPECT_FALSE(MerkleTree::verify(leaves[4], proof, tree.root()));
}

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizes, AllProofsVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n, n);
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(leaves[i], tree.prove(i), tree.root())) << "leaf " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100));

// --- addresses --------------------------------------------------------------------------

TEST(Address, DeterministicPerNode) {
  EXPECT_EQ(address_for_node(NodeId{1}), address_for_node(NodeId{1}));
  EXPECT_NE(address_for_node(NodeId{1}), address_for_node(NodeId{2}));
}

TEST(Address, HexIs40Chars) { EXPECT_EQ(address_for_node(NodeId{9}).hex().size(), 40u); }

// --- authenticators ----------------------------------------------------------------------

TEST(Authenticator, VerifyAcceptsGenuineTag) {
  KeyRegistry keys(77);
  const Bytes payload = {9, 8, 7};
  const Authenticator auth =
      keys.authenticate(NodeId{1}, {NodeId{2}, NodeId{3}}, BytesView(payload.data(), payload.size()));
  EXPECT_TRUE(keys.verify(auth, NodeId{2}, BytesView(payload.data(), payload.size())));
  EXPECT_TRUE(keys.verify(auth, NodeId{3}, BytesView(payload.data(), payload.size())));
}

TEST(Authenticator, VerifyRejectsTamperedPayload) {
  KeyRegistry keys(77);
  const Bytes payload = {9, 8, 7};
  Bytes tampered = payload;
  tampered[0] ^= 1;
  const Authenticator auth =
      keys.authenticate(NodeId{1}, {NodeId{2}}, BytesView(payload.data(), payload.size()));
  EXPECT_FALSE(keys.verify(auth, NodeId{2}, BytesView(tampered.data(), tampered.size())));
}

TEST(Authenticator, VerifyRejectsWrongReceiver) {
  KeyRegistry keys(77);
  const Bytes payload = {1};
  const Authenticator auth =
      keys.authenticate(NodeId{1}, {NodeId{2}}, BytesView(payload.data(), payload.size()));
  EXPECT_FALSE(keys.verify(auth, NodeId{4}, BytesView(payload.data(), payload.size())));
}

TEST(Authenticator, DirectionalityMatters) {
  // A->B tag must not verify as a B->A tag even though the session key is
  // symmetric.
  KeyRegistry keys(77);
  const Bytes payload = {5, 5};
  Authenticator forward =
      keys.authenticate(NodeId{1}, {NodeId{2}}, BytesView(payload.data(), payload.size()));
  Authenticator reversed = forward;
  reversed.sender = NodeId{2};
  reversed.tags[0].receiver = NodeId{1};
  EXPECT_FALSE(keys.verify(reversed, NodeId{1}, BytesView(payload.data(), payload.size())));
}

TEST(Authenticator, SessionKeySymmetric) {
  KeyRegistry keys(123);
  EXPECT_EQ(keys.session_key(NodeId{3}, NodeId{9}), keys.session_key(NodeId{9}, NodeId{3}));
}

TEST(Authenticator, DifferentRegistrySeedsProduceDifferentKeys) {
  KeyRegistry a(1), b(2);
  EXPECT_NE(a.identity_key(NodeId{1}), b.identity_key(NodeId{1}));
}

TEST(Authenticator, WireSizeAccountsEntries) {
  KeyRegistry keys(1);
  const Bytes payload = {1};
  const Authenticator auth = keys.authenticate(
      NodeId{1}, {NodeId{2}, NodeId{3}, NodeId{4}}, BytesView(payload.data(), payload.size()));
  EXPECT_EQ(auth.wire_size(), 8 + 3 * 16u);
}

// --- HmacKey precomputed context --------------------------------------------------

// The context must be bit-identical to the one-shot function on the RFC 4231
// vectors (including the >block-size key, which exercises the key-hashing
// path in the pad precomputation).
TEST(HmacKey, MatchesOneShotOnRfc4231Vectors) {
  struct Vector {
    Bytes key;
    Bytes data;
  };
  const std::string jefe = "Jefe";
  const std::string nothing = "what do ya want for nothing?";
  const std::string long_key_data = "Test Using Larger Than Block-Size Key - Hash Key First";
  std::vector<Vector> vectors;
  vectors.push_back({Bytes(20, 0x0b), Bytes{'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'}});
  vectors.push_back({Bytes(jefe.begin(), jefe.end()), Bytes(nothing.begin(), nothing.end())});
  vectors.push_back({Bytes(20, 0xaa), Bytes(50, 0xdd)});
  vectors.push_back({Bytes(131, 0xaa), Bytes(long_key_data.begin(), long_key_data.end())});
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    const BytesView key(vectors[i].key.data(), vectors[i].key.size());
    const BytesView data(vectors[i].data.data(), vectors[i].data.size());
    EXPECT_EQ(HmacKey(key).mac(data), hmac_sha256(key, data)) << "vector " << i;
  }
}

TEST(HmacKey, MatchesOneShotAcrossKeyAndDataSizes) {
  // Key lengths straddling the SHA-256 block size (64) and data lengths
  // straddling its padding boundaries.
  for (const std::size_t key_len : {0u, 1u, 32u, 63u, 64u, 65u, 131u}) {
    const Bytes key(key_len, static_cast<std::uint8_t>(0x42 + key_len));
    const HmacKey ctx(BytesView(key.data(), key.size()));
    for (const std::size_t data_len : {0u, 1u, 55u, 56u, 64u, 65u, 300u}) {
      const Bytes data(data_len, static_cast<std::uint8_t>(data_len));
      const BytesView view(data.data(), data.size());
      EXPECT_EQ(ctx.mac(view), hmac_sha256(BytesView(key.data(), key.size()), view))
          << "key " << key_len << " data " << data_len;
    }
  }
}

TEST(HmacKey, ContextIsReusable) {
  // mac() clones the pad mid-states; the context itself never mutates, so
  // repeated calls (the whole point of the precomputation) stay identical.
  const Bytes key(32, 0x7f);
  const HmacKey ctx(BytesView(key.data(), key.size()));
  const Bytes data{1, 2, 3, 4};
  const Hash256 first = ctx.mac(BytesView(data.data(), data.size()));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctx.mac(BytesView(data.data(), data.size())), first);
  }
}

TEST(HmacKey, PartsStreamEqualsConcatenation) {
  const Bytes key(32, 0x11);
  const HmacKey ctx(BytesView(key.data(), key.size()));
  Bytes whole;
  for (std::size_t i = 0; i < 200; ++i) whole.push_back(static_cast<std::uint8_t>(i * 7));
  const Hash256 expected = ctx.mac(BytesView(whole.data(), whole.size()));
  for (const std::size_t split : {0u, 1u, 63u, 64u, 100u, 199u, 200u}) {
    const std::array<BytesView, 2> parts{BytesView(whole.data(), split),
                                         BytesView(whole.data() + split, whole.size() - split)};
    EXPECT_EQ(ctx.mac(std::span<const BytesView>(parts.data(), parts.size())), expected)
        << "split " << split;
  }
  // Degenerate streams: empty parts interleaved must not change the digest.
  const std::array<BytesView, 4> padded{BytesView(), BytesView(whole.data(), whole.size()),
                                        BytesView(), BytesView()};
  EXPECT_EQ(ctx.mac(std::span<const BytesView>(padded.data(), padded.size())), expected);
}

// --- streamed tag vs historical materialized input ----------------------------------

TEST(Authenticator, StreamedTagMatchesMaterializedInput) {
  // The seal hot path streams u64(sender) || varint(len) || payload into
  // the HMAC. This pins bit-compatibility against the historical code that
  // materialized that exact buffer per receiver — the goldens depend on it.
  KeyRegistry keys(2024);
  const NodeId sender{3};
  const NodeId receiver{11};
  for (const std::size_t len : {0u, 1u, 0x7fu, 0x80u, 300u}) {  // varint width changes at 0x80
    Bytes payload(len);
    for (std::size_t i = 0; i < len; ++i) payload[i] = static_cast<std::uint8_t>(i ^ len);

    Bytes materialized;
    std::uint64_t sender_le = sender.value;
    for (int i = 0; i < 8; ++i) {
      materialized.push_back(static_cast<std::uint8_t>(sender_le & 0xffu));
      sender_le >>= 8;
    }
    std::uint64_t v = len;
    while (v >= 0x80) {
      materialized.push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    materialized.push_back(static_cast<std::uint8_t>(v));
    materialized.insert(materialized.end(), payload.begin(), payload.end());

    const Hash256 reference = hmac_sha256(keys.session_key(sender, receiver).view(),
                                          BytesView(materialized.data(), materialized.size()));
    const std::array<BytesView, 1> parts{BytesView(payload.data(), payload.size())};
    const auto tag = keys.tag(sender, receiver, std::span<const BytesView>(parts.data(), 1));
    EXPECT_TRUE(std::equal(tag.begin(), tag.end(), reference.bytes.begin())) << "len " << len;
  }
}

TEST(Authenticator, MultiPartTagEqualsSinglePartTag) {
  KeyRegistry keys(55);
  Bytes body(96);
  for (std::size_t i = 0; i < body.size(); ++i) body[i] = static_cast<std::uint8_t>(i);
  const std::array<BytesView, 1> one{BytesView(body.data(), body.size())};
  const auto whole = keys.tag(NodeId{1}, NodeId{2}, std::span<const BytesView>(one.data(), 1));
  const std::array<BytesView, 3> three{BytesView(body.data(), 10), BytesView(body.data() + 10, 50),
                                       BytesView(body.data() + 60, 36)};
  const auto split = keys.tag(NodeId{1}, NodeId{2}, std::span<const BytesView>(three.data(), 3));
  EXPECT_EQ(whole, split);
}

// --- registry caches under concurrent access -----------------------------------------

TEST(Authenticator, RegistryIsConsistentUnderConcurrentDerivation) {
  // The parallel MAC plane shares one KeyRegistry across workers. Hammer
  // the identity/session caches from several threads on overlapping links;
  // every derived value must equal the serial one (cache contents are pure
  // functions of the seed — population order must not matter). Run under
  // the TSan CI leg, this is also the data-race probe for the caches.
  KeyRegistry keys(909);
  const Bytes payload = {1, 2, 3, 4, 5};
  const std::array<BytesView, 1> parts{BytesView(payload.data(), payload.size())};

  KeyRegistry serial(909);
  std::vector<std::array<std::uint8_t, 8>> expected;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    for (std::uint64_t r = 1; r <= 6; ++r) {
      if (s == r) continue;
      expected.push_back(serial.tag(NodeId{s}, NodeId{r}, std::span<const BytesView>(parts.data(), 1)));
    }
  }

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&keys, &parts, &expected, &mismatch]() {
      std::size_t idx = 0;
      for (std::uint64_t s = 1; s <= 6; ++s) {
        for (std::uint64_t r = 1; r <= 6; ++r) {
          if (s == r) continue;
          const auto tag = keys.tag(NodeId{s}, NodeId{r}, std::span<const BytesView>(parts.data(), 1));
          if (tag != expected[idx]) mismatch.store(true);
          ++idx;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace gpbft::crypto
