// Chaos engine tests: FaultPlan generation (determinism, fault budget,
// fault/heal pairing), the online InvariantMonitor's detectors, and the
// campaign driver's byte-identical reporting.
#include <gtest/gtest.h>

#include <set>

#include "ledger/block.hpp"
#include "sim/chaos.hpp"
#include "sim/deployment.hpp"
#include "sim/invariants.hpp"

namespace gpbft::sim {
namespace {

std::vector<NodeId> seven_nodes() {
  std::vector<NodeId> nodes;
  for (std::uint64_t i = 1; i <= 7; ++i) nodes.push_back(NodeId{i});
  return nodes;
}

// --- FaultPlan -----------------------------------------------------------------------

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  const ChaosProfile profile = ChaosProfile::heavy();
  const Duration horizon = Duration::seconds(60);
  const FaultPlan a = FaultPlan::random(123, profile, seven_nodes(), horizon);
  const FaultPlan b = FaultPlan::random(123, profile, seven_nodes(), horizon);
  const FaultPlan c = FaultPlan::random(124, profile, seven_nodes(), horizon);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
  EXPECT_EQ(a.events().size(), b.events().size());
}

TEST(FaultPlan, BudgetRespectedAndEveryFaultHealed) {
  // Walk every generated timeline tracking the concurrently-faulty set:
  // crashed + Byzantine + partitioned-away must never exceed max_faulty,
  // and every fault family must be healed by the end of the plan.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosProfile profile = ChaosProfile::heavy();
    profile.max_faulty = 2;
    const FaultPlan plan =
        FaultPlan::random(seed, profile, seven_nodes(), Duration::seconds(60));

    std::set<std::uint64_t> crashed;
    std::set<std::uint64_t> byzantine;
    std::set<std::uint64_t> partitioned;
    std::set<std::pair<std::uint64_t, std::uint64_t>> degraded_links;
    std::set<std::uint64_t> browned_out;
    for (const ChaosEvent& event : plan.events()) {
      switch (event.kind) {
        case ChaosEvent::Kind::Crash:
          for (const NodeId id : event.nodes) crashed.insert(id.value);
          break;
        case ChaosEvent::Kind::Recover:
          for (const NodeId id : event.nodes) crashed.erase(id.value);
          break;
        case ChaosEvent::Kind::Byzantine:
          for (const NodeId id : event.nodes) byzantine.insert(id.value);
          break;
        case ChaosEvent::Kind::ByzantineHeal:
          for (const NodeId id : event.nodes) byzantine.erase(id.value);
          break;
        case ChaosEvent::Kind::Partition:
          for (const NodeId id : event.nodes) partitioned.insert(id.value);
          break;
        case ChaosEvent::Kind::Heal:
          partitioned.clear();
          break;
        case ChaosEvent::Kind::LinkFault:
          degraded_links.insert({event.nodes.at(0).value, event.nodes.at(1).value});
          break;
        case ChaosEvent::Kind::LinkClear:
          degraded_links.erase({event.nodes.at(0).value, event.nodes.at(1).value});
          break;
        case ChaosEvent::Kind::Brownout:
          for (const NodeId id : event.nodes) browned_out.insert(id.value);
          break;
        case ChaosEvent::Kind::BrownoutClear:
          for (const NodeId id : event.nodes) browned_out.erase(id.value);
          break;
        case ChaosEvent::Kind::Restart:
        case ChaosEvent::Kind::DiskFault:
          break;  // durability events are instantaneous; nothing to heal
        default:
          break;  // attack/tamper families never consume the fault budget
      }
      // The hard budget: concurrently crashed + Byzantine + partitioned.
      std::set<std::uint64_t> faulty = crashed;
      faulty.insert(byzantine.begin(), byzantine.end());
      faulty.insert(partitioned.begin(), partitioned.end());
      ASSERT_LE(faulty.size(), profile.max_faulty)
          << "seed " << seed << " at " << event.describe();
    }
    // Every fault family healed by the end of the plan.
    EXPECT_TRUE(crashed.empty()) << "seed " << seed;
    EXPECT_TRUE(byzantine.empty()) << "seed " << seed;
    EXPECT_TRUE(partitioned.empty()) << "seed " << seed;
    EXPECT_TRUE(degraded_links.empty()) << "seed " << seed;
    EXPECT_TRUE(browned_out.empty()) << "seed " << seed;
    if (!plan.events().empty()) {
      EXPECT_EQ(plan.all_healed_at().ns, plan.events().back().at.ns);
      EXPECT_LE(plan.all_healed_at().ns, Duration::seconds(60).ns);
    }
  }
}

TEST(FaultPlan, GeneratesRestartAndDiskFaultEvents) {
  ChaosProfile profile = ChaosProfile::light();
  profile.restart_chance = 0.5;
  profile.disk_fault_chance = 0.5;
  profile.max_faulty = 2;
  const FaultPlan plan = FaultPlan::random(11, profile, seven_nodes(), Duration::seconds(60));
  std::size_t restarts = 0;
  std::size_t disk_faults = 0;
  for (const ChaosEvent& event : plan.events()) {
    if (event.kind == ChaosEvent::Kind::Restart) ++restarts;
    if (event.kind == ChaosEvent::Kind::DiskFault) ++disk_faults;
  }
  EXPECT_GT(restarts, 0u);
  EXPECT_GT(disk_faults, 0u);
  EXPECT_EQ(plan.describe(),
            FaultPlan::random(11, profile, seven_nodes(), Duration::seconds(60)).describe());
}

TEST(ChaosEvent, DescribeIsStable) {
  EXPECT_EQ(ChaosEvent::crash(TimePoint{Duration::seconds(12).ns}, NodeId{3}).describe(),
            "t=12.000s crash node 3");
  EXPECT_EQ(ChaosEvent::heal(TimePoint{Duration::millis(500).ns}).describe(),
            "t=0.500s heal partition");
}

// --- InvariantMonitor ----------------------------------------------------------------

ledger::Transaction client_tx(std::uint64_t client, RequestId request) {
  return ledger::make_normal_tx(NodeId{kClientIdBase + client}, request, Bytes{1, 2, 3}, Amount{1},
                                geo::GeoReport{});
}

ledger::Block block_at(Height height, std::vector<ledger::Transaction> txs,
                       std::uint8_t salt = 0) {
  ledger::BlockHeader prev;
  prev.height = height - 1;
  prev.prev_hash.bytes[0] = salt;  // differentiates hashes of rival blocks
  return ledger::build_block(prev, std::move(txs), EraId{0}, ViewId{0}, SeqNum{height},
                             TimePoint{}, NodeId{1});
}

TEST(InvariantMonitor, DetectsAgreementViolation) {
  net::Simulator sim(1);
  InvariantMonitor monitor(sim);
  const ledger::Transaction tx = client_tx(1, 1);
  monitor.expect_submission(tx);

  monitor.on_executed(NodeId{1}, block_at(1, {tx}, 0));
  monitor.on_executed(NodeId{2}, block_at(1, {}, 1));  // rival block, same height

  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].kind, Violation::Kind::Agreement);
  EXPECT_EQ(monitor.violations()[0].node, NodeId{2});
  EXPECT_FALSE(monitor.clean());
}

TEST(InvariantMonitor, IgnoresFaultyNodesForAgreement) {
  net::Simulator sim(1);
  InvariantMonitor monitor(sim);
  monitor.set_faulty(NodeId{2}, true);
  monitor.on_executed(NodeId{1}, block_at(1, {}, 0));
  monitor.on_executed(NodeId{2}, block_at(1, {}, 1));  // Byzantine divergence: excluded
  EXPECT_TRUE(monitor.clean());

  monitor.set_faulty(NodeId{2}, false);
  monitor.on_executed(NodeId{2}, block_at(2, {}, 1));
  monitor.on_executed(NodeId{1}, block_at(2, {}, 0));  // now it counts again
  EXPECT_FALSE(monitor.clean());
}

TEST(InvariantMonitor, DetectsUnsubmittedTransaction) {
  net::Simulator sim(1);
  InvariantMonitor monitor(sim);
  monitor.on_executed(NodeId{1}, block_at(1, {client_tx(1, 99)}));
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].kind, Violation::Kind::Validity);
}

TEST(InvariantMonitor, DetectsDuplicateExecution) {
  net::Simulator sim(1);
  InvariantMonitor monitor(sim);
  const ledger::Transaction tx = client_tx(1, 1);
  monitor.expect_submission(tx);
  monitor.on_executed(NodeId{1}, block_at(1, {tx}));
  monitor.on_executed(NodeId{1}, block_at(2, {tx}));  // same tx at a new height
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].kind, Violation::Kind::DuplicateExecution);
}

TEST(InvariantMonitor, DetectsMissedLivenessDeadline) {
  net::Simulator sim(1);
  InvariantMonitor monitor(sim);
  monitor.check_bounded_liveness(5, 10, TimePoint{}, Duration::seconds(30));
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].kind, Violation::Kind::Liveness);

  net::Simulator sim2(1);
  InvariantMonitor satisfied(sim2);
  satisfied.check_bounded_liveness(10, 10, TimePoint{}, Duration::seconds(30));
  EXPECT_TRUE(satisfied.clean());
}

TEST(InvariantMonitor, ViolationCarriesFaultContext) {
  net::Simulator sim(1);
  InvariantMonitor monitor(sim);
  monitor.note_fault("t=1.000s crash node 2");
  monitor.on_executed(NodeId{1}, block_at(1, {}, 0));
  monitor.on_executed(NodeId{3}, block_at(1, {}, 1));
  ASSERT_FALSE(monitor.clean());
  EXPECT_NE(monitor.report().find("crash node 2"), std::string::npos);
}

// --- campaign ------------------------------------------------------------------------

TEST(ChaosCampaign, SummaryIsByteIdenticalAcrossRuns) {
  ChaosCampaignOptions options;
  options.seeds = 2;
  options.intensities = {"medium"};
  const ChaosCampaignResult first = run_chaos_campaign(options);
  const ChaosCampaignResult second = run_chaos_campaign(options);
  EXPECT_EQ(first.summary(), second.summary());
  EXPECT_EQ(first.failed_runs(), 0u);
  ASSERT_EQ(first.runs.size(), 8u);  // 2 seeds x {pbft, gpbft, dbft, pow}
  for (const ChaosRunResult& run : first.runs) {
    EXPECT_TRUE(run.passed()) << run.protocol << " seed " << run.seed;
    EXPECT_EQ(run.committed, run.expected);
    EXPECT_GT(run.blocks_checked, 0u);
  }
}

TEST(ChaosCampaign, RestartAndDiskFaultSweepIsGreenAndDeterministic) {
  // The headline durability claim: a campaign that crash–restarts nodes from
  // their simulated disks and corrupts those disks mid-run stays green across
  // every protocol stack, and reruns byte-identically under the same seeds.
  ChaosCampaignOptions options;
  options.seeds = 2;
  options.intensities = {"medium"};
  options.restart_chance = 0.25;
  options.disk_fault_chance = 0.2;
  const ChaosCampaignResult first = run_chaos_campaign(options);
  const ChaosCampaignResult second = run_chaos_campaign(options);
  EXPECT_EQ(first.summary(), second.summary());
  EXPECT_EQ(first.failed_runs(), 0u);
  ASSERT_EQ(first.runs.size(), 8u);  // 2 seeds x {pbft, gpbft, dbft, pow}
  std::uint64_t restarts = 0;
  for (const ChaosRunResult& run : first.runs) {
    EXPECT_TRUE(run.passed()) << run.protocol << " seed " << run.seed;
    EXPECT_EQ(run.committed, run.expected) << run.protocol << " seed " << run.seed;
    restarts += run.restarts;
  }
  EXPECT_GT(restarts, 0u);  // the sweep actually exercised restart recovery
}

TEST(ChaosCampaign, SingleProtocolSelection) {
  // The campaign sweeps exactly the protocols asked for, in order.
  ChaosCampaignOptions options;
  options.seeds = 1;
  options.intensities = {"light"};
  options.protocols = {ProtocolKind::Dbft, ProtocolKind::Pow};
  const ChaosCampaignResult result = run_chaos_campaign(options);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.runs[0].protocol, "dbft");
  EXPECT_EQ(result.runs[1].protocol, "pow");
  EXPECT_EQ(result.failed_runs(), 0u);
}

}  // namespace
}  // namespace gpbft::sim
