// Era-switch edge cases: forged halts, lead failure mid-switch, cancelled
// switches, and ordering of transactions queued across a switch.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/deployment.hpp"
#include "sim/invariants.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

using ::gpbft::gpbft::Role;

GpbftClusterConfig edge_config(std::size_t nodes, std::size_t committee) {
  GpbftClusterConfig config;
  config.nodes = nodes;
  config.initial_committee = committee;
  config.clients = 1;
  config.seed = 41;
  config.protocol.genesis.era_period = Duration::seconds(10);
  config.protocol.genesis.geo_report_period = Duration::seconds(2);
  config.protocol.genesis.geo_window = Duration::seconds(10);
  config.protocol.genesis.min_geo_reports = 2;
  config.protocol.genesis.promotion_threshold = Duration::seconds(15);
  config.protocol.pbft.request_timeout = Duration::seconds(6);
  config.protocol.pbft.view_change_timeout = Duration::seconds(5);
  return config;
}

ledger::Transaction tx_from(GpbftCluster& cluster, RequestId request) {
  return make_workload_tx(cluster.client(0).id(), request, cluster.placement().position(0),
                          cluster.simulator().now(), 16, 10, request);
}

TEST(EraEdge, ForgedHaltFromNonLeadIgnored) {
  // Only the current lead may halt the committee (§III-E). A halt signed by
  // a backup endorser is discarded: ordering continues uninterrupted.
  GpbftClusterConfig config = edge_config(4, 4);
  config.protocol.genesis.era_period = Duration::seconds(1000);  // no real switches
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(1));

  // Endorser 2 (not the lead) broadcasts a forged ERA-HALT.
  const NodeId forger = cluster.endorser(1).id();
  ASSERT_NE(cluster.endorser(0).primary_of(0), forger);
  pbft::EraHaltMsg halt;
  halt.closing_era = 0;
  halt.sender = forger;
  const Bytes body = halt.encode();
  for (std::size_t i = 0; i < 4; ++i) {
    if (cluster.endorser(i).id() == forger) continue;
    net::Envelope envelope;
    envelope.from = forger;
    envelope.to = cluster.endorser(i).id();
    envelope.type = pbft::msg_type::kEraHalt;
    envelope.payload = pbft::seal(cluster.keys(), forger, cluster.endorser(i).id(),
                                  pbft::msg_type::kEraHalt,
                                  BytesView(body.data(), body.size()), true);
    cluster.network().send(std::move(envelope));
  }
  cluster.run_for(Duration::seconds(1));

  // Transactions still commit promptly: nobody halted.
  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(3));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(EraEdge, LeadCrashMidSwitchResumesViaFailsafe) {
  // The lead halts the committee and dies before proposing the config
  // block; the halt failsafe (and the view change) restore ordering.
  GpbftClusterConfig config = edge_config(6, 4);
  GpbftCluster cluster(config);
  cluster.start();

  // Run to just before the first era boundary, then kill the lead so the
  // ERA-HALT goes out but the configuration block never follows.
  const NodeId lead = cluster.endorser(0).primary_of(0);
  cluster.run_for(Duration::millis(10'020));  // halt broadcast at t=10
  cluster.network().crash(lead);

  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(40));

  // The system recovered: the transaction committed under a new primary.
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(EraEdge, LeadCrashMidSwitchUnderLossKeepsRosterConsistent) {
  // The lead dies right as the era-switch halt goes out, while the network
  // drops 5% of all traffic. The view change must still complete (the
  // transaction commits under a new primary) and every surviving active
  // endorser must agree on the era and the production order — checked both
  // explicitly and by the online invariant monitor (agreement + roster).
  GpbftClusterConfig config = edge_config(6, 4);
  config.net.drop_rate = 0.05;
  GpbftCluster cluster(config);

  InvariantMonitor monitor(cluster.simulator());
  cluster.watch(monitor);
  cluster.start();

  const NodeId lead = cluster.endorser(0).primary_of(0);
  cluster.run_for(Duration::millis(10'020));  // halt broadcast at t=10
  cluster.network().crash(lead);
  monitor.note_fault("lead " + lead.str() + " crashed mid-switch, drop_rate=0.05");

  const ledger::Transaction tx = tx_from(cluster, 1);
  monitor.expect_submission(tx);
  cluster.client(0).submit(tx);
  cluster.run_for(Duration::seconds(60));

  // Liveness: the view change completed and the transaction committed.
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);

  // Roster consistency on the survivors: same era, same producer order.
  const gpbft::Endorser* reference = nullptr;
  for (std::size_t i = 0; i < cluster.endorser_count(); ++i) {
    const auto& endorser = cluster.endorser(i);
    if (endorser.id() == lead || endorser.role() != Role::Active) continue;
    if (reference == nullptr) {
      reference = &endorser;
      continue;
    }
    EXPECT_EQ(endorser.era(), reference->era()) << "endorser " << i;
    EXPECT_EQ(endorser.producer_order(), reference->producer_order()) << "endorser " << i;
  }
  ASSERT_NE(reference, nullptr);
  EXPECT_TRUE(monitor.clean()) << monitor.report();
  EXPECT_GT(monitor.blocks_checked(), 0u);
}

TEST(EraEdge, UnchangedMembershipCancelsSwitch) {
  // With no candidates and a stable committee, every era boundary cancels:
  // the era number never advances, and ordering pauses only briefly.
  GpbftClusterConfig config = edge_config(4, 4);
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(35));  // three boundaries

  EXPECT_EQ(cluster.era(), 0u);
  EXPECT_EQ(cluster.total_era_switches(), 0u);
  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(3));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(EraEdge, TransactionsQueuedDuringSwitchCommitAfterConfigBlock) {
  // Submissions landing inside the switch window are deferred; the chain
  // must contain the era-1 configuration block before those transactions.
  GpbftClusterConfig config = edge_config(6, 4);
  GpbftCluster cluster(config);
  cluster.start();

  // Land the submissions inside the switch window: the halt goes out at the
  // t=20 boundary and the configuration block follows after the settle
  // delay, so requests at t=20.02 find every endorser halted.
  cluster.run_for(Duration::millis(20'020));
  for (RequestId r = 1; r <= 3; ++r) cluster.client(0).submit(tx_from(cluster, r));
  cluster.run_for(Duration::seconds(10));

  ASSERT_EQ(cluster.client(0).committed_count(), 3u);
  ASSERT_GE(cluster.era(), 1u);

  // Locate the configuration block and the workload transactions.
  const auto& chain = cluster.endorser(0).chain();
  Height config_height = 0;
  Height first_tx_height = 0;
  for (Height h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions) {
      if (tx.kind == ledger::TxKind::Config && config_height == 0) config_height = h;
      if (tx.sender == cluster.client(0).id() && first_tx_height == 0) first_tx_height = h;
    }
  }
  ASSERT_GT(config_height, 0u);
  ASSERT_GT(first_tx_height, 0u);
  EXPECT_LT(config_height, first_tx_height)
      << "queued transactions must commit after the switch's config block";
}

TEST(EraEdge, PromotedRosterOrderSharedByAllMembers) {
  GpbftClusterConfig config = edge_config(7, 4);
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(35));
  ASSERT_EQ(cluster.committee_size(), 7u);

  const auto& reference = cluster.endorser(0).producer_order();
  for (std::size_t i = 1; i < cluster.endorser_count(); ++i) {
    if (cluster.endorser(i).role() != Role::Active) continue;
    EXPECT_EQ(cluster.endorser(i).producer_order(), reference) << "endorser " << i;
  }
}

TEST(EraEdge, EnrolledCellsTravelOnChain) {
  // After a promotion, the chain's latest configuration transaction carries
  // a cell for every member — the enrolled-location record (DESIGN.md §3).
  GpbftClusterConfig config = edge_config(6, 4);
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(35));
  ASSERT_GE(cluster.era(), 1u);

  const ledger::EraConfig latest = cluster.endorser(0).chain().current_era_config();
  ASSERT_EQ(latest.endorsers.size(), 6u);
  ASSERT_EQ(latest.cells.size(), latest.endorsers.size());
  for (std::size_t i = 0; i < latest.endorsers.size(); ++i) {
    EXPECT_FALSE(latest.cells[i].empty()) << "member " << latest.endorsers[i].str();
    // The enrolled cell matches the device's actual placement.
    const std::size_t index = latest.endorsers[i].value - 1;
    EXPECT_EQ(latest.cells[i],
              geo::geohash_encode(cluster.placement().position(index)))
        << "member " << latest.endorsers[i].str();
  }
}

}  // namespace
}  // namespace gpbft::sim
