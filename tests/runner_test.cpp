// OrderedRunner unit tests: the sequencer under the parallel MAC plane.
//
// The contract under test is the dsnet ordered-runner model: prologues run
// concurrently on workers, epilogues run on the releasing thread strictly
// in submission order — no matter how the workers' completions interleave.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/workers.hpp"

namespace gpbft::net {
namespace {

TEST(OrderedRunner, EpiloguesReleaseInSubmissionOrder) {
  OrderedRunner runner(5);  // 4 workers
  ASSERT_EQ(runner.worker_count(), 4u);

  // Earlier tickets sleep longer, so workers complete roughly in *reverse*
  // submission order; the release order must still be 0,1,2,...,N-1.
  constexpr int kTasks = 32;
  std::vector<int> released;
  released.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    runner.submit([i, &released]() -> OrderedRunner::Epilogue {
      std::this_thread::sleep_for(std::chrono::microseconds((kTasks - i) * 50));
      return [i, &released]() { released.push_back(i); };
    });
  }
  runner.drain();

  ASSERT_EQ(released.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(released[static_cast<std::size_t>(i)], i);
}

TEST(OrderedRunner, PartialReleaseStopsAtTheRequestedTicket) {
  OrderedRunner runner(3);
  std::vector<int> released;
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(runner.submit([i, &released]() -> OrderedRunner::Epilogue {
      return [i, &released]() { released.push_back(i); };
    }));
  }
  EXPECT_EQ(tickets.front(), 1u);  // tickets are 1-based and dense
  EXPECT_EQ(tickets.back(), 8u);

  runner.release_until(tickets[2]);
  EXPECT_EQ(released, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(runner.released(), 3u);

  // Releasing an already-released ticket is a no-op.
  runner.release_until(tickets[1]);
  EXPECT_EQ(released.size(), 3u);

  runner.drain();
  EXPECT_EQ(released, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(OrderedRunner, DestructorDrainsInFlightWork) {
  std::atomic<int> epilogues_run{0};
  std::atomic<int> prologues_run{0};
  {
    OrderedRunner runner(4);
    for (int i = 0; i < 24; ++i) {
      runner.submit([&prologues_run, &epilogues_run]() -> OrderedRunner::Epilogue {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        prologues_run.fetch_add(1);
        return [&epilogues_run]() { epilogues_run.fetch_add(1); };
      });
    }
    // No explicit drain: destruction must finish every prologue and release
    // every epilogue before joining the workers.
  }
  EXPECT_EQ(prologues_run.load(), 24);
  EXPECT_EQ(epilogues_run.load(), 24);
}

TEST(OrderedRunner, ZeroTaskShutdownIsClean) {
  {
    OrderedRunner runner(8);
    EXPECT_EQ(runner.submitted(), 0u);
    EXPECT_EQ(runner.released(), 0u);
  }  // must not hang or crash
  {
    OrderedRunner runner(8);
    runner.drain();  // drain with nothing submitted is a no-op
  }
  SUCCEED();
}

TEST(OrderedRunner, InlineModeRunsEverythingAtReleaseInOrder) {
  // threads <= 1: no workers. Submitted prologues stay queued until the
  // releasing thread help-steals them, so prologue AND epilogue both run at
  // release time, on the caller, in ticket order — the ordering contract is
  // thread-count-blind.
  OrderedRunner runner(1);
  EXPECT_EQ(runner.worker_count(), 0u);

  bool prologue_ran = false;
  std::vector<int> released;
  runner.submit([&prologue_ran, &released]() -> OrderedRunner::Epilogue {
    prologue_ran = true;
    return [&released]() { released.push_back(0); };
  });
  EXPECT_FALSE(prologue_ran);     // deferred to release
  EXPECT_TRUE(released.empty());

  runner.submit([&released]() -> OrderedRunner::Epilogue {
    return [&released]() { released.push_back(1); };
  });
  runner.drain();
  EXPECT_TRUE(prologue_ran);
  EXPECT_EQ(released, (std::vector<int>{0, 1}));
}

TEST(OrderedRunner, RingWrapForcesOldestReleasesFirst) {
  // More unreleased tickets than the ring holds: submit() frees the oldest
  // slots itself (it runs on the releasing thread), so ordering survives a
  // wrap and nothing is dropped.
  OrderedRunner runner(1);
  constexpr int kTasks = 10000;  // > kRingSize
  std::vector<int> released;
  released.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    runner.submit([i, &released]() -> OrderedRunner::Epilogue {
      return [i, &released]() { released.push_back(i); };
    });
  }
  runner.drain();
  ASSERT_EQ(released.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) ASSERT_EQ(released[static_cast<std::size_t>(i)], i);
}

TEST(OrderedRunner, NullEpiloguesAreSkipped) {
  OrderedRunner runner(2);
  std::vector<int> released;
  runner.submit([]() -> OrderedRunner::Epilogue { return nullptr; });
  runner.submit([&released]() -> OrderedRunner::Epilogue {
    return [&released]() { released.push_back(1); };
  });
  runner.drain();
  EXPECT_EQ(released, (std::vector<int>{1}));
  EXPECT_EQ(runner.released(), 2u);
}

TEST(OrderedRunner, ReleaseBlocksOnStragglers) {
  OrderedRunner runner(2);
  std::atomic<bool> slow_done{false};
  runner.submit([&slow_done]() -> OrderedRunner::Epilogue {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    slow_done.store(true);
    return nullptr;
  });
  const std::uint64_t fast = runner.submit([]() -> OrderedRunner::Epilogue { return nullptr; });
  // Releasing the *second* ticket must wait for the first (slow) prologue:
  // order is by submission, not completion.
  runner.release_until(fast);
  EXPECT_TRUE(slow_done.load());
  EXPECT_EQ(runner.released(), 2u);
}

}  // namespace
}  // namespace gpbft::net
