// Batched request pipeline + per-client reply cache (label: tier1-batch).
//
// Covers the four contracts of docs/protocol.md §11:
//   * batch.size=1 reproduces the unbatched seed pipeline byte-for-byte
//     (tips cross-checked against perf_parity_test's golden constants);
//   * retransmissions of executed requests are answered from the client
//     table without re-consensus (chain height frozen);
//   * the cached-reply path survives a primary view change (the table is
//     rebuilt from execution, not view-local state);
//   * full-close beats timeout-close deterministically, and batched runs
//     replay byte-identically from a seed.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "crypto/sha256.hpp"
#include "sim/deployment.hpp"
#include "sim/scenario.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

/// perf_parity_test's PBFT golden scenario (tip pinned there and in
/// scenario_test); batch knobs layered on top by each test.
ScenarioSpec pbft_golden_spec() {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = 42;
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;
  return spec;
}

ScenarioSpec gpbft_golden_spec() {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Gpbft;
  spec.nodes = 6;
  spec.clients = 2;
  spec.seed = 7;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 6;
  spec.committee.era_period = Duration::seconds(15);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;
  return spec;
}

struct RunOutcome {
  std::string tip;
  std::string metrics_sha256;
  std::uint64_t committed{0};
  std::uint64_t closed_full{0};
  std::uint64_t closed_timeout{0};
  std::uint64_t batch_observations{0};
};

RunOutcome run_spec(const ScenarioSpec& spec, Duration horizon = Duration{}) {
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->start();
  LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  if (horizon.ns > 0) {
    deployment->run_for(horizon);
  } else {
    deployment->run_until_committed(spec.workload.txs_per_client,
                                    TimePoint{Duration::seconds(300).ns});
  }
  deployment->stop();
  deployment->finalize_telemetry();

  RunOutcome out;
  out.committed = deployment->committed_count();
  if (auto* pbft = dynamic_cast<PbftCluster*>(deployment.get())) {
    out.tip = pbft->replica(0).chain().tip().hash().hex();
  } else if (auto* gpbft = dynamic_cast<GpbftCluster*>(deployment.get())) {
    out.tip = gpbft->endorser(0).chain().tip().hash().hex();
  }
  const obs::Registry& reg = deployment->telemetry().metrics();
  out.metrics_sha256 = crypto::sha256(reg.to_jsonl()).hex();
  out.closed_full = reg.counter_total("pbft.batch.closed_full");
  out.closed_timeout = reg.counter_total("pbft.batch.closed_timeout");
  out.batch_observations = reg.histogram_total("pbft.batch.txs").count;
  return out;
}

// --- batch.size=1 equivalence ---------------------------------------------------

TEST(BatchPipeline, SizeOneReproducesPbftSeedGolden) {
  ScenarioSpec spec = pbft_golden_spec();
  spec.batch.size = 1;
  // At size 1 the close timer is never armed, so the timeout must be inert:
  // an aggressive value must not perturb a single byte of the run.
  spec.batch.timeout = Duration::millis(1);
  const RunOutcome out = run_spec(spec);
  EXPECT_EQ(out.committed, 8u);
  EXPECT_EQ(out.tip, "68086af0d716cdecdc16dd24bd2c5c5a353ce8958358e0e12e321500564f84ed");
  EXPECT_EQ(out.closed_full, 0u);
  EXPECT_EQ(out.closed_timeout, 0u);
  EXPECT_EQ(out.batch_observations, 0u);  // batch telemetry is gated off at size 1
}

TEST(BatchPipeline, SizeOneReproducesGpbftSeedGolden) {
  ScenarioSpec spec = gpbft_golden_spec();
  spec.batch.size = 1;
  spec.batch.timeout = Duration::millis(1);
  const RunOutcome out = run_spec(spec, Duration::seconds(60));
  EXPECT_EQ(out.committed, 8u);
  EXPECT_EQ(out.tip, "540d7bde3eab76203c96355ea7b35f686f91d6889e98e6071db233bc81b98894");
  EXPECT_EQ(out.closed_timeout, 0u);
}

// --- close policy ----------------------------------------------------------------

TEST(BatchPipeline, FullCloseWinsWhenBatchFillsBeforeTimeout) {
  ScenarioSpec spec = pbft_golden_spec();
  spec.clients = 4;
  spec.workload.txs_per_client = 1;
  spec.workload.stagger = Duration::millis(1);  // near-simultaneous arrivals
  spec.batch.size = 4;
  spec.batch.timeout = Duration::seconds(10);  // would lose every race here
  const RunOutcome out = run_spec(spec);
  EXPECT_EQ(out.committed, 4u);
  EXPECT_GE(out.closed_full, 1u);
  EXPECT_EQ(out.closed_timeout, 0u);
  EXPECT_GE(out.batch_observations, 1u);
}

TEST(BatchPipeline, TimeoutClosesAStarvedBatch) {
  ScenarioSpec spec = pbft_golden_spec();
  spec.clients = 1;
  spec.workload.txs_per_client = 1;  // the batch can never fill
  spec.batch.size = 4;
  spec.batch.timeout = Duration::millis(100);
  const RunOutcome out = run_spec(spec);
  EXPECT_EQ(out.committed, 1u);  // the request still commits, just later
  EXPECT_EQ(out.closed_full, 0u);
  EXPECT_GE(out.closed_timeout, 1u);
}

TEST(BatchPipeline, BatchedRunsReplayByteIdentically) {
  ScenarioSpec spec = pbft_golden_spec();
  spec.clients = 6;
  spec.workload.txs_per_client = 4;
  spec.batch.size = 8;
  spec.batch.timeout = Duration::millis(250);
  const RunOutcome first = run_spec(spec);
  const RunOutcome second = run_spec(spec);
  EXPECT_EQ(first.committed, 24u);
  EXPECT_EQ(first.tip, second.tip);
  EXPECT_EQ(first.metrics_sha256, second.metrics_sha256);
  EXPECT_EQ(first.closed_full, second.closed_full);
  EXPECT_EQ(first.closed_timeout, second.closed_timeout);
}

// --- client-table reply cache ----------------------------------------------------

std::unique_ptr<PbftCluster> four_replica_cluster(Duration request_timeout) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 4;
  spec.clients = 1;
  spec.seed = 11;
  spec.engine.request_timeout = request_timeout;
  spec.engine.view_change_timeout = Duration::seconds(5);
  return make_pbft_deployment(spec);
}

TEST(ClientTable, RetryStormIsServedFromCacheWithoutReconsensus) {
  auto cluster = four_replica_cluster(Duration::seconds(20));
  cluster->start();
  cluster->client(0).set_retry_interval(Duration{0});

  const ledger::Transaction tx =
      make_workload_tx(cluster->client(0).id(), 1, cluster->placement().position(0),
                       cluster->simulator().now(), 32, 10, 0);
  cluster->client(0).submit(tx);
  ASSERT_TRUE(cluster->run_until_committed(1, TimePoint{Duration::seconds(60).ns}));
  const Height height_after_commit = cluster->replica(0).chain().height();

  // A retry storm: the device re-sends the identical transaction three
  // times (e.g. its replies were lost). Every replica must answer from the
  // client table; none may run another three-phase instance for it.
  for (int storm = 0; storm < 3; ++storm) {
    cluster->client(0).submit(tx);
    cluster->run_for(Duration::seconds(2));
  }
  cluster->stop();

  EXPECT_EQ(cluster->replica(0).chain().height(), height_after_commit);
  const obs::Registry& reg = cluster->telemetry().metrics();
  // 4 replicas x 3 retransmissions, minus any instance still in flight.
  EXPECT_GE(reg.counter_total("pbft.client_table.hits"), 3u);
  // The replica-side table remembers the executed request for this sender.
  const pbft::ClientTable::Entry* entry =
      cluster->replica(1).client_table().find(cluster->client(0).id());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->last_digest, tx.digest());
  EXPECT_EQ(entry->last_height, height_after_commit);
}

TEST(ClientTable, CachedReplySurvivesPrimaryViewChange) {
  auto cluster = four_replica_cluster(Duration::seconds(5));
  cluster->start();
  cluster->client(0).set_retry_interval(Duration{0});

  const ledger::Transaction tx1 =
      make_workload_tx(cluster->client(0).id(), 1, cluster->placement().position(0),
                       cluster->simulator().now(), 32, 10, 0);
  cluster->client(0).submit(tx1);
  ASSERT_TRUE(cluster->run_until_committed(1, TimePoint{Duration::seconds(60).ns}));
  const Height height_after_tx1 = cluster->replica(0).chain().height();

  // Crash the view-0 primary; the next request forces a view change and
  // commits under the new primary.
  cluster->network().crash(NodeId{1});
  const ledger::Transaction tx2 =
      make_workload_tx(cluster->client(0).id(), 2, cluster->placement().position(0),
                       cluster->simulator().now(), 32, 10, 0);
  cluster->client(0).submit(tx2);
  ASSERT_TRUE(cluster->run_until_committed(2, TimePoint{Duration::seconds(120).ns}));
  const Height height_after_tx2 = cluster->replica(1).chain().height();
  EXPECT_GT(height_after_tx2, height_after_tx1);

  // Replay both executed requests after the view change. tx2 is the
  // sender's newest request, so the new view answers it from the client
  // table's fast path; tx1 was displaced by tx2 and falls through to the
  // chain-index reply cache. Neither may trigger re-consensus.
  const std::uint64_t commits_before_replay = cluster->client(0).committed_count();
  cluster->client(0).submit(tx2);
  cluster->run_for(Duration::seconds(2));
  cluster->client(0).submit(tx1);
  cluster->run_for(Duration::seconds(5));
  cluster->stop();

  EXPECT_EQ(cluster->replica(1).chain().height(), height_after_tx2);
  EXPECT_GE(cluster->telemetry().metrics().counter_total("pbft.client_table.hits"), 1u);
  // f+1 matching cached replies re-complete the requests on the client.
  EXPECT_GT(cluster->client(0).committed_count(), commits_before_replay);
}

}  // namespace
}  // namespace gpbft::sim
