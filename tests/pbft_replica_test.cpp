// PBFT protocol behaviour: three-phase commit, batching, fault tolerance,
// view changes, checkpoints, partitions, and safety invariants.
#include <gtest/gtest.h>

#include "sim/deployment.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

PbftClusterConfig small_cluster(std::size_t replicas, std::size_t clients = 1) {
  PbftClusterConfig config;
  config.replicas = replicas;
  config.clients = clients;
  config.seed = 42;
  config.pbft.request_timeout = Duration::seconds(8);
  config.pbft.view_change_timeout = Duration::seconds(6);
  return config;
}

ledger::Transaction tx_from(PbftCluster& cluster, std::size_t client_index, RequestId request) {
  return make_workload_tx(cluster.client(client_index).id(), request,
                          cluster.placement().position(client_index),
                          cluster.simulator().now(), 16, 10, request);
}

void expect_identical_chains(PbftCluster& cluster) {
  // Baseline: the first replica that is still alive.
  std::size_t base = 0;
  while (base < cluster.replica_count() &&
         cluster.network().is_crashed(cluster.replica(base).id())) {
    ++base;
  }
  ASSERT_LT(base, cluster.replica_count());
  const crypto::Hash256 tip = cluster.replica(base).chain().tip().hash();
  const Height height = cluster.replica(base).chain().height();
  for (std::size_t i = base + 1; i < cluster.replica_count(); ++i) {
    if (cluster.network().is_crashed(cluster.replica(i).id())) continue;
    EXPECT_EQ(cluster.replica(i).chain().height(), height) << "replica " << i;
    EXPECT_EQ(cluster.replica(i).chain().tip().hash(), tip) << "replica " << i;
  }
}

TEST(PbftReplica, CommitsSingleTransaction) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  bool committed = false;
  Height committed_height = 0;
  cluster.client(0).set_commit_callback(
      [&](const crypto::Hash256&, Height h, Duration) {
        committed = true;
        committed_height = h;
      });
  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(5));

  EXPECT_TRUE(committed);
  EXPECT_EQ(committed_height, 1u);
  EXPECT_EQ(cluster.replica(0).chain().height(), 1u);
  expect_identical_chains(cluster);
}

TEST(PbftReplica, CommitsAcrossAllReplicas) {
  PbftCluster cluster(small_cluster(7));
  cluster.start();
  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(5));

  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(cluster.replica(i).chain().height(), 1u) << "replica " << i;
    EXPECT_EQ(cluster.replica(i).state().applied_transactions(), 1u);
  }
  expect_identical_chains(cluster);
}

TEST(PbftReplica, BatchesMultipleTransactions) {
  PbftClusterConfig config = small_cluster(4);
  config.pbft.max_batch_size = 8;
  PbftCluster cluster(config);
  cluster.start();

  // Submit five transactions in one burst: the primary should pack them
  // into very few blocks.
  for (RequestId r = 1; r <= 5; ++r) cluster.client(0).submit(tx_from(cluster, 0, r));
  cluster.run_for(Duration::seconds(10));

  EXPECT_EQ(cluster.client(0).committed_count(), 5u);
  EXPECT_LE(cluster.replica(0).chain().height(), 2u);
  EXPECT_EQ(cluster.replica(0).state().applied_transactions(), 5u);
}

TEST(PbftReplica, DuplicateSubmissionCommitsOnce) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  const ledger::Transaction tx = tx_from(cluster, 0, 1);
  cluster.client(0).submit(tx);
  cluster.run_for(Duration::seconds(3));
  cluster.client(0).submit(tx);  // duplicate after commit
  cluster.run_for(Duration::seconds(3));

  EXPECT_EQ(cluster.replica(0).state().applied_transactions(), 1u);
  EXPECT_EQ(cluster.replica(0).chain().height(), 1u);
}

TEST(PbftReplica, ToleratesFSilentBackups) {
  // n = 7 tolerates f = 2 silent replicas.
  PbftCluster cluster(small_cluster(7));
  cluster.start();
  cluster.replica(3).set_fault_mode(pbft::FaultMode::Silent);
  cluster.replica(5).set_fault_mode(pbft::FaultMode::Silent);

  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(5));

  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_EQ(cluster.replica(0).chain().height(), 1u);
}

TEST(PbftReplica, HaltsBeyondFSilentBackups) {
  // n = 4 tolerates f = 1; two silent backups break liveness (but the
  // remaining replicas never commit anything wrong).
  PbftCluster cluster(small_cluster(4));
  cluster.start();
  cluster.replica(2).set_fault_mode(pbft::FaultMode::Silent);
  cluster.replica(3).set_fault_mode(pbft::FaultMode::Silent);

  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(30));

  EXPECT_EQ(cluster.client(0).committed_count(), 0u);
  EXPECT_EQ(cluster.replica(0).chain().height(), 0u);
  EXPECT_EQ(cluster.replica(1).chain().height(), 0u);
}

TEST(PbftReplica, ToleratesEquivocatingBackup) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();
  cluster.replica(2).set_fault_mode(pbft::FaultMode::EquivocateDigest);

  for (RequestId r = 1; r <= 3; ++r) {
    cluster.client(0).submit(tx_from(cluster, 0, r));
    cluster.run_for(Duration::seconds(3));
  }

  EXPECT_EQ(cluster.client(0).committed_count(), 3u);
  // Honest replicas agree.
  EXPECT_EQ(cluster.replica(0).chain().tip().hash(), cluster.replica(1).chain().tip().hash());
  EXPECT_EQ(cluster.replica(0).chain().tip().hash(), cluster.replica(3).chain().tip().hash());
}

TEST(PbftReplica, ViewChangeOnCrashedPrimary) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  // View 0's primary is the lowest id (committee sorted): replica(0).
  const NodeId primary = cluster.replica(0).primary_of(0);
  ASSERT_EQ(primary, cluster.replica(0).id());
  cluster.network().crash(primary);

  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(40));  // timeout (8 s) + view change + commit

  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_GE(cluster.replica(1).view(), 1u);
  EXPECT_GE(cluster.replica(1).completed_view_changes(), 1u);
  EXPECT_EQ(cluster.replica(1).chain().height(), 1u);
  EXPECT_EQ(cluster.replica(2).chain().tip().hash(), cluster.replica(1).chain().tip().hash());
}

TEST(PbftReplica, SurvivesSuccessiveViewChanges) {
  // Crash the primaries of views 0 and 1: the protocol must escalate to
  // view 2 and still commit (n = 7, f = 2).
  PbftCluster cluster(small_cluster(7));
  cluster.start();
  cluster.network().crash(cluster.replica(0).primary_of(0));
  cluster.network().crash(cluster.replica(0).primary_of(1));

  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(120));

  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_GE(cluster.replica(2).view(), 2u);
  expect_identical_chains(cluster);
}

TEST(PbftReplica, CommitsResumeAfterViewChange) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  // First commit normally, then crash the primary and commit again.
  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(5));
  ASSERT_EQ(cluster.client(0).committed_count(), 1u);

  cluster.network().crash(cluster.replica(0).id());
  cluster.client(0).submit(tx_from(cluster, 0, 2));
  cluster.run_for(Duration::seconds(40));

  EXPECT_EQ(cluster.client(0).committed_count(), 2u);
  EXPECT_EQ(cluster.replica(1).chain().height(), 2u);
}

TEST(PbftReplica, CheckpointAdvancesAndGarbageCollects) {
  PbftClusterConfig config = small_cluster(4);
  config.pbft.checkpoint_interval = 4;
  config.pbft.max_batch_size = 1;  // one block per transaction
  PbftCluster cluster(config);
  cluster.start();

  for (RequestId r = 1; r <= 9; ++r) {
    cluster.client(0).submit(tx_from(cluster, 0, r));
    cluster.run_for(Duration::seconds(2));
  }

  EXPECT_EQ(cluster.client(0).committed_count(), 9u);
  EXPECT_EQ(cluster.replica(0).chain().height(), 9u);
  // Two checkpoints (at 4 and 8) must have stabilised.
  EXPECT_EQ(cluster.replica(0).stable_checkpoint(), 8u);
  EXPECT_EQ(cluster.replica(3).stable_checkpoint(), 8u);
}

TEST(PbftReplica, NoQuorumAcrossPartition) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  // 2-2 split: neither side has 2f+1 = 3.
  cluster.network().partition(
      {{cluster.replica(0).id(), cluster.replica(1).id(), cluster.client(0).id()},
       {cluster.replica(2).id(), cluster.replica(3).id()}});

  const ledger::Transaction tx = tx_from(cluster, 0, 1);
  cluster.client(0).submit(tx);
  cluster.run_for(Duration::seconds(20));

  EXPECT_EQ(cluster.client(0).committed_count(), 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cluster.replica(i).chain().height(), 0u);

  // Heal and resubmit the same transaction so the minority side learns it:
  // progress resumes, the duplicate is deduplicated, no divergence.
  cluster.network().heal_partition();
  cluster.client(0).submit(tx);
  cluster.run_for(Duration::seconds(40));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_EQ(cluster.replica(0).state().applied_transactions(), 1u);
  expect_identical_chains(cluster);
}

TEST(PbftReplica, MajorityPartitionKeepsCommitting) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  // 3-1 split: the majority side retains quorum.
  cluster.network().partition(
      {{cluster.replica(0).id(), cluster.replica(1).id(), cluster.replica(2).id(),
        cluster.client(0).id()},
       {cluster.replica(3).id()}});

  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(10));

  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_EQ(cluster.replica(0).chain().height(), 1u);
  EXPECT_EQ(cluster.replica(3).chain().height(), 0u);  // isolated replica lags

  cluster.network().heal_partition();
}

TEST(PbftReplica, QuorumArithmetic) {
  for (const std::size_t n : {4u, 7u, 10u, 13u, 22u, 40u}) {
    PbftCluster cluster(small_cluster(n, 0));
    EXPECT_EQ(cluster.replica(0).faults_tolerated(), (n - 1) / 3) << "n=" << n;
  }
}

TEST(PbftReplica, PrimaryRotatesRoundRobin) {
  PbftCluster cluster(small_cluster(4, 0));
  const auto committee = cluster.committee();
  for (ViewId v = 0; v < 8; ++v) {
    EXPECT_EQ(cluster.replica(0).primary_of(v), committee[v % committee.size()]);
  }
}

TEST(PbftReplica, ClientNeedsQuorumOfReplies) {
  // A single faulty replica cannot convince the client: with n = 4 the
  // client needs f+1 = 2 matching replies, so one spoofed reply (here
  // simulated by a run where nothing commits) yields no commit callback.
  PbftCluster cluster(small_cluster(4));
  cluster.start();
  cluster.replica(0).set_fault_mode(pbft::FaultMode::Silent);
  cluster.replica(1).set_fault_mode(pbft::FaultMode::Silent);
  cluster.replica(2).set_fault_mode(pbft::FaultMode::Silent);
  // Only replica 3 is alive; even if it were malicious it alone cannot
  // produce f+1 replies.
  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(15));
  EXPECT_EQ(cluster.client(0).committed_count(), 0u);
}

TEST(PbftReplica, MempoolDrainsAfterCommit) {
  PbftCluster cluster(small_cluster(4));
  cluster.start();
  for (RequestId r = 1; r <= 4; ++r) cluster.client(0).submit(tx_from(cluster, 0, r));
  cluster.run_for(Duration::seconds(10));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.replica(i).mempool_size(), 0u) << "replica " << i;
  }
}

TEST(PbftReplica, LaggingReplicaSyncsMissedBlocks) {
  // A replica that was down while the committee committed blocks catches up
  // through the chain-sync sub-protocol once it observes newer COMMITs.
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  cluster.network().crash(cluster.replica(3).id());
  for (RequestId r = 1; r <= 3; ++r) {
    cluster.client(0).submit(tx_from(cluster, 0, r));
    cluster.run_for(Duration::seconds(2));
  }
  ASSERT_EQ(cluster.replica(0).chain().height(), 3u);
  ASSERT_EQ(cluster.replica(3).chain().height(), 0u);

  cluster.network().recover(cluster.replica(3).id());
  // New traffic gives the lagging replica commit evidence to sync from.
  cluster.client(0).submit(tx_from(cluster, 0, 4));
  cluster.run_for(Duration::seconds(20));

  EXPECT_EQ(cluster.replica(3).chain().height(), 4u);
  EXPECT_EQ(cluster.replica(3).chain().tip().hash(), cluster.replica(0).chain().tip().hash());
  EXPECT_EQ(cluster.replica(3).state().applied_transactions(), 4u);
}

TEST(PbftReplica, SyncResponderCapsBatch) {
  // The sync responder sends at most 64 blocks per response; a deeply
  // lagging replica converges over several rounds.
  PbftClusterConfig config = small_cluster(4);
  config.pbft.max_batch_size = 1;
  config.pbft.checkpoint_interval = 1000;  // keep the whole log
  PbftCluster cluster(config);
  cluster.start();

  cluster.network().crash(cluster.replica(3).id());
  for (RequestId r = 1; r <= 70; ++r) cluster.client(0).submit(tx_from(cluster, 0, r));
  cluster.run_for(Duration::seconds(60));
  ASSERT_EQ(cluster.replica(0).chain().height(), 70u);

  cluster.network().recover(cluster.replica(3).id());
  cluster.client(0).submit(tx_from(cluster, 0, 71));
  cluster.run_for(Duration::seconds(30));

  EXPECT_EQ(cluster.replica(3).chain().height(), 71u);
  EXPECT_EQ(cluster.replica(3).chain().tip().hash(), cluster.replica(0).chain().tip().hash());
}

TEST(PbftReplica, ReplyCacheAnswersRetransmissions) {
  // A client that lost every REPLY still completes: resubmitting an
  // already-committed transaction is answered from the executed state.
  PbftCluster cluster(small_cluster(4));
  cluster.start();

  const ledger::Transaction tx = tx_from(cluster, 0, 1);
  // Block all replica->client links so the first round of replies is lost.
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.network().block_link(cluster.replica(i).id(), cluster.client(0).id());
  }
  cluster.client(0).submit(tx);
  cluster.run_for(Duration::seconds(5));
  ASSERT_EQ(cluster.replica(0).chain().height(), 1u);  // committed...
  ASSERT_EQ(cluster.client(0).committed_count(), 0u);  // ...but unseen

  for (std::size_t i = 0; i < 4; ++i) {
    cluster.network().unblock_link(cluster.replica(i).id(), cluster.client(0).id());
  }
  cluster.client(0).submit(tx);  // retransmission
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_EQ(cluster.replica(0).state().applied_transactions(), 1u);  // not re-executed
}

TEST(PbftReplica, ClientRetransmitsAutomatically) {
  PbftClusterConfig config = small_cluster(4);
  PbftCluster cluster(config);
  cluster.start();
  cluster.client(0).set_retry_interval(Duration::seconds(5));

  // Lose the entire first submission (all links client->replicas blocked).
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.network().block_link(cluster.client(0).id(), cluster.replica(i).id());
  }
  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(2));
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.network().unblock_link(cluster.client(0).id(), cluster.replica(i).id());
  }
  // No manual resubmission: the retry tick must deliver it.
  cluster.run_for(Duration::seconds(15));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(PbftReplica, StragglerSyncsFromViewChangeEvidence) {
  // A replica that slept through commits learns it is behind from the
  // last_executed field of view-change traffic and catches up.
  PbftClusterConfig config = small_cluster(4);
  config.pbft.request_timeout = Duration::seconds(8);
  PbftCluster cluster(config);
  cluster.start();

  cluster.network().crash(cluster.replica(3).id());
  for (RequestId r = 1; r <= 3; ++r) {
    cluster.client(0).submit(tx_from(cluster, 0, r));
    cluster.run_for(Duration::seconds(2));
  }
  ASSERT_EQ(cluster.replica(0).chain().height(), 3u);

  cluster.network().recover(cluster.replica(3).id());
  // Crash the primary: the resulting view change carries last_executed=3,
  // which replica 3 (still at height 0) uses to sync.
  cluster.network().crash(cluster.replica(0).id());
  cluster.client(0).submit(tx_from(cluster, 0, 4));
  cluster.run_for(Duration::seconds(60));

  EXPECT_EQ(cluster.replica(3).chain().height(), 4u);
  EXPECT_EQ(cluster.replica(3).chain().tip().hash(), cluster.replica(1).chain().tip().hash());
}

TEST(PbftReplica, CorruptProposalsRejectedAndPrimaryReplaced) {
  PbftClusterConfig config = small_cluster(4);
  config.pbft.request_timeout = Duration::seconds(6);
  config.pbft.view_change_timeout = Duration::seconds(5);
  PbftCluster cluster(config);
  cluster.start();
  // View-0 primary proposes blocks whose Merkle root lies about the body.
  cluster.replica(0).set_fault_mode(pbft::FaultMode::CorruptProposals);

  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(40));

  // Honest backups never accepted the corrupt proposal; the view change
  // replaced the primary and the request committed under its successor.
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  EXPECT_GE(cluster.replica(1).view(), 1u);
  EXPECT_EQ(cluster.replica(1).chain().height(), 1u);
  for (Height h = 1; h <= cluster.replica(1).chain().height(); ++h) {
    const auto& block = cluster.replica(1).chain().at(h);
    EXPECT_EQ(block.header.merkle_root, block.compute_merkle_root());
  }
}

TEST(PbftReplica, LargerCommitteeStillCommits) {
  PbftCluster cluster(small_cluster(13));
  cluster.start();
  cluster.client(0).submit(tx_from(cluster, 0, 1));
  cluster.run_for(Duration::seconds(10));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  expect_identical_chains(cluster);
}

}  // namespace
}  // namespace gpbft::sim
