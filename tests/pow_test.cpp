// PoW substrate tests: difficulty targets, block validation, fork choice,
// orphan handling, and end-to-end mining on the simulated network.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "pow/miner.hpp"
#include "pow/pow_chain.hpp"

namespace gpbft::pow {
namespace {

ledger::Transaction sample_tx(std::uint64_t sender, RequestId request) {
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  return ledger::make_normal_tx(NodeId{sender}, request, Bytes{1, 2, 3}, 5, report);
}

constexpr std::uint64_t kProof = 64;  // tiny grind for tests

PowBlock child_of(const PowBlock& parent, std::uint64_t difficulty, NodeId miner,
                  std::vector<ledger::Transaction> txs = {}, std::uint64_t nonce_seed = 0) {
  PowBlock block;
  block.header.height = parent.header.height + 1;
  block.header.prev_hash = parent.hash();
  block.header.difficulty = difficulty;
  block.header.timestamp = TimePoint{parent.header.timestamp.ns + 1};
  block.header.miner = miner;
  block.transactions = std::move(txs);
  return mine_block(std::move(block), kProof, nonce_seed);
}

// --- difficulty --------------------------------------------------------------

TEST(PowDifficulty, DifficultyOneAcceptsEverything) {
  crypto::Hash256 all_ones;
  all_ones.bytes.fill(0xff);
  EXPECT_TRUE(hash_meets_difficulty(all_ones, 1));
  EXPECT_TRUE(hash_meets_difficulty(crypto::Hash256{}, 1));
}

TEST(PowDifficulty, HigherDifficultyIsStricter) {
  // Count how many of 4096 trial hashes meet each target: acceptance rate
  // should fall roughly as 1/difficulty.
  int hits_16 = 0, hits_256 = 0;
  for (int i = 0; i < 4096; ++i) {
    const crypto::Hash256 h = crypto::sha256("trial-" + std::to_string(i));
    if (hash_meets_difficulty(h, 16)) ++hits_16;
    if (hash_meets_difficulty(h, 256)) ++hits_256;
  }
  EXPECT_NEAR(hits_16, 4096 / 16, 80);
  EXPECT_NEAR(hits_256, 4096 / 256, 24);
  EXPECT_GT(hits_16, hits_256);
}

TEST(PowDifficulty, MineBlockSatisfiesTarget) {
  const PowBlock genesis = make_pow_genesis(1'000'000, kProof);
  EXPECT_TRUE(hash_meets_difficulty(genesis.hash(), kProof));
  EXPECT_EQ(genesis.header.difficulty, 1'000'000u);
}

// --- block encoding -----------------------------------------------------------

TEST(PowBlock, EncodeDecodeRoundtrip) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  const PowBlock block = child_of(genesis, 100, NodeId{3}, {sample_tx(1, 1), sample_tx(2, 1)});
  const Bytes encoded = block.encode();
  const auto decoded = PowBlock::decode(BytesView(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), block);
  EXPECT_EQ(decoded.value().hash(), block.hash());
}

TEST(PowBlock, DecodeRejectsGarbage) {
  const Bytes junk{1, 2, 3};
  EXPECT_FALSE(PowBlock::decode(BytesView(junk.data(), junk.size())).ok());
}

// --- chain / fork choice ---------------------------------------------------------

TEST(PowChain, ExtendsAndTracksWork) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);
  EXPECT_EQ(chain.tip_height(), 0u);

  const PowBlock b1 = child_of(genesis, 100, NodeId{1});
  auto added = chain.add_block(b1);
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(added.value());  // tip changed
  EXPECT_EQ(chain.tip_height(), 1u);
  EXPECT_EQ(chain.best_work(), 200u);
}

TEST(PowChain, RejectsInvalidProof) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);
  PowBlock bad = child_of(genesis, 100, NodeId{1});
  bad.header.nonce += 1;  // breaks the ground proof (with high probability)
  if (hash_meets_difficulty(bad.hash(), kProof)) GTEST_SKIP();  // got lucky
  EXPECT_FALSE(chain.add_block(bad).ok());
}

TEST(PowChain, RejectsBadMerkleRoot) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);
  PowBlock bad = child_of(genesis, 100, NodeId{1}, {sample_tx(1, 1)});
  bad.transactions.push_back(sample_tx(2, 2));
  EXPECT_FALSE(chain.add_block(bad).ok());
}

TEST(PowChain, EqualLengthSiblingsFirstSeenStays) {
  // With consensus-fixed difficulty, equal-length branches carry equal
  // work: the first-seen tip is kept (no gratuitous reorgs).
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);

  const PowBlock first = child_of(genesis, 100, NodeId{1});
  const PowBlock second = child_of(genesis, 100, NodeId{2}, {}, 555);
  ASSERT_TRUE(chain.add_block(first).ok());
  ASSERT_TRUE(chain.add_block(second).ok());
  EXPECT_EQ(chain.tip().header.miner, NodeId{1});
  EXPECT_EQ(chain.stale_count(), 1u);
}

TEST(PowChain, RejectsWrongConsensusDifficulty) {
  // Difficulty is consensus state: a miner cannot self-declare a different
  // target (neither lower to mine faster, nor higher to fake extra work).
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);
  EXPECT_FALSE(chain.add_block(child_of(genesis, 50, NodeId{1})).ok());
  EXPECT_FALSE(chain.add_block(child_of(genesis, 300, NodeId{1})).ok());
  EXPECT_TRUE(chain.add_block(child_of(genesis, 100, NodeId{1})).ok());
}

TEST(PowChain, LongerChainBeatsShorter) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);

  const PowBlock a1 = child_of(genesis, 100, NodeId{1});
  ASSERT_TRUE(chain.add_block(a1).ok());

  const PowBlock b1 = child_of(genesis, 100, NodeId{2}, {}, 777);
  const PowBlock b2 = child_of(b1, 100, NodeId{2});
  ASSERT_TRUE(chain.add_block(b1).ok());
  EXPECT_EQ(chain.tip().hash(), a1.hash());  // tie: first seen stays
  ASSERT_TRUE(chain.add_block(b2).ok());
  EXPECT_EQ(chain.tip_height(), 2u);
  EXPECT_EQ(chain.tip().hash(), b2.hash());
}

TEST(PowChain, OrphanConnectsWhenParentArrives) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);

  const PowBlock b1 = child_of(genesis, 100, NodeId{1});
  const PowBlock b2 = child_of(b1, 100, NodeId{1});

  auto orphan_first = chain.add_block(b2);  // parent unknown yet
  ASSERT_TRUE(orphan_first.ok());
  EXPECT_FALSE(orphan_first.value());
  EXPECT_EQ(chain.pending_orphans(), 1u);
  EXPECT_EQ(chain.tip_height(), 0u);

  auto parent = chain.add_block(b1);
  ASSERT_TRUE(parent.ok());
  EXPECT_TRUE(parent.value());
  EXPECT_EQ(chain.tip_height(), 2u);  // orphan auto-connected
  EXPECT_EQ(chain.pending_orphans(), 0u);
}

TEST(PowChain, ConfirmationDepthTracksBestChain) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);

  const ledger::Transaction tx = sample_tx(1, 1);
  const PowBlock b1 = child_of(genesis, 100, NodeId{1}, {tx});
  ASSERT_TRUE(chain.add_block(b1).ok());
  EXPECT_EQ(chain.confirmation_depth(tx.digest()), 0u);

  const PowBlock b2 = child_of(b1, 100, NodeId{1});
  ASSERT_TRUE(chain.add_block(b2).ok());
  EXPECT_EQ(chain.confirmation_depth(tx.digest()), 1u);

  EXPECT_FALSE(chain.confirmation_depth(sample_tx(9, 9).digest()).has_value());
}

TEST(PowChain, ReorgRemovesUnconfirmedTransaction) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);

  const ledger::Transaction tx = sample_tx(1, 1);
  const PowBlock a1 = child_of(genesis, 100, NodeId{1}, {tx});
  ASSERT_TRUE(chain.add_block(a1).ok());
  ASSERT_TRUE(chain.confirmation_depth(tx.digest()).has_value());

  // A longer empty branch orphans the transaction's block.
  const PowBlock b1 = child_of(genesis, 100, NodeId{2}, {}, 999);
  const PowBlock b2 = child_of(b1, 100, NodeId{2});
  ASSERT_TRUE(chain.add_block(b1).ok());
  ASSERT_TRUE(chain.add_block(b2).ok());
  EXPECT_EQ(chain.tip().hash(), b2.hash());
  EXPECT_FALSE(chain.confirmation_depth(tx.digest()).has_value());
}

TEST(PowChain, ReorgDeltasListConnectedAndDisconnectedBlocks) {
  const PowBlock genesis = make_pow_genesis(100, kProof);
  PowChain chain(genesis, kProof);

  // Plain extension: only the connected leg fills.
  const PowBlock a1 = child_of(genesis, 100, NodeId{1});
  ASSERT_TRUE(chain.add_block(a1).ok());
  ASSERT_EQ(chain.last_connected().size(), 1u);
  EXPECT_EQ(chain.last_connected()[0], a1.hash());
  EXPECT_TRUE(chain.last_disconnected().empty());

  // Equal-length sibling: tip unmoved, both legs empty.
  const PowBlock b1 = child_of(genesis, 100, NodeId{2}, {}, 999);
  ASSERT_TRUE(chain.add_block(b1).ok());
  EXPECT_TRUE(chain.last_connected().empty());
  EXPECT_TRUE(chain.last_disconnected().empty());

  // The sibling's branch overtakes: a1 leaves, b1+b2 join (ancestor→tip).
  const PowBlock b2 = child_of(b1, 100, NodeId{2});
  ASSERT_TRUE(chain.add_block(b2).ok());
  ASSERT_EQ(chain.last_connected().size(), 2u);
  EXPECT_EQ(chain.last_connected()[0], b1.hash());
  EXPECT_EQ(chain.last_connected()[1], b2.hash());
  ASSERT_EQ(chain.last_disconnected().size(), 1u);
  EXPECT_EQ(chain.last_disconnected()[0], a1.hash());
}

// --- difficulty retargeting ---------------------------------------------------------

PowBlock timed_child(const PowBlock& parent, const PowChain& chain, Duration gap,
                     NodeId miner = NodeId{1}) {
  PowBlock block;
  block.header.height = parent.header.height + 1;
  block.header.prev_hash = parent.hash();
  block.header.difficulty = chain.next_difficulty(parent.hash());
  block.header.timestamp = parent.header.timestamp + gap;
  block.header.miner = miner;
  return mine_block(std::move(block), kProof);
}

TEST(PowRetarget, RaisesDifficultyWhenBlocksTooFast) {
  RetargetConfig rule;
  rule.interval = 4;
  rule.target_block_time = Duration::seconds(10);
  const PowBlock genesis = make_pow_genesis(1'000'000, kProof);
  PowChain chain(genesis, kProof, rule);

  // Blocks arriving every 2 s against a 10 s target: at the boundary the
  // difficulty rises by ~5x, clamped to the 4x maximum.
  PowBlock tip = genesis;
  for (int i = 0; i < 3; ++i) {
    tip = timed_child(tip, chain, Duration::seconds(2));
    ASSERT_TRUE(chain.add_block(tip).ok());
  }
  const std::uint64_t next = chain.next_difficulty(tip.hash());
  EXPECT_EQ(next, 4'000'000u);  // clamped at 4x
  // And the chain enforces exactly that on the boundary block.
  const PowBlock boundary = timed_child(tip, chain, Duration::seconds(2));
  EXPECT_EQ(boundary.header.difficulty, 4'000'000u);
  EXPECT_TRUE(chain.add_block(boundary).ok());
}

TEST(PowRetarget, LowersDifficultyWhenBlocksTooSlow) {
  RetargetConfig rule;
  rule.interval = 4;
  rule.target_block_time = Duration::seconds(10);
  const PowBlock genesis = make_pow_genesis(1'000'000, kProof);
  PowChain chain(genesis, kProof, rule);

  PowBlock tip = genesis;
  for (int i = 0; i < 3; ++i) {
    tip = timed_child(tip, chain, Duration::seconds(20));  // 2x slower
    ASSERT_TRUE(chain.add_block(tip).ok());
  }
  const std::uint64_t next = chain.next_difficulty(tip.hash());
  EXPECT_NEAR(static_cast<double>(next), 500'000.0, 5'000.0);  // halved
}

TEST(PowRetarget, NoChangeOffBoundary) {
  RetargetConfig rule;
  rule.interval = 8;
  const PowBlock genesis = make_pow_genesis(1'000'000, kProof);
  PowChain chain(genesis, kProof, rule);
  PowBlock tip = timed_child(genesis, chain, Duration::seconds(1));
  ASSERT_TRUE(chain.add_block(tip).ok());
  EXPECT_EQ(chain.next_difficulty(tip.hash()), 1'000'000u);  // height 2: not a boundary
}

TEST(PowRetarget, MinersAdaptToHashrateLoss) {
  // 8 miners with retargeting; half crash mid-run. After the next retarget
  // the difficulty drops, restoring the block interval despite the lost
  // hashrate.
  net::Simulator sim(29);
  net::Network network(sim, net::NetConfig{});
  MinerConfig config;
  config.hashrate = 1e6;
  config.difficulty = 8e6 * 5;  // 5 s blocks with 8 miners
  config.proof_difficulty = kProof;
  RetargetConfig rule;
  rule.interval = 8;
  rule.target_block_time = Duration::seconds(5);
  config.retarget = rule;
  const PowBlock genesis = make_pow_genesis(config.difficulty, kProof);

  std::vector<NodeId> ids;
  for (std::uint64_t i = 1; i <= 8; ++i) ids.push_back(NodeId{i});
  std::vector<std::unique_ptr<Miner>> miners;
  for (NodeId id : ids) {
    miners.push_back(std::make_unique<Miner>(id, ids, genesis, config, network));
  }
  for (auto& miner : miners) miner->start();

  sim.run_until(TimePoint{Duration::seconds(120).ns});
  const std::uint64_t difficulty_before =
      miners[0]->chain().tip().header.difficulty;

  for (std::uint64_t i = 5; i <= 8; ++i) network.crash(NodeId{i});  // half the hashrate gone
  sim.run_until(TimePoint{Duration::seconds(600).ns});
  for (auto& miner : miners) miner->stop();

  const std::uint64_t difficulty_after = miners[0]->chain().tip().header.difficulty;
  EXPECT_LT(difficulty_after, difficulty_before);
  // The chain kept growing after the crash (liveness restored by retarget).
  EXPECT_GT(miners[0]->chain().tip_height(), 30u);
}

// --- simulated mining -----------------------------------------------------------

TEST(PowMining, NetworkConvergesAndConfirms) {
  net::Simulator sim(11);
  net::NetConfig net_config;
  net_config.processing_rate_msgs_per_sec = 10'000;
  net::Network network(sim, net_config);

  MinerConfig config;
  config.hashrate = 1e6;
  config.difficulty = 4'000'000;  // ~4 s per block solo, ~1 s with 4 miners
  config.confirmation_depth = 2;
  config.proof_difficulty = kProof;
  const PowBlock genesis = make_pow_genesis(config.difficulty, kProof);

  std::vector<NodeId> ids;
  for (std::uint64_t i = 1; i <= 4; ++i) ids.push_back(NodeId{i});
  std::vector<std::unique_ptr<Miner>> miners;
  for (NodeId id : ids) {
    miners.push_back(std::make_unique<Miner>(id, ids, genesis, config, network));
  }
  for (auto& miner : miners) miner->start();

  bool confirmed = false;
  Duration confirm_latency{};
  miners[0]->set_confirmed_callback([&](const crypto::Hash256&, Duration latency) {
    confirmed = true;
    confirm_latency = latency;
  });
  miners[0]->submit(sample_tx(50, 1));
  // The tx must also reach other miners (gossip of txs modeled via direct
  // submission to all, as harness clients do).
  for (std::size_t i = 1; i < miners.size(); ++i) miners[i]->submit(sample_tx(50, 1));

  sim.run_until(TimePoint{Duration::seconds(120).ns});
  for (auto& miner : miners) miner->stop();

  EXPECT_TRUE(confirmed);
  EXPECT_GT(confirm_latency.to_seconds(), 1.0);  // multiple block times
  // All miners converge on one best chain.
  const crypto::Hash256 tip = miners[0]->chain().tip_hash();
  for (auto& miner : miners) {
    EXPECT_GE(miner->chain().tip_height() + 1, miners[0]->chain().tip_height());
  }
  (void)tip;
  // Energy was spent: hashes accumulated at the configured rate.
  EXPECT_GT(miners[0]->hashes_computed(), 1e6);
}

TEST(PowMining, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    net::Simulator sim(seed);
    net::Network network(sim, net::NetConfig{});
    MinerConfig config;
    config.difficulty = 2'000'000;
    config.proof_difficulty = kProof;
    const PowBlock genesis = make_pow_genesis(config.difficulty, kProof);
    std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
    Miner a(NodeId{1}, ids, genesis, config, network);
    Miner b(NodeId{2}, ids, genesis, config, network);
    a.start();
    b.start();
    sim.run_until(TimePoint{Duration::seconds(30).ns});
    a.stop();
    b.stop();
    return a.chain().tip_hash();
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

}  // namespace
}  // namespace gpbft::pow
