// Geo substrate tests: GeoPoint/haversine, geohash vectors and properties,
// Crypto-Spatial Coordinates, and the election table (Table II semantics).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "crypto/address.hpp"
#include "geo/csc.hpp"
#include "geo/election_table.hpp"
#include "geo/geohash.hpp"
#include "geo/geopoint.hpp"

namespace gpbft::geo {
namespace {

// --- GeoPoint ------------------------------------------------------------------

TEST(GeoPoint, Validity) {
  EXPECT_TRUE((GeoPoint{0, 0}).valid());
  EXPECT_TRUE((GeoPoint{-90, -180}).valid());
  EXPECT_TRUE((GeoPoint{90, 179.999}).valid());
  EXPECT_FALSE((GeoPoint{90.1, 0}).valid());
  EXPECT_FALSE((GeoPoint{0, 180.0}).valid());
  EXPECT_FALSE((GeoPoint{0, -180.1}).valid());
}

TEST(GeoPoint, HaversineZeroForSamePoint) {
  const GeoPoint p{22.3964, 114.1095};
  EXPECT_DOUBLE_EQ(haversine_meters(p, p), 0.0);
}

TEST(GeoPoint, HaversineKnownDistance) {
  // Hong Kong <-> Wuhan: about 915 km.
  const GeoPoint hk{22.3964, 114.1095};
  const GeoPoint wuhan{30.5928, 114.3055};
  EXPECT_NEAR(haversine_meters(hk, wuhan) / 1000.0, 911.0, 10.0);
}

TEST(GeoPoint, HaversineSymmetric) {
  const GeoPoint a{10, 20}, b{-5, 60};
  EXPECT_DOUBLE_EQ(haversine_meters(a, b), haversine_meters(b, a));
}

TEST(GeoPoint, HaversineOneDegreeLatitude) {
  const GeoPoint a{0, 0}, b{1, 0};
  EXPECT_NEAR(haversine_meters(a, b), 111'195.0, 200.0);
}

TEST(GeoPoint, SameLocationSubMeter) {
  const GeoPoint a{22.3964, 114.1095};
  const GeoPoint b{22.396400001, 114.109500001};  // ~0.1 mm away
  EXPECT_TRUE(same_location(a, b));
  const GeoPoint c{22.3965, 114.1095};  // ~11 m away
  EXPECT_FALSE(same_location(a, c));
}

// --- geohash ---------------------------------------------------------------------

TEST(Geohash, KnownVectors) {
  // Reference vectors from the original geohash.org implementation.
  EXPECT_EQ(geohash_encode(GeoPoint{57.64911, 10.40744}, 11), "u4pruydqqvj");
  EXPECT_EQ(geohash_encode(GeoPoint{42.6, -5.6}, 5), "ezs42");
  EXPECT_EQ(geohash_encode(GeoPoint{-25.382708, -49.265506}, 8), "6gkzwgjz");
}

TEST(Geohash, DecodeContainsOriginal) {
  const GeoPoint p{22.3964, 114.1095};
  for (int precision = 1; precision <= 12; ++precision) {
    const auto box = geohash_decode(geohash_encode(p, precision));
    ASSERT_TRUE(box.has_value());
    EXPECT_TRUE(box->contains(p)) << "precision " << precision;
  }
}

TEST(Geohash, PrefixPropertyHolds) {
  const GeoPoint p{22.3964, 114.1095};
  const std::string full = geohash_encode(p, 12);
  for (int precision = 1; precision < 12; ++precision) {
    EXPECT_EQ(geohash_encode(p, precision), full.substr(0, precision));
  }
}

TEST(Geohash, DecodeRejectsInvalidInput) {
  EXPECT_FALSE(geohash_decode("").has_value());
  EXPECT_FALSE(geohash_decode("abc!").has_value());
  EXPECT_FALSE(geohash_decode("aia").has_value());  // 'a', 'i' not in base32 alphabet
}

TEST(Geohash, CellSizeShrinksWithPrecision) {
  double previous = 1e12;
  for (int precision = 1; precision <= 12; ++precision) {
    const CellSize size = geohash_cell_size(precision);
    EXPECT_LT(size.lat_meters, previous);
    previous = size.lat_meters;
  }
  // Precision 12 is sub-meter ("about one square meter", §III-B3).
  EXPECT_LT(geohash_cell_size(12).lat_meters, 1.0);
  EXPECT_LT(geohash_cell_size(12).lng_meters, 1.0);
}

TEST(Geohash, AdjacentCellsTouchAndDiffer) {
  const std::string cell = geohash_encode(GeoPoint{22.3964, 114.1095}, 7);
  const auto east = geohash_adjacent(cell, Direction::East);
  ASSERT_TRUE(east.has_value());
  EXPECT_NE(*east, cell);
  EXPECT_EQ(east->size(), cell.size());
  // The neighbour's box shares the boundary: its west edge == our east edge.
  const auto our_box = geohash_decode(cell);
  const auto east_box = geohash_decode(*east);
  ASSERT_TRUE(our_box && east_box);
  EXPECT_NEAR(east_box->lng_min, our_box->lng_max, 1e-9);
  EXPECT_NEAR(east_box->lat_min, our_box->lat_min, 1e-9);
}

TEST(Geohash, AdjacentRoundtripInverse) {
  const std::string cell = geohash_encode(GeoPoint{48.2, 16.4}, 6);
  const auto north = geohash_adjacent(cell, Direction::North);
  ASSERT_TRUE(north.has_value());
  const auto back = geohash_adjacent(*north, Direction::South);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cell);
}

TEST(Geohash, NeighborsAreEightDistinctCells) {
  const std::string cell = geohash_encode(GeoPoint{22.3964, 114.1095}, 6);
  const auto neighbors = geohash_neighbors(cell);
  ASSERT_TRUE(neighbors.has_value());
  EXPECT_EQ(neighbors->size(), 8u);
  std::set<std::string> distinct(neighbors->begin(), neighbors->end());
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_FALSE(distinct.contains(cell));
}

TEST(Geohash, NeighborsAtPoleAreFewer) {
  const std::string cell = geohash_encode(GeoPoint{89.99999, 0.0}, 4);
  const auto neighbors = geohash_neighbors(cell);
  ASSERT_TRUE(neighbors.has_value());
  EXPECT_LT(neighbors->size(), 8u);  // no cells north of the pole cap
}

TEST(Geohash, NeighborsWrapAntimeridian) {
  const std::string cell = geohash_encode(GeoPoint{0.0, 179.9999}, 4);
  const auto east = geohash_adjacent(cell, Direction::East);
  ASSERT_TRUE(east.has_value());
  const auto box = geohash_decode(*east);
  ASSERT_TRUE(box.has_value());
  EXPECT_LT(box->lng_min, -179.0);  // wrapped to the far west
}

TEST(Geohash, NeighborsRejectInvalid) {
  EXPECT_FALSE(geohash_neighbors("").has_value());
  EXPECT_FALSE(geohash_adjacent("a!", Direction::North).has_value());
}

class GeohashRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeohashRoundtrip, EncodeDecodeConverges) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const GeoPoint p{rng.uniform_real(-90, 90), rng.uniform_real(-180, 180)};
    const std::string hash = geohash_encode(p, 12);
    const auto center = geohash_decode_center(hash);
    ASSERT_TRUE(center.has_value());
    // Re-encoding the cell center lands in the same cell.
    EXPECT_EQ(geohash_encode(*center, 12), hash);
    // The center is within the cell diagonal of the original point.
    EXPECT_LT(haversine_meters(p, *center), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeohashRoundtrip, ::testing::Values(1, 7, 42, 99, 12345));

// --- CSC -------------------------------------------------------------------------------

TEST(Csc, SameCellForSamePlaceDifferentDevices) {
  const GeoPoint p{22.3964, 114.1095};
  const Csc a(p, crypto::address_for_node(NodeId{1}));
  const Csc b(p, crypto::address_for_node(NodeId{2}));
  EXPECT_TRUE(a.same_cell(b));
  EXPECT_NE(a.str(), b.str());  // identity suffix differs
}

TEST(Csc, DifferentPlacesDifferentCells) {
  const Csc a(GeoPoint{22.3964, 114.1095}, crypto::address_for_node(NodeId{1}));
  const Csc b(GeoPoint{22.3970, 114.1095}, crypto::address_for_node(NodeId{1}));
  EXPECT_FALSE(a.same_cell(b));
}

TEST(Csc, HierarchicalWithin) {
  const GeoPoint p{22.3964, 114.1095};
  const Csc csc(p, crypto::address_for_node(NodeId{1}));
  const std::string area = geohash_encode(p, 5);
  EXPECT_TRUE(csc.within(area));
  EXPECT_FALSE(csc.within("zzzzz"));
  EXPECT_TRUE(csc.within(""));  // the whole world
}

TEST(Csc, StableForSameInputs) {
  const GeoPoint p{1.5, 2.5};
  const Csc a(p, crypto::address_for_node(NodeId{3}));
  const Csc b(p, crypto::address_for_node(NodeId{3}));
  EXPECT_EQ(a.str(), b.str());
}

// --- election table -----------------------------------------------------------------------

Csc csc_at(const GeoPoint& p, NodeId id) { return Csc(p, crypto::address_for_node(id)); }

TEST(ElectionTable, TimerAccumulatesWhileStationary) {
  // Reproduces the paper's Table II: a device reporting from the same CSC
  // accumulates its geographic timer from the first sighting.
  ElectionTable table;
  const NodeId device{7};
  const GeoPoint home{22.3964, 114.1095};

  const TimePoint t0{0};
  table.record(device, csc_at(home, device), t0);
  EXPECT_EQ(table.timer(device).ns, 0);

  const TimePoint t1{(Duration::minutes(56) + Duration::seconds(4)).ns};
  table.record(device, csc_at(home, device), t1);
  EXPECT_EQ(format_hms(table.timer(device)), "00:56:04");

  const TimePoint t2{(Duration::hours(6) + Duration::minutes(56) + Duration::seconds(4)).ns};
  table.record(device, csc_at(home, device), t2);
  EXPECT_EQ(format_hms(table.timer(device)), "06:56:04");

  const TimePoint t3{(Duration::hours(12) + Duration::minutes(56) + Duration::seconds(4)).ns};
  table.record(device, csc_at(home, device), t3);
  EXPECT_EQ(format_hms(table.timer(device)), "12:56:04");

  const TimePoint t4{(Duration::hours(18) + Duration::minutes(56) + Duration::seconds(4)).ns};
  table.record(device, csc_at(home, device), t4);
  EXPECT_EQ(format_hms(table.timer(device)), "18:56:04");
}

TEST(ElectionTable, TimerRestartsOnMove) {
  ElectionTable table;
  const NodeId device{1};
  const GeoPoint a{22.3964, 114.1095}, b{22.40, 114.11};

  table.record(device, csc_at(a, device), TimePoint{0});
  table.record(device, csc_at(a, device), TimePoint{Duration::hours(10).ns});
  EXPECT_EQ(table.timer(device), Duration::hours(10));

  table.record(device, csc_at(b, device), TimePoint{Duration::hours(11).ns});
  EXPECT_EQ(table.timer(device).ns, 0);

  table.record(device, csc_at(b, device), TimePoint{Duration::hours(12).ns});
  EXPECT_EQ(table.timer(device), Duration::hours(1));
}

TEST(ElectionTable, TimerAtProjectsForward) {
  ElectionTable table;
  const NodeId device{1};
  const GeoPoint a{10, 10};
  table.record(device, csc_at(a, device), TimePoint{0});
  EXPECT_EQ(table.timer_at(device, TimePoint{Duration::hours(5).ns}), Duration::hours(5));
  EXPECT_EQ(table.timer_at(NodeId{99}, TimePoint{Duration::hours(5).ns}).ns, 0);
}

TEST(ElectionTable, ResetTimerKeepsLocation) {
  ElectionTable table;
  const NodeId device{1};
  const GeoPoint a{10, 10};
  table.record(device, csc_at(a, device), TimePoint{0});
  table.record(device, csc_at(a, device), TimePoint{Duration::hours(2).ns});
  table.reset_timer(device, TimePoint{Duration::hours(2).ns});
  EXPECT_EQ(table.timer_at(device, TimePoint{Duration::hours(3).ns}), Duration::hours(1));
}

TEST(ElectionTable, ReportsInWindowFilters) {
  ElectionTable table;
  const NodeId device{1};
  const GeoPoint a{10, 10};
  for (int i = 0; i < 10; ++i) {
    table.record(device, csc_at(a, device), TimePoint{Duration::seconds(i * 10).ns});
  }
  const auto window =
      table.reports_in_window(device, TimePoint{Duration::seconds(90).ns}, Duration::seconds(30));
  ASSERT_EQ(window.size(), 4u);  // t = 60, 70, 80, 90
  EXPECT_EQ(window.front().timestamp.ns, Duration::seconds(60).ns);
  EXPECT_EQ(window.back().timestamp.ns, Duration::seconds(90).ns);
}

TEST(ElectionTable, StationaryDevicesThreshold) {
  ElectionTable table;
  const GeoPoint a{10, 10}, b{20, 20};
  table.record(NodeId{1}, csc_at(a, NodeId{1}), TimePoint{0});
  table.record(NodeId{2}, csc_at(b, NodeId{2}), TimePoint{Duration::hours(50).ns});
  const auto stationary =
      table.stationary_devices(TimePoint{Duration::hours(80).ns}, Duration::hours(72));
  ASSERT_EQ(stationary.size(), 1u);
  EXPECT_EQ(stationary[0], NodeId{1});
}

TEST(ElectionTable, HistoryPrunedToLimit) {
  ElectionTable table(4);
  const NodeId device{1};
  const GeoPoint a{10, 10};
  for (int i = 0; i < 10; ++i) {
    table.record(device, csc_at(a, device), TimePoint{Duration::seconds(i).ns});
  }
  const auto reports =
      table.reports_in_window(device, TimePoint{Duration::seconds(100).ns}, Duration::hours(1));
  EXPECT_EQ(reports.size(), 4u);
}

TEST(ElectionTable, ForgetRemovesDevice) {
  ElectionTable table;
  table.record(NodeId{1}, csc_at(GeoPoint{1, 1}, NodeId{1}), TimePoint{0});
  EXPECT_EQ(table.devices().size(), 1u);
  table.forget(NodeId{1});
  EXPECT_TRUE(table.devices().empty());
  EXPECT_FALSE(table.latest(NodeId{1}).has_value());
}

TEST(ElectionTable, RenderContainsTimerColumn) {
  ElectionTable table;
  const NodeId device{1};
  table.record(device, csc_at(GeoPoint{1, 1}, device), TimePoint{0});
  table.record(device, csc_at(GeoPoint{1, 1}, device), TimePoint{Duration::hours(1).ns});
  const std::string rendered = table.render(device);
  EXPECT_NE(rendered.find("Geographic Timer"), std::string::npos);
  EXPECT_NE(rendered.find("01:00:00"), std::string::npos);
}

}  // namespace
}  // namespace gpbft::geo
