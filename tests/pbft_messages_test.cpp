// Wire-format tests for every PBFT / G-PBFT message, plus seal/open framing.
#include <gtest/gtest.h>

#include <memory>

#include "ledger/genesis.hpp"
#include "pbft/messages.hpp"

namespace gpbft::pbft {
namespace {

ledger::Transaction sample_tx() {
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  report.timestamp = TimePoint{Duration::seconds(3).ns};
  return ledger::make_normal_tx(NodeId{4}, 9, Bytes{7, 7, 7}, 12, report);
}

ledger::Block sample_block() {
  ledger::GenesisConfig config;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i}, geo::GeoPoint{22.39, 114.1}});
  }
  const ledger::Block genesis = ledger::make_genesis_block(config);
  return ledger::build_block(genesis.header, {sample_tx()}, 2, 1, 1,
                             TimePoint{Duration::seconds(4).ns}, NodeId{2});
}

template <typename T>
T roundtrip(const T& message) {
  const Bytes encoded = message.encode();
  auto decoded = T::decode(BytesView(encoded.data(), encoded.size()));
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error());
  return std::move(decoded.value());
}

TEST(Messages, ClientRequestRoundtrip) {
  ClientRequest msg{sample_tx()};
  EXPECT_EQ(roundtrip(msg).transaction, msg.transaction);
}

TEST(Messages, PrePrepareRoundtrip) {
  PrePrepare msg;
  msg.view = 3;
  msg.seq = 17;
  msg.block = sample_block();
  msg.digest = msg.block.hash();
  const PrePrepare back = roundtrip(msg);
  EXPECT_EQ(back.view, 3u);
  EXPECT_EQ(back.seq, 17u);
  EXPECT_EQ(back.digest, msg.digest);
  EXPECT_EQ(back.block, msg.block);
}

TEST(Messages, PrepareCommitRoundtrip) {
  Prepare prepare;
  prepare.view = 1;
  prepare.seq = 2;
  prepare.digest = crypto::sha256("x");
  prepare.replica = NodeId{5};
  const Prepare p = roundtrip(prepare);
  EXPECT_EQ(p.replica, NodeId{5});
  EXPECT_EQ(p.digest, prepare.digest);

  Commit commit;
  commit.view = 9;
  commit.seq = 11;
  commit.digest = crypto::sha256("y");
  commit.replica = NodeId{6};
  const Commit c = roundtrip(commit);
  EXPECT_EQ(c.view, 9u);
  EXPECT_EQ(c.seq, 11u);
}

TEST(Messages, ReplyRoundtrip) {
  Reply msg;
  msg.view = 2;
  msg.replica = NodeId{3};
  msg.tx_digest = crypto::sha256("tx");
  msg.height = 40;
  const Reply back = roundtrip(msg);
  EXPECT_EQ(back.height, 40u);
  EXPECT_EQ(back.tx_digest, msg.tx_digest);
}

TEST(Messages, CheckpointRoundtrip) {
  CheckpointMsg msg;
  msg.seq = 16;
  msg.chain_digest = crypto::sha256("tip");
  msg.replica = NodeId{1};
  const CheckpointMsg back = roundtrip(msg);
  EXPECT_EQ(back.seq, 16u);
}

TEST(Messages, ViewChangeRoundtrip) {
  ViewChangeMsg msg;
  msg.new_view = 4;
  msg.last_executed = 12;
  PreparedProof proof;
  proof.view = 3;
  proof.seq = 13;
  proof.block = sample_block();
  proof.digest = proof.block.hash();
  msg.prepared.push_back(proof);
  msg.replica = NodeId{2};

  const ViewChangeMsg back = roundtrip(msg);
  EXPECT_EQ(back.new_view, 4u);
  EXPECT_EQ(back.last_executed, 12u);
  ASSERT_EQ(back.prepared.size(), 1u);
  EXPECT_EQ(back.prepared[0].seq, 13u);
  EXPECT_EQ(back.prepared[0].block, proof.block);
}

TEST(Messages, NewViewRoundtrip) {
  NewViewMsg msg;
  msg.new_view = 7;
  ViewChangeMsg vc;
  vc.new_view = 7;
  vc.replica = NodeId{1};
  msg.proofs.push_back(vc);
  PrePrepare pp;
  pp.view = 7;
  pp.seq = 3;
  pp.block = sample_block();
  pp.digest = pp.block.hash();
  msg.preprepares.push_back(pp);
  msg.primary = NodeId{3};

  const NewViewMsg back = roundtrip(msg);
  EXPECT_EQ(back.new_view, 7u);
  ASSERT_EQ(back.proofs.size(), 1u);
  ASSERT_EQ(back.preprepares.size(), 1u);
  EXPECT_EQ(back.primary, NodeId{3});
}

TEST(Messages, SyncRoundtrip) {
  SyncRequest request;
  request.from_height = 17;
  request.requester = NodeId{4};
  const SyncRequest req_back = roundtrip(request);
  EXPECT_EQ(req_back.from_height, 17u);
  EXPECT_EQ(req_back.requester, NodeId{4});

  SyncResponse response;
  response.blocks.push_back(sample_block());
  response.responder = NodeId{2};
  const SyncResponse resp_back = roundtrip(response);
  ASSERT_EQ(resp_back.blocks.size(), 1u);
  EXPECT_EQ(resp_back.blocks[0], response.blocks[0]);
  EXPECT_EQ(resp_back.responder, NodeId{2});
}

TEST(Messages, GeoReportRoundtrip) {
  GeoReportMsg msg;
  msg.device = NodeId{77};
  msg.latitude = 22.396;
  msg.longitude = 114.109;
  msg.reported_at = TimePoint{Duration::seconds(100).ns};
  const GeoReportMsg back = roundtrip(msg);
  EXPECT_EQ(back.device, NodeId{77});
  EXPECT_DOUBLE_EQ(back.latitude, 22.396);
  EXPECT_DOUBLE_EQ(back.longitude, 114.109);
  EXPECT_EQ(back.reported_at.ns, Duration::seconds(100).ns);
}

TEST(Messages, EraControlRoundtrip) {
  EraHaltMsg halt;
  halt.closing_era = 5;
  halt.sender = NodeId{2};
  EXPECT_EQ(roundtrip(halt).closing_era, 5u);

  EraLaunchMsg launch;
  launch.config.era = 6;
  launch.config.endorsers = {NodeId{1}, NodeId{2}, NodeId{5}};
  launch.config_height = 14;
  launch.sender = NodeId{2};
  launch.blocks.push_back(sample_block());
  const EraLaunchMsg back = roundtrip(launch);
  EXPECT_EQ(back.config.era, 6u);
  EXPECT_EQ(back.config.endorsers.size(), 3u);
  ASSERT_EQ(back.blocks.size(), 1u);
  EXPECT_EQ(back.blocks[0], launch.blocks[0]);
}

TEST(Messages, DecodeRejectsTruncation) {
  PrePrepare msg;
  msg.view = 1;
  msg.seq = 1;
  msg.block = sample_block();
  msg.digest = msg.block.hash();
  Bytes encoded = msg.encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(PrePrepare::decode(BytesView(encoded.data(), encoded.size())).ok());
}

TEST(Messages, TypeNamesKnown) {
  EXPECT_STREQ(message_type_name(msg_type::kPrePrepare), "PRE-PREPARE");
  EXPECT_STREQ(message_type_name(msg_type::kGeoReport), "GEO-REPORT");
  EXPECT_STREQ(message_type_name(999), "UNKNOWN");
}

// --- seal/open ---------------------------------------------------------------------

TEST(Seal, RoundtripWithMacs) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {1, 2, 3, 4};
  const Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                            BytesView(body.data(), body.size()), true);
  const auto opened = open(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                           BytesView(sealed.data(), sealed.size()), true);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), body);
}

TEST(Seal, TamperedBodyRejected) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {1, 2, 3, 4};
  Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                      BytesView(body.data(), body.size()), true);
  sealed[1] ^= 0x01;  // flips a body byte (offset 0 is the length varint)
  EXPECT_FALSE(open(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                    BytesView(sealed.data(), sealed.size()), true)
                   .ok());
}

TEST(Seal, SpoofedSenderRejected) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {1};
  const Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                            BytesView(body.data(), body.size()), true);
  // The envelope claims sender 3 but the sealed frame says 1.
  EXPECT_FALSE(open(keys, NodeId{3}, NodeId{2}, msg_type::kPrepare,
                    BytesView(sealed.data(), sealed.size()), true)
                   .ok());
}

TEST(Seal, WrongReceiverRejected) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {1};
  const Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                            BytesView(body.data(), body.size()), true);
  EXPECT_FALSE(open(keys, NodeId{1}, NodeId{9}, msg_type::kPrepare,
                    BytesView(sealed.data(), sealed.size()), true)
                   .ok());
}

TEST(Seal, MacsOffStillFramesAndSizesEqually) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {5, 6, 7};
  const Bytes with_macs = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                               BytesView(body.data(), body.size()), true);
  const Bytes without = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                             BytesView(body.data(), body.size()), false);
  EXPECT_EQ(with_macs.size(), without.size());  // byte accounting must match
  const auto opened =
      open(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
           BytesView(without.data(), without.size()), false);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), body);
}

TEST(Seal, RetypedEnvelopeRejected) {
  // Prepare and Commit share one field layout, so a MAC over the body
  // alone would let the wire adversary's type-confusion family turn a
  // genuine Prepare into a forged Commit. The MAC binds the envelope type:
  // the same sealed bytes must only open under the type they were sealed
  // for.
  crypto::KeyRegistry keys(11);
  Prepare prepare;
  prepare.view = 1;
  prepare.seq = 2;
  prepare.replica = NodeId{3};
  const Bytes body = prepare.encode();
  const Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                            BytesView(body.data(), body.size()), true);
  // Same bytes, retyped claim: must fail verification...
  EXPECT_FALSE(open(keys, NodeId{1}, NodeId{2}, msg_type::kCommit,
                    BytesView(sealed.data(), sealed.size()), true)
                   .ok());
  // ...even though the body itself would decode fine as a Commit.
  ASSERT_TRUE(Commit::decode(BytesView(body.data(), body.size())).ok());
  // The genuine type still opens.
  EXPECT_TRUE(open(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                   BytesView(sealed.data(), sealed.size()), true)
                  .ok());
}

TEST(Seal, SealedSizeIsExactAcrossVarintBoundaries) {
  // sealed_size() lets lazy payloads report wire sizes without sealing;
  // an off-by-one here would silently skew every net.* byte counter when
  // the parallel plane defers the seal. Exercise the varint width steps.
  crypto::KeyRegistry keys(11);
  for (const std::size_t len : {0u, 1u, 0x7fu, 0x80u, 0x3fffu, 0x4000u}) {
    const Bytes body(len, 0xab);
    const Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                              BytesView(body.data(), body.size()), true);
    EXPECT_EQ(sealed.size(), sealed_size(len)) << "len " << len;
  }
}

TEST(Seal, OpenViewMatchesOpenWithoutCopying) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {9, 9, 9, 1, 2};
  const Bytes sealed = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                            BytesView(body.data(), body.size()), true);
  const BytesView sealed_view(sealed.data(), sealed.size());
  const auto copied = open(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare, sealed_view, true);
  const auto viewed = open_view(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare, sealed_view, true);
  ASSERT_TRUE(copied.ok());
  ASSERT_TRUE(viewed.ok());
  EXPECT_EQ(Bytes(viewed.value().begin(), viewed.value().end()), copied.value());
  // The view aliases the sealed buffer — zero-copy, not a hidden clone.
  EXPECT_GE(viewed.value().data(), sealed.data());
  EXPECT_LE(viewed.value().data() + viewed.value().size(), sealed.data() + sealed.size());

  // Error cases must agree, too.
  Bytes tampered = sealed;
  tampered[1] ^= 1;
  const BytesView tampered_view(tampered.data(), tampered.size());
  const auto copied_err = open(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare, tampered_view, true);
  const auto viewed_err =
      open_view(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare, tampered_view, true);
  ASSERT_FALSE(copied_err.ok());
  ASSERT_FALSE(viewed_err.ok());
  EXPECT_EQ(viewed_err.error(), copied_err.error());
}

TEST(Seal, LazyPayloadSealsIdenticallyToEager) {
  // The fan-out path ships net::Payload(sealed_size(...), seal-closure);
  // forcing the cell must produce the exact bytes an eager seal would, and
  // size() must be truthful before materialization.
  crypto::KeyRegistry keys(11);
  const auto body = std::make_shared<const Bytes>(Bytes{3, 1, 4, 1, 5, 9, 2, 6});
  const Bytes eager = seal(keys, NodeId{1}, NodeId{2}, msg_type::kCommit,
                           BytesView(body->data(), body->size()), true);
  const net::Payload lazy(sealed_size(body->size()), [&keys, body]() {
    return seal(keys, NodeId{1}, NodeId{2}, msg_type::kCommit,
                BytesView(body->data(), body->size()), true);
  });
  EXPECT_EQ(lazy.size(), eager.size());  // no materialization needed
  EXPECT_EQ(lazy.bytes(), eager);        // forces the cell
  EXPECT_EQ(lazy.bytes(), eager);        // second read hits the cached buffer
}

TEST(Seal, OpenEnvelopeUsesAReleasedJobVerdict) {
  crypto::KeyRegistry keys(11);
  const Bytes body = {4, 2};
  net::Envelope envelope;
  envelope.from = NodeId{1};
  envelope.to = NodeId{2};
  envelope.type = msg_type::kPrepare;
  envelope.payload = seal(keys, NodeId{1}, NodeId{2}, msg_type::kPrepare,
                          BytesView(body.data(), body.size()), true);

  // Released job carrying a pass: the handler reads the worker's verdict.
  auto job = std::make_shared<net::OpenJob>();
  job->macs = true;
  job->ready = true;
  job->body = Bytes{4, 2};
  envelope.open_job = job;
  const auto reused = open_envelope(keys, NodeId{2}, envelope, true);
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(reused.value().data(), job->body.value().data());  // zero-copy reuse

  // A MACs-on PASS also answers a framing-only open (verification is a
  // strict superset of framing)...
  EXPECT_TRUE(open_envelope(keys, NodeId{2}, envelope, false).ok());

  // ...but a MACs-on FAILURE must not: the tag may be bad while the
  // framing is fine, so a framing-only caller falls back to a fresh parse.
  auto failed = std::make_shared<net::OpenJob>();
  failed->macs = true;
  failed->ready = true;
  failed->body = make_error("seal: HMAC verification failed (body or type forged)");
  envelope.open_job = failed;
  EXPECT_FALSE(open_envelope(keys, NodeId{2}, envelope, true).ok());
  const auto framed = open_envelope(keys, NodeId{2}, envelope, false);
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(Bytes(framed.value().begin(), framed.value().end()), body);

  // An unreleased job (ready=false — e.g. a ghost that bypassed the plane)
  // is ignored; the synchronous path still opens the envelope.
  auto unreleased = std::make_shared<net::OpenJob>();
  unreleased->macs = true;
  envelope.open_job = unreleased;
  EXPECT_TRUE(open_envelope(keys, NodeId{2}, envelope, true).ok());

  // No job at all: the plain synchronous path.
  envelope.open_job = nullptr;
  EXPECT_TRUE(open_envelope(keys, NodeId{2}, envelope, true).ok());
}

}  // namespace
}  // namespace gpbft::pbft
