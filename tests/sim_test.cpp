// Simulation-harness tests: boxplot statistics, device placement, workload
// generation, and cluster plumbing.
#include <gtest/gtest.h>

#include "sim/deployment.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/mobility.hpp"
#include "sim/placement.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

// --- metrics -------------------------------------------------------------------

TEST(Metrics, BoxplotOfKnownSamples) {
  const BoxplotStats stats = BoxplotStats::from_samples({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(stats.min, 1);
  EXPECT_DOUBLE_EQ(stats.q1, 2);
  EXPECT_DOUBLE_EQ(stats.median, 3);
  EXPECT_DOUBLE_EQ(stats.q3, 4);
  EXPECT_DOUBLE_EQ(stats.max, 5);
  EXPECT_DOUBLE_EQ(stats.mean, 3);
  EXPECT_EQ(stats.count, 5u);
}

TEST(Metrics, BoxplotInterpolatesQuartiles) {
  const BoxplotStats stats = BoxplotStats::from_samples({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(stats.median, 2.5);
  EXPECT_DOUBLE_EQ(stats.q1, 1.75);
  EXPECT_DOUBLE_EQ(stats.q3, 3.25);
}

TEST(Metrics, BoxplotHandlesEdgeCases) {
  EXPECT_EQ(BoxplotStats::from_samples({}).count, 0u);
  const BoxplotStats one = BoxplotStats::from_samples({7});
  EXPECT_DOUBLE_EQ(one.min, 7);
  EXPECT_DOUBLE_EQ(one.max, 7);
  EXPECT_DOUBLE_EQ(one.median, 7);
}

TEST(Metrics, BoxplotUnsortedInput) {
  const BoxplotStats stats = BoxplotStats::from_samples({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(stats.median, 3);
  EXPECT_DOUBLE_EQ(stats.min, 1);
  EXPECT_DOUBLE_EQ(stats.max, 5);
}

TEST(Metrics, RecorderMeanAndPercentiles) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.record(Duration::seconds(i));
  EXPECT_DOUBLE_EQ(recorder.mean(), 50.5);
  EXPECT_NEAR(recorder.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(recorder.percentile(99), 99.01, 0.1);
  EXPECT_EQ(recorder.count(), 100u);
  recorder.clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_DOUBLE_EQ(recorder.mean(), 0.0);
}

// --- placement ---------------------------------------------------------------------

TEST(Placement, AllPositionsInsideArea) {
  Placement placement;
  const std::string area = placement.area_prefix();
  for (std::size_t i = 0; i < 300; ++i) {
    const std::string cell = geo::geohash_encode(placement.position(i), 12);
    EXPECT_EQ(cell.substr(0, area.size()), area) << "device " << i;
  }
}

TEST(Placement, PositionsAreDistinctCells) {
  Placement placement;
  std::set<std::string> cells;
  for (std::size_t i = 0; i < 300; ++i) {
    cells.insert(geo::geohash_encode(placement.position(i), 12));
  }
  EXPECT_EQ(cells.size(), 300u);
}

TEST(Placement, NeighboursAreMetersApart) {
  Placement placement;
  const double d = geo::haversine_meters(placement.position(0), placement.position(1));
  EXPECT_NEAR(d, 10.0, 1.0);
}

TEST(Placement, OutsidePositionIsOutside) {
  Placement placement;
  const std::string area = placement.area_prefix();
  for (std::size_t i = 0; i < 5; ++i) {
    const std::string cell = geo::geohash_encode(placement.outside_position(i), 12);
    EXPECT_NE(cell.substr(0, area.size()), area);
  }
}

TEST(Placement, Deterministic) {
  Placement a, b;
  EXPECT_EQ(a.position(17), b.position(17));
  EXPECT_EQ(a.area_prefix(), b.area_prefix());
}

// --- workload -----------------------------------------------------------------------

TEST(Workload, MakesDeterministicTransactions) {
  const geo::GeoPoint spot{22.39, 114.10};
  const auto a = make_workload_tx(NodeId{5}, 3, spot, TimePoint{100}, 32, 10, 7);
  const auto b = make_workload_tx(NodeId{5}, 3, spot, TimePoint{100}, 32, 10, 7);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.payload.size(), 32u);
  EXPECT_EQ(a.fee, 10u);
  EXPECT_EQ(a.geo.point, spot);

  const auto c = make_workload_tx(NodeId{5}, 4, spot, TimePoint{100}, 32, 10, 7);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Workload, SubmitsExactlyCountTransactions) {
  PbftClusterConfig config;
  config.replicas = 4;
  config.clients = 1;
  config.seed = 3;
  PbftCluster cluster(config);
  cluster.start();

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = Duration::seconds(1);
  workload.count = 5;
  schedule_workload(cluster.simulator(), cluster.client(0), cluster.placement().position(0),
                    workload, 0, &recorder);
  cluster.run_for(Duration::seconds(30));

  EXPECT_EQ(cluster.client(0).committed_count(), 5u);
  EXPECT_EQ(recorder.count(), 5u);
  EXPECT_EQ(cluster.replica(0).state().applied_transactions(), 5u);
}

TEST(Workload, StaggerSeparatesClients) {
  WorkloadConfig config;
  config.stagger = Duration::millis(25);
  // Client 0 starts at config.start, client 10 starts 250 ms later: encoded
  // in schedule_workload; verify indirectly through distinct first-commit
  // deltas in a cluster run would be flaky, so check the arithmetic.
  const TimePoint first0{config.start.ns + config.stagger.ns * 0};
  const TimePoint first10{config.start.ns + config.stagger.ns * 10};
  EXPECT_EQ((first10 - first0).ns, Duration::millis(250).ns);
}

// --- cluster plumbing ----------------------------------------------------------------

TEST(Cluster, PbftCommitteeIsAllReplicas) {
  PbftClusterConfig config;
  config.replicas = 7;
  PbftCluster cluster(config);
  EXPECT_EQ(cluster.committee().size(), 7u);
  EXPECT_EQ(cluster.replica_count(), 7u);
}

TEST(Cluster, GpbftInitialCommitteeClamped) {
  GpbftClusterConfig config;
  config.nodes = 3;
  config.initial_committee = 10;  // more than nodes: clamp
  GpbftCluster cluster(config);
  EXPECT_EQ(cluster.committee_size(), 3u);
}

TEST(Cluster, ClientIdsDisjointFromNodeIds) {
  GpbftClusterConfig config;
  config.nodes = 5;
  config.clients = 3;
  GpbftCluster cluster(config);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(cluster.client(i).id().value, kClientIdBase);
  }
  EXPECT_EQ(cluster.endorser(4).id().value, 5u);
}

TEST(Cluster, AreaRegistryPopulated) {
  GpbftClusterConfig config;
  config.nodes = 5;
  config.clients = 2;
  GpbftCluster cluster(config);
  EXPECT_EQ(cluster.area().size(), 7u);  // nodes + clients
}

// --- mobility -----------------------------------------------------------------------

TEST(Mobility, RandomHopKeepsDeviceMobileAndHonest) {
  GpbftClusterConfig config;
  config.nodes = 5;
  config.initial_committee = 4;
  config.seed = 4;
  config.protocol.genesis.era_period = Duration::seconds(1000);  // isolate mobility
  GpbftCluster cluster(config);
  Mobility mobility(cluster.simulator(), cluster.area(), cluster.placement());
  mobility.random_hop(cluster.endorser(4), Duration::seconds(3), 200, 10);
  cluster.start();

  const geo::GeoPoint before = cluster.endorser(4).location();
  cluster.run_for(Duration::seconds(10));
  const geo::GeoPoint after = cluster.endorser(4).location();
  EXPECT_GT(geo::haversine_meters(before, after), 1.0);
  // Ground truth follows: the registry agrees with the claimed location.
  EXPECT_TRUE(cluster.area().claim_is_truthful(cluster.endorser(4).id(), after));
}

TEST(Mobility, MobileDeviceNeverPromoted) {
  GpbftClusterConfig config;
  config.nodes = 6;
  config.initial_committee = 4;
  config.seed = 4;
  config.protocol.genesis.era_period = Duration::seconds(8);
  config.protocol.genesis.geo_report_period = Duration::seconds(2);
  config.protocol.genesis.geo_window = Duration::seconds(8);
  config.protocol.genesis.min_geo_reports = 2;
  config.protocol.genesis.promotion_threshold = Duration::seconds(10);
  GpbftCluster cluster(config);
  Mobility mobility(cluster.simulator(), cluster.area(), cluster.placement());
  // Device 6 hops faster than the promotion threshold; device 5 is fixed.
  mobility.random_hop(cluster.endorser(5), Duration::seconds(4), 300, 12);
  cluster.start();
  cluster.run_for(Duration::seconds(40));

  EXPECT_EQ(cluster.endorser(4).role(), ::gpbft::gpbft::Role::Active);     // fixed: in
  EXPECT_EQ(cluster.endorser(5).role(), ::gpbft::gpbft::Role::Candidate);  // mobile: out
}

TEST(Mobility, RelocateAtMovesOnce) {
  GpbftClusterConfig config;
  config.nodes = 4;
  config.initial_committee = 4;
  GpbftCluster cluster(config);
  Mobility mobility(cluster.simulator(), cluster.area(), cluster.placement());
  const geo::GeoPoint target = cluster.placement().position(77);
  mobility.relocate_at(cluster.endorser(0), Duration::seconds(5), target);
  cluster.start();

  cluster.run_for(Duration::seconds(4));
  EXPECT_GT(geo::haversine_meters(cluster.endorser(0).location(), target), 1.0);
  cluster.run_for(Duration::seconds(2));
  EXPECT_LT(geo::haversine_meters(cluster.endorser(0).location(), target), 0.1);
}

TEST(Mobility, StopHaltsDrivers) {
  GpbftClusterConfig config;
  config.nodes = 4;
  config.initial_committee = 4;
  GpbftCluster cluster(config);
  Mobility mobility(cluster.simulator(), cluster.area(), cluster.placement());
  mobility.random_hop(cluster.endorser(0), Duration::seconds(1), 100, 5);
  cluster.start();
  cluster.run_for(Duration::seconds(3));
  mobility.stop();
  const geo::GeoPoint frozen = cluster.endorser(0).location();
  cluster.run_for(Duration::seconds(5));
  EXPECT_LT(geo::haversine_meters(cluster.endorser(0).location(), frozen), 0.1);
}

// --- experiment helpers ---------------------------------------------------------------

TEST(Experiment, ConsensusBytesExcludeGeoTraffic) {
  net::NetStats stats;
  stats.bytes_by_type[pbft::msg_type::kPrepare] = 2048;
  stats.bytes_by_type[pbft::msg_type::kGeoReport] = 4096;  // excluded
  stats.bytes_by_type[pbft::msg_type::kCommit] = 1024;
  EXPECT_DOUBLE_EQ(consensus_kilobytes(stats), 3.0);
}

TEST(Experiment, RepeatRunsMergesSamples) {
  ExperimentOptions options = default_options();
  options.workload.txs_per_client = 1;
  options.workload.period = Duration::seconds(1);
  options.hard_deadline = Duration::seconds(120);
  const ExperimentResult merged = repeat_runs(run_pbft_latency, 4, options, 3);
  EXPECT_EQ(merged.committed, merged.expected);
  EXPECT_EQ(merged.latency_samples.size(), 3u * 4u);  // 3 runs x 4 clients x 1 tx
  EXPECT_EQ(merged.latency.count, merged.latency_samples.size());
}

TEST(Experiment, DeterministicForSameSeed) {
  ExperimentOptions options = default_options();
  options.workload.txs_per_client = 2;
  options.workload.period = Duration::seconds(1);
  options.hard_deadline = Duration::seconds(120);
  options.seed = 99;
  const ExperimentResult a = run_pbft_latency(4, options);
  const ExperimentResult b = run_pbft_latency(4, options);
  EXPECT_EQ(a.latency_samples, b.latency_samples);
  EXPECT_DOUBLE_EQ(a.consensus_kb, b.consensus_kb);
}

}  // namespace
}  // namespace gpbft::sim
