// Chain persistence tests: roundtrip, integrity tail, corruption detection,
// atomic save, and a restart-continuation scenario.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ledger/genesis.hpp"
#include "ledger/store.hpp"

namespace gpbft::ledger {
namespace {

geo::GeoReport report_at(std::int64_t sec) {
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  report.timestamp = TimePoint{Duration::seconds(sec).ns};
  return report;
}

Chain build_chain(std::size_t blocks) {
  GenesisConfig config;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    config.initial_endorsers.push_back(EndorserInfo{NodeId{i}, geo::GeoPoint{22.39, 114.1}});
  }
  Chain chain(make_genesis_block(config));
  for (std::size_t b = 1; b <= blocks; ++b) {
    std::vector<Transaction> txs;
    for (RequestId r = 0; r < 3; ++r) {
      txs.push_back(make_normal_tx(NodeId{10 + r}, b * 10 + r, Bytes{1, 2}, 5,
                                   report_at(static_cast<std::int64_t>(b))));
    }
    const Block block = build_block(chain.tip().header, std::move(txs), 0, 0, b,
                                    TimePoint{Duration::seconds(b).ns}, NodeId{1 + b % 4});
    EXPECT_TRUE(chain.append(block).ok());
  }
  return chain;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ChainStore, SerializeDeserializeRoundtrip) {
  const Chain chain = build_chain(10);
  const Bytes image = serialize_chain(chain);
  auto restored = deserialize_chain(BytesView(image.data(), image.size()));
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(restored.value().height(), 10u);
  EXPECT_EQ(restored.value().tip().hash(), chain.tip().hash());
  EXPECT_EQ(restored.value().current_era_config().endorsers.size(), 4u);
}

TEST(ChainStore, GenesisOnlyChain) {
  const Chain chain = build_chain(0);
  const Bytes image = serialize_chain(chain);
  auto restored = deserialize_chain(BytesView(image.data(), image.size()));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().height(), 0u);
}

TEST(ChainStore, DetectsBitFlipAnywhere) {
  const Chain chain = build_chain(3);
  const Bytes image = serialize_chain(chain);
  // Flip a byte at several positions including header, body and tail.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{9}, image.size() / 2, image.size() - 1}) {
    Bytes corrupted = image;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(deserialize_chain(BytesView(corrupted.data(), corrupted.size())).ok())
        << "flip at " << pos;
  }
}

TEST(ChainStore, DetectsTruncation) {
  const Chain chain = build_chain(3);
  const Bytes image = serialize_chain(chain);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10}, image.size() - 1}) {
    EXPECT_FALSE(deserialize_chain(BytesView(image.data(), keep)).ok()) << "keep " << keep;
  }
}

TEST(ChainStore, RejectsWrongVersionAndMagic) {
  const Chain chain = build_chain(1);
  Bytes image = serialize_chain(chain);
  // Bad magic (recompute of the tail is deliberately NOT done: the
  // integrity check fires first, which is also correct behaviour).
  Bytes bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_FALSE(deserialize_chain(BytesView(bad_magic.data(), bad_magic.size())).ok());
}

TEST(ChainStore, SaveLoadFile) {
  const Chain chain = build_chain(5);
  const std::string path = temp_path("chain_roundtrip.bin");
  ASSERT_TRUE(save_chain(chain, path).ok());
  auto restored = load_chain(path);
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(restored.value().tip().hash(), chain.tip().hash());
  std::remove(path.c_str());
}

TEST(ChainStore, LoadMissingFileErrors) {
  EXPECT_FALSE(load_chain(temp_path("does_not_exist.bin")).ok());
}

TEST(ChainStore, TornWriteLeavesThePreviousFileIntact) {
  const Chain original = build_chain(4);
  const std::string path = temp_path("chain_torn.bin");
  ASSERT_TRUE(save_chain(original, path).ok());

  // Power loss mid-save: the next image only made it partway into the temp
  // file and the rename never happened. The durable copy is untouched.
  const Chain longer = build_chain(8);
  const Bytes next = serialize_chain(longer);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fwrite(next.data(), 1, next.size() / 2, file);
  std::fclose(file);

  auto loaded = load_chain(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().tip().hash(), original.tip().hash());

  // And had the torn image reached the durable name, the integrity tail
  // rejects it at load time instead of yielding a half-written chain.
  ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  EXPECT_FALSE(load_chain(path).ok());
  std::remove(path.c_str());
}

TEST(ChainStore, RestartContinuation) {
  // Save, reload, and keep appending on the restored chain — the resumed
  // node validates new blocks against the persisted tip.
  Chain original = build_chain(4);
  const std::string path = temp_path("chain_restart.bin");
  ASSERT_TRUE(save_chain(original, path).ok());

  auto resumed = load_chain(path);
  ASSERT_TRUE(resumed.ok());
  const Block next =
      build_block(resumed.value().tip().header,
                  {make_normal_tx(NodeId{9}, 99, Bytes{7}, 5, report_at(100))}, 0, 0, 5,
                  TimePoint{Duration::seconds(100).ns}, NodeId{2});
  EXPECT_TRUE(resumed.value().append(next).ok());
  EXPECT_EQ(resumed.value().height(), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpbft::ledger
