// Ledger tests: transactions (incl. geo trailer), blocks, genesis policy,
// chain validation & fork detection, fee-splitting state, mempool.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geo/geohash.hpp"
#include "ledger/chain.hpp"
#include "ledger/genesis.hpp"
#include "ledger/mempool.hpp"
#include "ledger/state.hpp"

namespace gpbft::ledger {
namespace {

geo::GeoReport report_at(double lat, double lng, std::int64_t sec) {
  geo::GeoReport report;
  report.point = geo::GeoPoint{lat, lng};
  report.timestamp = TimePoint{Duration::seconds(sec).ns};
  return report;
}

Transaction sample_tx(std::uint64_t sender = 1, RequestId request = 1) {
  return make_normal_tx(NodeId{sender}, request, Bytes{1, 2, 3}, 10,
                        report_at(22.39, 114.10, 5));
}

// --- transactions -----------------------------------------------------------------

TEST(Transaction, EncodeDecodeRoundtrip) {
  const Transaction tx = sample_tx();
  const Bytes encoded = tx.encode();
  const auto decoded = Transaction::decode(BytesView(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), tx);
}

TEST(Transaction, ConfigRoundtrip) {
  EraConfig config;
  config.era = 3;
  config.endorsers = {NodeId{5}, NodeId{2}, NodeId{9}};
  config.cells = {"wecpk7wzeu0f", "wecpk7wzeu0g", "wecpk7wzeu0h"};
  const Transaction tx = make_config_tx(NodeId{5}, 7, config, report_at(22.39, 114.10, 60));
  const Bytes encoded = tx.encode();
  const auto decoded = Transaction::decode(BytesView(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, TxKind::Config);
  EXPECT_EQ(decoded.value().era_config, config);
}

TEST(Transaction, GeoTrailerPreserved) {
  const Transaction tx = sample_tx();
  const auto decoded = Transaction::decode(BytesView(tx.encode().data(), tx.encode().size()));
  // note: encode() called twice above returns identical bytes
  const Bytes encoded = tx.encode();
  const auto again = Transaction::decode(BytesView(encoded.data(), encoded.size()));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again.value().geo.point.latitude, 22.39);
  EXPECT_DOUBLE_EQ(again.value().geo.point.longitude, 114.10);
  EXPECT_EQ(again.value().geo.timestamp.ns, Duration::seconds(5).ns);
}

TEST(Transaction, DigestChangesWithContent) {
  Transaction a = sample_tx();
  Transaction b = a;
  b.payload[0] ^= 1;
  EXPECT_NE(a.digest(), b.digest());
  Transaction c = a;
  c.fee += 1;
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Transaction, DecodeRejectsGarbage) {
  const Bytes garbage = {0x07, 0x01, 0x02};
  EXPECT_FALSE(Transaction::decode(BytesView(garbage.data(), garbage.size())).ok());
  EXPECT_FALSE(Transaction::decode(BytesView{}).ok());
}

TEST(Transaction, DecodeRejectsTrailingBytes) {
  Bytes encoded = sample_tx().encode();
  encoded.push_back(0x00);
  EXPECT_FALSE(Transaction::decode(BytesView(encoded.data(), encoded.size())).ok());
}

TEST(Transaction, SenderAddressDerivedFromSender) {
  const Transaction tx = sample_tx(42);
  EXPECT_EQ(tx.sender_address, crypto::address_for_node(NodeId{42}));
}

// --- blocks ------------------------------------------------------------------------

GenesisConfig small_genesis() {
  GenesisConfig config;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    config.initial_endorsers.push_back(EndorserInfo{NodeId{i}, geo::GeoPoint{22.39, 114.1}});
  }
  return config;
}

TEST(Block, BuildLinksAndCommits) {
  const Block genesis = make_genesis_block(small_genesis());
  const Block next = build_block(genesis.header, {sample_tx()}, 0, 0, 1,
                                 TimePoint{Duration::seconds(1).ns}, NodeId{1});
  EXPECT_EQ(next.header.height, 1u);
  EXPECT_EQ(next.header.prev_hash, genesis.hash());
  EXPECT_EQ(next.header.merkle_root, next.compute_merkle_root());
}

TEST(Block, EncodeDecodeRoundtrip) {
  const Block genesis = make_genesis_block(small_genesis());
  const Block next = build_block(genesis.header, {sample_tx(1, 1), sample_tx(2, 1)}, 1, 2, 3,
                                 TimePoint{Duration::seconds(9).ns}, NodeId{3});
  const Bytes encoded = next.encode();
  const auto decoded = Block::decode(BytesView(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), next);
  EXPECT_EQ(decoded.value().hash(), next.hash());
}

TEST(Block, HashCoversHeaderFields) {
  const Block genesis = make_genesis_block(small_genesis());
  Block a = build_block(genesis.header, {sample_tx()}, 0, 0, 1, TimePoint{1}, NodeId{1});
  Block b = a;
  b.header.producer = NodeId{2};
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Block, TotalFees) {
  const Block genesis = make_genesis_block(small_genesis());
  const Block next = build_block(genesis.header, {sample_tx(1, 1), sample_tx(2, 1)}, 0, 0, 1,
                                 TimePoint{1}, NodeId{1});
  EXPECT_EQ(next.total_fees(), 20u);
}

TEST(Block, EmptyBlockHasMerkleRoot) {
  const Block genesis = make_genesis_block(small_genesis());
  const Block next = build_block(genesis.header, {}, 0, 0, 1, TimePoint{1}, NodeId{1});
  EXPECT_FALSE(next.header.merkle_root.is_zero());
}

// --- genesis --------------------------------------------------------------------------

TEST(Genesis, ContainsInitialRosterAsConfigTx) {
  const Block genesis = make_genesis_block(small_genesis());
  ASSERT_EQ(genesis.transactions.size(), 1u);
  EXPECT_EQ(genesis.transactions[0].kind, TxKind::Config);
  EXPECT_EQ(genesis.transactions[0].era_config.era, 0u);
  EXPECT_EQ(genesis.transactions[0].era_config.endorsers.size(), 4u);
  EXPECT_EQ(genesis.header.height, 0u);
  EXPECT_TRUE(genesis.header.prev_hash.is_zero());
}

TEST(Genesis, RecordsCoreDeviceLocations) {
  // §III-C: the genesis block contains the geographic locations of the core
  // devices, carried as enrolled cells in the configuration transaction.
  const Block genesis = make_genesis_block(small_genesis());
  const EraConfig& config = genesis.transactions[0].era_config;
  ASSERT_EQ(config.cells.size(), config.endorsers.size());
  for (const std::string& cell : config.cells) {
    EXPECT_EQ(cell, geo::geohash_encode(geo::GeoPoint{22.39, 114.1}));
  }
}

TEST(Genesis, PolicyLists) {
  AdmittancePolicy policy;
  policy.blacklist = {NodeId{9}};
  policy.whitelist = {NodeId{4}};
  EXPECT_TRUE(policy.blacklisted(NodeId{9}));
  EXPECT_FALSE(policy.blacklisted(NodeId{4}));
  EXPECT_TRUE(policy.whitelisted(NodeId{4}));
  EXPECT_FALSE(policy.whitelisted(NodeId{9}));
}

// --- chain ------------------------------------------------------------------------------

TEST(Chain, AppendsValidBlocks) {
  Chain chain(make_genesis_block(small_genesis()));
  const Block next = build_block(chain.tip().header, {sample_tx()}, 0, 0, 1, TimePoint{1},
                                 NodeId{1});
  ASSERT_TRUE(chain.append(next).ok());
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.at(1), next);
}

TEST(Chain, RejectsWrongHeight) {
  Chain chain(make_genesis_block(small_genesis()));
  Block bad = build_block(chain.tip().header, {sample_tx()}, 0, 0, 1, TimePoint{1}, NodeId{1});
  bad.header.height = 5;
  EXPECT_FALSE(chain.append(bad).ok());
}

TEST(Chain, RejectsBrokenLink) {
  Chain chain(make_genesis_block(small_genesis()));
  Block bad = build_block(chain.tip().header, {sample_tx()}, 0, 0, 1, TimePoint{1}, NodeId{1});
  bad.header.prev_hash.bytes[0] ^= 1;
  EXPECT_FALSE(chain.append(bad).ok());
}

TEST(Chain, RejectsBadMerkleRoot) {
  Chain chain(make_genesis_block(small_genesis()));
  Block bad = build_block(chain.tip().header, {sample_tx()}, 0, 0, 1, TimePoint{1}, NodeId{1});
  bad.transactions.push_back(sample_tx(2, 2));  // body no longer matches root
  EXPECT_FALSE(chain.append(bad).ok());
}

TEST(Chain, FindsTransactionsByDigest) {
  Chain chain(make_genesis_block(small_genesis()));
  const Transaction tx = sample_tx();
  const Block next = build_block(chain.tip().header, {tx}, 0, 0, 1, TimePoint{1}, NodeId{1});
  ASSERT_TRUE(chain.append(next).ok());
  const auto found = chain.find_transaction(tx.digest());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 1u);
  EXPECT_FALSE(chain.find_transaction(sample_tx(9, 9).digest()).has_value());
}

TEST(Chain, TracksEraConfig) {
  Chain chain(make_genesis_block(small_genesis()));
  EXPECT_EQ(chain.current_era_config().era, 0u);
  EraConfig next_era;
  next_era.era = 1;
  next_era.endorsers = {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}};
  const Transaction config_tx =
      make_config_tx(NodeId{1}, 1, next_era, report_at(22.39, 114.1, 60));
  const Block next =
      build_block(chain.tip().header, {config_tx}, 1, 0, 1, TimePoint{1}, NodeId{1});
  ASSERT_TRUE(chain.append(next).ok());
  EXPECT_EQ(chain.current_era_config().era, 1u);
  EXPECT_EQ(chain.current_era_config().endorsers.size(), 5u);
}

TEST(Chain, ObserveHeaderDetectsFork) {
  Chain chain(make_genesis_block(small_genesis()));
  const Block committed =
      build_block(chain.tip().header, {sample_tx()}, 0, 0, 1, TimePoint{1}, NodeId{1});
  ASSERT_TRUE(chain.append(committed).ok());

  // Same header: no fork.
  EXPECT_FALSE(chain.observe_header(committed.header).has_value());

  // A different block at the committed height: fork evidence against its producer.
  Block conflicting =
      build_block(chain.at(0).header, {sample_tx(3, 3)}, 0, 0, 1, TimePoint{2}, NodeId{2});
  const auto evidence = chain.observe_header(conflicting.header);
  ASSERT_TRUE(evidence.has_value());
  EXPECT_EQ(evidence->height, 1u);
  EXPECT_EQ(evidence->producer, NodeId{2});

  // A header above the tip is not (yet) evidence of anything.
  Block future = build_block(committed.header, {}, 0, 0, 2, TimePoint{3}, NodeId{2});
  EXPECT_FALSE(chain.observe_header(future.header).has_value());
}

// --- state ----------------------------------------------------------------------------------

TEST(State, FeeSplitSeventyThirty) {
  State state;
  const std::vector<NodeId> endorsers = {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  Chain chain(make_genesis_block(small_genesis()));

  // One tx with fee 100 from client 50, block produced by endorser 1.
  Transaction tx = make_normal_tx(NodeId{50}, 1, Bytes{1}, 100, report_at(22.39, 114.1, 1));
  const Block block = build_block(chain.tip().header, {tx}, 0, 0, 1, TimePoint{1}, NodeId{1});
  state.apply_block(block, endorsers);

  EXPECT_EQ(state.balance_of_node(NodeId{50}), -100);
  EXPECT_EQ(state.balance_of_node(NodeId{1}), 70);  // producer: 70%
  EXPECT_EQ(state.balance_of_node(NodeId{2}), 10);  // 30% split across 3 peers
  EXPECT_EQ(state.balance_of_node(NodeId{3}), 10);
  EXPECT_EQ(state.balance_of_node(NodeId{4}), 10);
}

TEST(State, RemainderGoesToProducer) {
  State state;
  const std::vector<NodeId> endorsers = {NodeId{1}, NodeId{2}, NodeId{3}};
  Chain chain(make_genesis_block(small_genesis()));
  Transaction tx = make_normal_tx(NodeId{50}, 1, Bytes{1}, 101, report_at(22.39, 114.1, 1));
  const Block block = build_block(chain.tip().header, {tx}, 0, 0, 1, TimePoint{1}, NodeId{1});
  state.apply_block(block, endorsers);
  // floor(101*0.7)=70 producer, pool 31 -> 15 each to 2 peers, remainder 1 to producer.
  EXPECT_EQ(state.balance_of_node(NodeId{1}), 71);
  EXPECT_EQ(state.balance_of_node(NodeId{2}), 15);
  EXPECT_EQ(state.balance_of_node(NodeId{3}), 15);
  // Conservation: sum of credits equals total fees.
  EXPECT_EQ(state.balance_of_node(NodeId{1}) + state.balance_of_node(NodeId{2}) +
                state.balance_of_node(NodeId{3}),
            101);
}

TEST(State, SoloProducerKeepsAll) {
  State state;
  Chain chain(make_genesis_block(small_genesis()));
  Transaction tx = make_normal_tx(NodeId{50}, 1, Bytes{1}, 100, report_at(22.39, 114.1, 1));
  const Block block = build_block(chain.tip().header, {tx}, 0, 0, 1, TimePoint{1}, NodeId{1});
  state.apply_block(block, {NodeId{1}});
  EXPECT_EQ(state.balance_of_node(NodeId{1}), 100);
}

TEST(State, TracksLatestPayloadAndCounters) {
  State state;
  Chain chain(make_genesis_block(small_genesis()));
  Transaction tx1 = make_normal_tx(NodeId{5}, 1, Bytes{1, 1}, 0, report_at(22.39, 114.1, 1));
  Transaction tx2 = make_normal_tx(NodeId{5}, 2, Bytes{2, 2}, 0, report_at(22.39, 114.1, 2));
  const Block block =
      build_block(chain.tip().header, {tx1, tx2}, 0, 0, 1, TimePoint{1}, NodeId{1});
  state.apply_block(block, {NodeId{1}});
  EXPECT_EQ(state.applied_transactions(), 2u);
  EXPECT_EQ(state.applied_blocks(), 1u);
  const auto latest = state.latest_payload(NodeId{5});
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, (Bytes{2, 2}));
  EXPECT_FALSE(state.latest_payload(NodeId{6}).has_value());
}

// --- mempool -----------------------------------------------------------------------------------

TEST(Mempool, AddAndPopFifo) {
  Mempool pool;
  const Transaction a = sample_tx(1, 1), b = sample_tx(1, 2);
  EXPECT_TRUE(pool.add(a));
  EXPECT_TRUE(pool.add(b));
  EXPECT_EQ(pool.size(), 2u);

  const auto batch = pool.pop_batch(10, nullptr);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], a);
  EXPECT_EQ(batch[1], b);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, RejectsDuplicates) {
  Mempool pool;
  EXPECT_TRUE(pool.add(sample_tx()));
  EXPECT_FALSE(pool.add(sample_tx()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, RespectsCapacity) {
  Mempool pool(2);
  EXPECT_TRUE(pool.add(sample_tx(1, 1)));
  EXPECT_TRUE(pool.add(sample_tx(1, 2)));
  EXPECT_FALSE(pool.add(sample_tx(1, 3)));
}

TEST(Mempool, PopBatchSkipsCommitted) {
  Mempool pool;
  const Transaction a = sample_tx(1, 1), b = sample_tx(1, 2);
  pool.add(a);
  pool.add(b);
  const crypto::Hash256 committed = a.digest();
  const auto batch =
      pool.pop_batch(10, [&committed](const crypto::Hash256& d) { return d == committed; });
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], b);
}

TEST(Mempool, PopBatchBounded) {
  Mempool pool;
  for (RequestId i = 1; i <= 10; ++i) pool.add(sample_tx(1, i));
  EXPECT_EQ(pool.pop_batch(3, nullptr).size(), 3u);
  EXPECT_EQ(pool.size(), 7u);
}

TEST(Mempool, RemoveByDigest) {
  Mempool pool;
  const Transaction a = sample_tx(1, 1);
  pool.add(a);
  pool.add(sample_tx(1, 2));
  pool.remove(a.digest());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.contains(a.digest()));
  // Re-adding after removal works (digest index consistent).
  EXPECT_TRUE(pool.add(a));
}

TEST(Mempool, ClearEmptiesEverything) {
  Mempool pool;
  pool.add(sample_tx(1, 1));
  pool.clear();
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.add(sample_tx(1, 1)));
}

}  // namespace
}  // namespace gpbft::ledger
