// Unit and property tests for the serde binary codec.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::serde {
namespace {

TEST(Serde, FixedWidthRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_FALSE(r.boolean().value());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.buffer(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Serde, VarintKnownEncodings) {
  {
    Writer w;
    w.varint(0);
    EXPECT_EQ(w.buffer(), Bytes{0x00});
  }
  {
    Writer w;
    w.varint(127);
    EXPECT_EQ(w.buffer(), Bytes{0x7f});
  }
  {
    Writer w;
    w.varint(128);
    EXPECT_EQ(w.buffer(), (Bytes{0x80, 0x01}));
  }
  {
    Writer w;
    w.varint(300);
    EXPECT_EQ(w.buffer(), (Bytes{0xac, 0x02}));
  }
}

TEST(Serde, VarintMaxValue) {
  Writer w;
  w.varint(~0ull);
  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  EXPECT_EQ(r.varint().value(), ~0ull);
}

TEST(Serde, StringsAndBytes) {
  Writer w;
  w.string("hello");
  w.bytes(Bytes{1, 2, 3});
  w.string("");

  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  EXPECT_EQ(r.string().value(), "hello");
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.string().value(), "");
  EXPECT_TRUE(r.exhausted());
}

// --- malformed input never crashes, always errors ------------------------------

TEST(Serde, TruncatedFixedWidth) {
  const Bytes data{0x01, 0x02};
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_FALSE(r.u32().ok());
}

TEST(Serde, TruncatedVarint) {
  const Bytes data{0x80, 0x80};  // continuation bits with no terminator
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_FALSE(r.varint().ok());
}

TEST(Serde, OverlongVarintRejected) {
  const Bytes data(11, 0x80);  // > 10 groups of 7 bits
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_FALSE(r.varint().ok());
}

TEST(Serde, LengthPrefixExceedingLimitRejected) {
  Writer w;
  w.varint(1'000'000);  // claimed length with no payload
  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  EXPECT_FALSE(r.bytes(1024).ok());
}

TEST(Serde, LengthPrefixLongerThanInputRejected) {
  Writer w;
  w.varint(100);
  w.raw(Bytes{1, 2, 3});
  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  EXPECT_FALSE(r.bytes().ok());
}

TEST(Serde, InvalidBoolByteRejected) {
  const Bytes data{0x02};
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_FALSE(r.boolean().ok());
}

TEST(Serde, EmptyInputErrorsOnEverything) {
  Reader r(BytesView{});
  EXPECT_FALSE(r.u8().ok());
  EXPECT_FALSE(r.u64().ok());
  EXPECT_FALSE(r.varint().ok());
  EXPECT_FALSE(r.bytes().ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, VarintShift63AliasRejected) {
  // The 10th varint group can only contribute its low bit to a u64; any
  // higher payload bit would be shifted out silently, letting two distinct
  // encodings alias to one value.
  Bytes overflow(9, 0x80);
  overflow.push_back(0x02);
  Reader bad(BytesView(overflow.data(), overflow.size()));
  EXPECT_FALSE(bad.varint().ok());

  Bytes top_bit(9, 0x80);
  top_bit.push_back(0x01);
  Reader good(BytesView(top_bit.data(), top_bit.size()));
  auto v = good.varint();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 1ull << 63);
}

TEST(Serde, OversizeDeclaredLengthRejectedBeforeAllocation) {
  // A forged ~2^34-byte length prefix (the tamper adversary's oversize
  // family) must fall to the length checks alone — no allocation sized
  // from attacker-controlled bytes.
  const Bytes data{0xff, 0xff, 0xff, 0xff, 0x3f, 0xaa, 0xbb};
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_FALSE(r.bytes().ok());
  Reader s(BytesView(data.data(), data.size()));
  EXPECT_FALSE(s.string().ok());
}

TEST(Serde, RawBeyondRemainingRejectedWithoutConsuming) {
  const Bytes data{1, 2, 3};
  Reader r(BytesView(data.data(), data.size()));
  EXPECT_FALSE(r.raw(4).ok());
  auto ok = r.raw(3);  // the failed read must not have moved the cursor
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (Bytes{1, 2, 3}));
}

// --- property: roundtrips over random payloads -----------------------------------

class SerdeRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerdeRoundtrip, RandomSequenceRoundtrips) {
  Rng rng(GetParam());
  // Random sequence of typed fields, recorded, then replayed.
  struct Field {
    int kind;
    std::uint64_t integer;
    double real;
    Bytes blob;
  };
  std::vector<Field> fields;
  Writer w;
  const int count = static_cast<int>(rng.uniform(1, 40));
  for (int i = 0; i < count; ++i) {
    Field f;
    f.kind = static_cast<int>(rng.uniform(0, 4));
    switch (f.kind) {
      case 0:
        f.integer = rng.next();
        w.u64(f.integer);
        break;
      case 1:
        f.integer = rng.next();
        w.varint(f.integer);
        break;
      case 2:
        f.real = rng.uniform_real(-1e12, 1e12);
        w.f64(f.real);
        break;
      case 3: {
        const std::size_t len = rng.uniform(0, 64);
        f.blob.resize(len);
        for (auto& b : f.blob) b = static_cast<std::uint8_t>(rng.next());
        w.bytes(BytesView(f.blob.data(), f.blob.size()));
        break;
      }
      case 4:
        f.integer = rng.uniform(0, 1);
        w.boolean(f.integer == 1);
        break;
      default:
        break;
    }
    fields.push_back(std::move(f));
  }

  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  for (const Field& f : fields) {
    switch (f.kind) {
      case 0:
        EXPECT_EQ(r.u64().value(), f.integer);
        break;
      case 1:
        EXPECT_EQ(r.varint().value(), f.integer);
        break;
      case 2:
        EXPECT_DOUBLE_EQ(r.f64().value(), f.real);
        break;
      case 3:
        EXPECT_EQ(r.bytes().value(), f.blob);
        break;
      case 4:
        EXPECT_EQ(r.boolean().value(), f.integer == 1);
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace gpbft::serde
