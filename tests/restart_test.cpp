// Crash–restart durability tests: the simulated disk's fault semantics,
// restart_node recovery on every protocol stack (PBFT / G-PBFT / dBFT /
// PoW), the corrupt-image → genesis → chain-sync fallback, a G-PBFT
// restart across an era switch, and seed-for-seed determinism of runs
// that include restarts.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "pbft/client.hpp"
#include "sim/deployment.hpp"
#include "sim/invariants.hpp"
#include "sim/storage.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

Bytes test_image(std::size_t n, std::uint8_t seed = 1) {
  Bytes image(n);
  for (std::size_t i = 0; i < n; ++i) image[i] = static_cast<std::uint8_t>(seed + i);
  return image;
}

// --- SimDisk -------------------------------------------------------------------------

TEST(SimDisk, SaveStoresTheImage) {
  SimDisk disk(Rng{1});
  EXPECT_TRUE(disk.empty());
  disk.save(test_image(64));
  EXPECT_EQ(disk.image(), test_image(64));
  EXPECT_EQ(disk.saves(), 1u);
  EXPECT_EQ(disk.faults_applied(), 0u);
}

TEST(SimDisk, TornWriteTruncatesTheNextSaveOnly) {
  SimDisk disk(Rng{2});
  disk.inject(DiskFaultKind::TornWrite);
  const Bytes full = test_image(64);
  disk.save(full);
  EXPECT_LT(disk.image().size(), 64u);  // strict prefix, possibly empty
  EXPECT_EQ(disk.image(),
            Bytes(full.begin(),
                  full.begin() + static_cast<std::ptrdiff_t>(disk.image().size())));
  EXPECT_EQ(disk.faults_applied(), 1u);
  disk.save(test_image(64));  // the fault was one-shot
  EXPECT_EQ(disk.image(), test_image(64));
}

TEST(SimDisk, BitRotFlipsExactlyOneBitInPlace) {
  SimDisk disk(Rng{3});
  disk.save(test_image(64));
  disk.inject(DiskFaultKind::BitRot);
  const Bytes& rotten = disk.image();
  const Bytes clean = test_image(64);
  ASSERT_EQ(rotten.size(), clean.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(rotten[i] ^ clean[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff = static_cast<std::uint8_t>(diff >> 1);
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(disk.faults_applied(), 1u);
}

TEST(SimDisk, StaleSnapshotRevertsToThePreviousImage) {
  SimDisk disk(Rng{4});
  disk.save(test_image(32, 10));
  disk.save(test_image(32, 99));
  disk.inject(DiskFaultKind::StaleSnapshot);
  EXPECT_EQ(disk.image(), test_image(32, 10));
  EXPECT_EQ(disk.faults_applied(), 1u);
}

TEST(SimDisk, FaultsOnAnEmptyDiskAreNoops) {
  SimDisk disk(Rng{5});
  disk.inject(DiskFaultKind::BitRot);
  disk.inject(DiskFaultKind::StaleSnapshot);
  EXPECT_TRUE(disk.empty());
  EXPECT_EQ(disk.faults_applied(), 0u);
}

TEST(StorageFabric, DisksAreCreatedOnDemandPerNode) {
  StorageFabric fabric(7);
  EXPECT_FALSE(fabric.has(NodeId{1}));
  fabric.disk(NodeId{1}).save(test_image(8));
  EXPECT_TRUE(fabric.has(NodeId{1}));
  EXPECT_FALSE(fabric.has(NodeId{2}));
  // Arming a fault before the node's first save also creates the disk.
  fabric.inject(NodeId{2}, DiskFaultKind::TornWrite);
  EXPECT_TRUE(fabric.has(NodeId{2}));
  EXPECT_EQ(fabric.disk(NodeId{1}).image(), test_image(8));
}

// --- restart recovery per protocol ----------------------------------------------------

ScenarioSpec pbft_spec() {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = 42;
  spec.engine.checkpoint_interval = 2;  // persist early and often
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;
  return spec;
}

struct MonitoredRun {
  std::uint64_t committed{0};
  std::uint64_t restarts{0};
  bool done{false};
  std::string report;
  bool clean{false};
};

/// Runs `spec` with the monitor attached, restarting `victim` at
/// `restart_at`, optionally corrupting its disk just before the reboot.
MonitoredRun run_with_restart(const ScenarioSpec& spec, NodeId victim, Duration restart_at,
                              const DiskFaultKind* corrupt = nullptr) {
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  InvariantMonitor monitor(deployment->simulator());
  deployment->watch(monitor);
  deployment->start();
  deployment->schedule_workload(spec.workload, nullptr,
                                [&monitor](const ledger::Transaction& tx) {
                                  monitor.expect_submission(tx);
                                });
  Deployment* raw = deployment.get();
  const DiskFaultKind fault = corrupt != nullptr ? *corrupt : DiskFaultKind::TornWrite;
  const bool inject = corrupt != nullptr;
  deployment->simulator().schedule(restart_at, [raw, victim, inject, fault]() {
    if (inject) raw->inject_disk_fault(victim, fault);
    ASSERT_TRUE(raw->restart_node(victim));
  });

  MonitoredRun out;
  out.done = deployment->run_until_committed(spec.workload.txs_per_client,
                                             TimePoint{spec.deadline.ns});
  // Let the restarted node finish resyncing the agreed prefix.
  deployment->run_for(spec.engine.request_timeout * 3);
  deployment->stop();
  deployment->finish_invariants(monitor);
  monitor.check_restart_convergence();
  out.committed = deployment->committed_count();
  out.restarts = monitor.restarts_observed();
  out.report = monitor.report();
  out.clean = monitor.clean();
  return out;
}

TEST(Restart, PbftReplicaRecoversFromItsDisk) {
  const MonitoredRun run = run_with_restart(pbft_spec(), NodeId{3}, Duration::seconds(6));
  EXPECT_TRUE(run.done);
  EXPECT_EQ(run.committed, 8u);
  EXPECT_EQ(run.restarts, 1u);
  EXPECT_TRUE(run.clean) << run.report;
}

TEST(Restart, CorruptDiskFallsBackToGenesisAndResyncs) {
  // Bit rot right before the reboot: the integrity tail rejects the image,
  // the replica restarts at genesis and chain sync closes the whole gap.
  const DiskFaultKind rot = DiskFaultKind::BitRot;
  const MonitoredRun run = run_with_restart(pbft_spec(), NodeId{3}, Duration::seconds(10), &rot);
  EXPECT_TRUE(run.done);
  EXPECT_EQ(run.committed, 8u);
  EXPECT_TRUE(run.clean) << run.report;
}

TEST(Restart, DbftDelegateRecoversMidEpoch) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Dbft;
  spec.nodes = 7;
  spec.clients = 2;
  spec.seed = 3;
  spec.dbft.block_interval = Duration::seconds(2);
  spec.workload.period = Duration::seconds(1);
  spec.workload.txs_per_client = 3;
  const MonitoredRun run = run_with_restart(spec, NodeId{5}, Duration::seconds(5));
  EXPECT_TRUE(run.done);
  EXPECT_EQ(run.committed, 6u);
  EXPECT_TRUE(run.clean) << run.report;
}

TEST(Restart, PowMinerRejoinsFromItsPersistedTip) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pow;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = 9;
  spec.pow.block_interval = Duration::seconds(3);
  spec.pow.confirmations = 2;
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 2;
  spec.deadline = Duration::seconds(2000);
  const MonitoredRun run = run_with_restart(spec, NodeId{3}, Duration::seconds(12));
  EXPECT_TRUE(run.done);
  EXPECT_EQ(run.committed, 4u);
  EXPECT_TRUE(run.clean) << run.report;
}

TEST(Restart, UnknownNodeIsRejected) {
  const std::unique_ptr<Deployment> deployment = make_deployment(pbft_spec());
  deployment->start();
  EXPECT_FALSE(deployment->restart_node(NodeId{999}));
  EXPECT_FALSE(deployment->restart_node(NodeId{kClientIdBase + 1}));
  deployment->stop();
}

// --- G-PBFT restart across an era switch ----------------------------------------------

TEST(Restart, GpbftEndorserRestartsAcrossEraSwitch) {
  // Same shape as the G-PBFT parity scenario: an era switch at ~15s promotes
  // both candidates. Restarting an endorser after the switch must re-derive
  // the era, roster and producer order from the persisted config blocks.
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Gpbft;
  spec.nodes = 6;
  spec.clients = 2;
  spec.seed = 7;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 6;
  spec.committee.era_period = Duration::seconds(15);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;

  const std::unique_ptr<GpbftCluster> cluster = make_gpbft_deployment(spec);
  InvariantMonitor monitor(cluster->simulator());
  cluster->watch(monitor);
  cluster->start();
  cluster->schedule_workload(spec.workload, nullptr,
                             [&monitor](const ledger::Transaction& tx) {
                               monitor.expect_submission(tx);
                             });
  GpbftCluster* raw = cluster.get();
  // The single era switch of this scenario lands between 30s and 35s.
  cluster->simulator().schedule(Duration::seconds(40), [raw]() {
    ASSERT_GE(raw->era(), 1u);  // the switch happened before the reboot
    ASSERT_TRUE(raw->restart_node(NodeId{2}));
  });
  cluster->run_for(Duration::seconds(60));
  cluster->run_for(spec.engine.request_timeout * 3);
  cluster->stop();
  cluster->finish_invariants(monitor);
  monitor.check_restart_convergence();

  EXPECT_GE(cluster->total_era_switches(), 1u);
  EXPECT_EQ(cluster->committee_size(), 6u);  // both candidates promoted
  EXPECT_EQ(monitor.restarts_observed(), 1u);
  EXPECT_TRUE(monitor.clean()) << monitor.report();
  // The rebooted endorser re-joined the post-switch roster view and holds
  // the same chain as an endorser that never went down.
  EXPECT_EQ(cluster->endorser(1).chain().height(), cluster->endorser(0).chain().height());
  EXPECT_EQ(cluster->endorser(1).chain().tip().hash().hex(),
            cluster->endorser(0).chain().tip().hash().hex());
}

// --- client retry backoff cap ---------------------------------------------------------

/// Committee member that records when each (re)transmitted REQUEST arrives
/// and never replies, so the client keeps backing off indefinitely.
class RequestSink : public net::INetNode {
 public:
  RequestSink(NodeId id, net::Network& network) : id_(id), network_(network) {
    network.attach(this);
  }
  [[nodiscard]] NodeId id() const override { return id_; }
  void handle(const net::Envelope& envelope) override {
    if (envelope.type == pbft::msg_type::kClientRequest) {
      arrivals_.push_back(network_.simulator().now());
    }
  }
  [[nodiscard]] const std::vector<TimePoint>& arrivals() const { return arrivals_; }

 private:
  NodeId id_;
  net::Network& network_;
  std::vector<TimePoint> arrivals_;
};

/// One unanswered submission against a single silent endorser: returns the
/// REQUEST arrival times over a 400 s horizon.
std::vector<TimePoint> retry_arrivals(Duration cap, std::uint64_t seed) {
  net::Simulator sim(seed);
  net::Network network(sim, net::NetConfig{});
  crypto::KeyRegistry keys(seed);
  const NodeId endorser{1};
  RequestSink sink(endorser, network);
  pbft::Client client(NodeId{kClientIdBase + 1}, {endorser}, network, keys,
                      /*compute_macs=*/false);
  client.set_retry_interval(Duration::seconds(10));
  client.set_max_backoff(cap);
  client.start();
  sim.schedule(Duration::seconds(1), [&client, &sim]() {
    client.submit(make_workload_tx(client.id(), 1, geo::GeoPoint{22.3964, 114.1095}, sim.now(),
                                   16, 1, 0));
  });
  sim.run_until(TimePoint{Duration::seconds(400).ns});
  client.stop();
  return sink.arrivals();
}

TEST(ClientBackoff, MaxBackoffBoundsEveryRetryGap) {
  // Cap 12 s over a 10 s base: uncapped, the exponential reaches 80 s
  // (+jitter); capped, no gap between consecutive resends may exceed the
  // cap plus the retry-tick half-interval (resends are only evaluated at
  // tick granularity).
  const Duration cap = Duration::seconds(12);
  const std::vector<TimePoint> capped = retry_arrivals(cap, 11);
  const std::vector<TimePoint> uncapped = retry_arrivals(Duration{0}, 11);

  ASSERT_GE(capped.size(), 20u);  // ~400 s / (cap + tick slack)
  const std::int64_t slack = Duration::seconds(5).ns + Duration::millis(100).ns;
  std::int64_t max_capped_gap = 0;
  for (std::size_t i = 1; i < capped.size(); ++i) {
    max_capped_gap = std::max(max_capped_gap, capped[i].ns - capped[i - 1].ns);
  }
  EXPECT_LE(max_capped_gap, cap.ns + slack);

  // The uncapped run demonstrates the cap did something: its exponential
  // gaps blow past the capped ceiling and it resends far less often.
  std::int64_t max_uncapped_gap = 0;
  for (std::size_t i = 1; i < uncapped.size(); ++i) {
    max_uncapped_gap = std::max(max_uncapped_gap, uncapped[i].ns - uncapped[i - 1].ns);
  }
  EXPECT_GT(max_uncapped_gap, cap.ns + slack);
  EXPECT_LT(uncapped.size() * 2, capped.size());
}

TEST(ClientBackoff, JitterStreamIsDeterministicWithAndWithoutCap) {
  // Same seed, same cap -> byte-identical retry schedules; and the very
  // first delivery (clamp applies after the jitter draw) coincides between
  // capped and uncapped runs, so arming a cap never shifts the RNG stream.
  const Duration cap = Duration::seconds(12);
  const std::vector<TimePoint> first = retry_arrivals(cap, 23);
  const std::vector<TimePoint> second = retry_arrivals(cap, 23);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i].ns, second[i].ns);

  const std::vector<TimePoint> uncapped = retry_arrivals(Duration{0}, 23);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(uncapped.empty());
  EXPECT_EQ(first.front().ns, uncapped.front().ns);
}

// --- determinism ----------------------------------------------------------------------

TEST(Restart, RunsWithRestartsAreSeedDeterministic) {
  auto tip_of = [](const ScenarioSpec& spec) {
    const std::unique_ptr<PbftCluster> cluster = make_pbft_deployment(spec);
    cluster->start();
    cluster->schedule_workload(spec.workload, nullptr);
    PbftCluster* raw = cluster.get();
    cluster->simulator().schedule(Duration::seconds(6), [raw]() {
      (void)raw->restart_node(NodeId{2});
    });
    cluster->simulator().schedule(Duration::seconds(9), [raw]() {
      raw->inject_disk_fault(NodeId{4}, DiskFaultKind::BitRot);
      (void)raw->restart_node(NodeId{4});
    });
    cluster->run_until_committed(spec.workload.txs_per_client,
                                 TimePoint{Duration::seconds(600).ns});
    cluster->run_for(spec.engine.request_timeout * 3);
    cluster->stop();
    return cluster->replica(0).chain().tip().hash().hex() + "/" +
           std::to_string(cluster->committed_count());
  };
  const ScenarioSpec spec = pbft_spec();
  const std::string first = tip_of(spec);
  const std::string second = tip_of(spec);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("/8"), std::string::npos) << first;
}

}  // namespace
}  // namespace gpbft::sim
