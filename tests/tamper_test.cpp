// Wire-tamper chaos suite (tier1-tamper): the in-flight Byzantine adversary
// against all four protocol stacks.
//
//  * Replace storms (MITM) must leave every run crash-free and
//    invariant-clean — mutants double as loss, so consensus rides its
//    timeout/recovery machinery through them.
//  * Inject storms (man-on-the-side) are held to the stronger REJECT-SAFE
//    bar: with MACs on, the tampered run's chain tip must be byte-identical
//    to the clean run's at the same seed (docs/protocol.md §12).
//  * Fault plans with tamper windows stay deterministic, and zero-chance
//    plans are byte-identical to pre-tamper ones (the golden-hash
//    guarantee rests on this).
//
// CI additionally sweeps 20 seeds per protocol under ASan+UBSan via
// `gpbft_cli chaos --tamper` / `--reject-safe` (scripts/ci.sh); this suite
// keeps a smaller, always-on slice of that coverage in the tier-1 gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/chaos.hpp"

namespace gpbft::sim {
namespace {

ChaosCampaignOptions quick_options() {
  ChaosCampaignOptions options;
  options.seeds = 2;
  options.base_seed = 1;
  options.committee = 7;
  options.candidates = 2;
  options.clients = 2;
  options.txs_per_client = 6;
  return options;
}

TEST(TamperChaos, ReplaceStormAllProtocolsNoViolations) {
  ChaosCampaignOptions options = quick_options();
  options.intensities = {"none"};  // isolate the wire adversary
  options.tamper_chance = 0.75;
  options.tamper_template.mode = net::TamperRule::Mode::Replace;
  const ChaosCampaignResult result = run_chaos_campaign(options);

  ASSERT_EQ(result.runs.size(), 8u);  // 4 protocols x 2 seeds
  for (const auto& run : result.runs) {
    EXPECT_TRUE(run.passed()) << run.protocol << " seed " << run.seed << ": "
                              << run.violations.size() << " violations";
    EXPECT_EQ(run.committed, run.expected)
        << run.protocol << " seed " << run.seed << " lost liveness under the storm";
    EXPECT_GT(run.fault_events, 0u) << "no tamper window ever opened";
  }
}

TEST(TamperChaos, ReplaceStormOnTopOfNodeFaults) {
  // The wire adversary composes with the light node-fault profile: crashes
  // and link faults underneath, mutated bytes on top.
  ChaosCampaignOptions options = quick_options();
  options.seeds = 1;
  options.intensities = {"light"};
  options.tamper_chance = 0.5;
  options.tamper_template.mode = net::TamperRule::Mode::Replace;
  const ChaosCampaignResult result = run_chaos_campaign(options);

  ASSERT_EQ(result.runs.size(), 4u);
  for (const auto& run : result.runs) {
    EXPECT_TRUE(run.passed()) << run.protocol << " seed " << run.seed;
  }
}

TEST(TamperChaos, RejectSafeTipIdentityAcrossProtocols) {
  ChaosCampaignOptions options = quick_options();
  const ChaosCampaignResult result = run_tamper_campaign(options);

  ASSERT_EQ(result.runs.size(), 8u);
  for (const auto& run : result.runs) {
    EXPECT_TRUE(run.passed()) << run.protocol << " seed " << run.seed << ": "
                              << (run.violations.empty() ? ""
                                                         : run.violations.front().detail);
    EXPECT_EQ(run.intensity, "inject");
    EXPECT_FALSE(run.tip_hex.empty());
    EXPECT_EQ(run.committed, run.expected) << run.protocol << " seed " << run.seed;
  }
}

TEST(TamperChaos, CampaignsAreDeterministic) {
  ChaosCampaignOptions options = quick_options();
  options.seeds = 1;
  const ChaosCampaignResult first = run_tamper_campaign(options);
  const ChaosCampaignResult second = run_tamper_campaign(options);
  ASSERT_EQ(first.runs.size(), second.runs.size());
  for (std::size_t i = 0; i < first.runs.size(); ++i) {
    EXPECT_EQ(first.runs[i].tip_hex, second.runs[i].tip_hex);
    EXPECT_EQ(first.runs[i].committed, second.runs[i].committed);
    EXPECT_EQ(first.runs[i].violations.size(), second.runs[i].violations.size());
  }
  EXPECT_EQ(first.summary(), second.summary());
}

// --- fault-plan generation --------------------------------------------------

std::vector<NodeId> plan_nodes() {
  return {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}, NodeId{6}, NodeId{7}};
}

TEST(TamperChaos, ZeroChancePlansAreByteIdentical) {
  // The tamper stream is forked off the plan seed: leaving tamper_chance at
  // zero must reproduce the pre-tamper plan exactly, event for event. Every
  // golden hash in the repo rests on this property.
  ChaosProfile with_stream = ChaosProfile::medium();
  ASSERT_EQ(with_stream.tamper_chance, 0.0);
  const ChaosProfile baseline = ChaosProfile::medium();
  const FaultPlan a = FaultPlan::random(42, baseline, plan_nodes(), Duration::seconds(60));
  const FaultPlan b = FaultPlan::random(42, with_stream, plan_nodes(), Duration::seconds(60));
  EXPECT_EQ(a.describe(), b.describe());
  for (const auto& event : a.events()) {
    EXPECT_NE(event.kind, ChaosEvent::Kind::Tamper);
    EXPECT_NE(event.kind, ChaosEvent::Kind::TamperHeal);
  }
}

TEST(TamperChaos, TamperWindowsPairWithHealsAndNeverOverlap) {
  ChaosProfile profile = profile_for("none");
  profile.tamper_chance = 1.0;
  const FaultPlan plan = FaultPlan::random(7, profile, plan_nodes(), Duration::seconds(60));
  int open = 0;
  std::size_t windows = 0;
  for (const auto& event : plan.events()) {
    if (event.kind == ChaosEvent::Kind::Tamper) {
      EXPECT_EQ(open, 0) << "overlapping tamper windows at " << event.at.to_seconds() << "s";
      EXPECT_GT(event.tamper_rule.chance, 0.0);
      ++open;
      ++windows;
    } else if (event.kind == ChaosEvent::Kind::TamperHeal) {
      ASSERT_EQ(open, 1);
      --open;
    }
  }
  EXPECT_EQ(open, 0) << "a tamper window was never healed";
  EXPECT_GT(windows, 0u);
}

TEST(TamperChaos, PlansWithTamperAreDeterministic) {
  ChaosProfile profile = ChaosProfile::light();
  profile.tamper_chance = 0.5;
  const FaultPlan a = FaultPlan::random(9, profile, plan_nodes(), Duration::seconds(60));
  const FaultPlan b = FaultPlan::random(9, profile, plan_nodes(), Duration::seconds(60));
  EXPECT_EQ(a.describe(), b.describe());
  const FaultPlan c = FaultPlan::random(10, profile, plan_nodes(), Duration::seconds(60));
  EXPECT_NE(a.describe(), c.describe());
}

}  // namespace
}  // namespace gpbft::sim
