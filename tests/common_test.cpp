// Unit tests for src/common: bytes/hex, rng, result, sim_time, types.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace gpbft {
namespace {

// --- bytes / hex -------------------------------------------------------------

TEST(Bytes, HexRoundtrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back.value(), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  const auto back = from_hex("");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Bytes, HexUppercaseAccepted) {
  const auto parsed = from_hex("DEADBEEF");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_hex(parsed.value()), "deadbeef");
}

TEST(Bytes, HexRejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Bytes, HexRejectsNonHexCharacters) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
  EXPECT_FALSE(from_hex("  ").has_value());
}

TEST(Bytes, StringConversionRoundtrip) {
  const std::string text = "sensor-reading:23.5C";
  EXPECT_EQ(to_string(to_bytes(text)), text);
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kTrials, 2.0, 0.1);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(5);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (child_a.next() != child_b.next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent_a(5), parent_b(5);
  Rng child_a = parent_a.fork(9);
  Rng child_b = parent_b.fork(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child_a.next(), child_b.next());
}

// --- result ---------------------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = make_error("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
}

TEST(Result, VoidSpecialisation) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> bad = make_error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
}

// --- sim_time ----------------------------------------------------------------------

TEST(SimTime, DurationConstructors) {
  EXPECT_EQ(Duration::seconds(2).ns, 2'000'000'000);
  EXPECT_EQ(Duration::millis(3).ns, 3'000'000);
  EXPECT_EQ(Duration::micros(4).ns, 4'000);
  EXPECT_EQ(Duration::hours(1).ns, 3'600'000'000'000);
  EXPECT_EQ(Duration::minutes(2).ns, 120'000'000'000);
}

TEST(SimTime, Arithmetic) {
  const TimePoint t{Duration::seconds(10).ns};
  const TimePoint later = t + Duration::seconds(5);
  EXPECT_EQ((later - t).ns, Duration::seconds(5).ns);
  EXPECT_EQ((Duration::seconds(6) / 2).ns, Duration::seconds(3).ns);
  EXPECT_EQ((Duration::seconds(6) * 2).ns, Duration::seconds(12).ns);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::from_seconds(0.25).to_seconds(), 0.25);
}

TEST(SimTime, FormatHms) {
  EXPECT_EQ(format_hms(Duration::hours(6) + Duration::minutes(56) + Duration::seconds(4)),
            "06:56:04");
  EXPECT_EQ(format_hms(Duration::hours(12) + Duration::minutes(56) + Duration::seconds(4)),
            "12:56:04");
  EXPECT_EQ(format_hms(Duration{0}), "00:00:00");
}

// --- types ----------------------------------------------------------------------------

TEST(Types, NodeIdOrderingAndHash) {
  const NodeId a{1}, b{2}, c{1};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, c);
  std::unordered_set<NodeId> set{a, b, c};
  EXPECT_EQ(set.size(), 2u);
  std::set<NodeId> ordered{b, a};
  EXPECT_EQ(ordered.begin()->value, 1u);
}

TEST(Types, NodeIdString) { EXPECT_EQ(NodeId{7}.str(), "node-7"); }

}  // namespace
}  // namespace gpbft
