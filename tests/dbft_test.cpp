// dBFT baseline tests: stake registry, vote transactions, two-phase
// finality, speaker rotation, block pacing, and epoch re-election.
#include <gtest/gtest.h>

#include <memory>

#include "dbft/delegate.hpp"
#include "ledger/genesis.hpp"
#include "pbft/client.hpp"
#include "sim/workload.hpp"

namespace gpbft::dbft {
namespace {

// --- stake registry ----------------------------------------------------------

TEST(StakeRegistry, ElectsByVotedWeight) {
  StakeRegistry registry;
  registry.set_stake(NodeId{10}, 100);
  registry.set_stake(NodeId{11}, 50);
  registry.set_stake(NodeId{12}, 25);
  registry.vote(NodeId{10}, NodeId{1});
  registry.vote(NodeId{11}, NodeId{2});
  registry.vote(NodeId{12}, NodeId{2});

  EXPECT_EQ(registry.weight_of(NodeId{1}), 100u);
  EXPECT_EQ(registry.weight_of(NodeId{2}), 75u);
  const auto elected = registry.elect(2);
  ASSERT_EQ(elected.size(), 2u);
  EXPECT_EQ(elected[0], NodeId{1});
  EXPECT_EQ(elected[1], NodeId{2});
}

TEST(StakeRegistry, RevoteReplacesPreviousVote) {
  StakeRegistry registry;
  registry.set_stake(NodeId{10}, 100);
  registry.vote(NodeId{10}, NodeId{1});
  registry.vote(NodeId{10}, NodeId{2});
  EXPECT_EQ(registry.weight_of(NodeId{1}), 0u);
  EXPECT_EQ(registry.weight_of(NodeId{2}), 100u);
}

TEST(StakeRegistry, TiesBreakByLowerId) {
  StakeRegistry registry;
  registry.set_stake(NodeId{10}, 50);
  registry.set_stake(NodeId{11}, 50);
  registry.vote(NodeId{10}, NodeId{7});
  registry.vote(NodeId{11}, NodeId{3});
  const auto elected = registry.elect(2);
  ASSERT_EQ(elected.size(), 2u);
  EXPECT_EQ(elected[0], NodeId{3});
}

TEST(StakeRegistry, ZeroWeightNotElected) {
  StakeRegistry registry;
  registry.set_stake(NodeId{10}, 0);  // voter with no stake
  registry.vote(NodeId{10}, NodeId{1});
  EXPECT_TRUE(registry.elect(3).empty());
}

TEST(StakeRegistry, ElectCapsAtCount) {
  StakeRegistry registry;
  for (std::uint64_t i = 0; i < 10; ++i) {
    registry.set_stake(NodeId{100 + i}, 10 + i);
    registry.vote(NodeId{100 + i}, NodeId{i});
  }
  EXPECT_EQ(registry.elect(4).size(), 4u);
}

// --- vote transactions -----------------------------------------------------------

geo::GeoReport geo_here() {
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  return report;
}

TEST(VoteTx, RoundtripAndParse) {
  const ledger::Transaction vote = make_vote_tx(NodeId{10}, 1, NodeId{3}, geo_here());
  const auto parsed = parse_vote_tx(vote);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, NodeId{3});

  // Survives wire encoding.
  const Bytes encoded = vote.encode();
  const auto decoded = ledger::Transaction::decode(BytesView(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(parse_vote_tx(decoded.value()), NodeId{3});
}

TEST(VoteTx, NonVotesReturnNullopt) {
  EXPECT_FALSE(parse_vote_tx(ledger::make_normal_tx(NodeId{1}, 1, Bytes{1, 2}, 5, geo_here()))
                   .has_value());
  EXPECT_FALSE(parse_vote_tx(ledger::make_geo_report_tx(NodeId{1}, 1, geo_here())).has_value());
}

// --- delegate network fixture -------------------------------------------------------

struct DbftNet {
  net::Simulator sim{17};
  net::NetConfig net_config;
  std::unique_ptr<net::Network> network;
  crypto::KeyRegistry keys{17};
  std::vector<std::unique_ptr<Delegate>> nodes;
  std::vector<std::unique_ptr<pbft::Client>> clients;

  /// `total` dBFT nodes (ids 1..total); the first `delegates` form the
  /// genesis roster. Stakeholders 10001.. with stake 100 each.
  DbftNet(std::size_t total, std::size_t delegates, DbftConfig config,
          std::size_t client_count = 1) {
    network = std::make_unique<net::Network>(sim, net_config);

    ledger::GenesisConfig genesis_config;
    for (std::size_t i = 0; i < delegates; ++i) {
      genesis_config.initial_endorsers.push_back(
          ledger::EndorserInfo{NodeId{i + 1}, geo::GeoPoint{22.39, 114.10}});
    }
    const ledger::Block genesis = ledger::make_genesis_block(genesis_config);

    std::vector<NodeId> all;
    for (std::size_t i = 0; i < total; ++i) all.push_back(NodeId{i + 1});

    StakeRegistry stakes;
    for (std::size_t i = 0; i < client_count; ++i) {
      stakes.set_stake(NodeId{10'001 + i}, 100);
    }

    for (std::size_t i = 0; i < total; ++i) {
      nodes.push_back(std::make_unique<Delegate>(NodeId{i + 1}, genesis, config, stakes, all,
                                                 *network, keys));
    }
    std::vector<NodeId> roster;
    for (std::size_t i = 0; i < delegates; ++i) roster.push_back(NodeId{i + 1});
    for (std::size_t i = 0; i < client_count; ++i) {
      clients.push_back(std::make_unique<pbft::Client>(NodeId{10'001 + i}, roster, *network,
                                                       keys, config.pbft.compute_macs));
    }
  }

  void start() {
    for (auto& node : nodes) node->start_protocol();
    for (auto& client : clients) client->start();
  }
  void run_for(Duration d) { sim.run_until(sim.now() + d); }
  ledger::Transaction tx(std::size_t client_index, RequestId request) {
    return sim::make_workload_tx(clients[client_index]->id(), request,
                                 geo::GeoPoint{22.39, 114.10}, sim.now(), 16, 10, request);
  }
};

DbftConfig fast_dbft() {
  DbftConfig config;
  config.block_interval = Duration::seconds(3);
  config.delegate_count = 4;
  config.epoch_blocks = 4;
  config.pbft.request_timeout = Duration::seconds(30);
  return config;
}

TEST(Delegate, DefaultRuleRunsCommitPhase) {
  // dBFT 2.0 by default: finality takes the full PREPARE + COMMIT exchange
  // (the 1.0 two-phase rule forks under loss + view change).
  DbftNet net(4, 4, fast_dbft());
  net.start();
  net.clients[0]->set_commit_callback([](const crypto::Hash256&, Height, Duration) {});
  net.clients[0]->submit(net.tx(0, 1));
  net.run_for(Duration::seconds(10));

  EXPECT_EQ(net.clients[0]->committed_count(), 1u);
  EXPECT_EQ(net.nodes[0]->chain().height(), 1u);
  const auto& by_type = net.network->stats().bytes_by_type;
  EXPECT_TRUE(by_type.contains(pbft::msg_type::kCommit));
  EXPECT_TRUE(by_type.contains(pbft::msg_type::kPrepare));
}

TEST(Delegate, LegacyTwoPhaseCommitsWithoutCommitRound) {
  DbftConfig config = fast_dbft();
  config.legacy_two_phase = true;  // dBFT 1.0 ablation
  DbftNet net(4, 4, config);
  net.start();
  net.clients[0]->set_commit_callback([](const crypto::Hash256&, Height, Duration) {});
  net.clients[0]->submit(net.tx(0, 1));
  net.run_for(Duration::seconds(10));

  EXPECT_EQ(net.clients[0]->committed_count(), 1u);
  EXPECT_EQ(net.nodes[0]->chain().height(), 1u);
  // No COMMIT-phase traffic at all: 1.0 finalizes on the PREPARE quorum.
  const auto& by_type = net.network->stats().bytes_by_type;
  EXPECT_FALSE(by_type.contains(pbft::msg_type::kCommit));
  EXPECT_TRUE(by_type.contains(pbft::msg_type::kPrepare));
}

TEST(Delegate, BlockPacingHoldsInterval) {
  DbftNet net(4, 4, fast_dbft());
  net.start();

  // Two transactions submitted back-to-back land in two blocks at least one
  // interval apart (the first block waits for the first interval tick).
  net.clients[0]->submit(net.tx(0, 1));
  net.run_for(Duration::seconds(4));
  net.clients[0]->submit(net.tx(0, 2));
  net.run_for(Duration::seconds(8));

  const auto& chain = net.nodes[0]->chain();
  ASSERT_EQ(chain.height(), 2u);
  const double gap = (chain.at(2).header.timestamp - chain.at(1).header.timestamp).to_seconds();
  EXPECT_GE(gap, 3.0);
}

TEST(Delegate, SpeakerRotatesAcrossBlocks) {
  DbftConfig config = fast_dbft();
  config.block_interval = Duration::seconds(1);
  DbftNet net(4, 4, config);
  net.start();

  for (RequestId r = 1; r <= 4; ++r) {
    net.clients[0]->submit(net.tx(0, r));
    net.run_for(Duration::seconds(3));
  }
  const auto& chain = net.nodes[0]->chain();
  ASSERT_GE(chain.height(), 3u);
  std::set<NodeId> producers;
  for (Height h = 1; h <= chain.height(); ++h) producers.insert(chain.at(h).header.producer);
  EXPECT_GE(producers.size(), 2u);  // rotation happened
}

TEST(Delegate, EpochReelectionFromOnChainVotes) {
  DbftConfig config = fast_dbft();
  config.block_interval = Duration::seconds(1);
  config.epoch_blocks = 1;  // the block carrying the votes is the boundary
  // 6 nodes; genesis roster 1-4. The stakeholders vote nodes 3,4,5,6 in.
  DbftNet net(6, 4, config, /*clients=*/4);
  net.start();

  net.clients[0]->submit(make_vote_tx(net.clients[0]->id(), 1, NodeId{3}, geo_here()));
  net.clients[1]->submit(make_vote_tx(net.clients[1]->id(), 1, NodeId{4}, geo_here()));
  net.clients[2]->submit(make_vote_tx(net.clients[2]->id(), 1, NodeId{5}, geo_here()));
  net.clients[3]->submit(make_vote_tx(net.clients[3]->id(), 1, NodeId{6}, geo_here()));
  net.run_for(Duration::seconds(12));

  // After the epoch boundary the roster is {3,4,5,6} on every node.
  const auto& delegates = net.nodes[0]->delegates();
  std::vector<NodeId> sorted = delegates;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{NodeId{3}, NodeId{4}, NodeId{5}, NodeId{6}}));
  EXPECT_TRUE(net.nodes[4]->is_delegate());
  EXPECT_FALSE(net.nodes[0]->is_delegate());
  EXPECT_GE(net.nodes[0]->epochs_completed(), 1u);

  // The new roster, including freshly promoted node 6, keeps committing.
  for (auto& client : net.clients) {
    client->set_committee(net.nodes[0]->delegates());
  }
  net.clients[0]->submit(net.tx(0, 50));
  net.run_for(Duration::seconds(8));
  EXPECT_GE(net.nodes[4]->chain().height(), net.nodes[0]->chain().height());
}

TEST(Delegate, ObserversFollowThePublishedChain) {
  DbftConfig config = fast_dbft();
  config.block_interval = Duration::seconds(1);
  // Nodes 5 and 6 are pure observers (never delegates: nobody votes).
  DbftNet net(6, 4, config);
  net.start();

  for (RequestId r = 1; r <= 3; ++r) {
    net.clients[0]->submit(net.tx(0, r));
    net.run_for(Duration::seconds(3));
  }
  ASSERT_GE(net.nodes[0]->chain().height(), 1u);
  EXPECT_EQ(net.nodes[4]->chain().height(), net.nodes[0]->chain().height());
  EXPECT_EQ(net.nodes[5]->chain().tip().hash(), net.nodes[0]->chain().tip().hash());
}

TEST(Delegate, SurvivesCrashedSpeakerViaViewChange) {
  DbftConfig config = fast_dbft();
  config.block_interval = Duration::seconds(1);
  config.pbft.request_timeout = Duration::seconds(6);
  config.pbft.view_change_timeout = Duration::seconds(5);
  DbftNet net(4, 4, config);
  net.start();

  // Crash the speaker for height 1 (delegates[(1 + 0) % 4] = node 2).
  net.network->crash(net.nodes[0]->primary_of(0));
  net.clients[0]->submit(net.tx(0, 1));
  net.run_for(Duration::seconds(40));

  EXPECT_EQ(net.clients[0]->committed_count(), 1u);
}

}  // namespace
}  // namespace gpbft::dbft
