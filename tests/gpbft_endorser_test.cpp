// G-PBFT endorser integration tests: era switches, candidate promotion,
// demotion on movement, admittance policy enforcement, Sybil exclusion,
// penalties, state transfer, and incentive accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/deployment.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

using ::gpbft::gpbft::Role;

/// A deployment tuned so the era machinery is observable within seconds:
/// reports every 2 s, eras every 10 s, promotion after 15 s stationary.
GpbftClusterConfig fast_config(std::size_t nodes, std::size_t committee,
                               std::size_t max_endorsers = 40) {
  GpbftClusterConfig config;
  config.nodes = nodes;
  config.initial_committee = committee;
  config.clients = 1;
  config.seed = 7;
  config.protocol.genesis.era_period = Duration::seconds(10);
  config.protocol.genesis.geo_report_period = Duration::seconds(2);
  config.protocol.genesis.geo_window = Duration::seconds(10);
  config.protocol.genesis.min_geo_reports = 2;
  config.protocol.genesis.promotion_threshold = Duration::seconds(15);
  config.protocol.genesis.policy.min_endorsers = 4;
  config.protocol.genesis.policy.max_endorsers = max_endorsers;
  config.protocol.pbft.request_timeout = Duration::seconds(6);
  config.protocol.pbft.view_change_timeout = Duration::seconds(5);
  return config;
}

ledger::Transaction tx_from(GpbftCluster& cluster, RequestId request) {
  return make_workload_tx(cluster.client(0).id(), request, cluster.placement().position(0),
                          cluster.simulator().now(), 16, 10, request);
}

TEST(Endorser, InitialRolesFromGenesis) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cluster.endorser(i).role(), Role::Active);
  for (std::size_t i = 4; i < 6; ++i) EXPECT_EQ(cluster.endorser(i).role(), Role::Candidate);
  EXPECT_EQ(cluster.committee_size(), 4u);
}

TEST(Endorser, StationaryCandidatesGetPromoted) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(35));  // a few era periods

  EXPECT_EQ(cluster.committee_size(), 6u);
  EXPECT_EQ(cluster.endorser(4).role(), Role::Active);
  EXPECT_EQ(cluster.endorser(5).role(), Role::Active);
  EXPECT_GE(cluster.era(), 1u);
}

TEST(Endorser, PromotedNewcomerReceivesStateTransfer) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();

  // Commit some blocks before the candidates qualify.
  for (RequestId r = 1; r <= 3; ++r) {
    cluster.client(0).submit(tx_from(cluster, r));
    cluster.run_for(Duration::seconds(2));
  }
  const Height before = cluster.endorser(0).chain().height();
  EXPECT_GE(before, 1u);
  EXPECT_EQ(cluster.endorser(5).chain().height(), 0u);  // candidate: genesis only

  cluster.run_for(Duration::seconds(35));
  ASSERT_EQ(cluster.endorser(5).role(), Role::Active);
  // The newcomer adopted the whole chain, including pre-promotion blocks.
  EXPECT_EQ(cluster.endorser(5).chain().height(), cluster.endorser(0).chain().height());
  EXPECT_EQ(cluster.endorser(5).chain().tip().hash(), cluster.endorser(0).chain().tip().hash());
  EXPECT_EQ(cluster.endorser(5).era(), cluster.endorser(0).era());
}

TEST(Endorser, MaxEndorsersEnforced) {
  GpbftCluster cluster(fast_config(8, 4, /*max=*/5));
  cluster.start();
  cluster.run_for(Duration::seconds(40));
  EXPECT_EQ(cluster.committee_size(), 5u);
  // Every committee member is Active, everyone else Candidate.
  std::size_t active = 0;
  for (std::size_t i = 0; i < cluster.endorser_count(); ++i) {
    if (cluster.endorser(i).role() == Role::Active) ++active;
  }
  EXPECT_EQ(active, 5u);
}

TEST(Endorser, MovedEndorserDemotedNextEra) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(25));  // promotions happen
  ASSERT_EQ(cluster.committee_size(), 6u);

  // Device 2 physically relocates within the area: honest reports from a
  // new cell -> Algorithm 1 sees differing locations -> demotion.
  const geo::GeoPoint new_spot = cluster.placement().position(30);
  cluster.endorser(1).set_location(new_spot);
  cluster.area().place(cluster.endorser(1).id(), new_spot);

  cluster.run_for(Duration::seconds(25));
  EXPECT_EQ(cluster.endorser(1).role(), Role::Candidate);
  const auto& roster = cluster.roster();
  EXPECT_TRUE(std::find(roster.begin(), roster.end(), cluster.endorser(1).id()) == roster.end());
  EXPECT_EQ(cluster.committee_size(), 5u);
}

TEST(Endorser, MinimumAbortsShrinkingSwitch) {
  // 4 members at the minimum; one moves. Dropping it would violate the
  // minimum, so the switch is aborted and the roster stays intact (§III-C).
  GpbftClusterConfig config = fast_config(4, 4);
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(5));

  const geo::GeoPoint new_spot = cluster.placement().position(30);
  cluster.endorser(3).set_location(new_spot);
  cluster.area().place(cluster.endorser(3).id(), new_spot);

  cluster.run_for(Duration::seconds(30));
  EXPECT_EQ(cluster.committee_size(), 4u);
  EXPECT_EQ(cluster.endorser(3).role(), Role::Active);  // still in (switch aborted)

  // The system must still commit transactions.
  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(Endorser, LyingCandidateNeverPromoted) {
  GpbftCluster cluster(fast_config(6, 4));
  // Device 6 claims the area center while the registry knows it is absent
  // from that spot (it is at its own grid position): untruthful claims.
  cluster.endorser(5).set_location(cluster.placement().position(50));
  cluster.start();
  cluster.run_for(Duration::seconds(40));

  EXPECT_EQ(cluster.endorser(5).role(), Role::Candidate);
  EXPECT_EQ(cluster.committee_size(), 5u);  // only the honest candidate joined
  EXPECT_TRUE(cluster.endorser(0).sybil_filter().is_flagged(cluster.endorser(5).id()));
}

TEST(Endorser, OutOfAreaCandidateNeverPromoted) {
  GpbftCluster cluster(fast_config(6, 4));
  const geo::GeoPoint outside = cluster.placement().outside_position(0);
  cluster.endorser(5).set_location(outside);
  cluster.area().place(cluster.endorser(5).id(), outside);  // truthfully outside
  cluster.start();
  cluster.run_for(Duration::seconds(40));

  EXPECT_EQ(cluster.endorser(5).role(), Role::Candidate);
  EXPECT_EQ(cluster.committee_size(), 5u);
}

TEST(Endorser, CrashedPrimaryPenalizedAndExpelled) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(1));

  // Crash the era-0 lead (first in producer order), then submit: the view
  // change marks it as having missed its block (§III-B5).
  const NodeId lead = cluster.endorser(0).producer_order().front();
  cluster.network().crash(lead);
  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(45));

  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
  // Some surviving endorser recorded the penalty and the next era excluded
  // the crashed lead.
  const auto& roster = cluster.roster();
  EXPECT_TRUE(std::find(roster.begin(), roster.end(), lead) == roster.end());
  EXPECT_GE(cluster.era(), 1u);
}

TEST(Endorser, ProducerOrderDrivesPrimarySchedule) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(35));
  ASSERT_EQ(cluster.committee_size(), 6u);

  // The configuration-roster order (computed by timer at switch time,
  // Roster.OrderedByGeographicTimer unit-tests the sort) IS the primary
  // schedule, and every member derives the same one.
  const auto& order = cluster.endorser(0).producer_order();
  ASSERT_EQ(order.size(), 6u);
  for (ViewId v = 0; v < 12; ++v) {
    EXPECT_EQ(cluster.endorser(0).primary_of(v), order[v % order.size()]);
    EXPECT_EQ(cluster.endorser(3).primary_of(v), order[v % order.size()]);
  }
  // The order is a permutation of the roster.
  std::vector<NodeId> sorted_order = order;
  std::vector<NodeId> sorted_roster = cluster.roster();
  std::sort(sorted_order.begin(), sorted_order.end());
  std::sort(sorted_roster.begin(), sorted_roster.end());
  EXPECT_EQ(sorted_order, sorted_roster);
}

TEST(Endorser, ProducerTimerResetsAfterBlock) {
  GpbftCluster cluster(fast_config(4, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(5));

  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(3));
  ASSERT_GE(cluster.endorser(1).chain().height(), 1u);

  const NodeId producer = cluster.endorser(1).chain().tip().header.producer;
  const auto& table = cluster.endorser(1).election_table();
  const TimePoint now = cluster.simulator().now();
  // The producer's timer restarted at execution; everyone else's did not.
  for (const NodeId peer : cluster.roster()) {
    if (peer == producer) continue;
    EXPECT_GT(table.timer_at(peer, now), table.timer_at(producer, now));
  }
}

TEST(Endorser, ClientsFollowRosterAcrossEras) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(35));
  ASSERT_EQ(cluster.committee_size(), 6u);

  // A transaction submitted after the switch commits under the new roster.
  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(Endorser, CommitsDuringEraSwitchResume) {
  // Transactions arriving while the committee is halted are queued and
  // commit after the switch period (§III-E).
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  // Submit right before the first era boundary (t = 10 s).
  cluster.run_for(Duration::millis(9950));
  for (RequestId r = 1; r <= 3; ++r) cluster.client(0).submit(tx_from(cluster, r));
  cluster.run_for(Duration::seconds(10));
  EXPECT_EQ(cluster.client(0).committed_count(), 3u);
}

TEST(Endorser, ForkEvidencePenalizesProducer) {
  GpbftCluster cluster(fast_config(4, 4));
  cluster.start();
  cluster.client(0).submit(tx_from(cluster, 1));
  cluster.run_for(Duration::seconds(3));
  ASSERT_GE(cluster.endorser(0).chain().height(), 1u);

  // Fabricate a conflicting block at the committed height.
  const ledger::Block committed = cluster.endorser(0).chain().at(1);
  ledger::Block conflicting = committed;
  conflicting.header.timestamp = TimePoint{conflicting.header.timestamp.ns + 1};
  conflicting.header.producer = cluster.endorser(2).id();

  const auto evidence = cluster.endorser(0).chain().observe_header(conflicting.header);
  ASSERT_TRUE(evidence.has_value());
  // chain() is const on purpose; feed the evidence through the endorser API.
  cluster.endorser(0).report_fork(*evidence);
  EXPECT_TRUE(cluster.endorser(0).penalized().contains(cluster.endorser(2).id()));
}

TEST(Endorser, FeesDistributedSeventyThirty) {
  GpbftClusterConfig config = fast_config(4, 4);
  config.protocol.genesis.era_period = Duration::seconds(1000);  // no switches
  GpbftCluster cluster(config);
  cluster.start();

  cluster.client(0).submit(tx_from(cluster, 1));  // fee 10
  cluster.run_for(Duration::seconds(3));
  ASSERT_GE(cluster.endorser(0).chain().height(), 1u);

  const NodeId producer = cluster.endorser(0).chain().at(1).header.producer;
  const auto& state = cluster.endorser(0).state();
  EXPECT_EQ(state.balance_of_node(producer), 7);  // 70% of fee 10
  std::int64_t peers_total = 0;
  for (const NodeId peer : cluster.roster()) {
    if (peer != producer) peers_total += state.balance_of_node(peer);
  }
  EXPECT_EQ(peers_total, 3);  // 30% shared
  EXPECT_EQ(state.balance_of_node(cluster.client(0).id()), -10);
}

TEST(Endorser, EraSwitchDurationIsShort) {
  GpbftCluster cluster(fast_config(6, 4));
  cluster.start();
  cluster.run_for(Duration::seconds(35));
  ASSERT_GE(cluster.era(), 1u);

  // The observable switch period is well under a second (the paper reports
  // ~0.25 s outliers from switches in Fig. 3b).
  const Duration switch_duration = cluster.endorser(0).last_switch_duration();
  EXPECT_GT(switch_duration.ns, 0);
  EXPECT_LT(switch_duration.to_seconds(), 1.0);
}

TEST(Endorser, BlacklistedDeviceNeverJoins) {
  GpbftClusterConfig config = fast_config(6, 4);
  config.protocol.genesis.policy.blacklist = {NodeId{6}};
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(40));

  // Device 5 (honest candidate) joined; device 6 is blacklisted out despite
  // identical behaviour.
  EXPECT_EQ(cluster.committee_size(), 5u);
  EXPECT_EQ(cluster.endorser(4).role(), Role::Active);
  EXPECT_EQ(cluster.endorser(5).role(), Role::Candidate);
}

TEST(Endorser, WhitelistedDeviceSkipsQualification) {
  // A whitelisted device joins at the first era switch even though its
  // geographic timer is far below the promotion threshold (§III-C).
  GpbftClusterConfig config = fast_config(6, 4);
  config.protocol.genesis.promotion_threshold = Duration::seconds(3600);  // unreachable
  config.protocol.genesis.policy.whitelist = {NodeId{5}};
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(25));

  EXPECT_EQ(cluster.endorser(4).role(), Role::Active);   // whitelisted: in
  EXPECT_EQ(cluster.endorser(5).role(), Role::Candidate);  // normal path: threshold unreachable
  EXPECT_EQ(cluster.committee_size(), 5u);
}

TEST(Endorser, OnChainGeoReportsPromoteCandidates) {
  // Full-fidelity mode: location reports are zero-fee transactions, so the
  // election table is derived from committed blocks (chain-based G(v, t)).
  GpbftClusterConfig config = fast_config(6, 4);
  config.protocol.geo_reports_on_chain = true;
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(40));

  EXPECT_EQ(cluster.committee_size(), 6u);
  EXPECT_EQ(cluster.endorser(4).role(), Role::Active);
  EXPECT_EQ(cluster.endorser(5).role(), Role::Active);
  // The reports are on the chain: blocks contain geo-report transactions.
  const auto& chain = cluster.endorser(0).chain();
  std::size_t report_txs = 0;
  for (Height h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions) {
      if (ledger::is_geo_report_tx(tx)) ++report_txs;
    }
  }
  EXPECT_GT(report_txs, 10u);
}

TEST(Endorser, OnChainModeNewcomerRebuildsTableFromChain) {
  GpbftClusterConfig config = fast_config(6, 4);
  config.protocol.geo_reports_on_chain = true;
  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::seconds(40));
  ASSERT_EQ(cluster.endorser(5).role(), Role::Active);

  // The newcomer's election table knows the other devices' histories even
  // though it joined late — it replayed the chain's geo trailers.
  const auto& table = cluster.endorser(5).election_table();
  EXPECT_GE(table.devices().size(), 4u);
  EXPECT_TRUE(table.latest(cluster.endorser(0).id()).has_value());
}

TEST(Endorser, LyingTransactionTrailersNotRecorded) {
  // A client whose transactions claim a location the registry contradicts
  // never enters any endorser's election table.
  GpbftClusterConfig config = fast_config(4, 4);
  GpbftCluster cluster(config);
  cluster.start();

  // The client is physically at position 0 (the cluster placed it there),
  // but its transactions claim position 50.
  auto lie = make_workload_tx(cluster.client(0).id(), 1, cluster.placement().position(50),
                              cluster.simulator().now(), 16, 10, 1);
  cluster.client(0).submit(lie);
  cluster.run_for(Duration::seconds(5));

  EXPECT_EQ(cluster.client(0).committed_count(), 1u);  // the tx itself commits
  const auto& table = cluster.endorser(0).election_table();
  EXPECT_FALSE(table.latest(cluster.client(0).id()).has_value());
  EXPECT_TRUE(cluster.endorser(0).sybil_filter().is_flagged(cluster.client(0).id()));
}

TEST(Endorser, ChainsConsistentAcrossCommittee) {
  GpbftCluster cluster(fast_config(8, 4));
  cluster.start();
  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = Duration::seconds(2);
  workload.count = 10;
  schedule_workload(cluster.simulator(), cluster.client(0), cluster.placement().position(0),
                    workload, 0, &recorder);
  cluster.run_for(Duration::seconds(45));

  EXPECT_EQ(cluster.client(0).committed_count(), 10u);
  const auto& reference = cluster.endorser(0).chain();
  for (const NodeId member : cluster.roster()) {
    for (std::size_t i = 0; i < cluster.endorser_count(); ++i) {
      if (cluster.endorser(i).id() != member) continue;
      EXPECT_EQ(cluster.endorser(i).chain().tip().hash(), reference.tip().hash())
          << "member " << member.str();
    }
  }
}

}  // namespace
}  // namespace gpbft::sim
