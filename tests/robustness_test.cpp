// Robustness: no decoder crashes on arbitrary bytes, replicas shrug off
// garbage and forged messages, and the sync protocol refuses conflicting
// blocks. Byzantine peers get to send anything; the honest state machine
// must neither crash nor corrupt.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ledger/genesis.hpp"
#include "ledger/store.hpp"
#include "pbft/messages.hpp"
#include "pow/pow_store.hpp"
#include "sim/deployment.hpp"
#include "sim/invariants.hpp"
#include "sim/workload.hpp"

namespace gpbft {
namespace {

using namespace sim;

// --- decoder fuzz ----------------------------------------------------------------

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes data(rng.uniform(0, max_len));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, NoDecoderCrashesOnArbitraryBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Bytes data = random_bytes(rng, 512);
    const BytesView view(data.data(), data.size());
    // Each decode either errors or yields a value; it must never crash or
    // read out of bounds (ASAN-clean under arbitrary input).
    (void)ledger::Transaction::decode(view);
    (void)ledger::Block::decode(view);
    (void)ledger::BlockHeader::decode(view);
    (void)pbft::ClientRequest::decode(view);
    (void)pbft::PrePrepare::decode(view);
    (void)pbft::Prepare::decode(view);
    (void)pbft::Commit::decode(view);
    (void)pbft::Reply::decode(view);
    (void)pbft::CheckpointMsg::decode(view);
    (void)pbft::ViewChangeMsg::decode(view);
    (void)pbft::NewViewMsg::decode(view);
    (void)pbft::SyncRequest::decode(view);
    (void)pbft::SyncResponse::decode(view);
    (void)pbft::GeoReportMsg::decode(view);
    (void)pbft::EraHaltMsg::decode(view);
    (void)pbft::EraLaunchMsg::decode(view);
  }
}

TEST_P(DecoderFuzz, TruncationsOfValidMessagesError) {
  Rng rng(GetParam());
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  const ledger::Transaction tx =
      ledger::make_normal_tx(NodeId{3}, 9, Bytes{1, 2, 3, 4}, 7, report);
  const Bytes encoded = tx.encode();
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    const auto decoded = ledger::Transaction::decode(BytesView(encoded.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << cut << " decoded successfully";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(101, 202, 303, 404));

// --- store-image fuzz ----------------------------------------------------------------
//
// The restart path feeds whatever a simulated disk yields straight into the
// chain deserializers; a corrupt image must come back as an error, never a
// crash and never a silently-wrong chain.

ledger::Chain small_chain() {
  ledger::GenesisConfig config;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i}, geo::GeoPoint{22.39, 114.1}});
  }
  ledger::Chain chain(ledger::make_genesis_block(config));
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  for (std::uint64_t b = 1; b <= 3; ++b) {
    std::vector<ledger::Transaction> txs;
    txs.push_back(ledger::make_normal_tx(NodeId{10}, b, Bytes{1, 2}, 5, report));
    const ledger::Block block =
        ledger::build_block(chain.tip().header, std::move(txs), 0, 0, b,
                            TimePoint{Duration::seconds(static_cast<std::int64_t>(b)).ns},
                            NodeId{1 + b % 4});
    EXPECT_TRUE(chain.append(block).ok());
  }
  return chain;
}

class StoreImageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreImageFuzz, DeserializersSurviveArbitraryBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Bytes data = random_bytes(rng, 1024);
    const BytesView view(data.data(), data.size());
    (void)ledger::deserialize_chain(view);
    (void)pow::deserialize_pow_chain(view);
  }
}

TEST_P(StoreImageFuzz, MutatedImagesErrorOrDecodeTheOriginal) {
  Rng rng(GetParam());
  const ledger::Chain chain = small_chain();
  const Bytes image = ledger::serialize_chain(chain);
  for (int i = 0; i < 100; ++i) {
    Bytes mutated = image;
    const std::uint64_t flips = rng.uniform(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(0, mutated.size() - 1)] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    }
    const auto decoded = ledger::deserialize_chain(BytesView(mutated.data(), mutated.size()));
    // Flips at the same position may cancel out; every surviving decode must
    // be the original chain, bit for bit.
    if (decoded.ok()) {
      EXPECT_EQ(decoded.value().tip().hash(), chain.tip().hash());
      EXPECT_EQ(decoded.value().height(), chain.height());
    }
    // Truncations of the mutated image must never decode.
    const auto truncated =
        ledger::deserialize_chain(BytesView(mutated.data(), rng.uniform(0, image.size() - 1)));
    EXPECT_FALSE(truncated.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreImageFuzz, ::testing::Values(11, 22, 33));

// --- garbage on the wire ------------------------------------------------------------

TEST(Robustness, ReplicaIgnoresGarbagePayloads) {
  PbftClusterConfig config;
  config.replicas = 4;
  config.clients = 1;
  config.seed = 9;
  PbftCluster cluster(config);
  cluster.start();

  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    net::Envelope envelope;
    envelope.from = NodeId{9999};  // not even a participant
    envelope.to = cluster.replica(0).id();
    envelope.type = static_cast<net::MessageType>(rng.uniform(0, 30));
    envelope.payload = random_bytes(rng, 256);
    cluster.network().send(std::move(envelope));
  }
  cluster.run_for(Duration::seconds(2));

  // Still fully functional afterwards.
  cluster.client(0).submit(make_workload_tx(cluster.client(0).id(), 1,
                                            cluster.placement().position(0),
                                            cluster.simulator().now(), 16, 10, 1));
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(Robustness, SpoofedSenderEnvelopesRejected) {
  // A message sealed by node X but delivered in an envelope claiming node Y
  // fails the seal check on arrival.
  PbftClusterConfig config;
  config.replicas = 4;
  config.clients = 1;
  config.seed = 9;
  PbftCluster cluster(config);
  cluster.start();

  // Craft a valid-looking PREPARE sealed with the attacker's own key but
  // spoofing the envelope sender as replica 2.
  pbft::Prepare forged;
  forged.view = 0;
  forged.seq = 1;
  forged.digest = crypto::sha256("forged");
  forged.replica = cluster.replica(1).id();
  const Bytes body = forged.encode();

  net::Envelope envelope;
  envelope.from = cluster.replica(1).id();  // spoofed
  envelope.to = cluster.replica(0).id();
  envelope.type = pbft::msg_type::kPrepare;
  // Sealed under the *attacker's* identity (node 9999): tag cannot verify
  // for the claimed sender.
  envelope.payload = pbft::seal(cluster.keys(), NodeId{9999}, cluster.replica(0).id(),
                                pbft::msg_type::kPrepare,
                                BytesView(body.data(), body.size()), true);
  cluster.network().send(std::move(envelope));
  cluster.run_for(Duration::seconds(1));

  // The forged vote influenced nothing; normal operation proceeds.
  cluster.client(0).submit(make_workload_tx(cluster.client(0).id(), 1,
                                            cluster.placement().position(0),
                                            cluster.simulator().now(), 16, 10, 1));
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

TEST(Robustness, ConflictingSyncResponseRejected) {
  PbftClusterConfig config;
  config.replicas = 4;
  config.clients = 1;
  config.seed = 9;
  PbftCluster cluster(config);
  cluster.start();

  // Commit one real block everywhere.
  cluster.client(0).submit(make_workload_tx(cluster.client(0).id(), 1,
                                            cluster.placement().position(0),
                                            cluster.simulator().now(), 16, 10, 1));
  cluster.run_for(Duration::seconds(5));
  ASSERT_EQ(cluster.replica(0).chain().height(), 1u);
  const crypto::Hash256 honest_tip = cluster.replica(0).chain().tip().hash();

  // A malicious "responder" offers a different block 1 (and a block 2 built
  // on it). Linkage from genesis is valid, but replica 0 already committed
  // a conflicting block 1 — hash linkage fails at adoption.
  const ledger::Block& genesis = cluster.replica(0).chain().at(0);
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.10};
  ledger::Block fake1 = ledger::build_block(
      genesis.header, {ledger::make_normal_tx(NodeId{66}, 1, Bytes{9}, 5, report)}, 0, 0, 1,
      TimePoint{Duration::seconds(2).ns}, cluster.replica(1).id());
  ledger::Block fake2 = ledger::build_block(
      fake1.header, {ledger::make_normal_tx(NodeId{66}, 2, Bytes{9}, 5, report)}, 0, 0, 2,
      TimePoint{Duration::seconds(3).ns}, cluster.replica(1).id());

  pbft::SyncResponse poison;
  poison.blocks = {fake1, fake2};
  poison.responder = cluster.replica(1).id();
  const Bytes body = poison.encode();
  net::Envelope envelope;
  envelope.from = cluster.replica(1).id();
  envelope.to = cluster.replica(0).id();
  envelope.type = pbft::msg_type::kSyncResponse;
  envelope.payload = pbft::seal(cluster.keys(), cluster.replica(1).id(),
                                cluster.replica(0).id(), pbft::msg_type::kSyncResponse,
                                BytesView(body.data(), body.size()), true);
  cluster.network().send(std::move(envelope));
  cluster.run_for(Duration::seconds(2));

  EXPECT_EQ(cluster.replica(0).chain().height(), 1u);
  EXPECT_EQ(cluster.replica(0).chain().tip().hash(), honest_tip);
}

TEST(Robustness, CandidateIgnoresConsensusTraffic) {
  // A candidate endorser receives stray consensus messages (e.g. replayed
  // by an attacker); it must not build chain state from them.
  GpbftClusterConfig config;
  config.nodes = 6;
  config.initial_committee = 4;
  config.clients = 0;
  config.seed = 3;
  config.protocol.genesis.era_period = Duration::seconds(1000);  // no switches
  GpbftCluster cluster(config);
  cluster.start();
  ASSERT_EQ(cluster.endorser(5).role(), ::gpbft::gpbft::Role::Candidate);

  pbft::Commit stray;
  stray.view = 0;
  stray.seq = 1;
  stray.digest = crypto::sha256("stray");
  stray.replica = cluster.endorser(0).id();
  const Bytes body = stray.encode();
  for (int i = 0; i < 10; ++i) {
    net::Envelope envelope;
    envelope.from = cluster.endorser(0).id();
    envelope.to = cluster.endorser(5).id();
    envelope.type = pbft::msg_type::kCommit;
    envelope.payload = pbft::seal(cluster.keys(), cluster.endorser(0).id(),
                                  cluster.endorser(5).id(), pbft::msg_type::kCommit,
                                  BytesView(body.data(), body.size()), true);
    cluster.network().send(std::move(envelope));
  }
  cluster.run_for(Duration::seconds(2));
  EXPECT_EQ(cluster.endorser(5).chain().height(), 0u);
}

// --- faulty primary across an era switch ----------------------------------------------

/// Runs a G-PBFT cluster whose view-0 primary turns Byzantine before the
/// first era switch: the view change must route around it and the switch
/// must still land, with the invariant monitor attached throughout.
void faulty_primary_era_switch(pbft::FaultMode mode) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Gpbft;
  spec.nodes = 6;
  spec.clients = 2;
  spec.seed = 7;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 6;
  spec.committee.era_period = Duration::seconds(15);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.engine.request_timeout = Duration::seconds(6);
  spec.engine.view_change_timeout = Duration::seconds(5);
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;

  const std::unique_ptr<GpbftCluster> cluster = make_gpbft_deployment(spec);
  InvariantMonitor monitor(cluster->simulator());
  cluster->watch(monitor);
  cluster->start();
  cluster->schedule_workload(spec.workload, nullptr,
                             [&monitor](const ledger::Transaction& tx) {
                               monitor.expect_submission(tx);
                             });
  GpbftCluster* raw = cluster.get();
  const NodeId victim = cluster->endorser(0).id();  // view-0 primary
  cluster->simulator().schedule(Duration::seconds(5), [raw, &monitor, victim, mode]() {
    raw->set_fault_mode(victim, mode);
    monitor.set_faulty(victim, true);
  });

  EXPECT_TRUE(cluster->run_until_committed(spec.workload.txs_per_client,
                                           TimePoint{Duration::seconds(600).ns}));
  cluster->run_for(Duration::seconds(30));
  cluster->stop();
  cluster->finish_invariants(monitor);

  EXPECT_GE(cluster->total_era_switches(), 1u);
  EXPECT_TRUE(monitor.clean()) << monitor.report();
  // The honest endorsers agree on one chain despite the Byzantine primary.
  EXPECT_EQ(cluster->endorser(1).chain().tip().hash().hex(),
            cluster->endorser(2).chain().tip().hash().hex());
}

TEST(Robustness, SilentPrimaryStillReachesEraSwitch) {
  faulty_primary_era_switch(pbft::FaultMode::Silent);
}

TEST(Robustness, CorruptProposalsPrimaryStillReachesEraSwitch) {
  faulty_primary_era_switch(pbft::FaultMode::CorruptProposals);
}

TEST(Robustness, HighLossNetworkEventuallyCommits) {
  // 20% message loss: retransmission-free PBFT relies on quorums being
  // redundant; with the sync protocol the cluster still converges.
  PbftClusterConfig config;
  config.replicas = 7;
  config.clients = 1;
  config.seed = 21;
  config.net.drop_rate = 0.2;
  config.pbft.request_timeout = Duration::seconds(15);
  PbftCluster cluster(config);
  cluster.start();

  const ledger::Transaction tx = make_workload_tx(cluster.client(0).id(), 1,
                                                  cluster.placement().position(0),
                                                  cluster.simulator().now(), 16, 10, 1);
  // The client retransmits a few times, as real clients do on loss.
  for (int attempt = 0; attempt < 5; ++attempt) {
    cluster.client(0).submit(tx);
    cluster.run_for(Duration::seconds(10));
    if (cluster.client(0).committed_count() > 0) break;
  }
  EXPECT_EQ(cluster.client(0).committed_count(), 1u);
}

}  // namespace
}  // namespace gpbft
