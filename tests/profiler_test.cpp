// Wall-clock profiler tests (ctest label tier1-profile).
//
// Units: site registration dedup, hierarchical accounting (inclusive vs
// exclusive, per-parent tree nodes), disabled probes record nothing, export
// formats (JSON call tree, collapsed stacks, hotspot table), clear().
//
// Guard: the profiler must be invisible to the deterministic simulation —
// a profiled PBFT run's chain tip, metrics JSONL and Perfetto trace are
// byte-identical to an unprofiled same-seed run. This is the contract that
// lets `gpbft_cli profile` run against golden-hash workloads.
//
// The critical-path analyzer is covered here too: a hand-built trace with
// known phase spans must resolve to the exact per-phase attribution.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/profiler.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace gpbft {
namespace {

/// The profiler is a process-global singleton; every test starts from a
/// clean slate and leaves the profiler disabled for its neighbours.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::instance().set_enabled(false);
    obs::Profiler::instance().clear();
  }
  void TearDown() override {
    obs::Profiler::instance().set_enabled(false);
    obs::Profiler::instance().clear();
  }
};

TEST_F(ProfilerTest, SiteRegistrationDeduplicatesByName) {
  obs::Profiler& prof = obs::Profiler::instance();
  const auto a = prof.register_site("test.dedup.a");
  const auto b = prof.register_site("test.dedup.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(prof.register_site("test.dedup.a"), a);
  EXPECT_EQ(prof.site_name(a), "test.dedup.a");
}

TEST_F(ProfilerTest, DisabledProbesRecordNothing) {
  obs::Profiler& prof = obs::Profiler::instance();
  ASSERT_FALSE(prof.enabled());
  {
    GPBFT_PROFILE_SCOPE("test.disabled");
  }
  EXPECT_TRUE(prof.empty());
  EXPECT_EQ(prof.total_wall_ns(), 0u);
}

TEST_F(ProfilerTest, NestedProbesBuildACallTree) {
  obs::Profiler& prof = obs::Profiler::instance();
  const auto outer = prof.register_site("test.outer");
  const auto inner = prof.register_site("test.inner");
  prof.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    obs::ScopedProbe o(outer);
    obs::ScopedProbe in1(inner);
  }
  {
    // The same site under a different parent (here: the root) gets its own
    // tree node — per-path attribution, like a flamegraph.
    obs::ScopedProbe in2(inner);
  }
  prof.set_enabled(false);

  const std::string json = prof.to_json();
  EXPECT_NE(json.find("\"name\":\"test.outer\",\"calls\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"test.inner\",\"calls\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"test.inner\",\"calls\":1"), std::string::npos) << json;

  const std::string collapsed = prof.to_collapsed();
  EXPECT_NE(collapsed.find("test.outer;test.inner "), std::string::npos) << collapsed;
  // Inclusive >= sum of children: the outer frame's wall time contains the
  // inner frame's.
  EXPECT_GT(prof.total_wall_ns(), 0u);
}

TEST_F(ProfilerTest, ExclusiveTimeIsInclusiveMinusChildren) {
  obs::Profiler& prof = obs::Profiler::instance();
  const auto outer = prof.register_site("test.excl.outer");
  const auto inner = prof.register_site("test.excl.inner");
  prof.set_enabled(true);
  {
    obs::ScopedProbe o(outer);
    // Burn a little time outside the child so exclusive > 0 is plausible,
    // then a child frame.
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 10000; ++i) sink += i;
    obs::ScopedProbe in1(inner);
  }
  prof.set_enabled(false);
  // The hotspot rollup must carry both sites and account outer's exclusive
  // time separately from inner's.
  const std::string table = prof.hotspot_table(10);
  EXPECT_NE(table.find("test.excl.outer"), std::string::npos) << table;
  EXPECT_NE(table.find("test.excl.inner"), std::string::npos) << table;
}

TEST_F(ProfilerTest, ClearDropsSamplesButKeepsSites) {
  obs::Profiler& prof = obs::Profiler::instance();
  const auto site = prof.register_site("test.clear");
  prof.set_enabled(true);
  { obs::ScopedProbe p(site); }
  prof.set_enabled(false);
  EXPECT_FALSE(prof.empty());
  const std::size_t sites = prof.site_count();
  prof.clear();
  EXPECT_TRUE(prof.empty());
  EXPECT_EQ(prof.site_count(), sites);
  EXPECT_EQ(prof.site_name(site), "test.clear");
}

TEST_F(ProfilerTest, HotspotTableReportsEmptyWhenNothingRan) {
  const std::string table = obs::Profiler::instance().hotspot_table(5);
  EXPECT_NE(table.find("no samples"), std::string::npos);
}

// --- profiling must not perturb the deterministic simulation -------------------

sim::ScenarioSpec pbft_scenario() {
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Pbft;
  spec.seed = 7;
  spec.nodes = 4;
  spec.clients = 2;
  spec.workload.txs_per_client = 3;
  spec.workload.period = Duration::seconds(2);
  spec.deadline = Duration::seconds(200);
  return spec;
}

struct RunArtifacts {
  std::string tip;
  std::string metrics;
  std::string trace;
};

RunArtifacts run_pbft(bool profiled) {
  obs::Profiler::instance().clear();
  obs::Profiler::instance().set_enabled(profiled);
  const sim::ScenarioSpec spec = pbft_scenario();
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  deployment->telemetry().set_trace_enabled(true);
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->run_until_committed(spec.workload.txs_per_client, TimePoint{spec.deadline.ns});
  deployment->stop();
  deployment->finalize_telemetry();
  obs::Profiler::instance().set_enabled(false);

  RunArtifacts artifacts;
  artifacts.tip = deployment->tip_hex();
  artifacts.metrics = deployment->telemetry().metrics().to_jsonl();
  artifacts.trace = deployment->telemetry().trace().to_perfetto_json();
  return artifacts;
}

TEST_F(ProfilerTest, ProfiledRunIsByteIdenticalToUnprofiledRun) {
  const RunArtifacts plain = run_pbft(/*profiled=*/false);
  const RunArtifacts profiled = run_pbft(/*profiled=*/true);
  EXPECT_FALSE(plain.tip.empty());
  EXPECT_FALSE(plain.metrics.empty());
  EXPECT_GT(plain.trace.size(), 100u);
  // Identical bytes everywhere the determinism contract reaches: the
  // profiler only read the host's steady clock.
  EXPECT_EQ(plain.tip, profiled.tip);
  EXPECT_EQ(plain.metrics, profiled.metrics);
  EXPECT_EQ(plain.trace, profiled.trace);
  // And the profiled run actually recorded something.
  EXPECT_GT(obs::Profiler::instance().total_wall_ns(), 0u);
  const std::string table = obs::Profiler::instance().hotspot_table(20);
  EXPECT_NE(table.find("sim.event"), std::string::npos) << table;
  EXPECT_NE(table.find("crypto.seal"), std::string::npos) << table;
  EXPECT_NE(table.find("net.deliver."), std::string::npos) << table;
}

TEST_F(ProfilerTest, ProfiledRunResolvesCommitCriticalPath) {
  obs::Profiler::instance().set_enabled(true);
  const sim::ScenarioSpec spec = pbft_scenario();
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  deployment->telemetry().set_trace_enabled(true);
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->run_until_committed(spec.workload.txs_per_client, TimePoint{spec.deadline.ns});
  deployment->stop();
  deployment->finalize_telemetry();
  obs::Profiler::instance().set_enabled(false);

  const auto report = obs::CriticalPathReport::analyze(deployment->telemetry().trace());
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.requests().size(), 6u);  // 2 clients x 3 txs
  EXPECT_EQ(report.unresolved(), 0u);
  for (const obs::RequestBreakdown& r : report.requests()) {
    EXPECT_GT(r.total_ns(), 0);
    // The five phases partition the end-to-end latency exactly: the causal
    // chain submit -> pre-prepare -> prepare -> commit -> execute -> reply
    // has no unaccounted gap at the proposing primary.
    EXPECT_EQ(r.preprepare_wait + r.prepare + r.commit + r.execute + r.reply, r.total_ns());
  }
  const std::string table = report.phase_table();
  EXPECT_NE(table.find("prepare"), std::string::npos);
  EXPECT_NE(table.find("end_to_end"), std::string::npos);
}

// --- critical-path analyzer on a synthetic trace -------------------------------

TEST(CriticalPath, SyntheticTraceResolvesExactPhases) {
  obs::TraceRecorder trace;
  const NodeId client{100};
  const NodeId primary{1};
  // Request 7 submitted at t=10us, carried by height 3, replied at t=100us.
  trace.async_begin(7, TimePoint{10'000}, client, "request", "client", {{"tx", "ab"}});
  trace.instant(TimePoint{20'000}, primary, "propose", "pbft", {{"seq", "3"}, {"txs", "1"}});
  trace.complete_span(TimePoint{20'000}, TimePoint{40'000}, primary, "phase.prepare", "pbft",
                      {{"height", "3"}});
  trace.complete_span(TimePoint{40'000}, TimePoint{70'000}, primary, "phase.commit", "pbft",
                      {{"height", "3"}});
  trace.complete_span(TimePoint{70'000}, TimePoint{80'000}, primary, "phase.execute", "pbft",
                      {{"height", "3"}});
  // A backup's spans for the same height must not shadow the primary's.
  trace.complete_span(TimePoint{25'000}, TimePoint{90'000}, NodeId{2}, "phase.prepare", "pbft",
                      {{"height", "3"}});
  trace.async_end(7, TimePoint{100'000}, client, "request", "client", {{"height", "3"}});

  const auto report = obs::CriticalPathReport::analyze(trace);
  ASSERT_EQ(report.requests().size(), 1u);
  const obs::RequestBreakdown& r = report.requests().front();
  EXPECT_EQ(r.trace_id, 7u);
  EXPECT_EQ(r.height, 3u);
  EXPECT_EQ(r.primary, 1u);
  EXPECT_EQ(r.preprepare_wait, 10'000);
  EXPECT_EQ(r.prepare, 20'000);
  EXPECT_EQ(r.commit, 30'000);
  EXPECT_EQ(r.execute, 10'000);
  EXPECT_EQ(r.reply, 20'000);
  EXPECT_EQ(r.total_ns(), 90'000);
}

TEST(CriticalPath, UnresolvableRequestsAreCountedNotDropped) {
  obs::TraceRecorder trace;
  // A reply with no matching propose/phase spans (trace-capacity drop).
  trace.async_begin(9, TimePoint{1'000}, NodeId{100}, "request", "client", {});
  trace.async_end(9, TimePoint{5'000}, NodeId{100}, "request", "client", {{"height", "4"}});
  const auto report = obs::CriticalPathReport::analyze(trace);
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.unresolved(), 1u);
  // Tables still render (empty-safe).
  EXPECT_FALSE(report.phase_table().empty());
  EXPECT_NE(report.slowest_table().find("no resolved requests"), std::string::npos);
}

}  // namespace
}  // namespace gpbft
