// Scenario layer tests: the declarative spec round-trips through its text
// format exactly, the deployment factory reproduces the pre-refactor
// clusters seed-for-seed (golden block hashes), and the dBFT / PoW
// deployments hold their invariants under a monitored smoke run.
#include <gtest/gtest.h>

#include <memory>

#include "sim/deployment.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario.hpp"

namespace gpbft::sim {
namespace {

ScenarioSpec exercised_spec() {
  // Touch every section with non-default values so the round-trip test
  // cannot pass by accident of defaults.
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Dbft;
  spec.seed = 987654321;
  spec.nodes = 31;
  spec.clients = 9;
  spec.deadline = Duration::seconds(777);
  spec.workload.txs_per_client = 41;
  spec.workload.period = Duration::millis(1250);
  spec.workload.payload_bytes = 48;
  spec.workload.fee = 3;
  spec.workload.start = TimePoint{Duration::millis(1500).ns};
  spec.workload.stagger = Duration::millis(7);
  spec.workload.client_retries = false;
  spec.committee.initial = 5;
  spec.committee.min = 5;
  spec.committee.max = 21;
  spec.committee.era_period = Duration::seconds(45);
  spec.geo.report_period = Duration::seconds(7);
  spec.geo.window = Duration::seconds(35);
  spec.geo.min_reports = 4;
  spec.geo.promotion_threshold = Duration::seconds(90);
  spec.geo.reports_on_chain = true;
  spec.engine.batch_size = 24;
  spec.engine.pipeline_depth = 2;
  spec.engine.checkpoint_interval = 32;
  spec.engine.compute_macs = false;
  spec.engine.request_timeout = Duration::seconds(9);
  spec.engine.view_change_timeout = Duration::seconds(7);
  spec.net.processing_rate_msgs_per_sec = 119.5;
  spec.net.drop_rate = 0.015625;
  spec.placement.base = geo::GeoPoint{48.8566, 2.3522};
  spec.placement.area_precision = 6;
  spec.placement.spacing_meters = 12.5;
  spec.dbft.block_interval = Duration::seconds(11);
  spec.dbft.delegates = 9;
  spec.dbft.epoch_blocks = 8;
  spec.pow.block_interval = Duration::seconds(13);
  spec.pow.confirmations = 4;
  spec.pow.hashrate = 2.5e5;
  spec.chaos.intensity = "medium";
  spec.chaos.horizon = Duration::seconds(55);
  spec.chaos.liveness_grace = Duration::seconds(111);
  spec.chaos.restart_chance = 0.125;
  spec.chaos.disk_fault_chance = 0.0625;
  spec.chaos.sybil_burst_chance = 0.25;
  spec.chaos.targeted_crash_chance = 0.1875;
  spec.chaos.oscillate_chance = 0.09375;
  spec.reputation.enabled = true;
  spec.reputation.half_life = Duration::seconds(3600);
  spec.reputation.quarantine_enter = 350;
  spec.reputation.quarantine_exit = 800;
  spec.reputation.sybil_rate_factor = 5;
  return spec;
}

// --- text format ---------------------------------------------------------------------

TEST(Scenario, PrintParseRoundTripIdentity) {
  const ScenarioSpec spec = exercised_spec();
  const std::string text = print_scenario(spec);
  const Result<ScenarioSpec> parsed = parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value() == spec);
  // And the rendering is a fixed point: print(parse(print(s))) == print(s).
  EXPECT_EQ(print_scenario(parsed.value()), text);
}

TEST(Scenario, DefaultsRoundTripToo) {
  const ScenarioSpec spec;
  const Result<ScenarioSpec> parsed = parse_scenario(print_scenario(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == spec);
}

TEST(Scenario, OmittedKeysKeepDefaults) {
  const Result<ScenarioSpec> parsed =
      parse_scenario("protocol=pow\nnodes=12\n# a comment\n\nseed=5\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().protocol, ProtocolKind::Pow);
  EXPECT_EQ(parsed.value().nodes, 12u);
  EXPECT_EQ(parsed.value().seed, 5u);
  EXPECT_TRUE(parsed.value().workload == WorkloadSpec{});
}

TEST(Scenario, StrictParseRejectsGarbage) {
  EXPECT_FALSE(parse_scenario("nonsense_key=1\n").ok());       // unknown key
  EXPECT_FALSE(parse_scenario("nodes=5x\n").ok());             // trailing junk
  EXPECT_FALSE(parse_scenario("protocol=raft\n").ok());        // unknown protocol
  EXPECT_FALSE(parse_scenario("nodes\n").ok());                // no '='
  EXPECT_FALSE(parse_scenario("placement.area_precision=13\n").ok());  // out of range
  EXPECT_FALSE(parse_scenario("workload.period_ns=abc\n").ok());
}

TEST(Scenario, ProtocolNamesRoundTrip) {
  for (const ProtocolKind kind :
       {ProtocolKind::Pbft, ProtocolKind::Gpbft, ProtocolKind::Dbft, ProtocolKind::Pow}) {
    const Result<ProtocolKind> back = protocol_from_name(protocol_name(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(protocol_from_name("paxos").ok());
}

// --- deployment parity ----------------------------------------------------------------
//
// The golden hashes below were produced by the pre-refactor PbftCluster /
// GpbftCluster (sim/cluster.hpp, removed in this change) driving the same
// seeds and workload. The factory-built deployments must replay the exact
// event sequence: identical tip hashes, heights and commit counts.

TEST(DeploymentParity, PbftGoldenRunIsBitIdentical) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = 42;
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;

  const std::unique_ptr<PbftCluster> cluster = make_pbft_deployment(spec);
  cluster->start();
  LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);
  const bool done =
      cluster->run_until_committed(spec.workload.txs_per_client,
                                   TimePoint{Duration::seconds(300).ns});
  cluster->stop();

  EXPECT_TRUE(done);
  EXPECT_EQ(cluster->committed_count(), 8u);
  EXPECT_EQ(cluster->replica(0).chain().height(), 8u);
  EXPECT_EQ(cluster->replica(0).chain().tip().hash().hex(),
            "68086af0d716cdecdc16dd24bd2c5c5a353ce8958358e0e12e321500564f84ed");
}

TEST(DeploymentParity, GpbftGoldenRunIsBitIdentical) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Gpbft;
  spec.nodes = 6;
  spec.clients = 2;
  spec.seed = 7;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 6;
  spec.committee.era_period = Duration::seconds(15);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;

  const std::unique_ptr<GpbftCluster> cluster = make_gpbft_deployment(spec);
  cluster->start();
  LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);
  cluster->run_for(Duration::seconds(60));
  cluster->stop();

  EXPECT_EQ(cluster->committed_count(), 8u);
  EXPECT_EQ(cluster->total_era_switches(), 1u);
  EXPECT_EQ(cluster->committee_size(), 6u);  // both candidates promoted
  EXPECT_EQ(cluster->endorser(0).chain().height(), 9u);
  EXPECT_EQ(cluster->endorser(0).chain().tip().hash().hex(),
            "540d7bde3eab76203c96355ea7b35f686f91d6889e98e6071db233bc81b98894");
}

// --- dBFT / PoW deployments under the monitor ----------------------------------------

TEST(DeploymentSmoke, DbftCommitsCleanlyUnderCrashFault) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Dbft;
  spec.nodes = 7;
  spec.clients = 2;
  spec.seed = 3;
  spec.dbft.block_interval = Duration::seconds(2);
  spec.workload.period = Duration::seconds(1);
  spec.workload.txs_per_client = 3;

  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  InvariantMonitor monitor(deployment->simulator());
  deployment->watch(monitor);
  deployment->start();
  deployment->schedule_workload(spec.workload, nullptr,
                                [&monitor](const ledger::Transaction& tx) {
                                  monitor.expect_submission(tx);
                                });

  // One delegate drops out mid-run and comes back: f = 2 tolerates it.
  deployment->simulator().schedule(Duration::seconds(3), [&deployment]() {
    deployment->network().crash(NodeId{5});
  });
  deployment->simulator().schedule(Duration::seconds(9), [&deployment]() {
    deployment->network().recover(NodeId{5});
  });

  const bool done = deployment->run_until_committed(
      spec.workload.txs_per_client, TimePoint{Duration::seconds(300).ns});
  deployment->stop();
  deployment->finish_invariants(monitor);

  EXPECT_TRUE(done);
  EXPECT_EQ(deployment->committed_count(), 6u);
  EXPECT_EQ(deployment->committee().size(), 7u);
  EXPECT_TRUE(monitor.clean()) << monitor.report();
}

TEST(DeploymentSmoke, PowConfirmsAndPassesChainInvariants) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pow;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = 9;
  spec.pow.block_interval = Duration::seconds(3);
  spec.pow.confirmations = 2;
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 2;
  spec.deadline = Duration::seconds(2000);

  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  InvariantMonitor monitor(deployment->simulator());
  deployment->watch(monitor);  // no online hook for PoW: checked at the end
  deployment->start();
  deployment->schedule_workload(spec.workload, nullptr,
                                [&monitor](const ledger::Transaction& tx) {
                                  monitor.expect_submission(tx);
                                });

  const bool done = deployment->run_until_committed(spec.workload.txs_per_client,
                                                    TimePoint{spec.deadline.ns});
  deployment->stop();
  deployment->finish_invariants(monitor);

  EXPECT_TRUE(done);
  EXPECT_EQ(deployment->committed_count(), 4u);
  EXPECT_GT(deployment->hashes_computed(), 0.0);
  EXPECT_TRUE(monitor.clean()) << monitor.report();
}

}  // namespace
}  // namespace gpbft::sim
