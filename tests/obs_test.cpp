// Telemetry tests: registry/trace units, exporter determinism (same seed
// twice -> byte-identical artifacts), protocol neutrality (telemetry off ->
// identical chains), plus the satellite regressions (percentile clamping,
// Logger sim-time scope/teardown).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "net/simulator.hpp"
#include "obs/telemetry.hpp"
#include "sim/deployment.hpp"
#include "sim/invariants.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace gpbft {
namespace {

// --- metrics registry ----------------------------------------------------------

TEST(ObsRegistry, CountersAreKeyedByNameAndNode) {
  obs::Registry reg;
  reg.counter("msgs", NodeId{1}).add(3);
  reg.counter("msgs", NodeId{2}).add();
  reg.counter("other").add(10);
  EXPECT_EQ(reg.counter("msgs", NodeId{1}).value, 3u);
  EXPECT_EQ(reg.counter("msgs", NodeId{2}).value, 1u);
  EXPECT_EQ(reg.counter_total("msgs"), 4u);
  EXPECT_EQ(reg.counter_total("other"), 10u);
  EXPECT_EQ(reg.counter_total("absent"), 0u);
  EXPECT_EQ(reg.find_counter("msgs", NodeId{3}), nullptr);
}

TEST(ObsRegistry, HistogramBucketsAndTotals) {
  obs::Registry reg;
  obs::Histogram& h1 = reg.histogram("lat", NodeId{1});
  obs::Histogram& h2 = reg.histogram("lat", NodeId{2});
  h1.observe(0.5);
  h1.observe(2.0);
  h2.observe(1000.0);  // lands in the +inf bucket
  const obs::Histogram total = reg.histogram_total("lat");
  EXPECT_EQ(total.count, 3u);
  EXPECT_DOUBLE_EQ(total.sum, 1002.5);
  EXPECT_EQ(total.counts.size(), total.bounds.size() + 1);
  EXPECT_EQ(total.counts.back(), 1u);  // the 1000 s observation
  EXPECT_DOUBLE_EQ(h1.mean(), 1.25);
}

TEST(ObsRegistry, JsonlIsSortedAndStable) {
  obs::Registry reg;
  reg.counter("b.metric", NodeId{2}).add();
  reg.counter("b.metric", NodeId{1}).add();
  reg.counter("a.metric").add();
  reg.gauge("z.gauge").set(1.5);
  const std::string jsonl = reg.to_jsonl();
  // Counters first, sorted by (name, node); gauges after.
  const std::size_t a = jsonl.find("a.metric");
  const std::size_t b1 = jsonl.find("\"b.metric\",\"node\":1");
  const std::size_t b2 = jsonl.find("\"b.metric\",\"node\":2");
  const std::size_t z = jsonl.find("z.gauge");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b1, std::string::npos);
  ASSERT_NE(b2, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, b1);
  EXPECT_LT(b1, b2);
  EXPECT_LT(b2, z);
  EXPECT_EQ(jsonl, reg.to_jsonl());  // stable across calls
}

// --- trace recorder ------------------------------------------------------------

TEST(ObsTrace, PerfettoJsonRendersNsAsMicrosExactly) {
  obs::TraceRecorder trace;
  trace.instant(TimePoint{1'234'567'891}, NodeId{3}, "tick", "test", {{"k", "v"}});
  const std::string json = trace.to_perfetto_json();
  // 1'234'567'891 ns == 1234567.891 us, rendered without floating point.
  EXPECT_NE(json.find("\"ts\":1234567.891"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsTrace, AsyncSpansCarryCorrelationIds) {
  obs::TraceRecorder trace;
  trace.async_begin(42, TimePoint{0}, NodeId{1}, "request", "client");
  trace.async_end(42, TimePoint{1000}, NodeId{2}, "request", "client");
  const std::string json = trace.to_perfetto_json();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"42\""), std::string::npos);
}

TEST(ObsTrace, BoundedCapacityCountsDrops) {
  obs::TraceRecorder trace;
  trace.set_capacity(2);
  for (int i = 0; i < 5; ++i) trace.instant(TimePoint{i}, NodeId{1}, "e", "t");
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 3u);
  EXPECT_NE(trace.to_perfetto_json().find("\"dropped_events\":\"3\""), std::string::npos);
}

// --- telemetry facade ----------------------------------------------------------

TEST(ObsTelemetry, NoopInstanceStaysDisabled) {
  obs::Telemetry& noop = obs::Telemetry::noop();
  EXPECT_FALSE(noop.enabled());
  EXPECT_FALSE(noop.trace_enabled());
  noop.count("ignored");
  noop.observe("ignored", 1.0);
  EXPECT_TRUE(noop.metrics().empty());
}

TEST(ObsTelemetry, GatesAndNamersWork) {
  obs::Telemetry tel;
  tel.count("a");  // metrics on by default
  EXPECT_EQ(tel.metrics().counter_total("a"), 1u);
  tel.instant("i", "c", NodeId{1});  // tracing off by default
  EXPECT_TRUE(tel.trace().empty());
  tel.set_trace_enabled(true);
  tel.instant("i", "c", NodeId{1});
  EXPECT_EQ(tel.trace().size(), 1u);
  EXPECT_EQ(tel.message_name(7), "type-7");  // fallback namer
  tel.set_enabled(false);
  tel.count("a");
  EXPECT_EQ(tel.metrics().counter_total("a"), 1u);  // gate closed
}

// --- satellite: percentile clamping --------------------------------------------

TEST(LatencyRecorder, PercentileGuardsEmptyAndOutOfRange) {
  sim::LatencyRecorder recorder;
  EXPECT_DOUBLE_EQ(recorder.percentile(50), 0.0);  // empty: no UB, just 0
  recorder.record(Duration::seconds(1));
  recorder.record(Duration::seconds(2));
  EXPECT_DOUBLE_EQ(recorder.percentile(-10), 1.0);   // clamped to p0
  EXPECT_DOUBLE_EQ(recorder.percentile(250), 2.0);   // clamped to p100
  const sim::BoxplotStats empty = sim::LatencyRecorder{}.boxplot();
  EXPECT_EQ(empty.count, 0u);
}

TEST(LatencyRecorder, PercentileClampsAtBothExtremesExactly) {
  sim::LatencyRecorder recorder;
  recorder.record(Duration::seconds(1));
  recorder.record(Duration::seconds(2));
  recorder.record(Duration::seconds(3));
  // Exactly at the boundaries, not just past them.
  EXPECT_DOUBLE_EQ(recorder.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(recorder.percentile(100), 3.0);
  // Far past them: infinities must clamp too, not index out of range.
  EXPECT_DOUBLE_EQ(recorder.percentile(-1e300), 1.0);
  EXPECT_DOUBLE_EQ(recorder.percentile(1e300), 3.0);
  EXPECT_DOUBLE_EQ(recorder.percentile(50), 2.0);  // sanity: the median
}

TEST(LatencyRecorder, SingleSamplePercentilesAreThatSample) {
  sim::LatencyRecorder recorder;
  recorder.record(Duration::millis(250));
  for (const double p : {0.0, 25.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(recorder.percentile(p), 0.25) << "p" << p;
  }
  const sim::BoxplotStats box = recorder.boxplot();
  EXPECT_DOUBLE_EQ(box.min, 0.25);
  EXPECT_DOUBLE_EQ(box.median, 0.25);
  EXPECT_DOUBLE_EQ(box.max, 0.25);
  EXPECT_EQ(box.count, 1u);
}

// --- satellite: histogram edge cases -------------------------------------------

TEST(ObsRegistry, EmptyHistogramExportsZeroRow) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("never.observed");
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.counts.size(), h.bounds.size() + 1);  // shaped at creation
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);                  // no division by zero
  const std::string jsonl = reg.to_jsonl();
  // The row exists (a created series is a fact about the run) with an
  // all-zero profile.
  EXPECT_NE(jsonl.find("never.observed"), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":0"), std::string::npos);
  EXPECT_EQ(jsonl, reg.to_jsonl());  // stable bytes
}

TEST(ObsRegistry, OverflowBucketCatchesEverythingPastTheLastBound) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("tail", NodeId{1}, {1.0, 2.0});
  h.observe(1.0);     // == a bound: next bucket up (upper_bound semantics)
  h.observe(2.0);     // == last bound: overflow, not in-range
  h.observe(2.0001);  // just past: overflow
  h.observe(1e12);    // far past: overflow
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 0u);
  EXPECT_EQ(h.counts[1], 1u);       // the 1.0 at the first bound
  EXPECT_EQ(h.counts.back(), 3u);   // everything >= the last bound
  EXPECT_EQ(h.count, 4u);
  // Merging propagates overflow counts, not just sum/count.
  obs::Histogram& other = reg.histogram("tail", NodeId{2}, {1.0, 2.0});
  other.observe(5.0);
  const obs::Histogram total = reg.histogram_total("tail");
  EXPECT_EQ(total.counts.back(), 4u);
  EXPECT_EQ(total.count, 5u);
}

TEST(ObsRegistry, StandaloneHistogramShapesCountsOnFirstObserve) {
  // A Histogram constructed outside the registry starts with empty counts;
  // the first observe must lazily shape counts to bounds.size() + 1.
  obs::Histogram h;
  h.bounds = {10.0};
  EXPECT_TRUE(h.counts.empty());
  h.observe(3.0);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 0u);
}

// --- satellite: Logger sim-time scope ------------------------------------------

TEST(Logging, SimTimeScopeRestoresPreviousState) {
  Logger& logger = Logger::instance();
  logger.clear_sim_time();
  {
    SimTimeScope scope(1.5);
    EXPECT_TRUE(logger.has_sim_time());
    EXPECT_DOUBLE_EQ(logger.sim_time_seconds(), 1.5);
    {
      SimTimeScope inner(9.0);
      EXPECT_DOUBLE_EQ(logger.sim_time_seconds(), 9.0);
    }
    EXPECT_DOUBLE_EQ(logger.sim_time_seconds(), 1.5);
  }
  EXPECT_FALSE(logger.has_sim_time());
}

TEST(Logging, DeploymentTeardownClearsSimTime) {
  Logger& logger = Logger::instance();
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Pbft;
  spec.nodes = 4;
  spec.clients = 1;
  spec.workload.txs_per_client = 1;
  {
    const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
    deployment->start();
    deployment->run_for(Duration::seconds(5));
    deployment->stop();
  }
  EXPECT_FALSE(logger.has_sim_time());
}

// --- determinism & neutrality across a full deployment -------------------------

sim::ScenarioSpec small_scenario() {
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.seed = 7;
  spec.nodes = 6;
  spec.clients = 2;
  spec.workload.txs_per_client = 3;
  spec.workload.period = Duration::seconds(2);
  spec.deadline = Duration::seconds(200);
  return spec;
}

struct RunArtifacts {
  std::string metrics;
  std::string trace;
  std::vector<crypto::Hash256> block_hashes;
};

RunArtifacts run_once(bool telemetry_enabled) {
  const sim::ScenarioSpec spec = small_scenario();
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  deployment->telemetry().set_enabled(telemetry_enabled);
  deployment->telemetry().set_trace_enabled(telemetry_enabled);
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->run_until_committed(spec.workload.txs_per_client, TimePoint{spec.deadline.ns});
  deployment->stop();
  deployment->finalize_telemetry();

  RunArtifacts artifacts;
  artifacts.metrics = deployment->telemetry().metrics().to_jsonl();
  artifacts.trace = deployment->telemetry().trace().to_perfetto_json();
  auto& cluster = dynamic_cast<sim::GpbftCluster&>(*deployment);
  const ledger::Chain& chain = cluster.endorser(0).chain();
  for (Height h = 0; h <= chain.height(); ++h) {
    artifacts.block_hashes.push_back(chain.at(h).hash());
  }
  return artifacts;
}

TEST(ObsDeterminism, SameSeedProducesByteIdenticalExports) {
  const RunArtifacts first = run_once(/*telemetry_enabled=*/true);
  const RunArtifacts second = run_once(/*telemetry_enabled=*/true);
  EXPECT_FALSE(first.metrics.empty());
  EXPECT_GT(first.trace.size(), 100u);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.block_hashes, second.block_hashes);
}

TEST(ObsDeterminism, DisablingTelemetryLeavesChainsUnchanged) {
  const RunArtifacts with = run_once(/*telemetry_enabled=*/true);
  const RunArtifacts without = run_once(/*telemetry_enabled=*/false);
  ASSERT_FALSE(with.block_hashes.empty());
  EXPECT_EQ(with.block_hashes, without.block_hashes);
}

TEST(ObsDeployment, RegistryCarriesProtocolAndNetworkFamilies) {
  const sim::ScenarioSpec spec = small_scenario();
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->run_until_committed(spec.workload.txs_per_client, TimePoint{spec.deadline.ns});
  deployment->stop();
  deployment->finalize_telemetry();

  const obs::Registry& reg = deployment->telemetry().metrics();
  EXPECT_GT(reg.counter_total("net.msgs.PRE-PREPARE"), 0u);
  EXPECT_GT(reg.counter_total("net.msgs.PREPARE"), 0u);
  EXPECT_GT(reg.counter_total("pbft.blocks_executed"), 0u);
  EXPECT_GT(reg.counter_total("client.committed"), 0u);
  EXPECT_GT(reg.counter_total("gpbft.geo_reports_sent"), 0u);
  EXPECT_EQ(reg.counter_total("client.committed"),
            static_cast<std::uint64_t>(deployment->committed_count()));
  EXPECT_GT(reg.histogram_total("pbft.phase.commit_seconds").count, 0u);
  const obs::Histogram latency = reg.histogram_total("client.request_seconds");
  EXPECT_EQ(latency.count, deployment->committed_count());
  ASSERT_NE(reg.find_counter("net.msgs_sent", NodeId{1}), nullptr);
}

// --- satellite: invariant monitor reads tallies from the registry --------------

TEST(ObsInvariants, MonitorTalliesLiveInDeploymentRegistry) {
  const sim::ScenarioSpec spec = small_scenario();
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  sim::InvariantMonitor monitor(deployment->simulator());
  deployment->watch(monitor);
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(
      spec.workload, &recorder,
      [&monitor](const ledger::Transaction& tx) { monitor.expect_submission(tx); });
  deployment->run_until_committed(spec.workload.txs_per_client, TimePoint{spec.deadline.ns});
  deployment->stop();

  const obs::Registry& reg = deployment->telemetry().metrics();
  EXPECT_GT(monitor.blocks_checked(), 0u);
  EXPECT_EQ(reg.counter_total("invariant.blocks_checked"), monitor.blocks_checked());
  EXPECT_EQ(reg.counter_total("invariant.txs_checked"), monitor.transactions_checked());
  EXPECT_EQ(reg.counter_total("invariant.violations"), 0u);
  EXPECT_TRUE(monitor.clean());
}

TEST(ObsInvariants, StandaloneMonitorTalliesCarryOverOnRebind) {
  net::Simulator sim(1);
  sim::InvariantMonitor monitor(sim);
  monitor.check_block_hash(NodeId{1}, 1, crypto::Hash256{});
  EXPECT_EQ(monitor.blocks_checked(), 1u);
  obs::Telemetry telemetry;
  monitor.set_telemetry(telemetry);
  EXPECT_EQ(monitor.blocks_checked(), 1u);
  EXPECT_EQ(telemetry.metrics().counter_total("invariant.blocks_checked"), 1u);
  monitor.check_block_hash(NodeId{2}, 1, crypto::Hash256{});
  EXPECT_EQ(telemetry.metrics().counter_total("invariant.blocks_checked"), 2u);
}

}  // namespace
}  // namespace gpbft
