// Message-plane parity goldens (label: tier1-perf).
//
// The hot-path rewrite (shared payloads, single-hop delivery, cached stats
// handles — see docs/performance.md) must not change observable behaviour.
// These tests pin that promise for fixed seeds as SHA-256 digests over the
// full observable surface of a seeded run:
//
//   * the chain tip hash (consensus outcome),
//   * the metrics JSONL snapshot (every counter/gauge/histogram, including
//     the net.* accounting the rewrite touches),
//   * the Perfetto trace export (event-by-event causal order).
//
// The constants were recorded from the pre-refactor message plane. If a
// net/sim change breaks one of them, it changed behaviour — fix the change,
// don't re-pin, unless the behaviour change is itself the point of a PR
// (then re-record and say so in the PR description).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "crypto/sha256.hpp"
#include "sim/deployment.hpp"
#include "sim/scenario.hpp"

namespace gpbft::sim {
namespace {

struct RunDigests {
  std::string tip;
  std::string metrics_sha256;
  std::string trace_sha256;
  std::uint64_t committed{0};
};

/// Runs one seeded deployment with tracing on and digests the exports.
RunDigests run_and_digest(const ScenarioSpec& spec, Duration horizon) {
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->telemetry().set_trace_enabled(true);
  deployment->start();
  LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  if (horizon.ns > 0) {
    deployment->run_for(horizon);
  } else {
    deployment->run_until_committed(spec.workload.txs_per_client,
                                    TimePoint{Duration::seconds(300).ns});
  }
  deployment->stop();
  deployment->finalize_telemetry();

  RunDigests digests;
  digests.committed = deployment->committed_count();
  if (auto* pbft = dynamic_cast<PbftCluster*>(deployment.get())) {
    digests.tip = pbft->replica(0).chain().tip().hash().hex();
  } else if (auto* gpbft = dynamic_cast<GpbftCluster*>(deployment.get())) {
    digests.tip = gpbft->endorser(0).chain().tip().hash().hex();
  }
  digests.metrics_sha256 = crypto::sha256(deployment->telemetry().metrics().to_jsonl()).hex();
  digests.trace_sha256 =
      crypto::sha256(deployment->telemetry().trace().to_perfetto_json()).hex();
  EXPECT_EQ(deployment->telemetry().trace().dropped(), 0u)
      << "trace overflowed its capacity; digests would under-cover the run";
  return digests;
}

ScenarioSpec pbft_golden_spec() {
  // Same run as scenario_test's PbftGoldenRunIsBitIdentical, so the tip
  // constant below cross-checks that suite.
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 5;
  spec.clients = 2;
  spec.seed = 42;
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;
  return spec;
}

ScenarioSpec gpbft_golden_spec() {
  // Same run as scenario_test's GpbftGoldenRunIsBitIdentical: covers an era
  // switch, candidate promotion and the roster fan-out path.
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Gpbft;
  spec.nodes = 6;
  spec.clients = 2;
  spec.seed = 7;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 6;
  spec.committee.era_period = Duration::seconds(15);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 4;
  return spec;
}

TEST(PerfParity, PbftMetricsAndTraceAreBitIdentical) {
  const RunDigests digests = run_and_digest(pbft_golden_spec(), Duration{});
  EXPECT_EQ(digests.committed, 8u);
  EXPECT_EQ(digests.tip, "68086af0d716cdecdc16dd24bd2c5c5a353ce8958358e0e12e321500564f84ed");
  EXPECT_EQ(digests.metrics_sha256, "d85842224baa8ba17e65af84ace0b1b13ede387aeefa8cd4e519667708296461");
  EXPECT_EQ(digests.trace_sha256, "0a11a21a6b70ca40bbb65f74c877dec92dfc75b5ce4ba8dd2581e11bedd3a587");
}

TEST(PerfParity, GpbftMetricsAndTraceAreBitIdentical) {
  const RunDigests digests = run_and_digest(gpbft_golden_spec(), Duration::seconds(60));
  EXPECT_EQ(digests.committed, 8u);
  EXPECT_EQ(digests.tip, "540d7bde3eab76203c96355ea7b35f686f91d6889e98e6071db233bc81b98894");
  EXPECT_EQ(digests.metrics_sha256, "3046f93e32de54a9418969ed0c1bf27dee92c0342eba4047e6e37ed1081b6b4a");
  EXPECT_EQ(digests.trace_sha256, "6f0db6012934c165913fd44a14aa9dc8b7f7fd654522280de7ec1d15eed38d79");
}

// A fault-heavy run: drops, a crash/recover window and a brownout exercise
// exactly the delivery-time branches the rewrite restructures (receiver
// down at arrival vs at processing-done, serial-queue folding across a
// rate override). Pinned separately because the clean goldens above never
// reach those branches.
TEST(PerfParity, FaultyNetworkRunIsBitIdentical) {
  ScenarioSpec spec = pbft_golden_spec();
  spec.seed = 1337;
  spec.net.drop_rate = 0.02;

  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->telemetry().set_trace_enabled(true);
  deployment->start();
  LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->simulator().schedule(Duration::seconds(3), [&deployment]() {
    deployment->network().crash(NodeId{4});
    deployment->network().set_processing_rate(NodeId{3}, 40.0);
  });
  deployment->simulator().schedule(Duration::seconds(9), [&deployment]() {
    deployment->network().recover(NodeId{4});
    deployment->network().set_processing_rate(NodeId{3}, 0.0);  // restore default
  });
  deployment->run_for(Duration::seconds(40));
  deployment->stop();
  deployment->finalize_telemetry();

  const std::string metrics_sha =
      crypto::sha256(deployment->telemetry().metrics().to_jsonl()).hex();
  const std::string trace_sha =
      crypto::sha256(deployment->telemetry().trace().to_perfetto_json()).hex();
  auto* pbft = dynamic_cast<PbftCluster*>(deployment.get());
  ASSERT_NE(pbft, nullptr);
  EXPECT_EQ(pbft->replica(0).chain().tip().hash().hex(), "b5d28fba6a2cf03efee1ef2b4b30f68ed4713d407a225f5160f2ebbb9fa5f1cd");
  // The tip and trace digests match the pre-refactor run exactly. The
  // metrics digest was re-recorded once, deliberately, in the same PR that
  // rewrote the hot path: delivery-time drops (receiver crashed/detached
  // between send and processing) used to bump NetStats::dropped_messages
  // but not the `net.msgs_dropped` counter, so the old snapshot undercounts
  // drops. Network.DropAccountingMatchesTelemetry pins the two paths equal.
  EXPECT_EQ(metrics_sha, "0abd5729da2bc7821134f98e45d644864c6caea93061099fa1bbed3e1c9a16ac");
  EXPECT_EQ(trace_sha, "4b0a5ece7c3b416894730ea9f4104efb2fa4ad3ff819b8ef543cb95fcae43bc4");
}

}  // namespace
}  // namespace gpbft::sim
