// WorkloadPlane: the open-loop million-device workload multiplexer
// (label: tier1-batch).
//
// Covers the plane's three contracts (docs/protocol.md §11):
//   * the arrival-rate profiles (constant / poisson / burst / diurnal) are
//     pure functions of simulated time — checked analytically;
//   * a 10^6-device plane over O(1) concrete endpoints is deterministic
//     and open-loop complete (every submission commits);
//   * Deployment::stop() quiesces pending workload events for both the
//     plane and the per-client drivers (the liveness-token regression).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "net/simulator.hpp"
#include "obs/telemetry.hpp"
#include "sim/deployment.hpp"
#include "sim/scenario.hpp"
#include "sim/workload_plane.hpp"

namespace gpbft::sim {
namespace {

WorkloadSpec plane_spec(ArrivalProcess arrival) {
  WorkloadSpec spec;
  spec.mode = WorkloadMode::Plane;
  spec.arrival = arrival;
  spec.devices = 1000;
  spec.rate_hz = 0.01;  // per-device; aggregate peak = 10 req/s
  spec.start = TimePoint{Duration::seconds(2).ns};
  spec.horizon = Duration::seconds(20);
  spec.burst_on = Duration::seconds(1);
  spec.burst_off = Duration::seconds(4);
  spec.diurnal_period = Duration::seconds(10);
  spec.diurnal_trough = 0.2;
  return spec;
}

TimePoint at_seconds(double s) {
  return TimePoint{static_cast<std::int64_t>(s * 1e9)};
}

TEST(WorkloadPlane, RateProfilesArePureFunctionsOfTime) {
  net::Simulator sim(1);
  // Profile checks never start the plane, so no endpoints are needed.
  {
    WorkloadPlane plane(sim, plane_spec(ArrivalProcess::Poisson), {}, {},
                        obs::Telemetry::noop());
    EXPECT_DOUBLE_EQ(plane.peak_rate(), 10.0);
    EXPECT_DOUBLE_EQ(plane.rate_at(at_seconds(1.9)), 0.0);   // before start
    EXPECT_DOUBLE_EQ(plane.rate_at(at_seconds(5.0)), 10.0);  // inside window
    EXPECT_DOUBLE_EQ(plane.rate_at(at_seconds(22.0)), 0.0);  // past horizon
  }
  {
    WorkloadPlane plane(sim, plane_spec(ArrivalProcess::Burst), {}, {},
                        obs::Telemetry::noop());
    EXPECT_DOUBLE_EQ(plane.rate_at(at_seconds(2.5)), 10.0);  // 0.5 s in: on-window
    EXPECT_DOUBLE_EQ(plane.rate_at(at_seconds(4.0)), 0.0);   // 2 s in: off-window
    EXPECT_DOUBLE_EQ(plane.rate_at(at_seconds(7.5)), 10.0);  // next cycle's on-window
  }
  {
    WorkloadPlane plane(sim, plane_spec(ArrivalProcess::Diurnal), {}, {},
                        obs::Telemetry::noop());
    // Raised cosine: trough at phase 0, peak at phase 1/2.
    EXPECT_NEAR(plane.rate_at(at_seconds(2.0)), 10.0 * 0.2, 1e-9);
    EXPECT_NEAR(plane.rate_at(at_seconds(7.0)), 10.0, 1e-9);
    // Quarter period sits halfway up the ramp.
    EXPECT_NEAR(plane.rate_at(at_seconds(4.5)), 10.0 * (0.2 + 0.8 * 0.5), 1e-9);
  }
}

struct PlaneRun {
  std::string tip;
  std::uint64_t committed{0};
  std::uint64_t submitted{0};
  std::uint64_t thinned{0};
  bool generation_done{false};
};

ScenarioSpec plane_deployment_spec(ArrivalProcess arrival) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 4;
  spec.clients = 2;
  spec.seed = 33;
  spec.batch.size = 8;
  spec.workload = plane_spec(arrival);
  spec.workload.client_retries = false;
  return spec;
}

PlaneRun run_plane(const ScenarioSpec& spec) {
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->start();
  deployment->schedule_workload(spec.workload, nullptr);
  deployment->run_until_committed(0, TimePoint{Duration::seconds(300).ns});
  PlaneRun run;
  const WorkloadPlane* plane = deployment->plane();
  run.submitted = plane->submitted();
  run.thinned = deployment->telemetry().metrics().counter_total("plane.thinned");
  run.generation_done = plane->generation_done();
  run.committed = deployment->committed_count();
  deployment->stop();
  if (auto* pbft = dynamic_cast<PbftCluster*>(deployment.get())) {
    run.tip = pbft->replica(0).chain().tip().hash().hex();
  }
  return run;
}

TEST(WorkloadPlane, MillionDevicePlaneIsDeterministicAndOpenLoopComplete) {
  ScenarioSpec spec = plane_deployment_spec(ArrivalProcess::Poisson);
  spec.workload.devices = 1'000'000;
  spec.workload.rate_hz = 2e-5;  // aggregate peak 20 req/s over 2 concrete endpoints
  spec.workload.horizon = Duration::seconds(10);

  const PlaneRun first = run_plane(spec);
  const PlaneRun second = run_plane(spec);

  EXPECT_GT(first.submitted, 0u);
  EXPECT_TRUE(first.generation_done);
  // Open-loop completeness: every virtual-device submission committed.
  EXPECT_EQ(first.committed, first.submitted);
  // Determinism: a re-run from the same seed is byte-identical.
  EXPECT_EQ(first.tip, second.tip);
  EXPECT_EQ(first.submitted, second.submitted);
  EXPECT_EQ(first.committed, second.committed);
}

TEST(WorkloadPlane, BurstThinningSuppressesOffWindowArrivals) {
  // Burst 1 s on / 4 s off: only ~20% of candidate arrivals fall in an
  // on-window, so thinning must discard the bulk of the candidate stream.
  const ScenarioSpec spec = plane_deployment_spec(ArrivalProcess::Burst);
  const PlaneRun run = run_plane(spec);
  EXPECT_GT(run.submitted, 0u);
  EXPECT_GT(run.thinned, run.submitted);
  EXPECT_EQ(run.committed, run.submitted);
}

TEST(WorkloadPlane, StopQuiescesPlaneArrivals) {
  const ScenarioSpec spec = plane_deployment_spec(ArrivalProcess::Poisson);
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->start();
  deployment->schedule_workload(spec.workload, nullptr);
  deployment->run_for(Duration::seconds(8));  // mid-generation
  const std::uint64_t submitted_before = deployment->plane()->submitted();
  EXPECT_GT(submitted_before, 0u);
  EXPECT_FALSE(deployment->plane()->generation_done());

  deployment->stop();
  deployment->simulator().run();  // drain: pending arrivals must no-op

  EXPECT_EQ(deployment->plane()->submitted(), submitted_before);
}

TEST(WorkloadPlane, StopQuiescesPerClientDrivers) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Pbft;
  spec.nodes = 4;
  spec.clients = 2;
  spec.seed = 9;
  spec.workload.txs_per_client = 10;
  spec.workload.period = Duration::seconds(1);
  spec.workload.start = TimePoint{Duration::seconds(1).ns};

  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->start();
  std::uint64_t submissions = 0;
  deployment->schedule_workload(spec.workload, nullptr,
                                [&submissions](const ledger::Transaction&) { ++submissions; });
  deployment->run_for(Duration::seconds(4));  // a few periods in, far from done
  const std::uint64_t submitted_before = submissions;
  EXPECT_GT(submitted_before, 0u);
  EXPECT_LT(submitted_before, 20u);

  deployment->stop();
  deployment->simulator().run();  // drain: queued driver steps must no-op

  EXPECT_EQ(submissions, submitted_before);
}

}  // namespace
}  // namespace gpbft::sim
