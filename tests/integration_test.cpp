// Cross-protocol integration tests asserting the *shapes* the paper reports:
// G-PBFT's committee cap keeps latency and communication cost flat while
// PBFT's grow with the network (Figs. 3-6, Table III in miniature).
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace gpbft::sim {
namespace {

ExperimentOptions quick_options() {
  ExperimentOptions options = default_options();
  options.workload.txs_per_client = 3;
  options.workload.period = Duration::seconds(2);
  options.committee.max = 10;  // small cap so the effect shows at small n
  options.committee.min = 4;
  options.committee.era_period = Duration::seconds(15);
  options.geo.window = options.committee.era_period;
  options.hard_deadline = Duration::seconds(600);
  return options;
}

TEST(Integration, GpbftCommitteeCapsAtMaximum) {
  const ExperimentOptions options = quick_options();
  EXPECT_EQ(run_gpbft_latency(6, options).committee, 6u);
  EXPECT_EQ(run_gpbft_latency(10, options).committee, 10u);
  EXPECT_EQ(run_gpbft_latency(25, options).committee, 10u);  // capped
}

TEST(Integration, SmallNetworksBehaveAlike) {
  // Below the cap, G-PBFT *is* PBFT over the same committee (Fig. 3b:
  // "the consensus latency increases just like that in the PBFT").
  ExperimentOptions options = quick_options();
  const ExperimentResult pbft = run_pbft_latency(7, options);
  const ExperimentResult gpbft = run_gpbft_latency(7, options);
  ASSERT_EQ(pbft.committed, pbft.expected);
  ASSERT_EQ(gpbft.committed, gpbft.expected);
  // Same committee size, latencies within 3x of each other (era-switch
  // pauses and geo traffic add some noise to G-PBFT).
  EXPECT_EQ(pbft.committee, gpbft.committee);
  EXPECT_LT(gpbft.latency.mean, pbft.latency.mean * 3.0);
}

TEST(Integration, GpbftLatencyFlatBeyondCap) {
  ExperimentOptions options = quick_options();
  const ExperimentResult at_cap = run_gpbft_latency(10, options);
  const ExperimentResult beyond = run_gpbft_latency(30, options);
  ASSERT_EQ(beyond.committed, beyond.expected);
  // 3x the nodes, same committee: mean latency grows by far less than the
  // node ratio (it may grow a little: more clients share the committee).
  EXPECT_LT(beyond.latency.mean, at_cap.latency.mean * 2.5);
}

TEST(Integration, PbftLatencyGrowsWithNetwork) {
  ExperimentOptions options = quick_options();
  const ExperimentResult small = run_pbft_latency(7, options);
  const ExperimentResult large = run_pbft_latency(28, options);
  ASSERT_EQ(small.committed, small.expected);
  ASSERT_EQ(large.committed, large.expected);
  EXPECT_GT(large.latency.mean, small.latency.mean * 1.5);
}

TEST(Integration, GpbftBeatsPbftBeyondCap) {
  // The headline claim at miniature scale.
  ExperimentOptions options = quick_options();
  const ExperimentResult pbft = run_pbft_latency(30, options);
  const ExperimentResult gpbft = run_gpbft_latency(30, options);
  ASSERT_EQ(gpbft.committed, gpbft.expected);
  EXPECT_LT(gpbft.latency.mean, pbft.latency.mean);
}

TEST(Integration, CommCostFlatForGpbftGrowingForPbft) {
  ExperimentOptions options = quick_options();
  const ExperimentResult pbft_small = run_pbft_single_tx(8, options);
  const ExperimentResult pbft_large = run_pbft_single_tx(32, options);
  const ExperimentResult gpbft_small = run_gpbft_single_tx(8, options);
  const ExperimentResult gpbft_large = run_gpbft_single_tx(32, options);

  // PBFT per-transaction bytes grow ~quadratically: 4x nodes -> ~16x bytes.
  EXPECT_GT(pbft_large.consensus_kb, pbft_small.consensus_kb * 8);
  // G-PBFT hits the committee ceiling: 4x nodes -> far less than 4x bytes.
  EXPECT_LT(gpbft_large.consensus_kb, gpbft_small.consensus_kb * 3);
  // And beyond the cap, G-PBFT is much cheaper than PBFT.
  EXPECT_LT(gpbft_large.consensus_kb, pbft_large.consensus_kb / 4);
}

TEST(Integration, CommCostQuadraticFactorMatchesTheory) {
  // §IV-C: cost reduction ~ c^2/n^2. With n = 32, c = 10 the predicted
  // ratio is ~9.8%; allow generous tolerance for client traffic and the
  // small-committee constant terms.
  ExperimentOptions options = quick_options();
  const ExperimentResult pbft = run_pbft_single_tx(32, options);
  const ExperimentResult gpbft = run_gpbft_single_tx(32, options);
  const double ratio = gpbft.consensus_kb / pbft.consensus_kb;
  const double predicted = (10.0 * 10.0) / (32.0 * 32.0);
  EXPECT_GT(ratio, predicted * 0.4);
  EXPECT_LT(ratio, predicted * 3.0);
}

TEST(Integration, AllTransactionsCommitUnderChurnLoad) {
  // Era switches during a loaded run never lose transactions.
  ExperimentOptions options = quick_options();
  options.committee.era_period = Duration::seconds(8);
  options.geo.window = options.committee.era_period;
  options.workload.txs_per_client = 4;
  const ExperimentResult result = run_gpbft_latency(12, options);
  EXPECT_EQ(result.committed, result.expected);
}

TEST(Integration, DbftCommitsWithBlockPacingLatency) {
  ExperimentOptions options = quick_options();
  options.workload.txs_per_client = 2;
  options.dbft.block_interval = Duration::seconds(5);
  const ExperimentResult result = run_dbft_latency(10, options);
  EXPECT_EQ(result.committed, result.expected);
  EXPECT_EQ(result.committee, 7u);  // NEO-style delegate count
  // Latency is dominated by the pacing interval, far above PBFT's
  // sub-second commits at this scale — the §VI-A critique made measurable.
  EXPECT_GT(result.latency.mean, 1.0);
}

TEST(Integration, PowConfirmsWithProbabilisticLatency) {
  ExperimentOptions options = quick_options();
  options.workload.txs_per_client = 1;
  options.pow.block_interval = Duration::seconds(5);
  options.pow.confirmations = 2;
  options.hard_deadline = Duration::seconds(2000);
  const ExperimentResult result = run_pow_latency(8, options);
  EXPECT_EQ(result.committed, result.expected);
  // Multiple block intervals to confirmation, and real hash work spent.
  EXPECT_GT(result.latency.mean, 5.0);
  EXPECT_GT(result.hashes_computed, 1e6);
}

TEST(Integration, GpbftFasterThanBothBaselines) {
  ExperimentOptions options = quick_options();
  options.workload.txs_per_client = 2;
  options.pow.block_interval = Duration::seconds(5);
  options.pow.confirmations = 2;
  options.dbft.block_interval = Duration::seconds(5);
  options.hard_deadline = Duration::seconds(2000);

  const double gpbft = run_gpbft_latency(12, options).latency.mean;
  const double dbft = run_dbft_latency(12, options).latency.mean;
  const double pow = run_pow_latency(12, options).latency.mean;
  EXPECT_LT(gpbft, dbft);
  EXPECT_LT(gpbft, pow);
}

TEST(Integration, ProcessingRateScalesLatency) {
  // §IV-B: consensus time ~ O(n/s). Halving s should roughly double the
  // queue-free consensus latency.
  ExperimentOptions options = quick_options();
  options.workload.txs_per_client = 1;
  ExperimentOptions slow = options;
  slow.net.processing_rate_msgs_per_sec = options.net.processing_rate_msgs_per_sec / 2;
  const ExperimentResult fast_run = run_pbft_latency(10, options);
  const ExperimentResult slow_run = run_pbft_latency(10, slow);
  EXPECT_GT(slow_run.latency.mean, fast_run.latency.mean * 1.4);
  EXPECT_LT(slow_run.latency.mean, fast_run.latency.mean * 3.0);
}

}  // namespace
}  // namespace gpbft::sim
