// Adversarial election-attack pack (tier1-adversarial): the reputation-
// weighted endorser election must keep Sybil flooders and quarantined
// devices off the committee under attack campaigns, the stock geo-timer
// election must demonstrably seat the same attackers (the vulnerability the
// reputation layer closes), restarting mid-campaign must rebuild the
// reputation ledger from persisted configuration blocks, and attack runs
// must stay seed-deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "gpbft/endorser.hpp"
#include "sim/chaos.hpp"
#include "sim/deployment.hpp"
#include "sim/invariants.hpp"

namespace gpbft::sim {
namespace {

bool contains(const std::vector<NodeId>& roster, NodeId id) {
  return std::find(roster.begin(), roster.end(), id) != roster.end();
}

/// Compressed campaign-style G-PBFT scenario: 7-member genesis committee,
/// two candidates, era switches every 15 s.
ScenarioSpec attack_spec(std::uint64_t seed, bool reputation) {
  ScenarioSpec spec;
  spec.protocol = ProtocolKind::Gpbft;
  spec.seed = seed;
  spec.nodes = 9;
  spec.clients = 2;
  spec.committee.initial = 7;
  spec.committee.min = 4;
  spec.committee.max = 9;
  spec.committee.era_period = Duration::seconds(15);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.engine.request_timeout = Duration::seconds(6);
  spec.engine.view_change_timeout = Duration::seconds(5);
  spec.workload.period = Duration::seconds(4);
  spec.workload.txs_per_client = 6;
  spec.reputation.enabled = reputation;
  return spec;
}

ChaosCampaignOptions attack_campaign(std::size_t seeds) {
  ChaosCampaignOptions options;
  options.seeds = seeds;
  options.intensities = {"light"};
  options.protocols = {ProtocolKind::Gpbft};
  options.committee = 7;
  options.candidates = 2;
  options.sybil_burst_chance = 0.25;
  options.targeted_crash_chance = 0.2;
  options.oscillate_chance = 0.25;
  options.reputation = true;
  return options;
}

// --- no attacker seated, across seeds -------------------------------------------------

TEST(ElectionAttack, ReputationCampaignSeatsNoAttackerAcrossTwentySeeds) {
  // Twenty seeded attack campaigns with the reputation election on: the
  // monitor's SYBIL-SEATED / COMMITTEE-QUALITY / ERA-CONVERGENCE checks are
  // armed inside run_chaos_campaign, so zero failed runs means no election
  // ever seated an active flooder or a quarantined device, and every
  // workload recovered within the liveness grace.
  const ChaosCampaignResult result = run_chaos_campaign(attack_campaign(20));
  ASSERT_EQ(result.runs.size(), 20u);
  EXPECT_EQ(result.failed_runs(), 0u) << result.summary();
  for (const ChaosRunResult& run : result.runs) {
    EXPECT_EQ(run.committed, run.expected) << run.seed;
  }
}

// --- before/after: the vulnerability and the fix --------------------------------------

TEST(ElectionAttack, StockElectionSeatsFlooderReputationQuarantinesIt) {
  // One committee member floods forged copies of its (truthful) geo report
  // from t=4 s on. Every copy passes the area-registry check, so the stock
  // geographic election has no handle on the attack and keeps the flooder
  // seated through every era switch. The reputation election's era-switch
  // rate audit strikes it and the quarantine latch keeps it off the roster.
  const auto final_roster = [](bool reputation) {
    ScenarioSpec spec = attack_spec(77, reputation);
    const std::unique_ptr<GpbftCluster> cluster = make_gpbft_deployment(spec);
    GpbftCluster* raw = cluster.get();
    cluster->start();
    cluster->schedule_workload(spec.workload, nullptr);
    cluster->simulator().schedule(Duration::seconds(4), [raw]() {
      raw->set_fault_mode(NodeId{5}, pbft::FaultMode::SybilGeoReports);
    });
    cluster->run_for(Duration::seconds(60));
    cluster->stop();
    return cluster->committee();
  };

  const std::vector<NodeId> stock = final_roster(false);
  const std::vector<NodeId> guarded = final_roster(true);
  EXPECT_TRUE(contains(stock, NodeId{5}))
      << "stock election should be blind to the report flood";
  EXPECT_FALSE(contains(guarded, NodeId{5}))
      << "reputation election should quarantine the flooder";
  // The rest of the committee is unaffected by the demotion.
  EXPECT_GE(guarded.size(), 6u);
}

// --- restart mid-campaign rebuilds the ledger from persisted config blocks ------------

TEST(ElectionAttack, RestartedEndorserRebuildsReputationAndRejoins) {
  ScenarioSpec spec = attack_spec(7, /*reputation=*/true);
  const std::unique_ptr<GpbftCluster> cluster = make_gpbft_deployment(spec);
  InvariantMonitor monitor(cluster->simulator());
  cluster->watch(monitor);
  monitor.set_sybil_detection_grace(spec.geo.window + spec.geo.report_period);
  monitor.set_era_convergence_bound(Duration::seconds(30));
  cluster->start();
  cluster->schedule_workload(spec.workload, nullptr,
                             [&monitor](const ledger::Transaction& tx) {
                               monitor.expect_submission(tx);
                             });
  GpbftCluster* raw = cluster.get();
  cluster->simulator().schedule(Duration::seconds(4), [raw, &monitor]() {
    raw->set_fault_mode(NodeId{5}, pbft::FaultMode::SybilGeoReports);
    monitor.note_sybil(NodeId{5}, true);
  });
  // Past the first era switch the configuration block carries the score
  // snapshot (flooder already struck and quarantined); node 2 reboots with
  // disk amnesia for everything above its restored height.
  cluster->simulator().schedule(Duration::seconds(40), [raw]() {
    ASSERT_GE(raw->era(), 1u);
    ASSERT_TRUE(raw->restart_node(NodeId{2}));
  });
  cluster->run_for(Duration::seconds(70));
  cluster->run_for(spec.engine.request_timeout * 3);
  cluster->stop();
  cluster->finish_invariants(monitor);
  monitor.check_restart_convergence();

  EXPECT_GE(cluster->total_era_switches(), 1u);
  EXPECT_TRUE(monitor.clean()) << monitor.report();

  // The rebooted endorser's reputation ledger was rebuilt from the persisted
  // configuration blocks: it knows the flooder is quarantined even though it
  // never re-observed the flood audit itself.
  const TimePoint now = cluster->simulator().now();
  EXPECT_TRUE(cluster->endorser(1).reputation().quarantined(NodeId{5}, now));

  // It rejoined the same committee and the same chain as a peer that never
  // went down; the flooder stays excluded.
  EXPECT_TRUE(contains(cluster->committee(), NodeId{2}));
  EXPECT_FALSE(contains(cluster->committee(), NodeId{5}));
  EXPECT_EQ(cluster->endorser(1).chain().tip().hash().hex(),
            cluster->endorser(2).chain().tip().hash().hex());
}

// --- determinism ----------------------------------------------------------------------

TEST(ElectionAttack, AttackCampaignsAreSeedDeterministic) {
  // Identical options twice: the campaign summary is documented to be
  // byte-identical, which pins every committed count, fault-event count and
  // violation line across the attack families' forked RNG streams.
  const ChaosCampaignOptions options = attack_campaign(3);
  const std::string first = run_chaos_campaign(options).summary();
  const std::string second = run_chaos_campaign(options).summary();
  EXPECT_EQ(first, second);
}

TEST(ElectionAttack, ZeroChancePlansMatchPreAttackPlans) {
  // The election-attack families draw from their own forked RNG stream:
  // with all three chances at zero the generated fault plan — and hence the
  // whole run — is byte-identical to a pre-attack-pack campaign.
  ChaosCampaignOptions base = attack_campaign(3);
  base.sybil_burst_chance = 0.0;
  base.targeted_crash_chance = 0.0;
  base.oscillate_chance = 0.0;
  base.reputation = false;
  ChaosCampaignOptions again = base;
  EXPECT_EQ(run_chaos_campaign(base).summary(), run_chaos_campaign(again).summary());
}

}  // namespace
}  // namespace gpbft::sim
