// End-to-end smoke: both protocols commit transactions in a small network.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace gpbft::sim {
namespace {

ExperimentOptions small_options() {
  ExperimentOptions options = default_options();
  options.workload.txs_per_client = 2;
  options.workload.period = Duration::seconds(1);
  options.engine.compute_macs = true;
  options.hard_deadline = Duration::seconds(300);
  return options;
}

TEST(Smoke, PbftCommitsTransactions) {
  const ExperimentResult result = run_pbft_latency(4, small_options());
  EXPECT_EQ(result.committed, result.expected);
  EXPECT_GT(result.latency.mean, 0.0);
}

TEST(Smoke, GpbftCommitsTransactions) {
  const ExperimentResult result = run_gpbft_latency(8, small_options());
  EXPECT_EQ(result.committed, result.expected);
  EXPECT_EQ(result.committee, 8u);
}

TEST(Smoke, SingleTransactionCostAccounted) {
  const ExperimentResult result = run_pbft_single_tx(7, small_options());
  EXPECT_EQ(result.committed, 1u);
  EXPECT_GT(result.consensus_kb, 0.0);
}

}  // namespace
}  // namespace gpbft::sim
