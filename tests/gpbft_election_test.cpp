// Unit tests for the G-PBFT election machinery: the AreaRegistry/SybilFilter
// (§IV-A1) and Algorithm 1 + roster assembly (§III-D, §III-C).
#include <gtest/gtest.h>

#include "crypto/address.hpp"
#include "geo/geohash.hpp"
#include "gpbft/election.hpp"
#include "sim/placement.hpp"

namespace gpbft::gpbft {
namespace {

using geo::GeoPoint;

sim::Placement placement() { return sim::Placement{}; }

// --- AreaRegistry ------------------------------------------------------------

TEST(AreaRegistry, TruthfulClaimWithinTolerance) {
  AreaRegistry registry;
  const GeoPoint spot{22.3964, 114.1095};
  registry.place(NodeId{1}, spot);
  EXPECT_TRUE(registry.claim_is_truthful(NodeId{1}, spot));
  // ~3 m off: still truthful at the 5 m tolerance.
  EXPECT_TRUE(registry.claim_is_truthful(NodeId{1}, GeoPoint{22.39642, 114.1095}));
  // ~50 m off: a lie.
  EXPECT_FALSE(registry.claim_is_truthful(NodeId{1}, GeoPoint{22.3969, 114.1095}));
}

TEST(AreaRegistry, UnknownDeviceIsNeverTruthful) {
  AreaRegistry registry;
  EXPECT_FALSE(registry.claim_is_truthful(NodeId{9}, GeoPoint{1, 1}));
}

TEST(AreaRegistry, RemoveForgetsDevice) {
  AreaRegistry registry;
  registry.place(NodeId{1}, GeoPoint{1, 1});
  registry.remove(NodeId{1});
  EXPECT_FALSE(registry.position_of(NodeId{1}).has_value());
}

// --- SybilFilter ----------------------------------------------------------------

TEST(SybilFilter, AcceptsHonestReport) {
  const sim::Placement p = placement();
  AreaRegistry registry;
  const GeoPoint spot = p.position(0);
  registry.place(NodeId{1}, spot);
  SybilFilter filter(p.area_prefix(), &registry);
  EXPECT_EQ(filter.check(NodeId{1}, spot, TimePoint{0}), ReportVerdict::Accepted);
  EXPECT_FALSE(filter.is_flagged(NodeId{1}));
}

TEST(SybilFilter, RejectsClaimOutsideArea) {
  const sim::Placement p = placement();
  AreaRegistry registry;
  registry.place(NodeId{1}, p.outside_position(0));
  SybilFilter filter(p.area_prefix(), &registry);
  EXPECT_EQ(filter.check(NodeId{1}, p.outside_position(0), TimePoint{0}),
            ReportVerdict::OutsideArea);
  EXPECT_TRUE(filter.is_flagged(NodeId{1}));
}

TEST(SybilFilter, RejectsUntruthfulClaim) {
  // The device is physically at position 5 but claims position 0.
  const sim::Placement p = placement();
  AreaRegistry registry;
  registry.place(NodeId{1}, p.position(5));
  SybilFilter filter(p.area_prefix(), &registry);
  EXPECT_EQ(filter.check(NodeId{1}, p.position(0), TimePoint{0}),
            ReportVerdict::UntruthfulClaim);
  EXPECT_TRUE(filter.is_flagged(NodeId{1}));
}

TEST(SybilFilter, RejectsFabricatedIdentity) {
  // A Sybil identity not present in the physical area at all.
  const sim::Placement p = placement();
  AreaRegistry registry;
  SybilFilter filter(p.area_prefix(), &registry);
  EXPECT_EQ(filter.check(NodeId{666}, p.position(0), TimePoint{0}),
            ReportVerdict::UntruthfulClaim);
}

TEST(SybilFilter, DuplicateCellSameInstantFlagsBoth) {
  // "Different nodes cannot report the same geographic information at the
  // same time" (§IV-A1). Without the oracle, the collision rule alone must
  // catch it, so run with a null registry.
  const sim::Placement p = placement();
  SybilFilter filter(p.area_prefix(), nullptr);
  const GeoPoint spot = p.position(0);
  const TimePoint t{Duration::seconds(10).ns};
  EXPECT_EQ(filter.check(NodeId{1}, spot, t), ReportVerdict::Accepted);
  EXPECT_EQ(filter.check(NodeId{2}, spot, t), ReportVerdict::DuplicateLocation);
  EXPECT_TRUE(filter.is_flagged(NodeId{1}));
  EXPECT_TRUE(filter.is_flagged(NodeId{2}));
}

TEST(SybilFilter, SameDeviceMayRepeatItsCell) {
  const sim::Placement p = placement();
  SybilFilter filter(p.area_prefix(), nullptr);
  const GeoPoint spot = p.position(0);
  EXPECT_EQ(filter.check(NodeId{1}, spot, TimePoint{0}), ReportVerdict::Accepted);
  EXPECT_EQ(filter.check(NodeId{1}, spot, TimePoint{Duration::seconds(10).ns}),
            ReportVerdict::Accepted);
  EXPECT_FALSE(filter.is_flagged(NodeId{1}));
}

TEST(SybilFilter, DifferentInstantsDifferentDevicesAllowed) {
  // Cell hand-over at different timestamps is legitimate (device replaced).
  const sim::Placement p = placement();
  SybilFilter filter(p.area_prefix(), nullptr);
  const GeoPoint spot = p.position(0);
  EXPECT_EQ(filter.check(NodeId{1}, spot, TimePoint{0}), ReportVerdict::Accepted);
  EXPECT_EQ(filter.check(NodeId{2}, spot, TimePoint{Duration::seconds(10).ns}),
            ReportVerdict::Accepted);
}

TEST(SybilFilter, UnflagRestoresDevice) {
  const sim::Placement p = placement();
  AreaRegistry registry;
  SybilFilter filter(p.area_prefix(), &registry);
  (void)filter.check(NodeId{1}, p.position(0), TimePoint{0});  // untruthful -> flagged
  EXPECT_TRUE(filter.is_flagged(NodeId{1}));
  filter.unflag(NodeId{1});
  EXPECT_FALSE(filter.is_flagged(NodeId{1}));
}

TEST(SybilFilter, VerdictNames) {
  EXPECT_STREQ(verdict_name(ReportVerdict::Accepted), "accepted");
  EXPECT_STREQ(verdict_name(ReportVerdict::DuplicateLocation), "duplicate-location");
}

// --- Algorithm 1 -------------------------------------------------------------------

geo::Csc csc_at(const GeoPoint& point, NodeId id) {
  return geo::Csc(point, crypto::address_for_node(id));
}

struct ElectionFixture {
  geo::ElectionTable table;
  ElectionParams params;

  ElectionFixture() {
    params.window = Duration::seconds(60);
    params.min_reports = 3;
    params.promotion_threshold = Duration::seconds(100);
  }

  /// Records `count` reports for `id`, every 10 s ending at `end`.
  void stationary_reports(NodeId id, const GeoPoint& spot, TimePoint end, int count) {
    for (int i = count - 1; i >= 0; --i) {
      table.record(id, csc_at(spot, id),
                   TimePoint{end.ns - Duration::seconds(10 * i).ns});
    }
  }
};

TEST(Algorithm1, StationaryEndorserStaysValid) {
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(200).ns};
  fx.stationary_reports(NodeId{1}, GeoPoint{22.3964, 114.1095}, now, 5);
  const auto outcome =
      run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params);
  EXPECT_TRUE(outcome.demoted.empty());
}

TEST(Algorithm1, EndorserWithTooFewReportsDemoted) {
  // Lines 4-6: Len(G) < n -> invalid.
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(200).ns};
  fx.stationary_reports(NodeId{1}, GeoPoint{22.3964, 114.1095}, now, 2);  // n = 3
  const auto outcome =
      run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params);
  ASSERT_EQ(outcome.demoted.size(), 1u);
  EXPECT_EQ(outcome.demoted[0], NodeId{1});
}

TEST(Algorithm1, MovedEndorserDemoted) {
  // Lines 8-13: differing locations -> invalid.
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(200).ns};
  fx.stationary_reports(NodeId{1}, GeoPoint{22.3964, 114.1095}, now, 3);
  fx.table.record(NodeId{1}, csc_at(GeoPoint{22.40, 114.11}, NodeId{1}), now);
  const auto outcome =
      run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params);
  ASSERT_EQ(outcome.demoted.size(), 1u);
}

TEST(Algorithm1, SilentEndorserDemoted) {
  // No reports at all within the window.
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(500).ns};
  fx.stationary_reports(NodeId{1}, GeoPoint{22.3964, 114.1095},
                        TimePoint{Duration::seconds(100).ns}, 5);  // all too old
  const auto outcome =
      run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params);
  ASSERT_EQ(outcome.demoted.size(), 1u);
}

TEST(Algorithm1, StationaryCandidatePromoted) {
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(200).ns};
  // 150 s of stationarity (> 100 s threshold), 5 reports in window.
  fx.table.record(NodeId{2}, csc_at(GeoPoint{22.3964, 114.1095}, NodeId{2}),
                  TimePoint{Duration::seconds(50).ns});
  fx.stationary_reports(NodeId{2}, GeoPoint{22.3964, 114.1095}, now, 5);
  const auto outcome =
      run_geographic_authentication(fx.table, {}, {NodeId{2}}, now, fx.params);
  ASSERT_EQ(outcome.promoted.size(), 1u);
  EXPECT_EQ(outcome.promoted[0], NodeId{2});
}

TEST(Algorithm1, CandidateBelowStationarityThresholdNotPromoted) {
  // Enough same-place reports, but the geographic timer has not reached the
  // 72-hour-equivalent threshold yet.
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(60).ns};
  fx.stationary_reports(NodeId{2}, GeoPoint{22.3964, 114.1095}, now, 5);  // timer = 40 s
  const auto outcome =
      run_geographic_authentication(fx.table, {}, {NodeId{2}}, now, fx.params);
  EXPECT_TRUE(outcome.promoted.empty());
}

TEST(Algorithm1, MobileCandidateNotPromoted) {
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(500).ns};
  // Moves between two spots: reports disagree.
  for (int i = 0; i < 6; ++i) {
    const GeoPoint spot =
        (i % 2 == 0) ? GeoPoint{22.3964, 114.1095} : GeoPoint{22.3970, 114.1095};
    fx.table.record(NodeId{2}, csc_at(spot, NodeId{2}),
                    TimePoint{now.ns - Duration::seconds(10 * (5 - i)).ns});
  }
  const auto outcome =
      run_geographic_authentication(fx.table, {}, {NodeId{2}}, now, fx.params);
  EXPECT_TRUE(outcome.promoted.empty());
}

TEST(Algorithm1, QuietCandidateIgnored) {
  // Lines 17-19: too few reports -> skip (not an error, just not promoted).
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(500).ns};
  fx.stationary_reports(NodeId{2}, GeoPoint{22.3964, 114.1095}, now, 2);
  const auto outcome =
      run_geographic_authentication(fx.table, {}, {NodeId{2}}, now, fx.params);
  EXPECT_TRUE(outcome.promoted.empty());
}

TEST(Algorithm1, MixedPopulation) {
  ElectionFixture fx;
  const TimePoint now{Duration::seconds(400).ns};
  const GeoPoint a{22.3964, 114.1095}, b{22.3970, 114.1100}, c{22.3975, 114.1105};
  // Endorser 1: stationary (stays). Endorser 2: moved (demoted).
  fx.table.record(NodeId{1}, csc_at(a, NodeId{1}), TimePoint{0});
  fx.stationary_reports(NodeId{1}, a, now, 4);
  fx.stationary_reports(NodeId{2}, b, now, 3);
  fx.table.record(NodeId{2}, csc_at(c, NodeId{2}), now);
  // Candidate 3: qualified. Candidate 4: too few reports.
  fx.table.record(NodeId{3}, csc_at(c, NodeId{3}), TimePoint{0});
  fx.stationary_reports(NodeId{3}, c, now, 4);
  fx.stationary_reports(NodeId{4}, b, now, 1);

  const auto outcome = run_geographic_authentication(fx.table, {NodeId{1}, NodeId{2}},
                                                     {NodeId{3}, NodeId{4}}, now, fx.params);
  EXPECT_EQ(outcome.demoted, std::vector<NodeId>{NodeId{2}});
  EXPECT_EQ(outcome.promoted, std::vector<NodeId>{NodeId{3}});
}

TEST(Algorithm1, EnrolledCellCatchesOldMove) {
  // Regression: a device that moved *before* the lookback window looks
  // stationary within it; only the enrolled-location check demotes it.
  ElectionFixture fx;
  const GeoPoint home{22.3964, 114.1095}, elsewhere{22.3975, 114.1105};
  const TimePoint now{Duration::seconds(500).ns};
  // Old reports from home (outside the 60 s window), recent ones elsewhere.
  fx.stationary_reports(NodeId{1}, home, TimePoint{Duration::seconds(100).ns}, 3);
  fx.stationary_reports(NodeId{1}, elsewhere, now, 5);

  // Without enrolled info: the window reports agree -> stays (the paper's
  // literal Algorithm 1).
  const auto naive = run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params);
  EXPECT_TRUE(naive.demoted.empty());

  // With the chain-recorded enrolled cell: demoted.
  EnrolledCells enrolled{{NodeId{1}, geohash_encode(home)}};
  const auto checked =
      run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params, &enrolled);
  ASSERT_EQ(checked.demoted.size(), 1u);
  EXPECT_EQ(checked.demoted[0], NodeId{1});
}

TEST(Algorithm1, EnrolledCellMatchingEndorserStays) {
  ElectionFixture fx;
  const GeoPoint home{22.3964, 114.1095};
  const TimePoint now{Duration::seconds(500).ns};
  fx.stationary_reports(NodeId{1}, home, now, 5);
  EnrolledCells enrolled{{NodeId{1}, geohash_encode(home)}};
  const auto outcome =
      run_geographic_authentication(fx.table, {NodeId{1}}, {}, now, fx.params, &enrolled);
  EXPECT_TRUE(outcome.demoted.empty());
}

// --- ElectionTable edges ----------------------------------------------------------

TEST(ElectionTable, TimerProjectsExactlyToPromotionBoundary) {
  // The 72-h promotion threshold is an inclusive boundary: a device whose
  // projected timer reaches it exactly qualifies, one nanosecond earlier
  // does not.
  geo::ElectionTable table;
  const GeoPoint home{22.3964, 114.1095};
  const TimePoint enrolled{Duration::seconds(5).ns};
  table.record(NodeId{1}, csc_at(home, NodeId{1}), enrolled);

  const Duration threshold = Duration::hours(72);
  const TimePoint boundary{enrolled.ns + threshold.ns};
  EXPECT_EQ(table.timer_at(NodeId{1}, TimePoint{boundary.ns - 1}).ns, threshold.ns - 1);
  EXPECT_EQ(table.timer_at(NodeId{1}, boundary), threshold);
  EXPECT_TRUE(table.stationary_devices(TimePoint{boundary.ns - 1}, threshold).empty());
  EXPECT_EQ(table.stationary_devices(boundary, threshold), std::vector<NodeId>{NodeId{1}});
}

TEST(ElectionTable, TimerAtBeforeFirstSightingIsZero) {
  geo::ElectionTable table;
  const TimePoint seen{Duration::seconds(100).ns};
  table.record(NodeId{1}, csc_at(GeoPoint{22.3964, 114.1095}, NodeId{1}), seen);
  // Projection backwards (a caller asking about a past instant) must not
  // go negative, and unknown devices always read zero.
  EXPECT_EQ(table.timer_at(NodeId{1}, TimePoint{Duration::seconds(50).ns}), Duration{0});
  EXPECT_EQ(table.timer_at(NodeId{2}, seen), Duration{0});
}

TEST(ElectionTable, ResetThenReportSameInstantRestartsFromZero) {
  // A device produces a block (timer reset, §III-B5) and its periodic
  // report lands at the same instant: the report must not resurrect the
  // pre-reset accumulation — the timer restarts from the reset point.
  geo::ElectionTable table;
  const GeoPoint home{22.3964, 114.1095};
  table.record(NodeId{1}, csc_at(home, NodeId{1}), TimePoint{0});
  const TimePoint produced{Duration::seconds(100).ns};
  EXPECT_EQ(table.timer_at(NodeId{1}, produced), Duration::seconds(100));

  table.reset_timer(NodeId{1}, produced);
  table.record(NodeId{1}, csc_at(home, NodeId{1}), produced);
  EXPECT_EQ(table.timer(NodeId{1}), Duration{0});
  // Accumulation resumes from the reset instant, not from first sighting.
  const TimePoint later{produced.ns + Duration::seconds(30).ns};
  EXPECT_EQ(table.timer_at(NodeId{1}, later), Duration::seconds(30));
}

TEST(ElectionTable, ResetTimerUnknownDeviceIsNoop) {
  geo::ElectionTable table;
  table.reset_timer(NodeId{7}, TimePoint{Duration::seconds(10).ns});
  EXPECT_EQ(table.timer(NodeId{7}), Duration{0});
}

TEST(ElectionTable, HistoryPrunesToLimitButTimerSurvives) {
  // Per-device history is bounded; pruning old rows must not disturb the
  // geographic timer (cell_since is tracked outside the row list).
  geo::ElectionTable table(/*history_limit=*/4);
  const GeoPoint home{22.3964, 114.1095};
  for (int i = 0; i <= 9; ++i) {
    table.record(NodeId{1}, csc_at(home, NodeId{1}), TimePoint{Duration::seconds(10 * i).ns});
  }
  const TimePoint now{Duration::seconds(90).ns};
  // Only the newest 4 rows survive: a window covering everything sees 4.
  EXPECT_EQ(table.reports_in_window(NodeId{1}, now, Duration::seconds(1000)).size(), 4u);
  ASSERT_TRUE(table.latest(NodeId{1}).has_value());
  EXPECT_EQ(table.latest(NodeId{1})->timestamp, now);
  // The timer still measures from the first sighting at t=0.
  EXPECT_EQ(table.timer(NodeId{1}), Duration::seconds(90));
  EXPECT_EQ(table.timer_at(NodeId{1}, TimePoint{Duration::seconds(100).ns}),
            Duration::seconds(100));
}

// --- roster assembly ------------------------------------------------------------------

TEST(Roster, OrderedByGeographicTimer) {
  geo::ElectionTable table;
  const TimePoint now{Duration::seconds(300).ns};
  const GeoPoint a{22.3964, 114.1095}, b{22.3970, 114.1100}, c{22.3975, 114.1105};
  table.record(NodeId{1}, csc_at(a, NodeId{1}), TimePoint{Duration::seconds(200).ns});
  table.record(NodeId{2}, csc_at(b, NodeId{2}), TimePoint{0});           // longest timer
  table.record(NodeId{3}, csc_at(c, NodeId{3}), TimePoint{Duration::seconds(100).ns});

  RosterInputs inputs;
  inputs.current = {NodeId{1}, NodeId{2}, NodeId{3}};
  ledger::AdmittancePolicy policy;
  const auto roster = build_roster(inputs, policy, table, now);
  EXPECT_EQ(roster, (std::vector<NodeId>{NodeId{2}, NodeId{3}, NodeId{1}}));
}

TEST(Roster, BlacklistExcludes) {
  geo::ElectionTable table;
  RosterInputs inputs;
  inputs.current = {NodeId{1}, NodeId{2}};
  inputs.outcome.promoted = {NodeId{3}};
  ledger::AdmittancePolicy policy;
  policy.blacklist = {NodeId{2}, NodeId{3}};
  const auto roster = build_roster(inputs, policy, table, TimePoint{0});
  EXPECT_EQ(roster, std::vector<NodeId>{NodeId{1}});
}

TEST(Roster, PenalizedAndFlaggedExcluded) {
  geo::ElectionTable table;
  RosterInputs inputs;
  inputs.current = {NodeId{1}, NodeId{2}, NodeId{3}};
  inputs.penalized = {NodeId{2}};       // missed block / fork
  inputs.sybil_flagged = {NodeId{3}};   // fake location
  ledger::AdmittancePolicy policy;
  const auto roster = build_roster(inputs, policy, table, TimePoint{0});
  EXPECT_EQ(roster, std::vector<NodeId>{NodeId{1}});
}

TEST(Roster, DemotedMembersDropped) {
  geo::ElectionTable table;
  RosterInputs inputs;
  inputs.current = {NodeId{1}, NodeId{2}};
  inputs.outcome.demoted = {NodeId{1}};
  ledger::AdmittancePolicy policy;
  const auto roster = build_roster(inputs, policy, table, TimePoint{0});
  EXPECT_EQ(roster, std::vector<NodeId>{NodeId{2}});
}

TEST(Roster, MaxEndorsersCapsAdmissions) {
  // "If the number of endorsers exceeds the maximum value, the endorser
  // election will be terminated until old endorsers leave" (§III-C).
  geo::ElectionTable table;
  RosterInputs inputs;
  inputs.current = {NodeId{1}, NodeId{2}, NodeId{3}};
  inputs.outcome.promoted = {NodeId{4}, NodeId{5}, NodeId{6}};
  ledger::AdmittancePolicy policy;
  policy.max_endorsers = 4;
  const auto roster = build_roster(inputs, policy, table, TimePoint{0});
  EXPECT_EQ(roster.size(), 4u);
  // Current members survive; exactly one promotion fits.
  EXPECT_TRUE(std::find(roster.begin(), roster.end(), NodeId{4}) != roster.end());
  EXPECT_TRUE(std::find(roster.begin(), roster.end(), NodeId{6}) == roster.end());
}

TEST(Roster, WhitelistedJoinFirstWithoutQualification) {
  geo::ElectionTable table;
  RosterInputs inputs;
  inputs.current = {NodeId{1}};
  inputs.outcome.promoted = {NodeId{4}, NodeId{5}};
  inputs.whitelisted_candidates = {NodeId{9}};
  ledger::AdmittancePolicy policy;
  policy.whitelist = {NodeId{9}};
  policy.max_endorsers = 3;
  const auto roster = build_roster(inputs, policy, table, TimePoint{0});
  EXPECT_EQ(roster.size(), 3u);
  EXPECT_TRUE(std::find(roster.begin(), roster.end(), NodeId{9}) != roster.end());
  // Only one of the two qualified candidates fits after the whitelist entry.
  const bool has4 = std::find(roster.begin(), roster.end(), NodeId{4}) != roster.end();
  const bool has5 = std::find(roster.begin(), roster.end(), NodeId{5}) != roster.end();
  EXPECT_TRUE(has4 != has5);
}

TEST(Roster, NoDuplicateEntries) {
  geo::ElectionTable table;
  RosterInputs inputs;
  inputs.current = {NodeId{1}, NodeId{2}};
  inputs.outcome.promoted = {NodeId{2}, NodeId{3}};  // 2 already a member
  ledger::AdmittancePolicy policy;
  const auto roster = build_roster(inputs, policy, table, TimePoint{0});
  EXPECT_EQ(roster.size(), 3u);
}

}  // namespace
}  // namespace gpbft::gpbft
