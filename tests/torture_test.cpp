// Randomized torture tests: seeded fault schedules (crashes, recoveries,
// Byzantine modes, message loss) hammer both protocols while the invariants
// that must never break are checked continuously:
//   SAFETY    no two non-crashed replicas ever commit different blocks at
//             the same height (checked across the whole run, not just at
//             the end);
//   VALIDITY  every committed transaction was actually submitted;
//   LIVENESS  with at most f concurrent faults, submitted transactions
//             eventually commit.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

void expect_prefix_consistency(PbftCluster& cluster) {
  // Compare every pair of live replicas block-by-block over the shared
  // prefix: commits may lag, but must never diverge.
  for (std::size_t a = 0; a < cluster.replica_count(); ++a) {
    for (std::size_t b = a + 1; b < cluster.replica_count(); ++b) {
      const auto& chain_a = cluster.replica(a).chain();
      const auto& chain_b = cluster.replica(b).chain();
      const Height shared = std::min(chain_a.height(), chain_b.height());
      for (Height h = 0; h <= shared; ++h) {
        ASSERT_EQ(chain_a.at(h).hash(), chain_b.at(h).hash())
            << "divergence at height " << h << " between replicas " << a << " and " << b;
      }
    }
  }
}

class PbftTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftTorture, RandomCrashRecoverScheduleNeverDiverges) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  PbftClusterConfig config;
  config.replicas = 7;  // f = 2
  config.clients = 3;
  config.seed = seed;
  config.pbft.request_timeout = Duration::seconds(6);
  config.pbft.view_change_timeout = Duration::seconds(5);
  config.net.drop_rate = 0.02;  // constant background loss
  PbftCluster cluster(config);
  cluster.start();

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = Duration::seconds(2);
  workload.count = 15;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, &recorder);
  }

  // Fault schedule: every 5 simulated seconds, flip one replica's state —
  // crash it if up, recover it if down — keeping at most f = 2 down.
  std::set<std::size_t> down;
  for (int round = 0; round < 24; ++round) {
    const std::size_t victim = rng.uniform(0, config.replicas - 1);
    if (down.contains(victim)) {
      cluster.network().recover(cluster.replica(victim).id());
      down.erase(victim);
    } else if (down.size() < 2) {
      cluster.network().crash(cluster.replica(victim).id());
      down.insert(victim);
    }
    cluster.run_for(Duration::seconds(5));
    expect_prefix_consistency(cluster);
  }

  // Recover everyone and drain: liveness must return.
  for (const std::size_t victim : down) {
    cluster.network().recover(cluster.replica(victim).id());
  }
  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(600).ns});
  expect_prefix_consistency(cluster);

  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  EXPECT_EQ(committed, workload.count * cluster.client_count());

  // VALIDITY: every committed transaction was a workload submission (all
  // workload txs come from known client ids with our payload size).
  const auto& chain = cluster.replica(0).chain();
  for (Height h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions) {
      EXPECT_GT(tx.sender.value, kClientIdBase);
      EXPECT_EQ(tx.payload.size(), 32u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftTorture, ::testing::Values(1, 2, 3, 4, 5, 6));

class ByzantineTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ByzantineTorture, FByzantineReplicasCannotBreakSafety) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xbeef);

  PbftClusterConfig config;
  config.replicas = 7;  // f = 2
  config.clients = 2;
  config.seed = seed;
  config.pbft.request_timeout = Duration::seconds(6);
  config.pbft.view_change_timeout = Duration::seconds(5);
  PbftCluster cluster(config);
  cluster.start();

  // Two Byzantine replicas with random attack modes (possibly the primary).
  const pbft::FaultMode modes[] = {pbft::FaultMode::Silent, pbft::FaultMode::EquivocateDigest,
                                   pbft::FaultMode::CorruptProposals};
  const std::size_t bad_a = rng.uniform(0, 6);
  std::size_t bad_b = rng.uniform(0, 6);
  while (bad_b == bad_a) bad_b = rng.uniform(0, 6);
  cluster.replica(bad_a).set_fault_mode(modes[rng.uniform(0, 2)]);
  cluster.replica(bad_b).set_fault_mode(modes[rng.uniform(0, 2)]);

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = Duration::seconds(3);
  workload.count = 8;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, &recorder);
  }

  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(600).ns});

  // SAFETY among honest replicas, regardless of what the Byzantine pair did.
  Height max_height = 0;
  std::map<Height, crypto::Hash256> canonical;
  for (std::size_t i = 0; i < cluster.replica_count(); ++i) {
    if (i == bad_a || i == bad_b) continue;
    const auto& chain = cluster.replica(i).chain();
    max_height = std::max(max_height, chain.height());
    for (Height h = 0; h <= chain.height(); ++h) {
      const auto [it, inserted] = canonical.emplace(h, chain.at(h).hash());
      ASSERT_EQ(it->second, chain.at(h).hash()) << "honest divergence at height " << h;
    }
  }

  // LIVENESS with exactly f faulty.
  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  EXPECT_EQ(committed, workload.count * cluster.client_count());
  EXPECT_GT(max_height, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByzantineTorture, ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class GpbftTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpbftTorture, ChurnPlusFaultsKeepCommitteeChainsConsistent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xfeed);

  GpbftClusterConfig config;
  config.nodes = 10;
  config.initial_committee = 6;
  config.clients = 3;
  config.seed = seed;
  config.protocol.genesis.era_period = Duration::seconds(8);
  config.protocol.genesis.geo_report_period = Duration::seconds(2);
  config.protocol.genesis.geo_window = Duration::seconds(8);
  config.protocol.genesis.min_geo_reports = 2;
  config.protocol.genesis.promotion_threshold = Duration::seconds(12);
  config.protocol.genesis.policy.min_endorsers = 4;
  config.protocol.genesis.policy.max_endorsers = 8;
  config.protocol.pbft.request_timeout = Duration::seconds(6);
  config.protocol.pbft.view_change_timeout = Duration::seconds(5);
  GpbftCluster cluster(config);
  cluster.start();

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = Duration::seconds(3);
  workload.count = 10;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, &recorder);
  }

  // Churn: one random crash + one random relocation during the run.
  const std::size_t crashed = rng.uniform(0, 5);
  cluster.run_for(Duration::seconds(12));
  cluster.network().crash(cluster.endorser(crashed).id());
  cluster.run_for(Duration::seconds(12));
  const std::size_t moved = 6 + rng.uniform(0, 3);
  const geo::GeoPoint new_home = cluster.placement().position(60 + moved);
  cluster.endorser(moved).set_location(new_home);
  cluster.area().place(cluster.endorser(moved).id(), new_home);

  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(600).ns});

  // Committee members' chains agree over the shared prefix.
  std::map<Height, crypto::Hash256> canonical;
  for (const NodeId member : cluster.roster()) {
    for (std::size_t i = 0; i < cluster.endorser_count(); ++i) {
      if (cluster.endorser(i).id() != member) continue;
      const auto& chain = cluster.endorser(i).chain();
      for (Height h = 0; h <= chain.height(); ++h) {
        const auto [it, inserted] = canonical.emplace(h, chain.at(h).hash());
        ASSERT_EQ(it->second, chain.at(h).hash())
            << "committee divergence at height " << h << " (member " << member.str() << ")";
      }
    }
  }

  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  EXPECT_EQ(committed, workload.count * cluster.client_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpbftTorture, ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace gpbft::sim
