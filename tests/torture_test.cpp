// Randomized torture tests: seeded FaultPlan schedules (crashes, recoveries,
// Byzantine modes, message loss) hammer both protocols while the online
// InvariantMonitor checks, at every executed block, the invariants that must
// never break:
//   SAFETY    no two honest replicas ever execute different blocks at the
//             same height (continuous, not just at the end);
//   VALIDITY  every committed client transaction was actually submitted and
//             executes at most once per replica;
//   LIVENESS  with at most f concurrent faults, submitted transactions
//             eventually commit once every injected fault has healed.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/chaos.hpp"
#include "sim/deployment.hpp"
#include "sim/invariants.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {
namespace {

void expect_prefix_consistency(PbftCluster& cluster) {
  // End-of-run backstop on top of the monitor's continuous check: compare
  // every pair of replicas block-by-block over the shared prefix.
  for (std::size_t a = 0; a < cluster.replica_count(); ++a) {
    for (std::size_t b = a + 1; b < cluster.replica_count(); ++b) {
      const auto& chain_a = cluster.replica(a).chain();
      const auto& chain_b = cluster.replica(b).chain();
      const Height shared = std::min(chain_a.height(), chain_b.height());
      for (Height h = 0; h <= shared; ++h) {
        ASSERT_EQ(chain_a.at(h).hash(), chain_b.at(h).hash())
            << "divergence at height " << h << " between replicas " << a << " and " << b;
      }
    }
  }
}

void schedule_monitored_workload(PbftCluster& cluster, const WorkloadConfig& workload,
                                 InvariantMonitor& monitor) {
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, nullptr,
                      [&monitor](const ledger::Transaction& tx) { monitor.expect_submission(tx); });
  }
}

class PbftTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftTorture, RandomCrashRecoverScheduleNeverDiverges) {
  const std::uint64_t seed = GetParam();

  PbftClusterConfig config;
  config.replicas = 7;  // f = 2
  config.clients = 3;
  config.seed = seed;
  config.pbft.request_timeout = Duration::seconds(6);
  config.pbft.view_change_timeout = Duration::seconds(5);
  config.net.drop_rate = 0.02;  // constant background loss
  PbftCluster cluster(config);

  InvariantMonitor monitor(cluster.simulator());
  cluster.watch(monitor);
  cluster.start();

  WorkloadConfig workload;
  workload.period = Duration::seconds(2);
  workload.count = 15;
  schedule_monitored_workload(cluster, workload, monitor);

  // Crash-only intensity profile: one decision round every 5 simulated
  // seconds over a 120 s horizon, never more than f = 2 replicas down at
  // once, every crash paired with a recovery.
  ChaosProfile profile;
  profile.crash_chance = 0.35;
  profile.link_fault_chance = 0.0;
  profile.brownout_chance = 0.0;
  profile.max_faulty = 2;
  const Duration horizon = Duration::seconds(120);
  const FaultPlan plan = FaultPlan::random(seed, profile, cluster.committee(), horizon);
  plan.schedule(cluster.simulator(), cluster.network(), {},
                [&monitor](const ChaosEvent& event) { monitor.note_fault(event.describe()); });

  cluster.run_for(horizon);

  // Everyone has recovered by all_healed_at(): liveness must return.
  const TimePoint deadline{std::max(horizon.ns, plan.all_healed_at().ns) +
                           Duration::seconds(600).ns};
  cluster.run_until_committed(workload.count, deadline);

  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  monitor.check_bounded_liveness(committed, workload.count * cluster.client_count(),
                                 plan.all_healed_at(), Duration::seconds(600));

  EXPECT_TRUE(monitor.clean()) << monitor.report();
  EXPECT_GT(monitor.blocks_checked(), 0u);
  EXPECT_EQ(committed, workload.count * cluster.client_count());
  expect_prefix_consistency(cluster);

  // VALIDITY backstop: every committed transaction was a workload submission
  // (all workload txs come from known client ids with our payload size).
  const auto& chain = cluster.replica(0).chain();
  for (Height h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions) {
      EXPECT_GT(tx.sender.value, kClientIdBase);
      EXPECT_EQ(tx.payload.size(), 32u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftTorture, ::testing::Values(1, 2, 3, 4, 5, 6));

class ByzantineTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ByzantineTorture, FByzantineReplicasCannotBreakSafety) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xbeef);

  PbftClusterConfig config;
  config.replicas = 7;  // f = 2
  config.clients = 2;
  config.seed = seed;
  config.pbft.request_timeout = Duration::seconds(6);
  config.pbft.view_change_timeout = Duration::seconds(5);
  PbftCluster cluster(config);

  InvariantMonitor monitor(cluster.simulator());
  cluster.watch(monitor);
  cluster.start();

  // Two Byzantine replicas with random attack modes (possibly the primary),
  // faulty for the whole run — a literal FaultPlan pins the exact scenario.
  const pbft::FaultMode modes[] = {pbft::FaultMode::Silent, pbft::FaultMode::EquivocateDigest,
                                   pbft::FaultMode::CorruptProposals};
  const std::size_t bad_a = rng.uniform(0, 6);
  std::size_t bad_b = rng.uniform(0, 6);
  while (bad_b == bad_a) bad_b = rng.uniform(0, 6);

  FaultPlan plan;
  plan.add(ChaosEvent::byzantine(TimePoint{Duration::millis(500).ns}, cluster.replica(bad_a).id(),
                                 modes[rng.uniform(0, 2)]));
  plan.add(ChaosEvent::byzantine(TimePoint{Duration::millis(500).ns}, cluster.replica(bad_b).id(),
                                 modes[rng.uniform(0, 2)]));
  plan.schedule(
      cluster.simulator(), cluster.network(),
      [&cluster, &monitor](NodeId id, pbft::FaultMode mode) {
        for (std::size_t i = 0; i < cluster.replica_count(); ++i) {
          if (cluster.replica(i).id() == id) cluster.replica(i).set_fault_mode(mode);
        }
        monitor.set_faulty(id, mode != pbft::FaultMode::None);
      },
      [&monitor](const ChaosEvent& event) { monitor.note_fault(event.describe()); });

  WorkloadConfig workload;
  workload.period = Duration::seconds(3);
  workload.count = 8;
  schedule_monitored_workload(cluster, workload, monitor);

  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(600).ns});

  // SAFETY among honest replicas, regardless of what the Byzantine pair did:
  // the monitor checked agreement + validity at every honest execution.
  EXPECT_TRUE(monitor.clean()) << monitor.report();
  EXPECT_GT(monitor.blocks_checked(), 0u);

  // End-of-run backstop over the honest replicas' full chains.
  Height max_height = 0;
  std::map<Height, crypto::Hash256> canonical;
  for (std::size_t i = 0; i < cluster.replica_count(); ++i) {
    if (i == bad_a || i == bad_b) continue;
    const auto& chain = cluster.replica(i).chain();
    max_height = std::max(max_height, chain.height());
    for (Height h = 0; h <= chain.height(); ++h) {
      const auto [it, inserted] = canonical.emplace(h, chain.at(h).hash());
      ASSERT_EQ(it->second, chain.at(h).hash()) << "honest divergence at height " << h;
    }
  }

  // LIVENESS with exactly f faulty.
  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  EXPECT_EQ(committed, workload.count * cluster.client_count());
  EXPECT_GT(max_height, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByzantineTorture, ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class GpbftTorture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpbftTorture, ChurnPlusFaultsKeepCommitteeChainsConsistent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xfeed);

  GpbftClusterConfig config;
  config.nodes = 10;
  config.initial_committee = 6;
  config.clients = 3;
  config.seed = seed;
  config.protocol.genesis.era_period = Duration::seconds(8);
  config.protocol.genesis.geo_report_period = Duration::seconds(2);
  config.protocol.genesis.geo_window = Duration::seconds(8);
  config.protocol.genesis.min_geo_reports = 2;
  config.protocol.genesis.promotion_threshold = Duration::seconds(12);
  config.protocol.genesis.policy.min_endorsers = 4;
  config.protocol.genesis.policy.max_endorsers = 8;
  config.protocol.pbft.request_timeout = Duration::seconds(6);
  config.protocol.pbft.view_change_timeout = Duration::seconds(5);
  GpbftCluster cluster(config);

  InvariantMonitor monitor(cluster.simulator());
  cluster.watch(monitor);
  cluster.start();

  WorkloadConfig workload;
  workload.period = Duration::seconds(3);
  workload.count = 10;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, nullptr,
                      [&monitor](const ledger::Transaction& tx) { monitor.expect_submission(tx); });
  }

  // Churn: one random crash (a literal FaultPlan event at t = 12 s) plus one
  // random relocation mid-run.
  const std::size_t crashed = rng.uniform(0, 5);
  FaultPlan plan;
  plan.add(ChaosEvent::crash(TimePoint{Duration::seconds(12).ns}, cluster.endorser(crashed).id()));
  plan.schedule(cluster.simulator(), cluster.network(), {},
                [&monitor](const ChaosEvent& event) { monitor.note_fault(event.describe()); });

  cluster.run_for(Duration::seconds(24));
  const std::size_t moved = 6 + rng.uniform(0, 3);
  const geo::GeoPoint new_home = cluster.placement().position(60 + moved);
  cluster.endorser(moved).set_location(new_home);
  cluster.area().place(cluster.endorser(moved).id(), new_home);

  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(600).ns});

  // The monitor checked committee agreement, era-roster consistency, and
  // validity at every executed block.
  EXPECT_TRUE(monitor.clean()) << monitor.report();
  EXPECT_GT(monitor.blocks_checked(), 0u);

  // End-of-run backstop: committee members' chains agree over the prefix.
  std::map<Height, crypto::Hash256> canonical;
  for (const NodeId member : cluster.roster()) {
    for (std::size_t i = 0; i < cluster.endorser_count(); ++i) {
      if (cluster.endorser(i).id() != member) continue;
      const auto& chain = cluster.endorser(i).chain();
      for (Height h = 0; h <= chain.height(); ++h) {
        const auto [it, inserted] = canonical.emplace(h, chain.at(h).hash());
        ASSERT_EQ(it->second, chain.at(h).hash())
            << "committee divergence at height " << h << " (member " << member.str() << ")";
      }
    }
  }

  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  EXPECT_EQ(committed, workload.count * cluster.client_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpbftTorture, ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace gpbft::sim
