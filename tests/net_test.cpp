// Discrete-event simulator and network model tests: event ordering, timing
// math, queueing (the paper's s), accounting, and fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/simulator.hpp"

namespace gpbft::net {
namespace {

// --- simulator -------------------------------------------------------------------

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(Duration::seconds(3), [&order]() { order.push_back(3); });
  sim.schedule(Duration::seconds(1), [&order]() { order.push_back(1); });
  sim.schedule(Duration::seconds(2), [&order]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().to_seconds(), 3.0);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Duration::seconds(1), [&order, i]() { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim(1);
  bool fired = false;
  sim.schedule(Duration::seconds(-5), [&fired]() { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().ns, 0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(Duration::seconds(i), [&fired]() { ++fired; });
  }
  sim.run_until(TimePoint{Duration::seconds(5).ns});
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim(1);
  sim.run_until(TimePoint{Duration::seconds(42).ns});
  EXPECT_EQ(sim.now().to_seconds(), 42.0);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim(1);
  std::vector<double> times;
  sim.schedule(Duration::seconds(1), [&]() {
    times.push_back(sim.now().to_seconds());
    sim.schedule(Duration::seconds(2), [&]() { times.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(Simulator, MaxEventsBoundsRun) {
  Simulator sim(1);
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(Duration::seconds(1), [&fired]() { ++fired; });
  sim.run(4);
  EXPECT_EQ(fired, 4);
}

// --- network ------------------------------------------------------------------------

class RecordingNode : public INetNode {
 public:
  explicit RecordingNode(NodeId id) : id_(id) {}
  [[nodiscard]] NodeId id() const override { return id_; }
  void handle(const Envelope& envelope) override { received.push_back(envelope); }
  std::vector<Envelope> received;

 private:
  NodeId id_;
};

NetConfig quiet_config() {
  NetConfig config;
  config.base_latency = Duration::millis(2);
  config.jitter = Duration{0};
  config.bandwidth_bytes_per_sec = 1e12;  // negligible transmission delay
  config.processing_rate_msgs_per_sec = 1000.0;
  return config;
}

TEST(Network, DeliversWithLatencyAndProcessing) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.send(Envelope{NodeId{1}, NodeId{2}, 7, Bytes{1, 2, 3}});
  sim.run();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].type, 7);
  EXPECT_EQ(b.received[0].payload, (Bytes{1, 2, 3}));
  // latency 2 ms + processing 1 ms.
  EXPECT_NEAR(sim.now().to_seconds(), 0.003, 1e-9);
}

TEST(Network, ReceiverQueueSerializesProcessing) {
  // Two messages arriving together finish 1/s apart: the paper's s model.
  Simulator sim(1);
  NetConfig config = quiet_config();
  config.processing_rate_msgs_per_sec = 10.0;  // 100 ms per message
  Network network(sim, config);
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  std::vector<double> handled_at;
  struct TimedNode : INetNode {
    Simulator* sim;
    NodeId node_id;
    std::vector<double>* times;
    [[nodiscard]] NodeId id() const override { return node_id; }
    void handle(const Envelope&) override { times->push_back(sim->now().to_seconds()); }
  } timed;
  timed.sim = &sim;
  timed.node_id = NodeId{3};
  timed.times = &handled_at;
  network.attach(&timed);

  network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{1}});
  network.send(Envelope{NodeId{2}, NodeId{3}, 1, Bytes{2}});
  sim.run();

  ASSERT_EQ(handled_at.size(), 2u);
  EXPECT_NEAR(handled_at[1] - handled_at[0], 0.1, 1e-9);
}

TEST(Network, PerNodeProcessingRateOverride) {
  Simulator sim(1);
  NetConfig config = quiet_config();
  config.base_latency = Duration{0};
  config.processing_rate_msgs_per_sec = 10.0;  // default: 100 ms per message
  Network network(sim, config);
  RecordingNode sender(NodeId{1}), fast(NodeId{2}), slow(NodeId{3});
  network.attach(&sender);
  network.attach(&fast);
  network.attach(&slow);
  network.set_processing_rate(NodeId{2}, 1000.0);  // 1 ms per message

  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}), 1000.0);
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{3}), 10.0);

  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  const double fast_done = sim.now().to_seconds();
  network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{1}});
  sim.run();
  const double slow_done = sim.now().to_seconds() - fast_done;
  EXPECT_NEAR(fast_done, 0.001, 1e-9);
  EXPECT_NEAR(slow_done, 0.1, 1e-9);

  // Clearing the override restores the default.
  network.set_processing_rate(NodeId{2}, 0);
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}), 10.0);
}

TEST(Network, TransmissionDelayScalesWithSize) {
  Simulator sim(1);
  NetConfig config = quiet_config();
  config.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s
  config.base_latency = Duration{0};
  config.processing_rate_msgs_per_sec = 1e9;
  Network network(sim, config);
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes(968, 0)});  // 968 + 32 header = 1000 B
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 1.0, 1e-6);
}

TEST(Network, AccountsBytesPerNodeAndType) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.send(Envelope{NodeId{1}, NodeId{2}, 5, Bytes(10, 0)});
  network.send(Envelope{NodeId{1}, NodeId{2}, 6, Bytes(20, 0)});
  sim.run();

  const NetStats& stats = network.stats();
  EXPECT_EQ(stats.total_messages, 2u);
  EXPECT_EQ(stats.total_bytes, 10u + 20u + 2 * Envelope::kHeaderBytes);
  EXPECT_EQ(stats.bytes_by_type.at(5), 10u + Envelope::kHeaderBytes);
  EXPECT_EQ(stats.bytes_by_type.at(6), 20u + Envelope::kHeaderBytes);
  EXPECT_EQ(stats.per_node.at(NodeId{1}).messages_sent, 2u);
  EXPECT_EQ(stats.per_node.at(NodeId{2}).messages_received, 2u);
  EXPECT_EQ(stats.per_node.at(NodeId{2}).bytes_received, stats.total_bytes);
}

TEST(Network, BroadcastSkipsSelf) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2}), c(NodeId{3});
  network.attach(&a);
  network.attach(&b);
  network.attach(&c);

  network.broadcast(NodeId{1}, {NodeId{1}, NodeId{2}, NodeId{3}}, 1, Bytes{9});
  sim.run();
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(Network, DropRateDropsEverythingAtOne) {
  Simulator sim(1);
  NetConfig config = quiet_config();
  config.drop_rate = 1.0;
  Network network(sim, config);
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  for (int i = 0; i < 10; ++i) network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.stats().dropped_messages, 10u);
  // Sender-side bytes still accounted (they went on the wire).
  EXPECT_EQ(network.stats().total_messages, 10u);
}

TEST(Network, CrashedReceiverGetsNothing) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  network.crash(NodeId{2});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_TRUE(b.received.empty());

  network.recover(NodeId{2});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, CrashedSenderSendsNothing) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  network.crash(NodeId{1});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.stats().total_messages, 0u);
}

TEST(Network, PartitionSeparatesGroups) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2}), c(NodeId{3});
  network.attach(&a);
  network.attach(&b);
  network.attach(&c);

  network.partition({{NodeId{1}, NodeId{2}}, {NodeId{3}}});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});  // same side
  network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{1}});  // across
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());

  network.heal_partition();
  network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{1}});
  sim.run();
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(Network, BlockedLinkIsOneWay) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.block_link(NodeId{1}, NodeId{2});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  network.send(Envelope{NodeId{2}, NodeId{1}, 1, Bytes{1}});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.received.size(), 1u);

  network.unblock_link(NodeId{1}, NodeId{2});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, DetachedNodeCountsAsDrop) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1});
  network.attach(&a);
  network.send(Envelope{NodeId{1}, NodeId{99}, 1, Bytes{1}});
  sim.run();
  EXPECT_EQ(network.stats().dropped_messages, 1u);
}

TEST(Network, ResetStatsClears) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_GT(network.stats().total_bytes, 0u);
  network.reset_stats();
  EXPECT_EQ(network.stats().total_bytes, 0u);
  EXPECT_TRUE(network.stats().per_node.empty());
}

// --- per-link fault rules ------------------------------------------------------------

// Records the simulated time each payload byte was handled.
struct TimedRecorder : INetNode {
  Simulator* sim{nullptr};
  NodeId node_id;
  std::vector<std::pair<std::uint8_t, double>> handled;
  [[nodiscard]] NodeId id() const override { return node_id; }
  void handle(const Envelope& envelope) override {
    handled.emplace_back(envelope.payload.empty() ? 0 : envelope.payload[0],
                         sim->now().to_seconds());
  }
};

TEST(Network, LinkFaultLossDropsOnlyThatLink) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2}), c(NodeId{3});
  network.attach(&a);
  network.attach(&b);
  network.attach(&c);

  network.set_link_fault(NodeId{1}, NodeId{2}, LinkFault{.loss = 1.0});
  for (int i = 0; i < 5; ++i) {
    network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
    network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{1}});
  }
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 5u);
  EXPECT_EQ(network.stats().dropped_messages, 5u);

  network.clear_link_fault(NodeId{1}, NodeId{2});
  EXPECT_EQ(network.link_fault(NodeId{1}, NodeId{2}), nullptr);
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, LinkFaultExtraLatencyDelaysDelivery) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.set_link_fault(NodeId{1}, NodeId{2},
                         LinkFault{.extra_latency = Duration::millis(50)});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  // base 2 ms + extra 50 ms + processing 1 ms (vs 3 ms on a clean link).
  EXPECT_NEAR(sim.now().to_seconds(), 0.053, 1e-9);
}

TEST(Network, LinkFaultDuplicateDeliversTwice) {
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.set_link_fault(NodeId{1}, NodeId{2}, LinkFault{.duplicate = 1.0});
  network.send(Envelope{NodeId{1}, NodeId{2}, 7, Bytes{9}});
  sim.run();
  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(network.stats().duplicated_messages, 1u);
  // The ghost is a fault artefact, not sender traffic.
  EXPECT_EQ(network.stats().total_messages, 1u);
}

TEST(Network, LinkFaultReorderWindowReordersMessages) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    Network network(sim, quiet_config());
    RecordingNode a(NodeId{1});
    TimedRecorder b;
    b.sim = &sim;
    b.node_id = NodeId{2};
    network.attach(&a);
    network.attach(&b);
    network.set_link_fault(NodeId{1}, NodeId{2},
                           LinkFault{.reorder_window = Duration::millis(50)});
    for (std::uint8_t i = 0; i < 10; ++i) {
      network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{i}});
    }
    sim.run();
    std::vector<std::uint8_t> order;
    for (const auto& [payload, when] : b.handled) order.push_back(payload);
    return order;
  };

  const std::vector<std::uint8_t> order = run_once(42);
  ASSERT_EQ(order.size(), 10u);
  // The window shuffles arrivals: later sends overtake earlier ones.
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  // ... deterministically under a fixed seed.
  EXPECT_EQ(order, run_once(42));
  EXPECT_NE(order, run_once(43));
}

TEST(Network, BrownoutSlowsProcessingUntilCleared) {
  Simulator sim(1);
  Network network(sim, quiet_config());  // 1000 msgs/s: 1 ms per message
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.set_brownout(NodeId{2}, 10.0);  // 100 msgs/s: 10 ms per message
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}), 100.0);
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 0.012, 1e-9);  // 2 ms latency + 10 ms

  network.clear_brownout(NodeId{2});
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}), 1000.0);
  const double before = sim.now().to_seconds();
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds() - before, 0.003, 1e-9);

  // A factor <= 1 is a clear, not a speed-up.
  network.set_brownout(NodeId{2}, 0.5);
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}), 1000.0);
}

TEST(Network, RecoverResetsProcessingBacklog) {
  Simulator sim(1);
  NetConfig config = quiet_config();
  config.processing_rate_msgs_per_sec = 10.0;  // 100 ms per message
  Network network(sim, config);
  RecordingNode a(NodeId{1});
  TimedRecorder b;
  b.sim = &sim;
  b.node_id = NodeId{2};
  network.attach(&a);
  network.attach(&b);

  // Three messages queue node 2 solid until t = 302 ms.
  for (std::uint8_t i = 0; i < 3; ++i) {
    network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{i}});
  }
  sim.run_until(TimePoint{Duration::millis(50).ns});

  // Reboot at t = 50 ms: the accumulated backlog is discarded, so a fresh
  // message is processed on arrival instead of behind the dead queue.
  network.crash(NodeId{2});
  network.recover(NodeId{2});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{99}});
  sim.run();

  double fresh_handled = 0;
  for (const auto& [payload, when] : b.handled) {
    if (payload == 99) fresh_handled = when;
  }
  // arrival 52 ms + 100 ms processing — not 302 ms + 100 ms.
  EXPECT_NEAR(fresh_handled, 0.152, 1e-9);
}

TEST(Network, BlockedLinkDoesNotPerturbDropDecisionsElsewhere) {
  // Fault decisions live on a dedicated RNG stream and are drawn before the
  // blocked/partition checks, so toggling a block on one link must not
  // change which messages the global drop rate kills on another.
  auto delivered_to_b = [](bool block_third_link) {
    Simulator sim(7);
    NetConfig config = quiet_config();
    config.jitter = Duration{0};
    config.drop_rate = 0.3;
    Network network(sim, config);
    RecordingNode a(NodeId{1}), b(NodeId{2}), c(NodeId{3});
    network.attach(&a);
    network.attach(&b);
    network.attach(&c);
    if (block_third_link) network.block_link(NodeId{1}, NodeId{3});
    std::vector<std::uint8_t> order;
    struct Sink : INetNode {
      NodeId node_id;
      std::vector<std::uint8_t>* out;
      [[nodiscard]] NodeId id() const override { return node_id; }
      void handle(const Envelope& envelope) override { out->push_back(envelope.payload[0]); }
    } sink;
    sink.node_id = NodeId{4};
    sink.out = &order;
    network.attach(&sink);
    for (std::uint8_t i = 0; i < 20; ++i) {
      network.send(Envelope{NodeId{1}, NodeId{4}, 1, Bytes{i}});
      network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{i}});
    }
    sim.run();
    return order;
  };

  const std::vector<std::uint8_t> clean = delivered_to_b(false);
  EXPECT_EQ(clean, delivered_to_b(true));
  EXPECT_LT(clean.size(), 20u);  // the drop rate actually bit
  EXPECT_GT(clean.size(), 0u);
}

TEST(Network, LinkFaultsDeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    NetConfig config = quiet_config();
    config.jitter = Duration::millis(5);
    Network network(sim, config);
    RecordingNode a(NodeId{1}), b(NodeId{2});
    network.attach(&a);
    network.attach(&b);
    network.set_link_fault(NodeId{1}, NodeId{2},
                           LinkFault{.loss = 0.3,
                                     .extra_latency = Duration::millis(10),
                                     .duplicate = 0.3,
                                     .reorder_window = Duration::millis(15)});
    for (int i = 0; i < 30; ++i) network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
    sim.run();
    return std::make_pair(sim.now().ns, b.received.size());
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(Network, DropAccountingMatchesTelemetry) {
  // Every drop path — send-time fault, receiver crashed at arrival,
  // receiver crashed between arrival and processing-done, receiver
  // detached — must move NetStats::dropped_messages and the
  // `net.msgs_dropped` counter together. Delivery-time drops used to skip
  // the counter, so metrics JSONL undercounted relative to NetStats.
  Simulator sim(1);
  Network network(sim, quiet_config());
  obs::Telemetry telemetry;
  network.set_telemetry(telemetry);
  RecordingNode a(NodeId{1}), b(NodeId{2}), c(NodeId{3});
  network.attach(&a);
  network.attach(&b);
  network.attach(&c);

  // Two send-time drops.
  network.set_drop_rate(1.0);
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{2}});
  network.set_drop_rate(0.0);

  // Receiver crashed before arrival: dropped at the arrival instant.
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{3}});
  network.crash(NodeId{2});
  sim.run();
  network.recover(NodeId{2});

  // Receiver crashes after arrival but before processing completes
  // (arrival at 2 ms, done at 3 ms): dropped at the done instant.
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{4}});
  sim.run_until(sim.now() + Duration::micros(2500));
  network.crash(NodeId{2});
  sim.run();
  network.recover(NodeId{2});

  // Receiver detached mid-flight.
  network.send(Envelope{NodeId{1}, NodeId{3}, 1, Bytes{5}});
  network.detach(NodeId{3});
  sim.run();

  EXPECT_EQ(network.stats().dropped_messages, 5u);
  EXPECT_EQ(telemetry.metrics().counter_total("net.msgs_dropped"),
            network.stats().dropped_messages);
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(c.received.empty());
}

TEST(Network, DetachClearsPerNodeDegradation) {
  // A node id re-attached after an era switch or restart must not inherit
  // the departed node's processing-rate override or brownout.
  Simulator sim(1);
  Network network(sim, quiet_config());  // default 1000 msgs/s
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.set_processing_rate(NodeId{2}, 10.0);
  network.set_brownout(NodeId{2}, 4.0);
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}), 2.5);

  network.detach(NodeId{2});
  RecordingNode reborn(NodeId{2});
  network.attach(&reborn);
  EXPECT_DOUBLE_EQ(network.processing_rate_of(NodeId{2}),
                   network.config().processing_rate_msgs_per_sec);

  // And the timing agrees: 2 ms latency + 1 ms default processing, not the
  // 400 ms the stale override+brownout would have charged.
  const TimePoint before = sim.now();
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  sim.run();
  ASSERT_EQ(reborn.received.size(), 1u);
  EXPECT_NEAR((sim.now() - before).to_seconds(), 0.003, 1e-9);
}

TEST(Network, RestartedNodeStartsWithEmptyBacklog) {
  // The full Deployment::restart_node network sequence (recover → detach →
  // attach) on a node crashed mid-queue: the rebuilt node's first message
  // must be processed on arrival, not behind the dead node's backlog.
  Simulator sim(1);
  NetConfig config = quiet_config();
  config.processing_rate_msgs_per_sec = 10.0;  // 100 ms per message
  Network network(sim, config);
  RecordingNode a(NodeId{1});
  TimedRecorder b;
  b.sim = &sim;
  b.node_id = NodeId{2};
  network.attach(&a);
  network.attach(&b);

  // Three messages queue node 2 solid until t = 302 ms.
  for (std::uint8_t i = 0; i < 3; ++i) {
    network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{i}});
  }
  sim.run_until(TimePoint{Duration::millis(50).ns});

  network.crash(NodeId{2});
  network.recover(NodeId{2});
  network.detach(NodeId{2});
  TimedRecorder rebuilt;
  rebuilt.sim = &sim;
  rebuilt.node_id = NodeId{2};
  network.attach(&rebuilt);

  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{99}});
  sim.run();

  double fresh_handled = 0;
  for (const auto& [payload, when] : rebuilt.handled) {
    if (payload == 99) fresh_handled = when;
  }
  // arrival 52 ms + 100 ms processing — not behind the 302 ms backlog.
  EXPECT_NEAR(fresh_handled, 0.152, 1e-9);
}

TEST(Network, DuplicatedAndDroppedMessageLeavesNoGhost) {
  // Send-time fault draws happen in a fixed order on the dedicated fault
  // stream: drop first, then duplicate. A message that loses both coin
  // flips is simply gone — no ghost copy is scheduled and the duplicate
  // counter does not move. Pinned so a hot-path rewrite cannot reorder the
  // draws (seed-for-seed fault-stream comparability is documented in
  // Network::send).
  Simulator sim(1);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.set_link_fault(NodeId{1}, NodeId{2}, LinkFault{.loss = 1.0, .duplicate = 1.0});
  for (int i = 0; i < 4; ++i) {
    network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
  }
  sim.run();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(network.stats().dropped_messages, 4u);
  EXPECT_EQ(network.stats().duplicated_messages, 0u);
}

TEST(Network, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    NetConfig config = quiet_config();
    config.jitter = Duration::millis(5);
    Network network(sim, config);
    RecordingNode a(NodeId{1}), b(NodeId{2});
    network.attach(&a);
    network.attach(&b);
    for (int i = 0; i < 20; ++i) network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1}});
    sim.run();
    return sim.now().ns;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

// --- wire tampering --------------------------------------------------------

TamperRule bitflip_only_rule(TamperRule::Mode mode) {
  TamperRule rule;
  rule.mode = mode;
  rule.chance = 1.0;
  rule.truncate = rule.extend = rule.retype = rule.oversize = rule.replay = 0.0;
  rule.max_flips = 1;  // a single flip can never cancel itself out
  return rule;
}

TEST(Network, TamperZeroChanceRuleIsNeutral) {
  auto run_once = [](bool install_rule) {
    Simulator sim(11);
    Network network(sim, quiet_config());
    RecordingNode a(NodeId{1}), b(NodeId{2});
    network.attach(&a);
    network.attach(&b);
    if (install_rule) network.set_tamper(TamperRule{});  // chance 0
    for (int i = 0; i < 5; ++i) {
      network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{static_cast<std::uint8_t>(i)}});
    }
    sim.run();
    return std::make_tuple(sim.now().ns, b.received.size(), network.stats().tampered_messages);
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(Network, ClearTamperRestoresCleanWire) {
  Simulator sim(3);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);

  network.set_tamper(bitflip_only_rule(TamperRule::Mode::Replace));
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1, 2, 3, 4}});
  sim.run();
  EXPECT_EQ(network.stats().tampered_messages, 1u);

  network.clear_tamper();
  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1, 2, 3, 4}});
  sim.run();
  EXPECT_EQ(network.stats().tampered_messages, 1u);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[1].payload, (Bytes{1, 2, 3, 4}));
}

TEST(Network, ReplaceModeMutatesTheDeliveredEnvelope) {
  Simulator sim(3);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  network.set_tamper(bitflip_only_rule(TamperRule::Mode::Replace));

  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1, 2, 3, 4}});
  sim.run();

  // MITM: the mutant takes the genuine message's place — one delivery,
  // bytes differ.
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_NE(b.received[0].payload, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(network.stats().tampered_messages, 1u);
  EXPECT_EQ(network.stats().per_node.at(NodeId{2}).messages_received, 1u);
}

TEST(Network, InjectModeDeliversGhostAlongsideOriginal) {
  Simulator sim(3);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  network.set_tamper(bitflip_only_rule(TamperRule::Mode::Inject));

  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1, 2, 3, 4}});
  sim.run();

  // Man-on-the-side: the genuine envelope arrives untouched, the mutant
  // rides along as an edge-injected ghost. Both count as received traffic.
  ASSERT_EQ(b.received.size(), 2u);
  const int genuine = static_cast<int>(b.received[0].payload == Bytes{1, 2, 3, 4}) +
                      static_cast<int>(b.received[1].payload == Bytes{1, 2, 3, 4});
  EXPECT_EQ(genuine, 1);
  EXPECT_EQ(network.stats().tampered_messages, 1u);
  EXPECT_EQ(network.stats().per_node.at(NodeId{2}).messages_received, 2u);
}

TEST(Network, ReplayRedeliversGenuineBytes) {
  Simulator sim(3);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  TamperRule rule;
  rule.mode = TamperRule::Mode::Inject;
  rule.chance = 1.0;
  rule.bitflip = rule.truncate = rule.extend = rule.retype = rule.oversize = 0.0;
  rule.replay = 1.0;
  rule.replay_delay_max = Duration::millis(5);
  network.set_tamper(rule);

  network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{9, 9, 9}});
  sim.run();

  // The replayed ghost is a verbatim copy of captured genuine traffic.
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].payload, (Bytes{9, 9, 9}));
  EXPECT_EQ(b.received[1].payload, (Bytes{9, 9, 9}));
  EXPECT_EQ(network.stats().replayed_messages, 1u);
  EXPECT_EQ(network.stats().tampered_messages, 1u);
}

TEST(Network, SparedTypesPassUntouched) {
  Simulator sim(3);
  Network network(sim, quiet_config());
  RecordingNode a(NodeId{1}), b(NodeId{2});
  network.attach(&a);
  network.attach(&b);
  TamperRule rule = bitflip_only_rule(TamperRule::Mode::Replace);
  rule.spare_types = {7};
  network.set_tamper(rule);

  network.send(Envelope{NodeId{1}, NodeId{2}, 7, Bytes{1, 2, 3, 4}});
  sim.run();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].payload, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(network.stats().tampered_messages, 0u);
}

TEST(Network, TamperDeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    NetConfig config = quiet_config();
    config.jitter = Duration::millis(5);
    Network network(sim, config);
    RecordingNode a(NodeId{1}), b(NodeId{2});
    network.attach(&a);
    network.attach(&b);
    TamperRule rule;
    rule.mode = TamperRule::Mode::Replace;
    rule.chance = 0.5;
    network.set_tamper(rule);
    for (int i = 0; i < 40; ++i) {
      network.send(Envelope{NodeId{1}, NodeId{2}, 1, Bytes{1, 2, 3, 4, 5, 6}});
    }
    sim.run();
    std::vector<std::size_t> sizes;
    for (const auto& envelope : b.received) sizes.push_back(envelope.payload.size());
    return std::make_tuple(sim.now().ns, network.stats().tampered_messages, sizes);
  };
  EXPECT_EQ(run_once(5), run_once(5));
  const auto tampered = std::get<1>(run_once(5));
  EXPECT_GT(tampered, 0u);
  EXPECT_LT(tampered, 40u);
}

TEST(Network, RejectionAccountingMatchesTelemetry) {
  // note_rejected must move NetStats::rejected_messages, the per-type map,
  // and the `net.msgs_rejected` telemetry counters (total + per-type) in
  // lockstep — the reject-side mirror of drop accounting.
  Simulator sim(1);
  Network network(sim, quiet_config());
  obs::Telemetry telemetry;
  network.set_telemetry(telemetry);

  network.note_rejected(3);
  network.note_rejected(3);
  network.note_rejected(4);

  EXPECT_EQ(network.stats().rejected_messages, 3u);
  EXPECT_EQ(network.stats().rejected_by_type.at(3), 2u);
  EXPECT_EQ(network.stats().rejected_by_type.at(4), 1u);
  EXPECT_EQ(telemetry.metrics().counter_total("net.msgs_rejected"),
            network.stats().rejected_messages);
  EXPECT_EQ(telemetry.metrics().counter_total("net.msgs_rejected." + telemetry.message_name(3)),
            2u);
  EXPECT_EQ(telemetry.metrics().counter_total("net.msgs_rejected." + telemetry.message_name(4)),
            1u);
}

}  // namespace
}  // namespace gpbft::net
