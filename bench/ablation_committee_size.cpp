// Ablation A2 (DESIGN.md): the maximum committee size.
//
// The paper fixes max = 40 without exploring alternatives. At a fixed
// network of 100 nodes, sweep the cap: latency and per-transaction bytes
// grow with the committee, fault tolerance (f = (c-1)/3) grows too — the
// knob trades performance against resilience.
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  constexpr std::size_t kNodes = 100;

  std::printf("Ablation A2: committee size cap at %zu nodes\n", kNodes);
  std::printf("%6s %6s %14s %14s %4s\n", "max", "cmte", "mean lat(s)", "KB/tx", "f");
  for (const std::size_t cap : {4u, 10u, 20u, 40u, 70u}) {
    sim::ExperimentOptions options = sim::default_options();
    options.workload.txs_per_client = 6;
    options.committee.max = cap;
    options.committee.min = std::min<std::size_t>(4, cap);

    const sim::ExperimentResult latency = sim::run_gpbft_latency(kNodes, options);
    const sim::ExperimentResult cost = sim::run_gpbft_single_tx(kNodes, options);
    std::printf("%6zu %6zu %14.3f %14.2f %4zu\n", cap, latency.committee, latency.latency.mean,
                cost.consensus_kb, (latency.committee - 1) / 3);
    std::fflush(stdout);
  }
  return 0;
}
