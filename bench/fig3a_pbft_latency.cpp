// Fig. 3a of the paper: PBFT consensus latency vs number of nodes.
//
// Every node proposes transactions at a constant frequency; each point is a
// boxplot over GPBFT_BENCH_RUNS seeded runs. Expected shape: latency grows
// superlinearly ("at an exponential speed") with growing variance, because
// the all-node committee saturates each replica's processing rate.
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  const std::size_t runs = bench::runs_per_point();
  sim::ExperimentOptions options = sim::default_options();

  std::printf("Fig. 3a: PBFT consensus latency, %zu runs per point\n", runs);
  bench::print_boxplot_header("(boxplot of per-transaction latency, seconds)");
  for (const std::size_t nodes : bench::node_grid()) {
    const sim::ExperimentResult result =
        sim::repeat_runs(sim::run_pbft_latency, nodes, options, runs);
    bench::print_boxplot_row(result);
    bench::append_json_record("fig3a.pbft", result, options.seed);
    std::fflush(stdout);
  }
  return 0;
}
