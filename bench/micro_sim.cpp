// Micro-benchmarks: discrete-event simulator throughput and an end-to-end
// consensus round — the numbers that bound how large a deployment the
// harness can sweep per wall-clock second.
#include <benchmark/benchmark.h>

#include <memory>

#include "sim/deployment.hpp"
#include "sim/workload.hpp"

namespace {

using namespace gpbft;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulator sim(1);
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(Duration::micros(i), []() {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_NetworkMessageDelivery(benchmark::State& state) {
  struct Sink : net::INetNode {
    NodeId node_id;
    [[nodiscard]] NodeId id() const override { return node_id; }
    void handle(const net::Envelope&) override {}
  };
  for (auto _ : state) {
    net::Simulator sim(1);
    net::Network network(sim, net::NetConfig{});
    Sink a, b;
    a.node_id = NodeId{1};
    b.node_id = NodeId{2};
    network.attach(&a);
    network.attach(&b);
    for (int i = 0; i < 1'000; ++i) {
      network.send(net::Envelope{NodeId{1}, NodeId{2}, 1, Bytes(64, 0)});
    }
    sim.run();
    benchmark::DoNotOptimize(network.stats().total_bytes);
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_NetworkMessageDelivery);

void BM_ConsensusRound(benchmark::State& state) {
  // Full three-phase PBFT round, committee size as the argument.
  for (auto _ : state) {
    state.PauseTiming();
    sim::ScenarioSpec spec;
    spec.protocol = sim::ProtocolKind::Pbft;
    spec.nodes = static_cast<std::size_t>(state.range(0));
    spec.clients = 1;
    spec.seed = 1;
    spec.engine.compute_macs = false;
    const std::unique_ptr<sim::PbftCluster> cluster = sim::make_pbft_deployment(spec);
    cluster->start();
    state.ResumeTiming();

    cluster->client(0).submit(sim::make_workload_tx(cluster->client(0).id(), 1,
                                                    cluster->placement().position(0),
                                                    cluster->simulator().now(), 32, 10, 1));
    cluster->run_until_committed(1, TimePoint{Duration::seconds(120).ns});
    benchmark::DoNotOptimize(cluster->client(0).committed_count());
    state.PauseTiming();
    cluster->stop();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ConsensusRound)->Arg(4)->Arg(16)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace
