// Ablation A4 (DESIGN.md): sensitivity to the node processing rate s.
//
// §IV-B models consensus time as O(n/s). At fixed n = 40 and light load
// (no queueing), doubling s should roughly halve the mean latency; this
// bench validates that the simulator's node model follows the paper's
// analysis (and therefore that the calibration knob behaves predictably).
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  constexpr std::size_t kNodes = 40;

  std::printf("Ablation A4: processing rate s at n = %zu (light load)\n", kNodes);
  std::printf("%10s %14s %16s\n", "s(msg/s)", "mean lat(s)", "lat x s (~const)");
  for (const double rate : {40.0, 80.0, 160.0, 320.0, 640.0}) {
    sim::ExperimentOptions options = sim::default_options();
    options.net.processing_rate_msgs_per_sec = rate;
    options.workload.txs_per_client = 1;  // no backlog: pure O(n/s) regime
    options.workload.period = Duration::seconds(5);
    const sim::ExperimentResult result = sim::run_pbft_latency(kNodes, options);
    std::printf("%10.0f %14.3f %16.1f\n", rate, result.latency.mean,
                result.latency.mean * rate);
    std::fflush(stdout);
  }
  std::printf("(constant product confirms the O(n/s) phase-switch model of SIV-B)\n");
  return 0;
}
