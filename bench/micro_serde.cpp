// Micro-benchmarks: the serde codec and whole-message encode/decode.
#include <benchmark/benchmark.h>

#include "ledger/genesis.hpp"
#include "pbft/messages.hpp"
#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace {

using namespace gpbft;

void BM_WriterMixed(benchmark::State& state) {
  for (auto _ : state) {
    serde::Writer w;
    for (int i = 0; i < 32; ++i) {
      w.u64(static_cast<std::uint64_t>(i));
      w.varint(static_cast<std::uint64_t>(i) * 1234567);
      w.string("field");
    }
    benchmark::DoNotOptimize(w.buffer());
  }
}
BENCHMARK(BM_WriterMixed);

void BM_ReaderMixed(benchmark::State& state) {
  serde::Writer w;
  for (int i = 0; i < 32; ++i) {
    w.u64(static_cast<std::uint64_t>(i));
    w.varint(static_cast<std::uint64_t>(i) * 1234567);
    w.string("field");
  }
  const Bytes data = w.take();
  for (auto _ : state) {
    serde::Reader r(BytesView(data.data(), data.size()));
    for (int i = 0; i < 32; ++i) {
      benchmark::DoNotOptimize(r.u64());
      benchmark::DoNotOptimize(r.varint());
      benchmark::DoNotOptimize(r.string());
    }
  }
}
BENCHMARK(BM_ReaderMixed);

ledger::Block sample_block(std::size_t txs) {
  ledger::GenesisConfig config;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i}, geo::GeoPoint{22.39, 114.1}});
  }
  const ledger::Block genesis = ledger::make_genesis_block(config);
  std::vector<ledger::Transaction> batch;
  geo::GeoReport report;
  report.point = geo::GeoPoint{22.39, 114.1};
  for (std::size_t i = 0; i < txs; ++i) {
    batch.push_back(ledger::make_normal_tx(NodeId{10 + i}, i, Bytes(32, 0x5a), 10, report));
  }
  return ledger::build_block(genesis.header, std::move(batch), 0, 0, 1, TimePoint{1}, NodeId{1});
}

void BM_BlockEncode(benchmark::State& state) {
  const ledger::Block block = sample_block(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.encode());
  }
}
BENCHMARK(BM_BlockEncode)->Arg(1)->Arg(32);

void BM_BlockDecode(benchmark::State& state) {
  const Bytes encoded = sample_block(static_cast<std::size_t>(state.range(0))).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ledger::Block::decode(BytesView(encoded.data(), encoded.size())));
  }
}
BENCHMARK(BM_BlockDecode)->Arg(1)->Arg(32);

void BM_SealOpen(benchmark::State& state) {
  const crypto::KeyRegistry keys(1);
  const Bytes body(100, 0x44);
  for (auto _ : state) {
    const Bytes sealed = pbft::seal(keys, NodeId{1}, NodeId{2}, pbft::msg_type::kPrepare,
                                    BytesView(body.data(), body.size()), true);
    benchmark::DoNotOptimize(pbft::open(keys, NodeId{1}, NodeId{2}, pbft::msg_type::kPrepare,
                                        BytesView(sealed.data(), sealed.size()), true));
  }
}
BENCHMARK(BM_SealOpen);

}  // namespace
