// Fig. 5 of the paper: communication cost of a single transaction.
//
//   5a) PBFT — cost keeps rising, and rises faster the larger the network
//       (quadratic message complexity, §IV-C).
//   5b) G-PBFT — cost reaches an upper boundary (~400 KB in the paper) once
//       the committee is capped, even past 100 nodes.
//
// Only one transaction is proposed per run; "consensus KB" counts REQUEST,
// PRE-PREPARE, PREPARE, COMMIT and REPLY bytes (geo reports and era control
// accounted separately under "total KB").
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  sim::ExperimentOptions options = sim::default_options();

  std::printf("Fig. 5a: PBFT communication costs per transaction\n");
  std::printf("%6s %14s %14s\n", "nodes", "consensus(KB)", "total(KB)");
  for (const std::size_t nodes : bench::node_grid()) {
    const sim::ExperimentResult result = sim::run_pbft_single_tx(nodes, options);
    std::printf("%6zu %14.2f %14.2f\n", nodes, result.consensus_kb, result.total_kb);
    bench::append_json_record("fig5a.pbft", result, options.seed);
    std::fflush(stdout);
  }

  std::printf("\nFig. 5b: G-PBFT communication costs per transaction (max committee %zu)\n",
              options.committee.max);
  std::printf("%6s %6s %14s %14s\n", "nodes", "cmte", "consensus(KB)", "total(KB)");
  for (const std::size_t nodes : bench::node_grid()) {
    const sim::ExperimentResult result = sim::run_gpbft_single_tx(nodes, options);
    std::printf("%6zu %6zu %14.2f %14.2f\n", nodes, result.committee, result.consensus_kb,
                result.total_kb);
    bench::append_json_record("fig5b.gpbft", result, options.seed);
    std::fflush(stdout);
  }
  return 0;
}
