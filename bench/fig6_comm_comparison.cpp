// Fig. 6 of the paper: communication-cost comparison over the extended node
// range. The PBFT line breaks after 202 nodes; G-PBFT stays bounded.
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  sim::ExperimentOptions options = sim::default_options();

  std::printf("Fig. 6: communication cost comparison, single transaction (consensus KB)\n");
  std::printf("%6s %14s %14s %8s\n", "nodes", "PBFT(KB)", "G-PBFT(KB)", "ratio");
  for (const std::size_t nodes : bench::extended_grid()) {
    double pbft_kb = -1.0;
    if (nodes <= 202) {
      const sim::ExperimentResult pbft = sim::run_pbft_single_tx(nodes, options);
      bench::append_json_record("fig6.pbft", pbft, options.seed);
      pbft_kb = pbft.consensus_kb;
    }
    const sim::ExperimentResult gpbft = sim::run_gpbft_single_tx(nodes, options);
    bench::append_json_record("fig6.gpbft", gpbft, options.seed);
    const double gpbft_kb = gpbft.consensus_kb;
    if (pbft_kb >= 0) {
      std::printf("%6zu %14.2f %14.2f %7.2f%%\n", nodes, pbft_kb, gpbft_kb,
                  100.0 * gpbft_kb / pbft_kb);
    } else {
      std::printf("%6zu %14s %14.2f %8s\n", nodes, "-", gpbft_kb, "-");
    }
    std::fflush(stdout);
  }
  return 0;
}
