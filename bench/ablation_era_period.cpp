// Ablation A1 (DESIGN.md): the era period T.
//
// §III-E argues T must be neither too small (frequent switch periods pause
// the system) nor too large (slow reaction to membership change). Both
// effects are measured here on a 12-node deployment (committee capped at 8):
//   * mean transaction latency under constant load (switch pauses tax it),
//   * promotion delay: how long after a candidate becomes eligible it
//     actually enters the committee (bounded below by T).
#include <memory>

#include "bench_util.hpp"
#include "sim/deployment.hpp"

namespace {

using namespace gpbft;

struct EraPeriodResult {
  double mean_latency{0};
  double promotion_delay{0};
  std::uint64_t switches{0};
};

EraPeriodResult run_with_period(Duration era_period) {
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 12;
  spec.clients = 12;
  spec.seed = 11;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 8;
  spec.committee.era_period = era_period;
  spec.geo.report_period = Duration::seconds(2);
  spec.geo.window = std::max(era_period, Duration::seconds(6));
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.engine.request_timeout = Duration::seconds(4000);
  spec.workload.period = Duration::seconds(2);
  spec.workload.txs_per_client = 30;

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);
  cluster->start();

  sim::LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);

  // Candidates become eligible at promotion_threshold (20 s); record when
  // the committee first grows beyond the initial 4.
  double grew_at = -1.0;
  const TimePoint eligible_at{Duration::seconds(20).ns};
  while (cluster->simulator().now().to_seconds() < 90.0) {
    cluster->run_for(Duration::millis(200));
    if (grew_at < 0 && cluster->committee_size() > 4) {
      grew_at = cluster->simulator().now().to_seconds();
    }
  }
  cluster->run_until_committed(spec.workload.txs_per_client,
                               TimePoint{Duration::seconds(600).ns});
  cluster->stop();

  EraPeriodResult result;
  result.mean_latency = recorder.mean();
  result.promotion_delay = grew_at < 0 ? -1.0 : grew_at - eligible_at.to_seconds();
  result.switches = cluster->total_era_switches();
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation A1: era period T (12 nodes, committee 4..8, constant load)\n");
  std::printf("%8s %14s %18s %9s\n", "T(s)", "mean lat(s)", "promo delay(s)", "switches");
  for (const std::int64_t period : {3, 6, 12, 24, 48}) {
    const EraPeriodResult result = run_with_period(Duration::seconds(period));
    std::printf("%8lld %14.3f %18.1f %9llu\n", static_cast<long long>(period),
                result.mean_latency, result.promotion_delay,
                static_cast<unsigned long long>(result.switches));
    std::fflush(stdout);
  }
  std::printf("(small T: more switch pauses; large T: slower committee adaptation)\n");
  return 0;
}
