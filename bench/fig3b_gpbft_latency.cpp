// Fig. 3b of the paper: G-PBFT consensus latency vs number of nodes.
//
// Same workload as Fig. 3a. Expected shape: latency tracks PBFT up to the
// maximum committee size (40), then flattens — no more endorsers join, so
// the consensus cost stops growing. Era switches during the runs produce
// occasional latency outliers (the paper's circles, ~0.25 s switch period).
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  const std::size_t runs = bench::runs_per_point();
  sim::ExperimentOptions options = sim::default_options();

  std::printf("Fig. 3b: G-PBFT consensus latency, %zu runs per point (max committee %zu)\n",
              runs, options.committee.max);
  bench::print_boxplot_header("(boxplot of per-transaction latency, seconds)");
  std::uint64_t switches = 0;
  for (const std::size_t nodes : bench::node_grid()) {
    const sim::ExperimentResult result =
        sim::repeat_runs(sim::run_gpbft_latency, nodes, options, runs);
    bench::print_boxplot_row(result);
    bench::append_json_record("fig3b.gpbft", result, options.seed);
    switches += result.era_switches;
    std::fflush(stdout);
  }
  std::printf("(era switches observed across all runs: %llu)\n",
              static_cast<unsigned long long>(switches));
  return 0;
}
