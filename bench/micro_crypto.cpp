// Micro-benchmarks: SHA-256, HMAC, Merkle trees, authenticators.
#include <benchmark/benchmark.h>

#include "crypto/authenticator.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace gpbft;
using namespace gpbft::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(BytesView(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hmac_sha256(BytesView(key.data(), key.size()), BytesView(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(sha256("leaf" + std::to_string(i)));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(8)->Arg(64)->Arg(512);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(sha256("leaf" + std::to_string(i)));
  const MerkleTree tree(leaves);
  std::size_t index = 0;
  for (auto _ : state) {
    const MerkleProof proof = tree.prove(index % leaves.size());
    benchmark::DoNotOptimize(
        MerkleTree::verify(leaves[index % leaves.size()], proof, tree.root()));
    ++index;
  }
}
BENCHMARK(BM_MerkleProveVerify)->Arg(64)->Arg(512);

void BM_AuthenticatorTag(benchmark::State& state) {
  const KeyRegistry keys(1);
  const Bytes payload(128, 0x33);
  std::vector<NodeId> receivers;
  for (std::uint64_t i = 2; i < 2 + static_cast<std::uint64_t>(state.range(0)); ++i) {
    receivers.push_back(NodeId{i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        keys.authenticate(NodeId{1}, receivers, BytesView(payload.data(), payload.size())));
  }
}
BENCHMARK(BM_AuthenticatorTag)->Arg(1)->Arg(40)->Arg(200);

void BM_AuthenticatorVerify(benchmark::State& state) {
  const KeyRegistry keys(1);
  const Bytes payload(128, 0x33);
  const Authenticator auth =
      keys.authenticate(NodeId{1}, {NodeId{2}}, BytesView(payload.data(), payload.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.verify(auth, NodeId{2}, BytesView(payload.data(), payload.size())));
  }
}
BENCHMARK(BM_AuthenticatorVerify);

}  // namespace
