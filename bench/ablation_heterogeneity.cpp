// Ablation A6 (DESIGN.md): heterogeneous device power.
//
// The paper's endorser-selection argument (§I, §III-B): fixed infrastructure
// devices have more computational power than mobile phones and sensors, so
// putting *them* in the committee buys performance. Here the same 40-node
// deployment (committee of 10) runs three ways:
//   strong-committee — committee members process 320 msg/s, the rest 40
//   uniform          — everyone at the calibrated 160 msg/s
//   weak-committee   — committee members 40 msg/s, the rest 320
// Consensus latency tracks the *committee's* power, not the fleet average —
// exactly why G-PBFT elects the powerful fixed devices.
#include <cstdio>
#include <memory>

#include "sim/deployment.hpp"

namespace {

using namespace gpbft;

double run_case(double committee_rate, double device_rate) {
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 40;
  spec.clients = 40;
  spec.seed = 23;
  spec.committee.initial = 10;
  spec.committee.era_period = Duration::seconds(1000);  // isolate the effect
  spec.engine.request_timeout = Duration::seconds(4000);
  spec.workload.period = Duration::seconds(5);
  spec.workload.txs_per_client = 8;

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);
  for (std::size_t i = 0; i < cluster->endorser_count(); ++i) {
    const bool in_committee = i < spec.committee.initial;
    cluster->network().set_processing_rate(cluster->endorser(i).id(),
                                           in_committee ? committee_rate : device_rate);
  }
  cluster->start();

  sim::LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);
  cluster->run_until_committed(spec.workload.txs_per_client,
                               TimePoint{Duration::seconds(2000).ns});
  cluster->stop();
  return recorder.mean();
}

}  // namespace

int main() {
  std::printf("Ablation A6: device heterogeneity (40 nodes, committee 10)\n");
  std::printf("%-18s %16s %14s %14s\n", "case", "committee msg/s", "others msg/s",
              "mean lat(s)");
  struct Case {
    const char* name;
    double committee;
    double others;
  };
  for (const Case c : {Case{"strong-committee", 320, 40}, Case{"uniform", 160, 160},
                       Case{"weak-committee", 40, 320}}) {
    const double latency = run_case(c.committee, c.others);
    std::printf("%-18s %16.0f %14.0f %14.3f\n", c.name, c.committee, c.others, latency);
    std::fflush(stdout);
  }
  std::printf("(latency follows the committee's power: electing the strong fixed devices\n"
              " as endorsers — G-PBFT's selection rule — is what buys the speedup)\n");
  return 0;
}
