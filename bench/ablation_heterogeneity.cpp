// Ablation A6 (DESIGN.md): heterogeneous device power.
//
// The paper's endorser-selection argument (§I, §III-B): fixed infrastructure
// devices have more computational power than mobile phones and sensors, so
// putting *them* in the committee buys performance. Here the same 40-node
// deployment (committee of 10) runs three ways:
//   strong-committee — committee members process 320 msg/s, the rest 40
//   uniform          — everyone at the calibrated 160 msg/s
//   weak-committee   — committee members 40 msg/s, the rest 320
// Consensus latency tracks the *committee's* power, not the fleet average —
// exactly why G-PBFT elects the powerful fixed devices.
#include <cstdio>

#include "sim/cluster.hpp"
#include "sim/workload.hpp"

namespace {

using namespace gpbft;

double run_case(double committee_rate, double device_rate) {
  sim::GpbftClusterConfig config;
  config.nodes = 40;
  config.initial_committee = 10;
  config.clients = 40;
  config.seed = 23;
  config.protocol.genesis.era_period = Duration::seconds(1000);  // isolate the effect
  config.protocol.pbft.request_timeout = Duration::seconds(4000);

  sim::GpbftCluster cluster(config);
  for (std::size_t i = 0; i < cluster.endorser_count(); ++i) {
    const bool in_committee = i < config.initial_committee;
    cluster.network().set_processing_rate(cluster.endorser(i).id(),
                                          in_committee ? committee_rate : device_rate);
  }
  cluster.start();

  sim::LatencyRecorder recorder;
  sim::WorkloadConfig workload;
  workload.period = Duration::seconds(5);
  workload.count = 8;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    sim::schedule_workload(cluster.simulator(), cluster.client(i),
                           cluster.placement().position(i), workload, i, &recorder);
  }
  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(2000).ns});
  cluster.stop();
  return recorder.mean();
}

}  // namespace

int main() {
  std::printf("Ablation A6: device heterogeneity (40 nodes, committee 10)\n");
  std::printf("%-18s %16s %14s %14s\n", "case", "committee msg/s", "others msg/s",
              "mean lat(s)");
  struct Case {
    const char* name;
    double committee;
    double others;
  };
  for (const Case c : {Case{"strong-committee", 320, 40}, Case{"uniform", 160, 160},
                       Case{"weak-committee", 40, 320}}) {
    const double latency = run_case(c.committee, c.others);
    std::printf("%-18s %16.0f %14.0f %14.3f\n", c.name, c.committee, c.others, latency);
    std::fflush(stdout);
  }
  std::printf("(latency follows the committee's power: electing the strong fixed devices\n"
              " as endorsers — G-PBFT's selection rule — is what buys the speedup)\n");
  return 0;
}
