// Fig. 4 of the paper: average consensus latency, PBFT vs G-PBFT, with the
// node count increased beyond the Fig. 3 range. The PBFT series stops at
// 202 nodes (the paper: "PBFT network cannot work at all when the number of
// nodes is larger than 202"); G-PBFT stays flat through the extended range.
#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  sim::ExperimentOptions options = sim::default_options();

  std::printf("Fig. 4: average consensus latency comparison (seconds)\n");
  std::printf("%6s %12s %12s %8s\n", "nodes", "PBFT(s)", "G-PBFT(s)", "ratio");
  for (const std::size_t nodes : bench::extended_grid()) {
    double pbft_mean = -1.0;
    if (nodes <= 202) {
      const sim::ExperimentResult pbft = sim::run_pbft_latency(nodes, options);
      bench::append_json_record("fig4.pbft", pbft, options.seed);
      pbft_mean = pbft.latency.mean;
    }
    const sim::ExperimentResult gpbft = sim::run_gpbft_latency(nodes, options);
    bench::append_json_record("fig4.gpbft", gpbft, options.seed);
    const double gpbft_mean = gpbft.latency.mean;
    if (pbft_mean >= 0) {
      std::printf("%6zu %12.3f %12.3f %7.2f%%\n", nodes, pbft_mean, gpbft_mean,
                  100.0 * gpbft_mean / pbft_mean);
    } else {
      std::printf("%6zu %12s %12.3f %8s\n", nodes, "-", gpbft_mean, "-");
    }
    std::fflush(stdout);
  }
  return 0;
}
