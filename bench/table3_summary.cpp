// Table III of the paper: PBFT vs G-PBFT at 202 nodes.
//
//   | Consensus | Average latency (s) | Average costs (KB) |
//   | PBFT      | 251.47              | 8571.32            |
//   | G-PBFT    | 5.64                | 380.29             |
//
// Latency comes from the constant-frequency workload (as in Fig. 3/4);
// costs from the single-transaction experiment (as in Fig. 5/6). Absolute
// numbers depend on the simulated node model (DESIGN.md §4); the paper's
// claims are the *ratios*: G-PBFT reduces latency to ~2.24% and costs to
// ~4.43% of PBFT.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  using namespace ::gpbft::sim;
  constexpr std::size_t kNodes = 202;

  ExperimentOptions options = default_options();

  std::printf("Table III: experimental results when number of nodes is %zu\n\n", kNodes);

  const ExperimentResult pbft_latency = run_pbft_latency(kNodes, options);
  const ExperimentResult gpbft_latency = run_gpbft_latency(kNodes, options);
  const ExperimentResult pbft_cost = run_pbft_single_tx(kNodes, options);
  const ExperimentResult gpbft_cost = run_gpbft_single_tx(kNodes, options);
  bench::append_json_record("table3.pbft.latency", pbft_latency, options.seed);
  bench::append_json_record("table3.gpbft.latency", gpbft_latency, options.seed);
  bench::append_json_record("table3.pbft.cost", pbft_cost, options.seed);
  bench::append_json_record("table3.gpbft.cost", gpbft_cost, options.seed);

  std::printf("| Consensus | Average latency (s) | Average costs (KB) |\n");
  std::printf("|-----------|---------------------|--------------------|\n");
  std::printf("| PBFT      | %19.2f | %18.2f |\n", pbft_latency.latency.mean,
              pbft_cost.consensus_kb);
  std::printf("| G-PBFT    | %19.2f | %18.2f |\n", gpbft_latency.latency.mean,
              gpbft_cost.consensus_kb);
  std::printf("\n");
  std::printf("latency ratio G-PBFT/PBFT: %.2f%%  (paper: 2.24%%)\n",
              100.0 * gpbft_latency.latency.mean / pbft_latency.latency.mean);
  std::printf("cost ratio    G-PBFT/PBFT: %.2f%%  (paper: 4.43%%)\n",
              100.0 * gpbft_cost.consensus_kb / pbft_cost.consensus_kb);
  std::printf("\ncommitted: pbft %llu/%llu, gpbft %llu/%llu; committee %zu; era switches %llu\n",
              static_cast<unsigned long long>(pbft_latency.committed),
              static_cast<unsigned long long>(pbft_latency.expected),
              static_cast<unsigned long long>(gpbft_latency.committed),
              static_cast<unsigned long long>(gpbft_latency.expected),
              gpbft_latency.committee,
              static_cast<unsigned long long>(gpbft_latency.era_switches));
  return 0;
}
