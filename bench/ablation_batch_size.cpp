// Ablation A5 (DESIGN.md): consensus batch size.
//
// The paper does not state its batching. Since the batched request pipeline
// landed (docs/protocol.md §11), the swept knob is the *batch close size*:
// how many client requests the primary accumulates before running one
// three-phase instance over them (batch.size=1 is the unbatched seed
// behaviour). The engine's per-block ceiling is swept in lockstep with the
// close size, so each point's blocks are exactly close-sized under
// saturation — otherwise the engine would pack fat blocks from the backlog
// regardless of the knob and flatten the curve. Under the saturating
// workload the close size then sets the service rate: tiny batches drown in
// per-instance quorum overhead, huge ones add little once the backlog
// clears between proposals.
// Committed-requests/sec is the headline column; BENCH_scale.json tracks
// the batched points' trajectory.
//
// Environment: GPBFT_BENCH_JSON appends one "ablation.batch_size" record
// per point; GPBFT_BENCH_QUICK shrinks the cluster for CI smoke runs.
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  const std::size_t nodes = bench::quick_mode() ? 40 : 130;

  std::printf("Ablation A5: consensus batch close size at %zu PBFT nodes (saturating workload)\n",
              nodes);
  std::printf("%8s %14s %14s %12s %14s\n", "batch", "mean lat(s)", "p95 lat(s)", "sim time(s)",
              "committed/s");
  for (const std::size_t batch : {1u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    sim::ExperimentOptions options = sim::default_options();
    options.batch.size = batch;
    // The ceiling moves with the close size: blocks are exactly the batch
    // the close policy formed (see header comment).
    options.engine.batch_size = batch;
    options.workload.txs_per_client = 6;
    const sim::ExperimentResult result = sim::run_pbft_latency(nodes, options);
    // p95 from the merged samples.
    std::vector<double> sorted = result.latency_samples;
    std::sort(sorted.begin(), sorted.end());
    const double p95 =
        sorted.empty() ? 0.0 : sorted[static_cast<std::size_t>(0.95 * (sorted.size() - 1))];
    const double committed_per_sec =
        result.sim_seconds <= 0 ? 0.0
                                : static_cast<double>(result.committed) / result.sim_seconds;
    std::printf("%8zu %14.3f %14.3f %12.1f %14.3f\n", batch, result.latency.mean, p95,
                result.sim_seconds, committed_per_sec);
    std::fflush(stdout);
    bench::append_json_record("ablation.batch_size", result, options.seed);
  }
  return 0;
}
