// Ablation A5 (DESIGN.md): block batch size.
//
// The paper does not state its batching; our calibration uses 32. Under the
// saturating workload, batch size sets the service rate: tiny batches
// drown in per-instance quorum overhead, huge batches add little once the
// backlog clears between proposals. Swept at the Fig. 3 crossover scale.
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  constexpr std::size_t kNodes = 130;

  std::printf("Ablation A5: block batch size at %zu PBFT nodes (saturating workload)\n",
              kNodes);
  std::printf("%8s %14s %14s %12s\n", "batch", "mean lat(s)", "p95 lat(s)", "sim time(s)");
  for (const std::size_t batch : {1u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    sim::ExperimentOptions options = sim::default_options();
    options.engine.batch_size = batch;
    options.workload.txs_per_client = 6;
    const sim::ExperimentResult result = sim::run_pbft_latency(kNodes, options);
    // p95 from the merged samples.
    std::vector<double> sorted = result.latency_samples;
    std::sort(sorted.begin(), sorted.end());
    const double p95 =
        sorted.empty() ? 0.0 : sorted[static_cast<std::size_t>(0.95 * (sorted.size() - 1))];
    std::printf("%8zu %14.3f %14.3f %12.1f\n", batch, result.latency.mean, p95,
                result.sim_seconds);
    std::fflush(stdout);
  }
  return 0;
}
