// Message-plane scale harness: PBFT vs G-PBFT at paper scale.
//
// The paper's headline claim is that G-PBFT keeps working at 202 nodes
// where flat PBFT drowns in its own traffic (Figs. 3-4). Reproducing that
// regime stresses the *simulator* as much as the protocol: a 202-node PBFT
// sweep pushes tens of millions of scheduled events through net::Network,
// so the message-plane hot path bounds how far the roster can grow. This
// harness measures that bound directly:
//
//   * wall-clock events/sec of the discrete-event core under the Fig. 3
//     workload at n in {20, 100, 202} for PBFT and G-PBFT;
//   * golden chain hashes per point, so hot-path rewrites must prove
//     behaviour parity (byte-identical consensus outcome) before any
//     speedup counts.
//
// Usage: bench_scale [--smoke]
//   --smoke   n = 20 only (both protocols): the CI perf-smoke leg. Fails
//             (exit 1) only on golden-hash mismatch — events/sec is
//             reported, never gated (machines differ; regressions are
//             judged against BENCH_scale.json trends instead).
//
// Environment (see docs/performance.md and EXPERIMENTS.md):
//   GPBFT_BENCH_JSON        per-point ExperimentResult records (bench_util)
//   GPBFT_BENCH_SCALE_JSON  append one events/sec record per point; the
//                           repo keeps its trajectory in BENCH_scale.json
//   GPBFT_BENCH_SCALE_LABEL build tag stamped into those records ("dev")
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

namespace gpbft::bench {
namespace {

struct ScalePoint {
  sim::ProtocolKind protocol;
  std::size_t nodes;
  /// Tip hash of node 1's chain after the run (seed 1, default
  /// calibration). Recorded from the pre-refactor message plane; any
  /// hot-path change must reproduce these bytes exactly.
  const char* golden_tip;
};

constexpr ScalePoint kPoints[] = {
    {sim::ProtocolKind::Pbft, 20, "a8dcd8aec20a0a27730cf9c380c933c1b38ddb3d62772c8bdebc205adccb49fe"},
    {sim::ProtocolKind::Gpbft, 20, "b3e1157c5119e17d83cbb2d8479dd4e71fd79944e30a860f7b406baf56b0a8ef"},
    {sim::ProtocolKind::Pbft, 100, "e6e54b49f7ed7a2e3988be5d1de7044d16c055ef9c20bab51632d748cc374d59"},
    {sim::ProtocolKind::Gpbft, 100, "06f9c254a1cfa9134ae6d5570bc4ef6f0db64d3e88930077ee5b8e7c2f0e3414"},
    {sim::ProtocolKind::Pbft, 202, "30869784007ce186a1d614ad3bcdb11649e95e5c712f6ee18698ce08a598ec55"},
    {sim::ProtocolKind::Gpbft, 202, "a4e27b6b37cb50e98ab18d27a99223edd2dc7cb0bc7397339c29ad9932b74439"},
};

struct ScaleResult {
  sim::ExperimentResult experiment;
  std::string tip_hex;
  std::uint64_t sim_events{0};
  std::uint64_t wire_messages{0};
  double wall_seconds{0};

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds <= 0 ? 0.0 : static_cast<double>(sim_events) / wall_seconds;
  }
};

/// One seeded latency run (the Fig. 3 workload) through the deployment
/// factory, timed on the host clock. Mirrors sim::run_latency but keeps the
/// deployment in scope so the chain tip and simulator counters are
/// readable afterwards.
ScaleResult run_point(const ScalePoint& point) {
  const sim::ExperimentOptions options = sim::default_options();
  const sim::ScenarioSpec spec = sim::latency_scenario(point.protocol, point.nodes, options);
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);

  const auto wall_start = std::chrono::steady_clock::now();
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  const bool done = deployment->run_until_committed(spec.workload.txs_per_client,
                                                    TimePoint{options.hard_deadline.ns});
  deployment->stop();
  deployment->simulator().run();  // drain in-flight deliveries deterministically
  const auto wall_end = std::chrono::steady_clock::now();

  ScaleResult result;
  result.experiment.nodes = point.nodes;
  result.experiment.committee = deployment->committee_size();
  result.experiment.latency_samples = recorder.samples();
  result.experiment.latency = recorder.boxplot();
  result.experiment.committed = deployment->committed_count();
  result.experiment.expected =
      done ? result.experiment.committed : spec.workload.txs_per_client * spec.clients;
  result.experiment.consensus_kb = sim::consensus_kilobytes(deployment->stats());
  result.experiment.total_kb = deployment->stats().total_kilobytes();
  result.experiment.sim_seconds = deployment->simulator().now().to_seconds();
  result.experiment.era_switches = deployment->era_switches();
  result.sim_events = deployment->simulator().events_processed();
  result.wire_messages = deployment->stats().total_messages;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start).count();

  if (auto* pbft = dynamic_cast<sim::PbftCluster*>(deployment.get())) {
    result.tip_hex = pbft->replica(0).chain().tip().hash().hex();
  } else if (auto* gpbft = dynamic_cast<sim::GpbftCluster*>(deployment.get())) {
    result.tip_hex = gpbft->endorser(0).chain().tip().hash().hex();
  }
  return result;
}

void append_scale_record(const char* series, const ScaleResult& r) {
  const char* path = std::getenv("GPBFT_BENCH_SCALE_JSON");
  if (path == nullptr || path[0] == '\0') return;
  const char* label = std::getenv("GPBFT_BENCH_SCALE_LABEL");
  if (label == nullptr || label[0] == '\0') label = "dev";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "GPBFT_BENCH_SCALE_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\"bench\":\"bench_scale\",\"build\":\"%s\",\"series\":\"%s\","
               "\"nodes\":%zu,\"committee\":%zu,\"committed\":%llu,"
               "\"sim_seconds\":%.17g,\"sim_events\":%llu,\"wire_messages\":%llu,"
               "\"wall_seconds\":%.3f,\"events_per_sec\":%.0f,\"tip\":\"%s\"}\n",
               label, series, r.experiment.nodes, r.experiment.committee,
               static_cast<unsigned long long>(r.experiment.committed), r.experiment.sim_seconds,
               static_cast<unsigned long long>(r.sim_events),
               static_cast<unsigned long long>(r.wire_messages), r.wall_seconds,
               r.events_per_sec(), r.tip_hex.c_str());
  std::fclose(out);
}

int run(bool smoke) {
  std::printf("bench_scale: message-plane throughput, Fig. 3 workload (seed 1)%s\n",
              smoke ? " [smoke]" : "");
  std::printf("%6s %6s %6s %10s %12s %9s %12s  %s\n", "proto", "nodes", "cmte", "committed",
              "sim events", "wall(s)", "events/sec", "tip");
  int failures = 0;
  for (const ScalePoint& point : kPoints) {
    if (smoke && point.nodes != 20) continue;
    const ScaleResult r = run_point(point);
    const char* proto = sim::protocol_name(point.protocol);
    std::printf("%6s %6zu %6zu %7llu/%-3llu %12llu %9.2f %12.0f  %s\n", proto, point.nodes,
                r.experiment.committee, static_cast<unsigned long long>(r.experiment.committed),
                static_cast<unsigned long long>(r.experiment.expected),
                static_cast<unsigned long long>(r.sim_events), r.wall_seconds, r.events_per_sec(),
                r.tip_hex.c_str());
    const std::string series = std::string("scale.") + proto;
    append_json_record(series.c_str(), r.experiment, 1);
    append_scale_record(series.c_str(), r);
    if (r.tip_hex != point.golden_tip) {
      std::fprintf(stderr,
                   "bench_scale: GOLDEN HASH MISMATCH for %s n=%zu\n  expected %s\n  actual   %s\n",
                   proto, point.nodes, point.golden_tip, r.tip_hex.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_scale: %d golden-hash mismatch(es) — the message plane changed "
                 "observable behaviour (see docs/performance.md)\n",
                 failures);
    return 1;
  }
  std::printf("bench_scale: golden hashes OK\n");
  return 0;
}

}  // namespace
}  // namespace gpbft::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_scale [--smoke]\n");
      return 2;
    }
  }
  return gpbft::bench::run(smoke);
}
