// Message-plane scale harness: PBFT vs G-PBFT at paper scale.
//
// The paper's headline claim is that G-PBFT keeps working at 202 nodes
// where flat PBFT drowns in its own traffic (Figs. 3-4). Reproducing that
// regime stresses the *simulator* as much as the protocol: a 202-node PBFT
// sweep pushes tens of millions of scheduled events through net::Network,
// so the message-plane hot path bounds how far the roster can grow. This
// harness measures that bound directly:
//
//   * wall-clock events/sec of the discrete-event core under the Fig. 3
//     workload at n in {20, 100, 202} for PBFT and G-PBFT;
//   * golden chain hashes per point, so hot-path rewrites must prove
//     behaviour parity (byte-identical consensus outcome) before any
//     speedup counts.
//
// Since the batched request pipeline landed (docs/protocol.md §11) the
// grid carries batched points too (batch.size=32): same workload, one
// three-phase instance per 32 requests. Their committed-req/s against the
// unbatched points is the pipeline's headline speedup, tracked in
// BENCH_scale.json.
//
// Usage: bench_scale [--smoke] [--plane] [--threads-sweep]
//   --smoke   n = 20 only (both protocols, unbatched + batched): the CI
//             perf-smoke leg. Fails (exit 1) only on golden-hash mismatch —
//             events/sec is reported, never gated (machines differ;
//             regressions are judged against BENCH_scale.json trends
//             instead).
//   --threads-sweep  parallel MAC plane showcase: the PBFT n=202 point with
//             MACs ON at sim.threads in {1, 2, 4, 8}. Fails (exit 1) when
//             the chain tip differs across thread counts (the determinism
//             contract); wall-clock scaling is reported and recorded as
//             scale.pbft.macs202.tN series rows.
//   --plane   million-device WorkloadPlane smoke: a 10^6-device diurnal
//             PBFT run (n=20, 8 concrete endpoints, batch.size=32) executed
//             twice with the same seed. Fails (exit 1) when the two runs
//             disagree on tip hash / committed count (determinism) or when
//             one run exceeds the wall-clock budget
//             (GPBFT_PLANE_BUDGET_SECS, default 120).
//
// Environment (see docs/performance.md and EXPERIMENTS.md):
//   GPBFT_BENCH_JSON        per-point ExperimentResult records (bench_util)
//   GPBFT_BENCH_SCALE_JSON  append one events/sec record per point; the
//                           repo keeps its trajectory in BENCH_scale.json
//   GPBFT_BENCH_SCALE_LABEL build tag stamped into those records ("dev")
//   GPBFT_PLANE_BUDGET_SECS --plane wall-clock budget per run (default 120)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/workers.hpp"
#include "sim/experiment.hpp"
#include "sim/workload_plane.hpp"

namespace gpbft::bench {
namespace {

struct ScalePoint {
  sim::ProtocolKind protocol;
  std::size_t nodes;
  /// Consensus batch close size (1 = the unbatched seed pipeline).
  std::size_t batch_close;
  /// Tip hash of node 1's chain after the run (seed 1, default
  /// calibration). Unbatched goldens are from the pre-refactor message
  /// plane; batched goldens pin the batched pipeline's first recording.
  /// Any hot-path change must reproduce these bytes exactly.
  const char* golden_tip;
};

constexpr ScalePoint kPoints[] = {
    {sim::ProtocolKind::Pbft, 20, 1, "a8dcd8aec20a0a27730cf9c380c933c1b38ddb3d62772c8bdebc205adccb49fe"},
    {sim::ProtocolKind::Gpbft, 20, 1, "b3e1157c5119e17d83cbb2d8479dd4e71fd79944e30a860f7b406baf56b0a8ef"},
    {sim::ProtocolKind::Pbft, 100, 1, "e6e54b49f7ed7a2e3988be5d1de7044d16c055ef9c20bab51632d748cc374d59"},
    {sim::ProtocolKind::Gpbft, 100, 1, "06f9c254a1cfa9134ae6d5570bc4ef6f0db64d3e88930077ee5b8e7c2f0e3414"},
    {sim::ProtocolKind::Pbft, 202, 1, "30869784007ce186a1d614ad3bcdb11649e95e5c712f6ee18698ce08a598ec55"},
    {sim::ProtocolKind::Gpbft, 202, 1, "a4e27b6b37cb50e98ab18d27a99223edd2dc7cb0bc7397339c29ad9932b74439"},
    // Batched pipeline (batch.size=32, engine ceiling raised to match).
    {sim::ProtocolKind::Pbft, 20, 32, "77cd9a7d4cd45ad084a8cc39a4faf81310f484d916969e46037e99bbc4943856"},
    {sim::ProtocolKind::Gpbft, 20, 32, "a642ffdd402221bef2e1f100361d46b374e028dbd86557d8a1fa2b0f31db83d8"},
    {sim::ProtocolKind::Pbft, 202, 32, "f3c52b2791424c542104299c83d84ffc880276be8176d91eff822be7627ac0ee"},
    {sim::ProtocolKind::Gpbft, 202, 32, "a993e3d202c6135bef9882d670da6212074108d5a60d44818f9f7f5a70b35f60"},
};

struct ScaleResult {
  sim::ExperimentResult experiment;
  std::string tip_hex;
  std::uint64_t sim_events{0};
  std::uint64_t wire_messages{0};
  double wall_seconds{0};
  /// Recorded into the scale JSONL so rows with different pipelines and
  /// denominators stay comparable at a glance (the PR 7 denominator bug
  /// class): the consensus batch close size and the workload mode.
  std::size_t batch_close{1};
  const char* workload{"fig3"};

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds <= 0 ? 0.0 : static_cast<double>(sim_events) / wall_seconds;
  }
};

/// One seeded latency run (the Fig. 3 workload) through the deployment
/// factory, timed on the host clock. Mirrors sim::run_latency but keeps the
/// deployment in scope so the chain tip and simulator counters are
/// readable afterwards.
ScaleResult run_spec(const sim::ScenarioSpec& spec) {
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);

  const auto wall_start = std::chrono::steady_clock::now();
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  const bool done = deployment->run_until_committed(spec.workload.txs_per_client,
                                                    TimePoint{spec.deadline.ns});
  // Time-to-done, read before the drain: the drain below fires pre-armed
  // periodic timers (e.g. the replicas' pending-request tick at
  // request_timeout/4 = 1000 s) whose timestamps say nothing about when the
  // workload actually finished — committed/sim_seconds must not be diluted
  // by them.
  const double sim_seconds = deployment->simulator().now().to_seconds();
  deployment->stop();
  deployment->simulator().run();  // drain in-flight deliveries deterministically
  const auto wall_end = std::chrono::steady_clock::now();
  if (const net::OrderedRunner* runner = deployment->mac_runner()) {
    std::fprintf(stderr, "  [mac plane: %llu jobs, %llu stolen by releaser (%.1f%% offloaded)]\n",
                 static_cast<unsigned long long>(runner->released()),
                 static_cast<unsigned long long>(runner->stolen()),
                 runner->released() == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(runner->released() - runner->stolen()) /
                           static_cast<double>(runner->released()));
  }

  ScaleResult result;
  result.experiment.nodes = spec.nodes;
  result.experiment.committee = deployment->committee_size();
  result.experiment.latency_samples = recorder.samples();
  result.experiment.latency = recorder.boxplot();
  result.experiment.committed = deployment->committed_count();
  result.experiment.expected =
      done ? result.experiment.committed : spec.workload.txs_per_client * spec.clients;
  result.experiment.consensus_kb = sim::consensus_kilobytes(deployment->stats());
  result.experiment.total_kb = deployment->stats().total_kilobytes();
  result.experiment.sim_seconds = sim_seconds;
  result.experiment.era_switches = deployment->era_switches();
  result.sim_events = deployment->simulator().events_processed();
  result.wire_messages = deployment->stats().total_messages;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start).count();
  result.batch_close = spec.batch.size;

  if (auto* pbft = dynamic_cast<sim::PbftCluster*>(deployment.get())) {
    result.tip_hex = pbft->replica(0).chain().tip().hash().hex();
  } else if (auto* gpbft = dynamic_cast<sim::GpbftCluster*>(deployment.get())) {
    result.tip_hex = gpbft->endorser(0).chain().tip().hash().hex();
  }
  return result;
}

ScaleResult run_point(const ScalePoint& point) {
  sim::ExperimentOptions options = sim::default_options();
  if (point.batch_close > 1) {
    options.batch.size = point.batch_close;
    // The engine's per-block ceiling must not clip a batch the close
    // policy formed (default max_batch_size is 32).
    options.engine.batch_size = std::max<std::size_t>(options.engine.batch_size,
                                                      point.batch_close);
  }
  return run_spec(sim::latency_scenario(point.protocol, point.nodes, options));
}

void append_scale_record(const char* series, const ScaleResult& r) {
  const char* path = std::getenv("GPBFT_BENCH_SCALE_JSON");
  if (path == nullptr || path[0] == '\0') return;
  const char* label = std::getenv("GPBFT_BENCH_SCALE_LABEL");
  if (label == nullptr || label[0] == '\0') label = "dev";
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "GPBFT_BENCH_SCALE_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\"bench\":\"bench_scale\",\"build\":\"%s\",\"series\":\"%s\","
               "\"nodes\":%zu,\"committee\":%zu,\"batch_close\":%zu,\"workload\":\"%s\","
               "\"committed\":%llu,"
               "\"sim_seconds\":%.17g,\"sim_events\":%llu,\"wire_messages\":%llu,"
               "\"wall_seconds\":%.3f,\"events_per_sec\":%.0f,\"tip\":\"%s\"}\n",
               label, series, r.experiment.nodes, r.experiment.committee, r.batch_close,
               r.workload,
               static_cast<unsigned long long>(r.experiment.committed), r.experiment.sim_seconds,
               static_cast<unsigned long long>(r.sim_events),
               static_cast<unsigned long long>(r.wire_messages), r.wall_seconds,
               r.events_per_sec(), r.tip_hex.c_str());
  std::fclose(out);
}

int run(bool smoke) {
  std::printf("bench_scale: message-plane throughput, Fig. 3 workload (seed 1)%s\n",
              smoke ? " [smoke]" : "");
  std::printf("%6s %6s %6s %6s %10s %12s %9s %12s %10s  %s\n", "proto", "nodes", "batch", "cmte",
              "committed", "sim events", "wall(s)", "events/sec", "req/s", "tip");
  int failures = 0;
  for (const ScalePoint& point : kPoints) {
    if (smoke && point.nodes != 20) continue;
    const ScaleResult r = run_point(point);
    const char* proto = sim::protocol_name(point.protocol);
    const double committed_per_sec =
        r.experiment.sim_seconds <= 0
            ? 0.0
            : static_cast<double>(r.experiment.committed) / r.experiment.sim_seconds;
    std::printf("%6s %6zu %6zu %6zu %7llu/%-3llu %12llu %9.2f %12.0f %10.3f  %s\n", proto,
                point.nodes, point.batch_close, r.experiment.committee,
                static_cast<unsigned long long>(r.experiment.committed),
                static_cast<unsigned long long>(r.experiment.expected),
                static_cast<unsigned long long>(r.sim_events), r.wall_seconds, r.events_per_sec(),
                committed_per_sec, r.tip_hex.c_str());
    std::string series = std::string("scale.") + proto;
    if (point.batch_close > 1) series += ".batch" + std::to_string(point.batch_close);
    append_json_record(series.c_str(), r.experiment, 1);
    append_scale_record(series.c_str(), r);
    if (r.tip_hex != point.golden_tip) {
      std::fprintf(stderr,
                   "bench_scale: GOLDEN HASH MISMATCH for %s n=%zu batch=%zu\n"
                   "  expected %s\n  actual   %s\n",
                   proto, point.nodes, point.batch_close, point.golden_tip, r.tip_hex.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_scale: %d golden-hash mismatch(es) — the message plane changed "
                 "observable behaviour (see docs/performance.md)\n",
                 failures);
    return 1;
  }
  std::printf("bench_scale: golden hashes OK\n");
  return 0;
}

// --- parallel MAC plane sweep (--threads-sweep) --------------------------------

// The worker-pool showcase: the Fig. 3 PBFT n=202 point with MACs ON —
// the authenticated configuration the paper's threat model assumes — run
// at 1, 2, 4 and 8 total threads. Every HMAC seal/verify rides the ordered
// sequencer, so the tip must be byte-identical across the sweep (enforced
// here, not just in the test suite); wall-clock is the only thing allowed
// to move. Recorded as scale.pbft.macs202.tN rows in BENCH_scale.json.
int run_threads_sweep() {
  std::printf("bench_scale --threads-sweep: PBFT n=202, MACs on, Fig. 3 workload (seed 1)\n");
  std::printf("%8s %10s %12s %9s %12s %9s  %s\n", "threads", "committed", "sim events",
              "wall(s)", "events/sec", "speedup", "tip");
  sim::ExperimentOptions options = sim::default_options();
  options.engine.compute_macs = true;
  sim::ScenarioSpec spec = sim::latency_scenario(sim::ProtocolKind::Pbft, 202, options);

  int failures = 0;
  std::string baseline_tip;
  double baseline_wall = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    spec.threads = threads;
    const ScaleResult r = run_spec(spec);
    if (threads == 1) {
      baseline_tip = r.tip_hex;
      baseline_wall = r.wall_seconds;
    } else if (r.tip_hex != baseline_tip) {
      std::fprintf(stderr,
                   "bench_scale --threads-sweep: NONDETERMINISM at threads=%zu\n"
                   "  threads=1 tip %s\n  threads=%zu tip %s\n",
                   threads, baseline_tip.c_str(), threads, r.tip_hex.c_str());
      ++failures;
    }
    const double speedup = r.wall_seconds <= 0 ? 0.0 : baseline_wall / r.wall_seconds;
    std::printf("%8zu %10llu %12llu %9.2f %12.0f %8.2fx  %s\n", threads,
                static_cast<unsigned long long>(r.experiment.committed),
                static_cast<unsigned long long>(r.sim_events), r.wall_seconds,
                r.events_per_sec(), speedup, r.tip_hex.c_str());
    const std::string series = "scale.pbft.macs202.t" + std::to_string(threads);
    append_json_record(series.c_str(), r.experiment, 1);
    append_scale_record(series.c_str(), r);
  }
  if (failures > 0) return 1;
  std::printf("bench_scale --threads-sweep: tips byte-identical across thread counts\n");
  return 0;
}

// --- million-device workload-plane smoke (--plane) -----------------------------

double plane_budget_seconds() {
  const char* env = std::getenv("GPBFT_PLANE_BUDGET_SECS");
  if (env == nullptr || env[0] == '\0') return 120.0;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (errno == ERANGE || end == env || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "GPBFT_PLANE_BUDGET_SECS=\"%s\" is not a positive number\n", env);
    std::exit(2);
  }
  return parsed;
}

/// The 10^6-device diurnal scenario: 20 PBFT replicas, 8 concrete client
/// endpoints, batched pipeline. Aggregate peak = devices * rate = 1000
/// req/s over a 60 s generation window.
sim::ScenarioSpec plane_scenario() {
  sim::ExperimentOptions options = sim::default_options();
  options.batch.size = 32;
  sim::ScenarioSpec spec = sim::latency_scenario(sim::ProtocolKind::Pbft, 20, options);
  spec.clients = 8;
  spec.workload.mode = sim::WorkloadMode::Plane;
  spec.workload.devices = 1'000'000;
  spec.workload.arrival = sim::ArrivalProcess::Diurnal;
  spec.workload.rate_hz = 0.001;
  spec.workload.horizon = Duration::seconds(60);
  spec.workload.diurnal_period = Duration::seconds(120);
  return spec;
}

ScaleResult run_plane_once(const sim::ScenarioSpec& spec) {
  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  const auto wall_start = std::chrono::steady_clock::now();
  deployment->start();
  sim::LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);
  deployment->run_until_committed(0, TimePoint{spec.deadline.ns});
  const double sim_seconds = deployment->simulator().now().to_seconds();  // time-to-done
  deployment->stop();
  deployment->simulator().run();
  const auto wall_end = std::chrono::steady_clock::now();

  ScaleResult result;
  result.experiment.nodes = spec.nodes;
  result.experiment.committee = deployment->committee_size();
  result.experiment.latency_samples = recorder.samples();
  result.experiment.latency = recorder.boxplot();
  result.experiment.committed = deployment->committed_count();
  result.experiment.expected = deployment->plane()->submitted();
  result.experiment.consensus_kb = sim::consensus_kilobytes(deployment->stats());
  result.experiment.total_kb = deployment->stats().total_kilobytes();
  result.experiment.sim_seconds = sim_seconds;
  result.sim_events = deployment->simulator().events_processed();
  result.wire_messages = deployment->stats().total_messages;
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start).count();
  result.batch_close = spec.batch.size;
  result.workload = "plane";
  auto* pbft = dynamic_cast<sim::PbftCluster*>(deployment.get());
  result.tip_hex = pbft->replica(0).chain().tip().hash().hex();
  return result;
}

int run_plane() {
  const double budget = plane_budget_seconds();
  const sim::ScenarioSpec spec = plane_scenario();
  std::printf(
      "bench_scale --plane: %llu-device diurnal WorkloadPlane over %zu endpoints "
      "(PBFT n=%zu, batch=%zu, seed %llu), double run\n",
      static_cast<unsigned long long>(spec.workload.devices), spec.clients, spec.nodes,
      spec.batch.size, static_cast<unsigned long long>(spec.seed));
  std::printf("%4s %10s %12s %9s %12s %10s  %s\n", "run", "committed", "sim events", "wall(s)",
              "events/sec", "req/s", "tip");
  int failures = 0;
  ScaleResult runs[2];
  for (int i = 0; i < 2; ++i) {
    runs[i] = run_plane_once(spec);
    const ScaleResult& r = runs[i];
    const double committed_per_sec =
        r.experiment.sim_seconds <= 0
            ? 0.0
            : static_cast<double>(r.experiment.committed) / r.experiment.sim_seconds;
    std::printf("%4d %4llu/%-5llu %12llu %9.2f %12.0f %10.3f  %s\n", i + 1,
                static_cast<unsigned long long>(r.experiment.committed),
                static_cast<unsigned long long>(r.experiment.expected),
                static_cast<unsigned long long>(r.sim_events), r.wall_seconds, r.events_per_sec(),
                committed_per_sec, r.tip_hex.c_str());
    if (r.wall_seconds > budget) {
      std::fprintf(stderr, "bench_scale --plane: run %d took %.2f s (budget %.0f s)\n", i + 1,
                   r.wall_seconds, budget);
      ++failures;
    }
    if (r.experiment.committed == 0 || r.experiment.committed < r.experiment.expected) {
      std::fprintf(stderr,
                   "bench_scale --plane: run %d committed %llu of %llu submissions\n", i + 1,
                   static_cast<unsigned long long>(r.experiment.committed),
                   static_cast<unsigned long long>(r.experiment.expected));
      ++failures;
    }
  }
  if (runs[0].tip_hex != runs[1].tip_hex ||
      runs[0].experiment.committed != runs[1].experiment.committed ||
      runs[0].sim_events != runs[1].sim_events) {
    std::fprintf(stderr,
                 "bench_scale --plane: NONDETERMINISM — same-seed runs disagree\n"
                 "  run 1: tip %s committed %llu events %llu\n"
                 "  run 2: tip %s committed %llu events %llu\n",
                 runs[0].tip_hex.c_str(),
                 static_cast<unsigned long long>(runs[0].experiment.committed),
                 static_cast<unsigned long long>(runs[0].sim_events), runs[1].tip_hex.c_str(),
                 static_cast<unsigned long long>(runs[1].experiment.committed),
                 static_cast<unsigned long long>(runs[1].sim_events));
    ++failures;
  }
  append_json_record("scale.plane.pbft", runs[0].experiment, spec.seed);
  append_scale_record("scale.plane.pbft", runs[0]);
  if (failures > 0) return 1;
  std::printf("bench_scale --plane: deterministic, %llu committed, within budget\n",
              static_cast<unsigned long long>(runs[0].experiment.committed));
  return 0;
}

}  // namespace
}  // namespace gpbft::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool plane = false;
  bool threads_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--plane") == 0) {
      plane = true;
    } else if (std::strcmp(argv[i], "--threads-sweep") == 0) {
      threads_sweep = true;
    } else {
      std::fprintf(stderr, "usage: bench_scale [--smoke] [--plane] [--threads-sweep]\n");
      return 2;
    }
  }
  if (plane) return gpbft::bench::run_plane();
  if (threads_sweep) return gpbft::bench::run_threads_sweep();
  return gpbft::bench::run(smoke);
}
