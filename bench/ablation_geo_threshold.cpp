// Ablation A3 (DESIGN.md): the geo-report threshold n of Algorithm 1.
//
// A deployment with 6 genuinely fixed candidates and 6 *mobile* devices
// (random walk: relocating every 8 s). Sweep the minimum-report threshold:
// a tiny n lets a briefly-stationary mobile device slip into the committee
// (false promotion); a large n delays or starves legitimate promotions.
#include <memory>
#include <set>

#include "bench_util.hpp"
#include "sim/deployment.hpp"
#include "sim/mobility.hpp"

namespace {

using namespace gpbft;

struct ThresholdResult {
  std::size_t fixed_promoted{0};
  std::size_t mobile_promoted{0};
};

ThresholdResult run_with_threshold(std::size_t min_reports) {
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 16;  // 1..4 core, 5..10 fixed candidates, 11..16 mobile
  spec.clients = 0;
  spec.seed = 5;
  spec.committee.initial = 4;
  spec.committee.min = 4;
  spec.committee.max = 40;
  spec.committee.era_period = Duration::seconds(10);
  spec.geo.report_period = Duration::seconds(2);
  spec.geo.window = Duration::seconds(10);
  spec.geo.min_reports = min_reports;
  spec.geo.promotion_threshold = Duration::seconds(6);
  spec.engine.request_timeout = Duration::seconds(4000);

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);

  // Devices 11..16 are mobile: they hop between disjoint grid slots every
  // 8 s (honest moves — the registry follows).
  sim::Mobility mobility(cluster->simulator(), cluster->area(), cluster->placement());
  for (std::size_t i = 10; i < 16; ++i) {
    mobility.random_hop(cluster->endorser(i), Duration::seconds(8),
                        /*slot_base=*/100 + i * 20, /*slot_count=*/18,
                        /*start=*/Duration::seconds(4));
  }

  cluster->start();

  // Sample the roster as eras pass: a mobile device that slips in is often
  // demoted again shortly after, so count everyone *ever* admitted.
  std::set<std::uint64_t> ever_member;
  while (cluster->simulator().now().to_seconds() < 90.0) {
    cluster->run_for(Duration::millis(500));
    for (const NodeId member : cluster->roster()) ever_member.insert(member.value);
  }
  cluster->stop();

  ThresholdResult result;
  for (std::uint64_t id = 5; id <= 10; ++id) {
    if (ever_member.contains(id)) ++result.fixed_promoted;
  }
  for (std::uint64_t id = 11; id <= 16; ++id) {
    if (ever_member.contains(id)) ++result.mobile_promoted;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation A3: Algorithm 1 report threshold n\n");
  std::printf("(16 nodes: 4 core + 6 fixed candidates + 6 mobile hopping every 8 s;\n");
  std::printf(" reports every 2 s, window 10 s -> ~5 reports per full window)\n");
  std::printf("%4s %17s %18s\n", "n", "fixed promoted/6", "mobile promoted/6");
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    const ThresholdResult result = run_with_threshold(n);
    std::printf("%4zu %17zu %18zu\n", n, result.fixed_promoted, result.mobile_promoted);
    std::fflush(stdout);
  }
  std::printf("(n below window/report-period admits devices stationary for only part of\n"
              " the window — hopping devices slip in between moves; n ~= window/period\n"
              " demands full-window stationarity and shuts them out, at some recall cost\n"
              " for genuinely fixed devices whose reports drop near the window edge)\n");
  return 0;
}
