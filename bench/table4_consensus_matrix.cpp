// Table IV of the paper: comparison between consensus mechanisms.
//
// Four of the rows — PBFT, dBFT, PoW, G-PBFT — are *measured* on the
// implementations in this repository (the paper quotes literature values):
//   speed            — committed transactions per simulated second at the
//                      reference scale (40 nodes)
//   scalability      — mean-latency growth factor when the network grows
//                      from 40 to 202 nodes (flat = High)
//   network overhead — consensus KB for one transaction workload unit
//   computing ovhd   — PoW: hashes per confirmed transaction; BFT family:
//                      MAC operations (2 per message)
// The remaining mechanisms (PoS, DPoS, PoA, PoSpace, PoI, PoB) keep the
// paper's literature assessment — they are not implemented here.
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace gpbft;
  sim::ExperimentOptions options = sim::default_options();
  options.workload.txs_per_client = 6;

  // --- measured rows ---------------------------------------------------------
  std::printf("Table IV: comparison between consensus mechanisms\n\n");
  std::printf("measured on this repository (40 -> 202 nodes, constant-frequency workload):\n");
  std::printf("%-8s %10s %14s %14s %16s\n", "protocol", "tx/s@40", "lat x(40->202)",
              "KB/tx @202", "compute/tx");

  const auto tps = [](const sim::ExperimentResult& r) {
    return static_cast<double>(r.committed) / std::max(r.sim_seconds, 1e-9);
  };

  // PBFT
  const sim::ExperimentResult pbft40 = sim::run_pbft_latency(40, options);
  const sim::ExperimentResult pbft202 = sim::run_pbft_latency(202, options);
  const sim::ExperimentResult pbft_cost = sim::run_pbft_single_tx(202, options);
  bench::append_json_record("table4.pbft.40", pbft40, options.seed);
  bench::append_json_record("table4.pbft.202", pbft202, options.seed);
  bench::append_json_record("table4.pbft.cost", pbft_cost, options.seed);
  std::printf("%-8s %10.1f %13.1fx %14.1f %16s\n", "PBFT", tps(pbft40),
              pbft202.latency.mean / std::max(pbft40.latency.mean, 1e-9),
              pbft_cost.consensus_kb, "~2 MAC/msg");

  // dBFT
  sim::ExperimentOptions dbft_options = options;
  dbft_options.workload.txs_per_client = 3;  // 15 s pacing: keep runs bounded
  const sim::ExperimentResult dbft40 = sim::run_dbft_latency(40, dbft_options);
  const sim::ExperimentResult dbft202 = sim::run_dbft_latency(202, dbft_options);
  bench::append_json_record("table4.dbft.40", dbft40, dbft_options.seed);
  bench::append_json_record("table4.dbft.202", dbft202, dbft_options.seed);
  std::printf("%-8s %10.1f %13.1fx %14.1f %16s\n", "dBFT", tps(dbft40),
              dbft202.latency.mean / std::max(dbft40.latency.mean, 1e-9),
              dbft202.consensus_kb / std::max<double>(1.0, static_cast<double>(dbft202.committed)),
              "~2 MAC/msg");

  // PoW
  sim::ExperimentOptions pow_options = options;
  pow_options.workload.txs_per_client = 2;
  pow_options.hard_deadline = Duration::seconds(4000);
  const sim::ExperimentResult pow40 = sim::run_pow_latency(40, pow_options);
  const sim::ExperimentResult pow202 = sim::run_pow_latency(202, pow_options);
  bench::append_json_record("table4.pow.40", pow40, pow_options.seed);
  bench::append_json_record("table4.pow.202", pow202, pow_options.seed);
  std::printf("%-8s %10.1f %13.1fx %14.1f %11.2e hash\n", "PoW", tps(pow40),
              pow202.latency.mean / std::max(pow40.latency.mean, 1e-9),
              pow202.total_kb / std::max<double>(1.0, static_cast<double>(pow202.committed)),
              pow202.hashes_computed / std::max<double>(1.0, static_cast<double>(pow202.committed)));

  // G-PBFT
  const sim::ExperimentResult gpbft40 = sim::run_gpbft_latency(40, options);
  const sim::ExperimentResult gpbft202 = sim::run_gpbft_latency(202, options);
  const sim::ExperimentResult gpbft_cost = sim::run_gpbft_single_tx(202, options);
  bench::append_json_record("table4.gpbft.40", gpbft40, options.seed);
  bench::append_json_record("table4.gpbft.202", gpbft202, options.seed);
  bench::append_json_record("table4.gpbft.cost", gpbft_cost, options.seed);
  std::printf("%-8s %10.1f %13.1fx %14.1f %16s\n", "G-PBFT", tps(gpbft40),
              gpbft202.latency.mean / std::max(gpbft40.latency.mean, 1e-9),
              gpbft_cost.consensus_kb, "~2 MAC/msg");

  // --- the paper's qualitative matrix ------------------------------------------
  struct Row {
    const char* name;
    const char* type;
    const char* speed;
    const char* scalability;
    const char* net_overhead;
    const char* compute_overhead;
    const char* adversary;
    const char* example;
  };
  const Row rows[] = {
      {"BFT", "Permissioned", "High", "Low", "High", "Low", "<33.3% Replicas", "Tendermint"},
      {"PBFT", "Permissioned", "High", "Low", "High", "Low", "<33.3% Faulty Replicas",
       "this repo (measured)"},
      {"dBFT", "Permissioned", "Low", "High", "High", "Low", "<33.3% Faulty Replicas",
       "this repo (measured)"},
      {"PoW", "Permissionless", "Low", "Low", "High", "High", "<25% Computing Power",
       "this repo (measured)"},
      {"PoS", "Permissionless", "Low", "Low", "High", "Low", "<50% Stake", "Peercoin"},
      {"DPoS", "Permissionless", "High", "Low", "Low", "Low", "<50% Validators", "BitShares"},
      {"PoA", "Permissionless", "Low", "High", "Low", "Low", "<50% of Online Stake", "Decred"},
      {"PoSpace", "Permissionless", "Low", "Low", "High", "Low", "<50% Space", "SpaceMint"},
      {"PoI", "Permissionless", "Low", "Low", "High", "Low", "<50% Stake", "NEM"},
      {"PoB", "Permissionless", "Low", "Low", "High", "Low", "<50% Coins", "XCP"},
      {"G-PBFT", "Permissionless", "High", "High", "Low", "Low", "<33.3% Endorsers",
       "this repo (measured)"},
  };
  std::printf("\n%-8s %-14s %-6s %-12s %-9s %-9s %-24s %s\n", "Consensus", "Type", "Speed",
              "Scalability", "NetOvhd", "CompOvhd", "Adversary Tolerance", "Example");
  for (const Row& row : rows) {
    std::printf("%-8s %-14s %-6s %-12s %-9s %-9s %-24s %s\n", row.name, row.type, row.speed,
                row.scalability, row.net_overhead, row.compute_overhead, row.adversary,
                row.example);
  }
  return 0;
}
