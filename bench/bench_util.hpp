// Shared helpers for the figure/table harnesses.
//
// Environment knobs:
//   GPBFT_BENCH_RUNS   seeded repetitions per point for Fig. 3 (default 3;
//                      the paper used 10 — raise it when you have the time)
//   GPBFT_BENCH_QUICK  when set (non-empty), use a coarse node grid so the
//                      whole suite finishes in about a minute
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace gpbft::bench {

inline std::size_t runs_per_point() {
  if (const char* env = std::getenv("GPBFT_BENCH_RUNS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 3;
}

inline bool quick_mode() {
  const char* env = std::getenv("GPBFT_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// The paper's x-axis: 4 to 202 nodes (Fig. 3/5).
inline std::vector<std::size_t> node_grid() {
  if (quick_mode()) return {4, 22, 40, 76, 130, 202};
  return {4, 22, 40, 58, 76, 94, 112, 130, 148, 166, 184, 202};
}

/// Extended grid for Figs. 4/6 ("further increase the number of nodes");
/// the PBFT series stops at 202 — "PBFT network cannot work at all when the
/// number of nodes is larger than 202" — while G-PBFT continues.
inline std::vector<std::size_t> extended_grid() {
  if (quick_mode()) return {4, 40, 130, 202, 244, 286};
  return {4, 22, 40, 58, 76, 94, 112, 130, 148, 166, 184, 202, 223, 244, 265, 286};
}

inline void print_boxplot_header(const char* title) {
  std::printf("%s\n", title);
  std::printf("%6s %9s %9s %9s %9s %9s %9s %6s %10s\n", "nodes", "min(s)", "q1(s)", "med(s)",
              "q3(s)", "max(s)", "mean(s)", "cmte", "committed");
}

inline void print_boxplot_row(const sim::ExperimentResult& r) {
  std::printf("%6zu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %6zu %5llu/%llu\n", r.nodes,
              r.latency.min, r.latency.q1, r.latency.median, r.latency.q3, r.latency.max,
              r.latency.mean, r.committee, static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.expected));
}

}  // namespace gpbft::bench
