// Shared helpers for the figure/table harnesses.
//
// Environment knobs (documented in EXPERIMENTS.md):
//   GPBFT_BENCH_RUNS   seeded repetitions per point for Fig. 3 (default 3;
//                      the paper used 10 — raise it when you have the time).
//                      Must be a positive integer with no trailing junk;
//                      anything else aborts loudly instead of silently
//                      benchmarking the wrong configuration.
//   GPBFT_BENCH_QUICK  when set (non-empty), use a coarse node grid so the
//                      whole suite finishes in about a minute
//   GPBFT_BENCH_JSON   when set, append one JSON record per measured point
//                      (protocol, nodes, committee, boxplot stats, KB on
//                      wire, per-phase consensus means, seed) to the named
//                      file — deterministic given the same build and knobs
#pragma once

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace gpbft::bench {

inline std::size_t runs_per_point() {
  const char* env = std::getenv("GPBFT_BENCH_RUNS");
  if (env == nullptr || env[0] == '\0') return 3;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (errno == ERANGE || end == env || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "GPBFT_BENCH_RUNS=\"%s\" is not a positive integer\n", env);
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

inline bool quick_mode() {
  const char* env = std::getenv("GPBFT_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// The paper's x-axis: 4 to 202 nodes (Fig. 3/5).
inline std::vector<std::size_t> node_grid() {
  if (quick_mode()) return {4, 22, 40, 76, 130, 202};
  return {4, 22, 40, 58, 76, 94, 112, 130, 148, 166, 184, 202};
}

/// Extended grid for Figs. 4/6 ("further increase the number of nodes");
/// the PBFT series stops at 202 — "PBFT network cannot work at all when the
/// number of nodes is larger than 202" — while G-PBFT continues.
inline std::vector<std::size_t> extended_grid() {
  if (quick_mode()) return {4, 40, 130, 202, 244, 286};
  return {4, 22, 40, 58, 76, 94, 112, 130, 148, 166, 184, 202, 223, 244, 265, 286};
}

inline void print_boxplot_header(const char* title) {
  std::printf("%s\n", title);
  std::printf("%6s %9s %9s %9s %9s %9s %9s %6s %10s\n", "nodes", "min(s)", "q1(s)", "med(s)",
              "q3(s)", "max(s)", "mean(s)", "cmte", "committed");
}

inline void print_boxplot_row(const sim::ExperimentResult& r) {
  std::printf("%6zu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %6zu %5llu/%llu\n", r.nodes,
              r.latency.min, r.latency.q1, r.latency.median, r.latency.q3, r.latency.max,
              r.latency.mean, r.committee, static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.expected));
}

/// GPBFT_BENCH_JSON: appends one self-contained JSON line per measured
/// point. `series` names the figure/table series ("fig3a.pbft", ...).
/// Doubles use %.17g so records round-trip exactly; identical runs append
/// identical bytes.
inline void append_json_record(const char* series, const sim::ExperimentResult& r,
                               std::uint64_t seed) {
  const char* path = std::getenv("GPBFT_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* out = std::fopen(path, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "GPBFT_BENCH_JSON: cannot open %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\"series\":\"%s\",\"seed\":%llu,\"nodes\":%zu,\"committee\":%zu,"
               "\"samples\":%zu,\"latency\":{\"min\":%.17g,\"q1\":%.17g,\"median\":%.17g,"
               "\"q3\":%.17g,\"max\":%.17g,\"mean\":%.17g},\"consensus_kb\":%.17g,"
               "\"total_kb\":%.17g,\"committed\":%llu,\"expected\":%llu,"
               "\"era_switches\":%llu,\"hashes\":%.17g,"
               "\"phases\":{\"prepare_mean\":%.17g,\"commit_mean\":%.17g,"
               "\"execute_mean\":%.17g,\"blocks\":%llu}}\n",
               series, static_cast<unsigned long long>(seed), r.nodes, r.committee,
               r.latency_samples.size(), r.latency.min, r.latency.q1, r.latency.median,
               r.latency.q3, r.latency.max, r.latency.mean, r.consensus_kb, r.total_kb,
               static_cast<unsigned long long>(r.committed),
               static_cast<unsigned long long>(r.expected),
               static_cast<unsigned long long>(r.era_switches), r.hashes_computed,
               r.phases.prepare_mean(), r.phases.commit_mean(), r.phases.execute_mean(),
               static_cast<unsigned long long>(r.phases.blocks));
  std::fclose(out);
}

}  // namespace gpbft::bench
