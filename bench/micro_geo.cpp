// Micro-benchmarks: geohash, haversine, CSC, election table.
#include <benchmark/benchmark.h>

#include "crypto/address.hpp"
#include "geo/csc.hpp"
#include "geo/election_table.hpp"
#include "geo/geohash.hpp"

namespace {

using namespace gpbft;
using namespace gpbft::geo;

void BM_GeohashEncode(benchmark::State& state) {
  const GeoPoint point{22.3964, 114.1095};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geohash_encode(point, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_GeohashEncode)->Arg(5)->Arg(12);

void BM_GeohashDecode(benchmark::State& state) {
  const std::string hash = geohash_encode(GeoPoint{22.3964, 114.1095}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geohash_decode(hash));
  }
}
BENCHMARK(BM_GeohashDecode);

void BM_Haversine(benchmark::State& state) {
  const GeoPoint a{22.3964, 114.1095}, b{30.5928, 114.3055};
  for (auto _ : state) {
    benchmark::DoNotOptimize(haversine_meters(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_CscConstruction(benchmark::State& state) {
  const GeoPoint point{22.3964, 114.1095};
  const crypto::Address address = crypto::address_for_node(NodeId{7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Csc(point, address));
  }
}
BENCHMARK(BM_CscConstruction);

void BM_ElectionTableRecord(benchmark::State& state) {
  ElectionTable table;
  const Csc csc(GeoPoint{22.3964, 114.1095}, crypto::address_for_node(NodeId{1}));
  std::int64_t t = 0;
  for (auto _ : state) {
    table.record(NodeId{static_cast<std::uint64_t>(t % 200)}, csc, TimePoint{t});
    t += 1'000'000;
  }
}
BENCHMARK(BM_ElectionTableRecord);

void BM_ElectionWindowQuery(benchmark::State& state) {
  ElectionTable table;
  const Csc csc(GeoPoint{22.3964, 114.1095}, crypto::address_for_node(NodeId{1}));
  for (int i = 0; i < 200; ++i) {
    table.record(NodeId{1}, csc, TimePoint{Duration::seconds(i).ns});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.reports_in_window(
        NodeId{1}, TimePoint{Duration::seconds(200).ns}, Duration::seconds(60)));
  }
}
BENCHMARK(BM_ElectionWindowQuery);

}  // namespace
