// gpbft_cli — command-line front end for the simulation harness.
//
// Runs any of the four implemented consensus protocols against the paper's
// workloads without writing C++:
//
//   gpbft_cli latency --protocol gpbft --nodes 202
//   gpbft_cli cost    --protocol pbft  --nodes 130
//   gpbft_cli sweep   --protocol gpbft --nodes 4,40,130,202 --runs 3 --csv
//   gpbft_cli chaos   --seeds 20 --intensity all
//   gpbft_cli run     --scenario deployment.scenario --trace-out t.json
//   gpbft_cli report  --scenario deployment.scenario
//
// Commands:
//   latency  constant-frequency workload; per-transaction commit latency
//   cost     single transaction; bytes on the wire
//   sweep    latency over a comma-separated node grid
//   chaos    seeded fault-injection campaign (seeds x intensities x
//            protocols) with the online invariant monitor attached; prints
//            a deterministic pass/fail report and exits non-zero on any
//            violation
//   run      one deployment described by a declarative scenario file
//            (key=value; see sim/scenario.hpp). When the scenario's chaos
//            intensity is not "none", a seeded fault plan is injected and
//            the invariant report printed (non-zero exit on violations).
//            --metrics-out writes the telemetry registry as JSONL;
//            --trace-out enables causal tracing and writes a Chrome/
//            Perfetto trace.json (both byte-identical for identical seeds).
//   report   like run, but also pretty-prints the telemetry rollup
//            (per-family counter totals, histogram means) after the run;
//            with --trace-out it additionally prints the commit
//            critical-path breakdown derived from the trace.
//   profile  like run, but with the wall-clock profiler enabled: prints
//            the probe hotspot table (exclusive wall time per site), the
//            commit critical-path phase breakdown and the slowest
//            requests. --profile-out writes the probe call tree as JSON;
//            --collapsed-out writes Brendan-Gregg collapsed stacks for
//            flamegraph.pl / speedscope. Profiling reads only the host's
//            steady clock: the run's chain tip, metrics and trace exports
//            are byte-identical to an unprofiled same-seed run.
//
// Common options (defaults = the calibrated values of DESIGN.md §4):
//   --protocol pbft|gpbft|dbft|pow   --nodes N[,N...]   --seed S
//   --txs K          transactions per client        (12)
//   --period SEC     proposal period per client     (5)
//   --rate S         node processing rate, msgs/s   (160)
//   --batch B        block batch size ceiling       (32)
//   --batch-close N  consensus batch close size     (1 = unbatched)
//   --batch-timeout SEC  partial-batch deadline     (0.25)
//   --max-committee C   G-PBFT committee cap        (40)
//   --era-period SEC    G-PBFT era switch period    (30)
//   --runs R         seeded repetitions (sweep)     (1)
//   --csv            machine-readable output
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/profiler.hpp"
#include "sim/chaos.hpp"
#include "sim/experiment.hpp"
#include "sim/workload_plane.hpp"

namespace {

using namespace gpbft;

struct CliOptions {
  std::string command;
  std::string protocol = "gpbft";
  std::vector<std::size_t> nodes = {40};
  std::size_t runs = 1;
  bool csv = false;
  sim::ExperimentOptions experiment = sim::default_options();
  std::string intensity = "all";  // chaos: light|medium|heavy|all
  std::size_t seeds = 10;         // chaos: seeds per (protocol, intensity)
  double restart_chance = 0.0;    // chaos: crash-restart-from-disk chance per step
  double disk_fault_chance = 0.0; // chaos: disk corruption chance per step
  bool attack_election = false;   // chaos: election-attack pack (G-PBFT)
  bool stock_election = false;    // chaos: keep the stock geo-timer election
  bool tamper = false;            // chaos: wire-tamper storm (Replace-mode adversary)
  bool reject_safe = false;       // chaos: REJECT-SAFE clean/Inject tip-identity pairs
  double tamper_chance = 0.0;     // chaos: tamper-window chance per step (0 = default)
  std::string scenario_path;      // run: scenario file
  std::string trace_out;          // run/report: Perfetto trace destination
  std::string metrics_out;        // run/report: metrics JSONL destination
  std::string profile_out;        // profile: probe call tree JSON
  std::string collapsed_out;      // profile: collapsed-stack flamegraph input
  std::size_t top = 15;           // profile/report: hotspot table rows
  std::size_t threads = 1;        // run/report: host threads (1 = single-threaded)
  bool protocol_set = false;      // chaos/run defaults when unset
  bool seed_set = false;          // run keeps the file's seed when unset
  bool txs_set = false;           // chaos keeps its own default when unset
  bool threads_set = false;       // run keeps the file's sim.threads when unset
};

void print_usage() {
  std::fprintf(stderr,
               "usage: gpbft_cli <latency|cost|sweep|chaos|run|report|profile> [options]\n"
               "  --protocol pbft|gpbft|dbft|pow   consensus to run (default gpbft)\n"
               "  --nodes N[,N...]                 network sizes (default 40)\n"
               "  --seed S --txs K --period SEC --rate S --batch B\n"
               "  --batch-close N --batch-timeout SEC\n"
               "  --max-committee C --era-period SEC --runs R --csv\n"
               "chaos options:\n"
               "  --protocol pbft|gpbft|dbft|pow|all  protocols to torture (default all)\n"
               "  --seeds N                        seeds per protocol x intensity (default 10)\n"
               "  --intensity light|medium|heavy|all  fault intensity (default all)\n"
               "  --nodes N                        committee size (default 7)\n"
               "  --restarts P                     crash-restart-from-disk chance per step\n"
               "  --disk-faults P                  disk corruption chance per step\n"
               "  --attack-election                election-attack pack (Sybil floods, targeted\n"
               "                                   crashes, mobility oscillation) with the\n"
               "                                   reputation-weighted election; G-PBFT only\n"
               "                                   unless --protocol says otherwise\n"
               "  --stock-election                 with --attack-election: keep the stock\n"
               "                                   geo-timer election (expected to fail)\n"
               "  --tamper                         wire-tamper storm: an in-flight adversary\n"
               "                                   flips bits, truncates/extends, retypes,\n"
               "                                   oversizes and replays messages (MITM mode)\n"
               "  --tamper-chance P                tamper-window chance per step\n"
               "  --reject-safe                    REJECT-SAFE pairs: each seed runs clean and\n"
               "                                   under a man-on-the-side Inject storm; with\n"
               "                                   MACs on the chain tips must be identical\n"
               "  --seed S --txs K\n"
               "run/report/profile options:\n"
               "  --scenario FILE                  declarative scenario (key=value)\n"
               "  --protocol P --seed S            override the file's values\n"
               "  --trace-out FILE                 enable tracing, write Perfetto trace.json\n"
               "  --metrics-out FILE               write the metrics registry as JSONL\n"
               "  --threads N                      host threads for the MAC plane (default\n"
               "                                   1 = single-threaded; results identical)\n"
               "profile options:\n"
               "  --profile-out FILE               write the probe call tree as JSON\n"
               "  --collapsed-out FILE             write collapsed stacks (flamegraph input)\n"
               "  --top N                          hotspot/slowest-request table rows (15)\n");
}

std::vector<std::size_t> parse_node_list(const std::string& arg) {
  std::vector<std::size_t> nodes;
  std::size_t start = 0;
  while (start < arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string token =
        arg.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    const long value = std::strtol(token.c_str(), nullptr, 10);
    if (value > 0) nodes.push_back(static_cast<std::size_t>(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return nodes;
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  if (argc < 2) return false;
  options.command = argv[1];
  if (options.command != "latency" && options.command != "cost" && options.command != "sweep" &&
      options.command != "chaos" && options.command != "run" && options.command != "report" &&
      options.command != "profile") {
    return false;
  }

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--csv") {
      options.csv = true;
      continue;
    }
    if (flag == "--attack-election") {
      options.attack_election = true;
      continue;
    }
    if (flag == "--stock-election") {
      options.stock_election = true;
      continue;
    }
    if (flag == "--tamper") {
      options.tamper = true;
      continue;
    }
    if (flag == "--reject-safe") {
      options.reject_safe = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (flag == "--protocol") {
      options.protocol = value;
      options.protocol_set = true;
    } else if (flag == "--nodes") {
      options.nodes = parse_node_list(value);
      if (options.nodes.empty()) return false;
    } else if (flag == "--seed") {
      options.experiment.seed = std::strtoull(value.c_str(), nullptr, 10);
      options.seed_set = true;
    } else if (flag == "--txs") {
      options.experiment.workload.txs_per_client = std::strtoull(value.c_str(), nullptr, 10);
      options.txs_set = true;
    } else if (flag == "--period") {
      options.experiment.workload.period = Duration::from_seconds(std::atof(value.c_str()));
    } else if (flag == "--rate") {
      options.experiment.net.processing_rate_msgs_per_sec = std::atof(value.c_str());
    } else if (flag == "--batch") {
      options.experiment.engine.batch_size = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--batch-close") {
      options.experiment.batch.size = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--batch-timeout") {
      options.experiment.batch.timeout = Duration::from_seconds(std::strtod(value.c_str(), nullptr));
    } else if (flag == "--max-committee") {
      options.experiment.committee.max = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--era-period") {
      // The promotion window follows the era cadence (Algorithm 1 evaluates
      // one era's worth of reports).
      options.experiment.committee.era_period = Duration::from_seconds(std::atof(value.c_str()));
      options.experiment.geo.window = options.experiment.committee.era_period;
    } else if (flag == "--runs") {
      options.runs = std::strtoull(value.c_str(), nullptr, 10);
      if (options.runs == 0) options.runs = 1;
    } else if (flag == "--seeds") {
      options.seeds = std::strtoull(value.c_str(), nullptr, 10);
      if (options.seeds == 0) options.seeds = 1;
    } else if (flag == "--intensity") {
      options.intensity = value;
    } else if (flag == "--restarts") {
      options.restart_chance = std::atof(value.c_str());
      if (options.restart_chance < 0.0 || options.restart_chance > 1.0) return false;
    } else if (flag == "--disk-faults") {
      options.disk_fault_chance = std::atof(value.c_str());
      if (options.disk_fault_chance < 0.0 || options.disk_fault_chance > 1.0) return false;
    } else if (flag == "--tamper-chance") {
      options.tamper_chance = std::atof(value.c_str());
      if (options.tamper_chance < 0.0 || options.tamper_chance > 1.0) return false;
    } else if (flag == "--scenario") {
      options.scenario_path = value;
    } else if (flag == "--trace-out") {
      options.trace_out = value;
    } else if (flag == "--metrics-out") {
      options.metrics_out = value;
    } else if (flag == "--profile-out") {
      options.profile_out = value;
    } else if (flag == "--collapsed-out") {
      options.collapsed_out = value;
    } else if (flag == "--top") {
      options.top = std::strtoull(value.c_str(), nullptr, 10);
      if (options.top == 0) options.top = 15;
    } else if (flag == "--threads") {
      options.threads = std::strtoull(value.c_str(), nullptr, 10);
      if (options.threads == 0) return false;
      options.threads_set = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (options.command == "chaos") {
    if (!options.protocol_set) options.protocol = "all";
    if (options.protocol != "all" && !sim::protocol_from_name(options.protocol).ok()) {
      return false;
    }
    if (options.intensity != "none" && options.intensity != "light" &&
        options.intensity != "medium" && options.intensity != "heavy" &&
        options.intensity != "all") {
      return false;
    }
    return true;
  }
  if (options.command == "run" || options.command == "report" || options.command == "profile") {
    if (options.scenario_path.empty()) return false;
    if (options.protocol_set && !sim::protocol_from_name(options.protocol).ok()) return false;
    return true;
  }
  if (!sim::protocol_from_name(options.protocol).ok()) return false;
  return true;
}

int run_chaos(const CliOptions& options) {
  sim::ChaosCampaignOptions campaign;
  campaign.seeds = options.seeds;
  campaign.base_seed = options.experiment.seed;
  campaign.committee = options.nodes.empty() ? 7 : options.nodes.front();
  campaign.restart_chance = options.restart_chance;
  campaign.disk_fault_chance = options.disk_fault_chance;
  if (options.txs_set) campaign.txs_per_client = options.experiment.workload.txs_per_client;
  if (options.intensity != "all") campaign.intensities = {options.intensity};
  if (options.protocol != "all") {
    campaign.protocols = {sim::protocol_from_name(options.protocol).value()};
  }
  if (options.attack_election) {
    campaign.sybil_burst_chance = 0.25;
    campaign.targeted_crash_chance = 0.2;
    campaign.oscillate_chance = 0.25;
    campaign.reputation = !options.stock_election;
    // The attacks target the endorser election; torture G-PBFT unless the
    // user named a protocol explicitly.
    if (!options.protocol_set) campaign.protocols = {sim::ProtocolKind::Gpbft};
  }
  if (options.reject_safe) {
    // Clean/Inject pairs at each seed; intensities are ignored ("none" is
    // used so node faults stay out of the tip-identity comparison).
    campaign.tamper_chance = options.tamper_chance;
    const sim::ChaosCampaignResult result = sim::run_tamper_campaign(campaign);
    std::fputs(result.summary().c_str(), stdout);
    return result.failed_runs() == 0 ? 0 : 1;
  }
  if (options.tamper || options.tamper_chance > 0.0) {
    campaign.tamper_chance = options.tamper_chance > 0.0 ? options.tamper_chance : 0.5;
    campaign.tamper_template.mode = net::TamperRule::Mode::Replace;
  }

  const sim::ChaosCampaignResult result = sim::run_chaos_campaign(campaign);
  std::fputs(result.summary().c_str(), stdout);
  return result.failed_runs() == 0 ? 0 : 1;
}

sim::ExperimentResult run_latency(const CliOptions& options, std::size_t nodes) {
  return sim::run_latency(sim::protocol_from_name(options.protocol).value(), nodes,
                          options.experiment);
}

sim::ExperimentResult run_cost(const CliOptions& options, std::size_t nodes) {
  if (options.protocol == "pbft") return sim::run_pbft_single_tx(nodes, options.experiment);
  if (options.protocol == "gpbft") return sim::run_gpbft_single_tx(nodes, options.experiment);
  std::fprintf(stderr, "cost: only pbft/gpbft supported\n");
  std::exit(2);
}

void print_result(const std::string& protocol, bool csv, const sim::ExperimentResult& r) {
  if (csv) {
    std::printf("%s,%zu,%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.3f,%.3f,%llu,%llu,%llu\n",
                protocol.c_str(), r.nodes, r.committee, r.latency.min, r.latency.q1,
                r.latency.median, r.latency.q3, r.latency.max, r.latency.mean, r.consensus_kb,
                r.total_kb, static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.expected),
                static_cast<unsigned long long>(r.era_switches));
    return;
  }
  std::printf("%-6s n=%-4zu committee=%-4zu | latency %s | consensus %.2f KB, total %.2f KB | "
              "%llu/%llu committed",
              protocol.c_str(), r.nodes, r.committee, r.latency.str().c_str(),
              r.consensus_kb, r.total_kb, static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.expected));
  if (r.era_switches > 0) {
    std::printf(" | %llu era switches", static_cast<unsigned long long>(r.era_switches));
  }
  if (r.hashes_computed > 0) std::printf(" | %.2e hashes", r.hashes_computed);
  std::printf("\n");
}

void print_csv_header() {
  std::printf(
      "protocol,nodes,committee,lat_min,lat_q1,lat_med,lat_q3,lat_max,lat_mean,"
      "consensus_kb,total_kb,committed,expected,era_switches\n");
}

/// `run`: one deployment straight from a scenario file.
int run_scenario(const CliOptions& options) {
  std::ifstream file(options.scenario_path);
  if (!file) {
    std::fprintf(stderr, "run: cannot open %s\n", options.scenario_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto parsed = sim::parse_scenario(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "run: %s: %s\n", options.scenario_path.c_str(),
                 parsed.error().c_str());
    return 2;
  }
  sim::ScenarioSpec spec = parsed.value();
  if (options.protocol_set) spec.protocol = sim::protocol_from_name(options.protocol).value();
  if (options.seed_set) spec.seed = options.experiment.seed;
  if (options.threads_set) spec.threads = options.threads;

  const std::unique_ptr<sim::Deployment> deployment = sim::make_deployment(spec);
  const bool profiling = options.command == "profile";
  if (profiling) {
    // The profiler reads the host's steady clock only; it cannot perturb
    // the run. The critical-path analyzer needs the causal trace.
    obs::Profiler::instance().set_enabled(true);
    deployment->telemetry().set_trace_enabled(true);
  }
  if (!options.trace_out.empty()) deployment->telemetry().set_trace_enabled(true);
  sim::InvariantMonitor monitor(deployment->simulator());
  const bool durability =
      spec.chaos.restart_chance > 0.0 || spec.chaos.disk_fault_chance > 0.0;
  const bool attacks = spec.chaos.sybil_burst_chance > 0.0 ||
                       spec.chaos.targeted_crash_chance > 0.0 ||
                       spec.chaos.oscillate_chance > 0.0;
  const bool tampering = spec.chaos.tamper_chance > 0.0;
  const bool chaos = spec.chaos.intensity != "none" || durability || attacks || tampering;
  sim::FaultPlan plan;
  if (chaos) {
    deployment->watch(monitor);
    if (spec.protocol == sim::ProtocolKind::Gpbft) {
      // Floods younger than the audit's lookback window cannot show up as a
      // rate anomaly yet; only older seatings count as violations.
      monitor.set_sybil_detection_grace(spec.geo.window + spec.geo.report_period);
      // The reputation-weighted election claims bounded committee churn;
      // hold it to a convergence bound on era-config application spread.
      if (spec.reputation.enabled) {
        monitor.set_era_convergence_bound(Duration::seconds(30));
      }
    }
    // intensity "none" with durability/attack chances still runs a plan —
    // one whose only families are the explicitly enabled ones.
    sim::ChaosProfile profile = spec.chaos.intensity == "none"
                                    ? sim::ChaosProfile{.crash_chance = 0.0,
                                                        .link_fault_chance = 0.0,
                                                        .brownout_chance = 0.0}
                                    : sim::profile_for(spec.chaos.intensity);
    profile.restart_chance = spec.chaos.restart_chance;
    profile.disk_fault_chance = spec.chaos.disk_fault_chance;
    profile.sybil_burst_chance = spec.chaos.sybil_burst_chance;
    profile.targeted_crash_chance = spec.chaos.targeted_crash_chance;
    profile.oscillate_chance = spec.chaos.oscillate_chance;
    profile.tamper_chance = spec.chaos.tamper_chance;
    profile.tamper_template.mode = spec.chaos.tamper_mode == "inject"
                                       ? net::TamperRule::Mode::Inject
                                       : net::TamperRule::Mode::Replace;
    const std::vector<NodeId> victims = deployment->fault_targets();
    profile.max_faulty = victims.empty() ? 0 : (victims.size() - 1) / 3;
    if (spec.protocol == sim::ProtocolKind::Pow) {
      profile.byzantine_chance = 0.0;
      // PoW client requests carry no end-to-end authenticator; tampering
      // them forges workload, not wire noise (see run_protocol_chaos).
      profile.tamper_template.spare_types.push_back(pbft::msg_type::kClientRequest);
      if (profile.tamper_template.mode == net::TamperRule::Mode::Inject) {
        profile.tamper_template.spare_types.push_back(pow::kPowBlock);
      }
    }
    plan = sim::FaultPlan::random(spec.seed, profile, victims, spec.chaos.horizon);
    sim::FaultPlan::ChaosHandlers handlers;
    handlers.set_byzantine = [&deployment, &monitor](NodeId id, pbft::FaultMode mode) {
      deployment->set_fault_mode(id, mode);
      // Sybil report floods stay honest on the consensus plane; the node is
      // still held to agreement but marked for the no-Sybil-seated check.
      monitor.set_faulty(id, mode != pbft::FaultMode::None &&
                                 mode != pbft::FaultMode::SybilGeoReports);
      monitor.note_sybil(id, mode == pbft::FaultMode::SybilGeoReports);
    };
    handlers.resolve_target = [&deployment]() { return deployment->latest_elected(); };
    handlers.oscillate = [&deployment](NodeId id, bool displaced) {
      deployment->displace_node(id, displaced);
    };
    handlers.restart = [&deployment](NodeId id) { (void)deployment->restart_node(id); };
    handlers.disk_fault = [&deployment](NodeId id, sim::DiskFaultKind kind) {
      deployment->inject_disk_fault(id, kind);
    };
    handlers.hook = [&monitor](const sim::ChaosEvent& event) { monitor.note_fault(event.describe()); };
    plan.schedule(deployment->simulator(), deployment->network(), handlers);
  }

  deployment->start();
  sim::LatencyRecorder recorder;
  sim::Deployment::SubmitHook on_submit;
  if (chaos) {
    on_submit = [&monitor](const ledger::Transaction& tx) { monitor.expect_submission(tx); };
  }
  deployment->schedule_workload(spec.workload, &recorder, on_submit);

  TimePoint deadline{spec.deadline.ns};
  if (chaos) {
    deployment->run_for(spec.chaos.horizon);
    deadline = TimePoint{std::max(spec.chaos.horizon.ns, plan.all_healed_at().ns) +
                         spec.chaos.liveness_grace.ns};
  }
  deployment->run_until_committed(spec.workload.txs_per_client, deadline);
  // Give restarted nodes time to finish resyncing the agreed prefix before
  // the convergence check.
  if (monitor.restarts_observed() > 0) deployment->run_for(spec.engine.request_timeout * 3);
  deployment->stop();

  sim::ExperimentResult result;
  result.nodes = spec.nodes;
  result.committee = deployment->committee_size();
  result.latency_samples = recorder.samples();
  result.latency = recorder.boxplot();
  result.committed = deployment->committed_count();
  // Open-loop plane: expect what the arrival process actually generated,
  // not a per-client quota (sim/experiment.cpp does the same).
  result.expected = deployment->plane() != nullptr
                        ? deployment->plane()->submitted()
                        : spec.workload.txs_per_client * spec.clients;
  result.consensus_kb = sim::consensus_kilobytes(deployment->stats());
  result.total_kb = deployment->stats().total_kilobytes();
  result.era_switches = deployment->era_switches();
  result.hashes_computed = deployment->hashes_computed();
  // Invariant verdicts land in the registry/trace, so run the end-of-run
  // checks before the exports are snapshotted.
  if (chaos) {
    deployment->finish_invariants(monitor);
    monitor.check_restart_convergence();
    monitor.check_bounded_liveness(result.committed, result.expected, plan.all_healed_at(),
                                   spec.chaos.liveness_grace);
  }
  deployment->finalize_telemetry();

  if (options.csv) print_csv_header();
  print_result(sim::protocol_name(spec.protocol), options.csv, result);
  if (options.command == "report") {
    std::fputs(deployment->telemetry().metrics().summary().c_str(), stdout);
    if (deployment->telemetry().trace_enabled()) {
      const auto path = obs::CriticalPathReport::analyze(deployment->telemetry().trace());
      std::printf("\n%s", path.phase_table().c_str());
    }
  }
  if (profiling) {
    obs::Profiler& prof = obs::Profiler::instance();
    prof.set_enabled(false);
    std::printf("\ntip %s\n", deployment->tip_hex().c_str());
    std::printf("\n--- wall-clock hotspots (exclusive time) ---\n%s",
                prof.hotspot_table(options.top).c_str());
    const auto path = obs::CriticalPathReport::analyze(deployment->telemetry().trace());
    std::printf("\n--- commit critical path ---\n%s", path.phase_table().c_str());
    std::printf("\n--- slowest requests ---\n%s", path.slowest_table(options.top).c_str());
    if (!options.profile_out.empty() && !prof.write_json(options.profile_out)) {
      std::fprintf(stderr, "cannot write profile to %s\n", options.profile_out.c_str());
      return 2;
    }
    if (!options.collapsed_out.empty() && !prof.write_collapsed(options.collapsed_out)) {
      std::fprintf(stderr, "cannot write collapsed stacks to %s\n",
                   options.collapsed_out.c_str());
      return 2;
    }
  }
  if (!options.trace_out.empty() && !deployment->telemetry().write_trace(options.trace_out)) {
    std::fprintf(stderr, "cannot write trace to %s\n", options.trace_out.c_str());
    return 2;
  }
  if (!options.metrics_out.empty() &&
      !deployment->telemetry().write_metrics_jsonl(options.metrics_out)) {
    std::fprintf(stderr, "cannot write metrics to %s\n", options.metrics_out.c_str());
    return 2;
  }

  if (chaos) {
    std::fputs(monitor.report().c_str(), stdout);
    return monitor.clean() ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) {
    print_usage();
    return 2;
  }

  if (options.command == "chaos") return run_chaos(options);
  if (options.command == "run" || options.command == "report" || options.command == "profile") {
    return run_scenario(options);
  }

  if (options.csv) print_csv_header();

  if (options.command == "latency") {
    for (const std::size_t nodes : options.nodes) {
      print_result(options.protocol, options.csv, run_latency(options, nodes));
    }
    return 0;
  }
  if (options.command == "cost") {
    for (const std::size_t nodes : options.nodes) {
      print_result(options.protocol, options.csv, run_cost(options, nodes));
    }
    return 0;
  }
  // sweep: repeated seeded runs per node count, merged distributions.
  for (const std::size_t nodes : options.nodes) {
    const sim::ExperimentResult merged = sim::repeat_runs(
        [&options](std::size_t n, const sim::ExperimentOptions& experiment) {
          CliOptions point = options;
          point.experiment = experiment;
          return run_latency(point, n);
        },
        nodes, options.experiment, options.runs);
    print_result(options.protocol, options.csv, merged);
  }
  return 0;
}
