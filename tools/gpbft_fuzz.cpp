// Deterministic protocol-fuzzer driver over the fuzz::FuzzTarget registry.
//
// Buildable with any C++20 compiler (no libFuzzer dependency), so it is the
// CI path for corpus replay under sanitizers; the coverage-guided libFuzzer
// entry (gpbft_fuzz_lf, GPBFT_FUZZ=ON + Clang) shares the same targets.
//
//   gpbft_fuzz list
//   gpbft_fuzz corpus <dir>                     regenerate the seed corpus
//   gpbft_fuzz replay <dir> [--target NAME]     run every corpus file
//   gpbft_fuzz mutate [--target NAME] [--seed N] [--iters N]
//
// Everything is deterministic: corpus generation derives its mutants from
// each target's seed input with a per-target forked Rng, and the mutation
// loop is a seeded xoshiro walk — the same seed always explores the same
// inputs, so a CI failure reproduces locally with one command.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "fuzz/targets.hpp"

namespace fs = std::filesystem;
using namespace gpbft;

namespace {

constexpr std::uint64_t kCorpusRngLabel = 0x636f72'707573ull;  // "corpus"

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

bool write_file(const fs::path& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

bool read_file(const fs::path& path, Bytes& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  data.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

/// One random structural mutation. The families mirror net::TamperRule so
/// the unit fuzzer and the in-sim wire adversary probe the same fault
/// space: bit flips, truncation, extension, and length-field lies.
Bytes mutate_once(const Bytes& input, Rng& rng) {
  Bytes out = input;
  switch (rng.uniform(0, 5)) {
    case 0: {  // flip 1..8 bits
      if (out.empty()) break;
      const auto flips = rng.uniform(1, 8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        out[rng.uniform(0, out.size() - 1)] ^= static_cast<std::uint8_t>(
            1u << rng.uniform(0, 7));
      }
      break;
    }
    case 1: {  // truncate to a random prefix
      if (out.empty()) break;
      out.resize(rng.uniform(0, out.size() - 1));
      break;
    }
    case 2: {  // extend with random bytes
      const auto extra = rng.uniform(1, 64);
      for (std::uint64_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
      }
      break;
    }
    case 3: {  // overwrite a run with 0xFF (varint length lies love this)
      if (out.empty()) break;
      const auto at = rng.uniform(0, out.size() - 1);
      const auto len = std::min<std::uint64_t>(rng.uniform(1, 9), out.size() - at);
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(at), len, 0xff);
      break;
    }
    case 4: {  // zero a run
      if (out.empty()) break;
      const auto at = rng.uniform(0, out.size() - 1);
      const auto len = std::min<std::uint64_t>(rng.uniform(1, 16), out.size() - at);
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(at), len, 0x00);
      break;
    }
    case 5: {  // splice: duplicate an internal slice over another position
      if (out.size() < 2) break;
      const auto from = rng.uniform(0, out.size() - 1);
      const auto to = rng.uniform(0, out.size() - 1);
      const auto len = std::min<std::uint64_t>(rng.uniform(1, 32),
                                               out.size() - std::max(from, to));
      if (len > 0 && from != to) {
        const Bytes slice(out.begin() + static_cast<std::ptrdiff_t>(from),
                          out.begin() + static_cast<std::ptrdiff_t>(from + len));
        std::copy(slice.begin(), slice.end(), out.begin() + static_cast<std::ptrdiff_t>(to));
      }
      break;
    }
  }
  return out;
}

/// Deterministic malformed variants of a target's seed input. These (plus
/// the valid seed itself) form the checked-in corpus; every file is run
/// through the target immediately, so generation doubles as a smoke test.
std::vector<std::pair<std::string, Bytes>> corpus_entries(const fuzz::FuzzTarget& target) {
  const Bytes seed = target.seed();
  std::vector<std::pair<std::string, Bytes>> entries;
  entries.emplace_back("000_valid.bin", seed);
  entries.emplace_back("001_empty.bin", Bytes{});
  Bytes half(seed.begin(), seed.begin() + static_cast<std::ptrdiff_t>(seed.size() / 2));
  entries.emplace_back("002_trunc_half.bin", std::move(half));
  if (!seed.empty()) {
    entries.emplace_back("003_trunc_tail.bin", Bytes(seed.begin(), seed.end() - 1));
  }
  Bytes extended = seed;
  extended.insert(extended.end(), 16, 0xff);
  entries.emplace_back("004_extended.bin", std::move(extended));
  entries.emplace_back("005_zeroed.bin", Bytes(seed.size(), 0x00));
  // A huge declared length up front: 5-byte varint claiming ~2^34 bytes.
  Bytes oversize{0xff, 0xff, 0xff, 0xff, 0x3f};
  oversize.insert(oversize.end(), seed.begin(), seed.end());
  entries.emplace_back("006_oversize_len.bin", std::move(oversize));
  // Seeded bit-flip mutants, reproducible per target name.
  Rng rng = Rng(fnv1a(target.name)).fork(kCorpusRngLabel);
  for (int i = 0; i < 8; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "%03d_mutant.bin", 7 + i);
    entries.emplace_back(name, mutate_once(seed, rng));
  }
  return entries;
}

int cmd_list() {
  for (const auto& target : fuzz::targets()) std::printf("%s\n", target.name);
  return 0;
}

int cmd_corpus(const fs::path& root) {
  std::size_t files = 0;
  for (const auto& target : fuzz::targets()) {
    const fs::path dir = root / target.name;
    fs::create_directories(dir);
    for (auto& [name, data] : corpus_entries(target)) {
      target.run(BytesView(data.data(), data.size()));  // totality self-check
      if (!write_file(dir / name, data)) {
        std::fprintf(stderr, "error: cannot write %s\n", (dir / name).c_str());
        return 1;
      }
      ++files;
    }
  }
  std::printf("corpus: wrote %zu files for %zu targets under %s\n", files,
              fuzz::targets().size(), root.c_str());
  return 0;
}

int cmd_replay(const fs::path& root, const std::string& only) {
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "error: corpus directory %s not found\n", root.c_str());
    return 1;
  }
  std::size_t files = 0;
  std::size_t accepted = 0;
  for (const auto& target : fuzz::targets()) {
    if (!only.empty() && only != target.name) continue;
    const fs::path dir = root / target.name;
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      Bytes data;
      if (!read_file(path, data)) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
      }
      accepted += target.run(BytesView(data.data(), data.size())) ? 1 : 0;
      ++files;
    }
  }
  if (files == 0) {
    std::fprintf(stderr, "error: no corpus files matched under %s\n", root.c_str());
    return 1;
  }
  std::printf("replay: %zu files, %zu accepted, %zu rejected, 0 crashes\n", files, accepted,
              files - accepted);
  return 0;
}

int cmd_mutate(const std::string& only, std::uint64_t seed, std::uint64_t iters) {
  std::size_t total = 0;
  std::size_t accepted = 0;
  for (const auto& target : fuzz::targets()) {
    if (!only.empty() && only != target.name) continue;
    Rng rng(seed ^ fnv1a(target.name));
    // Pool of interesting inputs: the valid seed plus its corpus mutants.
    std::vector<Bytes> pool;
    for (auto& [name, data] : corpus_entries(target)) pool.push_back(std::move(data));
    for (std::uint64_t i = 0; i < iters; ++i) {
      Bytes input = pool[rng.uniform(0, pool.size() - 1)];
      const auto rounds = rng.uniform(1, 4);
      for (std::uint64_t r = 0; r < rounds; ++r) input = mutate_once(input, rng);
      const bool ok = target.run(BytesView(input.data(), input.size()));
      accepted += ok ? 1 : 0;
      ++total;
      // Accepted mutants are rare and interesting; keep a bounded pool.
      if (ok && pool.size() < 64) pool.push_back(std::move(input));
    }
  }
  if (total == 0) {
    std::fprintf(stderr, "error: no target named %s\n", only.c_str());
    return 1;
  }
  std::printf("mutate: %zu inputs, %zu accepted, %zu rejected, 0 crashes\n", total, accepted,
              total - accepted);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: gpbft_fuzz list\n"
               "       gpbft_fuzz corpus <dir>\n"
               "       gpbft_fuzz replay <dir> [--target NAME]\n"
               "       gpbft_fuzz mutate [--target NAME] [--seed N] [--iters N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  std::string target;
  std::string dir;
  std::uint64_t seed = 1;
  std::uint64_t iters = 2000;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--target") {
      target = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::strtoull(next(), nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (!target.empty() && fuzz::find_target(target) == nullptr) {
    std::fprintf(stderr, "error: unknown target %s (see `gpbft_fuzz list`)\n", target.c_str());
    return 2;
  }
  if (command == "list") return cmd_list();
  if (command == "corpus") {
    if (dir.empty()) {
      usage();
      return 2;
    }
    return cmd_corpus(dir);
  }
  if (command == "replay") {
    if (dir.empty()) {
      usage();
      return 2;
    }
    return cmd_replay(dir, target);
  }
  if (command == "mutate") return cmd_mutate(target, seed, iters);
  usage();
  return 2;
}
