// libFuzzer entry point over the fuzz::FuzzTarget registry (GPBFT_FUZZ=ON;
// requires Clang — GCC ships no libFuzzer runtime, so CMake gates this
// translation unit on the compiler and CI falls back to the corpus-replay
// driver, gpbft_fuzz, which exercises the same targets).
//
// Target selection is by environment variable, one process per target:
//
//   GPBFT_FUZZ_TARGET=preprepare ./gpbft_fuzz_lf fuzz/corpus/preprepare
//
// Unset defaults to serde_walk (the widest net over the Reader primitives).
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  static const gpbft::fuzz::FuzzTarget* target = [] {
    const char* name = std::getenv("GPBFT_FUZZ_TARGET");
    const auto* found = gpbft::fuzz::find_target(name != nullptr ? name : "serde_walk");
    if (found == nullptr) {
      std::fprintf(stderr, "unknown GPBFT_FUZZ_TARGET=%s (see `gpbft_fuzz list`)\n", name);
      std::abort();
    }
    return found;
  }();
  target->run(gpbft::BytesView(data, size));
  return 0;
}
