// Smart parking lot — the paper's motivating scenario (§I: "a payment
// machine in a parking lot").
//
// Fixed payment machines anchor the blockchain: four form the genesis
// committee, four more are freshly installed and must *earn* endorsement by
// staying put (the 72-hour rule, scaled to simulation time). Cars are
// mobile clients paying parking fees; their transactions carry geographic
// trailers but the cars never qualify as endorsers — they move.
//
//   ./build/examples/smart_parking
#include <cstdio>

#include "sim/cluster.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace gpbft;

  sim::GpbftClusterConfig config;
  config.nodes = 8;              // payment machines (fixed infrastructure)
  config.initial_committee = 4;  // machines 1-4 were installed first
  config.clients = 6;            // cars entering and paying
  config.seed = 7;
  // Scale the era machinery into simulation range: eras every 12 s,
  // location reports every 3 s, promotion after 20 s of stationarity.
  config.protocol.genesis.era_period = Duration::seconds(12);
  config.protocol.genesis.geo_report_period = Duration::seconds(3);
  config.protocol.genesis.geo_window = Duration::seconds(12);
  config.protocol.genesis.min_geo_reports = 2;
  config.protocol.genesis.promotion_threshold = Duration::seconds(20);

  sim::GpbftCluster cluster(config);
  cluster.start();

  std::printf("parking lot online: %zu payment machines, committee of %zu, %zu cars\n\n",
              cluster.endorser_count(), cluster.committee_size(), cluster.client_count());

  // Cars pay every few seconds while the lot operates.
  std::uint64_t payments_committed = 0;
  double total_latency = 0;
  sim::LatencyRecorder recorder;
  sim::WorkloadConfig workload;
  workload.period = Duration::seconds(4);
  workload.count = 8;
  workload.fee = 25;  // parking fee units
  for (std::size_t car = 0; car < cluster.client_count(); ++car) {
    sim::schedule_workload(cluster.simulator(), cluster.client(car),
                           cluster.placement().position(car), workload, car, &recorder);
  }

  // Let the lot run: payments commit, and the new machines earn their
  // endorsement through stationarity.
  for (int tick = 0; tick < 12; ++tick) {
    cluster.run_for(Duration::seconds(5));
    std::printf("t=%3.0fs  era %llu  committee %zu members  payments committed %llu\n",
                cluster.simulator().now().to_seconds(),
                static_cast<unsigned long long>(cluster.era()), cluster.committee_size(),
                static_cast<unsigned long long>([&cluster]() {
                  std::uint64_t total = 0;
                  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
                    total += cluster.client(i).committed_count();
                  }
                  return total;
                }()));
  }
  cluster.run_until_committed(workload.count, TimePoint{Duration::seconds(300).ns});

  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    payments_committed += cluster.client(i).committed_count();
  }
  total_latency = recorder.mean();

  std::printf("\nall %llu payments committed; mean confirmation %.3f s\n",
              static_cast<unsigned long long>(payments_committed), total_latency);

  std::printf("\nfinal committee (production priority order):\n");
  for (const NodeId member : cluster.endorser(0).producer_order()) {
    std::printf("  %s%s\n", member.str().c_str(), member.value > 4 ? "  (earned endorsement)" : "");
  }

  std::printf("\nmachine revenue (70%% producer / 30%% endorsers of each fee):\n");
  for (const NodeId member : cluster.roster()) {
    std::printf("  %s: %lld\n", member.str().c_str(),
                static_cast<long long>(cluster.endorser(0).state().balance_of_node(member)));
  }
  return 0;
}
