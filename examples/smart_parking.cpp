// Smart parking lot — the paper's motivating scenario (§I: "a payment
// machine in a parking lot").
//
// Fixed payment machines anchor the blockchain: four form the genesis
// committee, four more are freshly installed and must *earn* endorsement by
// staying put (the 72-hour rule, scaled to simulation time). Cars are
// mobile clients paying parking fees; their transactions carry geographic
// trailers but the cars never qualify as endorsers — they move.
//
//   ./build/examples/smart_parking
#include <cstdio>
#include <memory>

#include "sim/deployment.hpp"

int main() {
  using namespace gpbft;

  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 8;              // payment machines (fixed infrastructure)
  spec.committee.initial = 4;  // machines 1-4 were installed first
  spec.clients = 6;            // cars entering and paying
  spec.seed = 7;
  // Scale the era machinery into simulation range: eras every 12 s,
  // location reports every 3 s, promotion after 20 s of stationarity.
  spec.committee.era_period = Duration::seconds(12);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  // Cars pay every few seconds while the lot operates.
  spec.workload.period = Duration::seconds(4);
  spec.workload.txs_per_client = 8;
  spec.workload.fee = 25;  // parking fee units

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);
  cluster->start();

  std::printf("parking lot online: %zu payment machines, committee of %zu, %zu cars\n\n",
              cluster->endorser_count(), cluster->committee_size(), cluster->client_count());

  sim::LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);

  // Let the lot run: payments commit, and the new machines earn their
  // endorsement through stationarity.
  for (int tick = 0; tick < 12; ++tick) {
    cluster->run_for(Duration::seconds(5));
    std::printf("t=%3.0fs  era %llu  committee %zu members  payments committed %llu\n",
                cluster->simulator().now().to_seconds(),
                static_cast<unsigned long long>(cluster->era()), cluster->committee_size(),
                static_cast<unsigned long long>(cluster->committed_count()));
  }
  cluster->run_until_committed(spec.workload.txs_per_client,
                               TimePoint{Duration::seconds(300).ns});

  const std::uint64_t payments_committed = cluster->committed_count();
  const double total_latency = recorder.mean();

  std::printf("\nall %llu payments committed; mean confirmation %.3f s\n",
              static_cast<unsigned long long>(payments_committed), total_latency);

  std::printf("\nfinal committee (production priority order):\n");
  for (const NodeId member : cluster->endorser(0).producer_order()) {
    std::printf("  %s%s\n", member.str().c_str(), member.value > 4 ? "  (earned endorsement)" : "");
  }

  std::printf("\nmachine revenue (70%% producer / 30%% endorsers of each fee):\n");
  for (const NodeId member : cluster->roster()) {
    std::printf("  %s: %lld\n", member.str().c_str(),
                static_cast<long long>(cluster->endorser(0).state().balance_of_node(member)));
  }
  return 0;
}
