// Sybil attack demonstration (§IV-A1 of the paper).
//
// An adversary tries to pack the endorser committee three ways:
//   1. fabricated identities claiming positions where no device exists,
//   2. a real device lying about its location (claiming an occupied cell),
//   3. identities reporting from outside the deployment area.
// All are rejected by the geographic authentication, while an honest fixed
// device is promoted normally. The committee never admits an attacker, so
// the <1/3-faulty assumption of PBFT is preserved.
//
//   ./build/examples/sybil_attack
#include <algorithm>
#include <cstdio>
#include <memory>

#include "sim/deployment.hpp"

int main() {
  using namespace gpbft;

  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 9;  // 4 core + 1 honest candidate + 4 attacker-controlled
  spec.committee.initial = 4;
  spec.clients = 0;
  spec.seed = 99;
  spec.committee.era_period = Duration::seconds(10);
  spec.geo.report_period = Duration::seconds(2);
  spec.geo.window = Duration::seconds(10);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(15);

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);

  // Attacker setup. Devices 6-9 are controlled by the adversary.
  //  - device 6: *fabricated* — claims machine 1's cell; physically absent
  //    (remove it from the area registry: no neighbour ever sees it).
  cluster->endorser(5).set_location(cluster->placement().position(0));
  cluster->area().remove(cluster->endorser(5).id());
  //  - device 7: real but *lying* — physically at its own spot, claims the
  //    area center next to machine 2 instead.
  cluster->endorser(6).set_location(cluster->placement().position(1));
  //  - devices 8 and 9: report truthfully but from *outside* the area.
  const geo::GeoPoint outside_a = cluster->placement().outside_position(0);
  const geo::GeoPoint outside_b = cluster->placement().outside_position(3);
  cluster->endorser(7).set_location(outside_a);
  cluster->area().place(cluster->endorser(7).id(), outside_a);
  cluster->endorser(8).set_location(outside_b);
  cluster->area().place(cluster->endorser(8).id(), outside_b);

  cluster->start();
  std::printf("genesis committee: 4 machines; honest candidate: node-5;\n");
  std::printf("attacker identities: node-6 (fabricated), node-7 (lying),\n");
  std::printf("                     node-8/node-9 (outside the area)\n\n");

  for (int tick = 0; tick < 8; ++tick) {
    cluster->run_for(Duration::seconds(5));
    std::printf("t=%3.0fs  era %llu  committee: ",
                cluster->simulator().now().to_seconds(),
                static_cast<unsigned long long>(cluster->era()));
    for (const NodeId member : cluster->roster()) std::printf("%s ", member.str().c_str());
    std::printf("\n");
  }

  const auto& filter = cluster->endorser(0).sybil_filter();
  std::printf("\nSybil filter verdicts at the committee:\n");
  for (std::uint64_t id = 5; id <= 9; ++id) {
    std::printf("  node-%llu: %s\n", static_cast<unsigned long long>(id),
                filter.is_flagged(NodeId{id}) ? "FLAGGED (excluded from election)"
                                              : "clean");
  }

  const auto& roster = cluster->roster();
  const bool honest_in =
      std::find(roster.begin(), roster.end(), NodeId{5}) != roster.end();
  bool any_attacker_in = false;
  for (std::uint64_t id = 6; id <= 9; ++id) {
    any_attacker_in |= std::find(roster.begin(), roster.end(), NodeId{id}) != roster.end();
  }
  std::printf("\nhonest candidate promoted: %s\n", honest_in ? "yes" : "no");
  std::printf("any attacker admitted:     %s\n", any_attacker_in ? "YES (!!)" : "no");
  return any_attacker_in ? 1 : 0;
}
