// Environmental sensor network with on-chain location reports.
//
// A city deploys fixed air-quality sensors. The deployment runs G-PBFT in
// full-fidelity mode (geo.reports_on_chain): every periodic location report
// is a zero-fee transaction, so the election table — the paper's
// chain-based G(v, t) — is reconstructible from blocks alone. The example
// shows a late-joining sensor bootstrapping its entire election table from
// the state transfer, then auditing another device's location history
// straight off the chain.
//
//   ./build/examples/sensor_network
#include <cstdio>
#include <memory>

#include "sim/deployment.hpp"

int main() {
  using namespace gpbft;

  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 8;              // fixed sensors
  spec.committee.initial = 4;  // the first four installed
  spec.clients = 4;            // mobile probes submitting readings
  spec.seed = 12;
  spec.geo.reports_on_chain = true;
  spec.committee.era_period = Duration::seconds(12);
  spec.geo.report_period = Duration::seconds(3);
  spec.geo.window = Duration::seconds(12);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(20);
  spec.workload.period = Duration::seconds(5);
  spec.workload.txs_per_client = 10;

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);
  cluster->start();

  // Mobile probes upload air-quality readings continuously.
  sim::LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);

  cluster->run_for(Duration::seconds(60));
  cluster->run_until_committed(spec.workload.txs_per_client,
                               TimePoint{Duration::seconds(300).ns});

  const std::uint64_t committed = cluster->committed_count();
  std::printf("sensor network: era %llu, committee %zu, %llu readings committed "
              "(mean %.3f s)\n\n",
              static_cast<unsigned long long>(cluster->era()), cluster->committee_size(),
              static_cast<unsigned long long>(committed), recorder.mean());

  // How much of the chain is location reports vs readings?
  const auto& chain = cluster->endorser(0).chain();
  std::size_t reports = 0, readings = 0;
  for (Height h = 1; h <= chain.height(); ++h) {
    for (const auto& tx : chain.at(h).transactions) {
      if (ledger::is_geo_report_tx(tx)) {
        ++reports;
      } else if (tx.kind == ledger::TxKind::Normal) {
        ++readings;
      }
    }
  }
  std::printf("chain: %llu blocks, %zu location reports, %zu sensor readings on chain\n",
              static_cast<unsigned long long>(chain.height()), reports, readings);

  // The late-joining sensor (device 8) rebuilt its election table entirely
  // from chain data during its state transfer.
  const auto& newcomer = cluster->endorser(7);
  std::printf("\ndevice 8 joined in era %llu as %s; its election table knows %zu devices\n",
              static_cast<unsigned long long>(newcomer.era()),
              newcomer.role() == ::gpbft::gpbft::Role::Active ? "an endorser" : "a candidate",
              newcomer.election_table().devices().size());

  // Audit device 1's location history from the newcomer's chain-derived
  // table (the paper's Table II, rebuilt from blocks).
  const NodeId audited = cluster->endorser(0).id();
  std::printf("\naudit of %s from chain-derived data (last rows):\n", audited.str().c_str());
  const std::string table = newcomer.election_table().render(audited);
  // Print only the header and the final few rows to keep the output short.
  std::size_t shown = 0, lines = 0;
  for (const char c : table) {
    if (c == '\n') ++lines;
  }
  std::size_t skip = lines > 6 ? lines - 6 : 0;
  std::size_t line = 0;
  std::string current;
  for (const char c : table) {
    current.push_back(c);
    if (c == '\n') {
      if (line == 0 || line > skip) {
        std::fputs(current.c_str(), stdout);
        ++shown;
      }
      current.clear();
      ++line;
    }
  }
  return committed == spec.workload.txs_per_client * cluster->client_count() ? 0 : 1;
}
