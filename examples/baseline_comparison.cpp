// Baseline shoot-out: the same IoT workload on all four implemented
// consensus protocols — PBFT (whole-network committee), dBFT (7 delegates,
// 15 s block pacing), PoW (Nakamoto mining, 3-confirmation finality) and
// G-PBFT (geographic endorser committee).
//
// This is the paper's §I argument as a single runnable program: PoW burns
// energy and waits for confirmations, dBFT waits for block slots, plain
// PBFT drowns in quadratic traffic as the network grows, and G-PBFT commits
// in milliseconds at bounded cost.
//
//   ./build/examples/baseline_comparison
#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace gpbft;
  constexpr std::size_t kNodes = 30;

  sim::ExperimentOptions options = sim::default_options();
  options.workload.txs_per_client = 2;
  options.workload.period = Duration::seconds(4);
  options.committee.max = 10;
  options.dbft.block_interval = Duration::seconds(15);
  options.pow.block_interval = Duration::seconds(10);
  options.pow.confirmations = 3;
  options.hard_deadline = Duration::seconds(3000);

  std::printf("IoT workload on %zu nodes: %llu devices x %llu transactions each\n\n", kNodes,
              static_cast<unsigned long long>(kNodes),
              static_cast<unsigned long long>(options.workload.txs_per_client));
  std::printf("%-8s %10s %12s %12s %14s %s\n", "protocol", "committee", "mean lat(s)",
              "max lat(s)", "traffic (KB)", "notes");

  const sim::ExperimentResult pbft = sim::run_pbft_latency(kNodes, options);
  std::printf("%-8s %10zu %12.2f %12.2f %14.1f %s\n", "PBFT", pbft.committee,
              pbft.latency.mean, pbft.latency.max, pbft.total_kb, "whole network votes");

  const sim::ExperimentResult gpbft = sim::run_gpbft_latency(kNodes, options);
  std::printf("%-8s %10zu %12.2f %12.2f %14.1f %s\n", "G-PBFT", gpbft.committee,
              gpbft.latency.mean, gpbft.latency.max, gpbft.total_kb,
              "geographic endorser committee");

  const sim::ExperimentResult dbft = sim::run_dbft_latency(kNodes, options);
  std::printf("%-8s %10zu %12.2f %12.2f %14.1f %s\n", "dBFT", dbft.committee,
              dbft.latency.mean, dbft.latency.max, dbft.total_kb, "15 s block slots");

  const sim::ExperimentResult pow = sim::run_pow_latency(kNodes, options);
  std::printf("%-8s %10s %12.2f %12.2f %14.1f %.2e hashes burned\n", "PoW", "-",
              pow.latency.mean, pow.latency.max, pow.total_kb, pow.hashes_computed);

  std::printf("\nG-PBFT vs PBFT:  %5.1fx faster, %5.1fx less traffic\n",
              pbft.latency.mean / gpbft.latency.mean, pbft.total_kb / gpbft.total_kb);
  std::printf("G-PBFT vs dBFT:  %5.1fx faster\n", dbft.latency.mean / gpbft.latency.mean);
  std::printf("G-PBFT vs PoW:   %5.1fx faster, zero mining energy\n",
              pow.latency.mean / gpbft.latency.mean);
  return 0;
}
