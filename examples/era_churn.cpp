// Era churn: device arrival and departure handled by era switches (§III-E).
//
// A 10-device deployment where the population changes while transactions
// flow: new fixed devices join and qualify; a committee member is
// physically relocated (demoted next era); another crashes mid-run (view
// change now, penalty and expulsion at the next switch). Throughout, the
// system keeps committing — transactions submitted during a switch period
// are queued and land right after it.
//
//   ./build/examples/era_churn
#include <algorithm>
#include <cstdio>
#include <memory>

#include "sim/deployment.hpp"

namespace {

void print_status(gpbft::sim::GpbftCluster& cluster, const char* note) {
  std::printf("t=%5.1fs  era %llu  committee(%zu): ",
              cluster.simulator().now().to_seconds(),
              static_cast<unsigned long long>(cluster.era()), cluster.committee_size());
  for (const gpbft::NodeId member : cluster.roster()) {
    std::printf("%llu ", static_cast<unsigned long long>(member.value));
  }
  std::printf(" %s\n", note);
}

}  // namespace

int main() {
  using namespace gpbft;

  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 10;
  spec.clients = 4;
  spec.seed = 31;
  spec.committee.initial = 5;
  spec.committee.min = 4;
  spec.committee.max = 8;
  spec.committee.era_period = Duration::seconds(10);
  spec.geo.report_period = Duration::seconds(2);
  spec.geo.window = Duration::seconds(10);
  spec.geo.min_reports = 2;
  spec.geo.promotion_threshold = Duration::seconds(15);
  spec.engine.request_timeout = Duration::seconds(6);
  spec.engine.view_change_timeout = Duration::seconds(5);
  spec.workload.period = Duration::seconds(3);
  spec.workload.txs_per_client = 25;

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);
  cluster->start();

  // Constant background load from the IoT clients.
  sim::LatencyRecorder recorder;
  cluster->schedule_workload(spec.workload, &recorder);

  print_status(*cluster, "(genesis: devices 1-5; 6-10 are candidates)");

  cluster->run_for(Duration::seconds(22));
  print_status(*cluster, "(candidates qualified after 15 s stationary -> capped at 8)");

  // Departure 1: device 2 is physically relocated. It is demoted at the
  // next era switch (its reports no longer match the enrolled location),
  // and — staying put at the new spot — re-earns endorsement later.
  const geo::GeoPoint moved = cluster->placement().position(40);
  cluster->endorser(1).set_location(moved);
  cluster->area().place(cluster->endorser(1).id(), moved);
  std::printf("         >> device 2 relocated (honest move)\n");

  bool device2_demoted = false;
  for (int chunk = 0; chunk < 11; ++chunk) {
    cluster->run_for(Duration::seconds(2));
    const auto& members = cluster->roster();
    const bool in_committee =
        std::find(members.begin(), members.end(), cluster->endorser(1).id()) != members.end();
    if (!in_committee && !device2_demoted) {
      device2_demoted = true;
      print_status(*cluster, "(device 2 demoted: reports left its enrolled cell)");
    } else if (in_committee && device2_demoted) {
      print_status(*cluster, "(device 2 re-qualified at its new fixed location)");
      break;
    }
  }

  // Departure 2: device 3 crashes outright.
  cluster->network().crash(cluster->endorser(2).id());
  std::printf("         >> device 3 crashed\n");

  cluster->run_for(Duration::seconds(30));
  print_status(*cluster, "(device 3 expelled after missing its blocks)");

  cluster->run_until_committed(spec.workload.txs_per_client,
                               TimePoint{Duration::seconds(300).ns});

  const std::uint64_t committed = cluster->committed_count();
  std::printf("\nall workload transactions committed: %llu/%llu (mean latency %.3f s, max %.3f s)\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(spec.workload.txs_per_client *
                                              cluster->client_count()),
              recorder.mean(), recorder.percentile(100));
  std::printf("era switches completed: %llu; last switch period: %.3f s\n",
              static_cast<unsigned long long>(cluster->total_era_switches()),
              cluster->endorser(0).last_switch_duration().to_seconds());

  const auto& roster = cluster->roster();
  const bool crashed_out =
      std::find(roster.begin(), roster.end(), cluster->endorser(2).id()) == roster.end();
  std::printf("relocated device was demoted: %s; crashed device expelled: %s\n",
              device2_demoted ? "yes" : "no", crashed_out ? "yes" : "no");
  return (device2_demoted && crashed_out) ? 0 : 1;
}
