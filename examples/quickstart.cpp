// Quickstart: a 4-endorser G-PBFT network committing IoT transactions.
//
// Shows the minimal public-API flow: describe the deployment with a
// declarative ScenarioSpec, build it with make_gpbft_deployment(), submit
// transactions from an IoT client, watch them commit, inspect the ledger,
// the fee distribution (70/30 incentive) and the election table (the
// paper's Table II).
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "sim/deployment.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace gpbft;

  // --- 1. describe the deployment ---------------------------------------------
  sim::ScenarioSpec spec;
  spec.protocol = sim::ProtocolKind::Gpbft;
  spec.nodes = 4;              // four fixed IoT devices (street lamps, say)
  spec.committee.initial = 4;  // all four are genesis endorsers
  spec.clients = 2;            // two data-producing devices
  spec.seed = 2024;

  const std::unique_ptr<sim::GpbftCluster> cluster = sim::make_gpbft_deployment(spec);
  cluster->start();
  std::printf("deployment area (geohash prefix): %s\n",
              cluster->placement().area_prefix().c_str());
  std::printf("genesis committee: ");
  for (const NodeId id : cluster->roster()) std::printf("%s ", id.str().c_str());
  std::printf("\n\n");

  // --- 2. submit transactions ---------------------------------------------------
  // Each transaction carries the device's geographic trailer
  // <longitude, latitude, timestamp> as §III-B2 of the paper specifies.
  for (RequestId r = 1; r <= 5; ++r) {
    const std::size_t who = r % cluster->client_count();
    auto& client = cluster->client(who);
    client.set_commit_callback([r](const crypto::Hash256& digest, Height height,
                                   Duration latency) {
      std::printf("tx %llu (%s...) committed at height %llu after %.3f s\n",
                  static_cast<unsigned long long>(r), digest.hex().substr(0, 12).c_str(),
                  static_cast<unsigned long long>(height), latency.to_seconds());
    });
    client.submit(sim::make_workload_tx(client.id(), r, cluster->placement().position(who),
                                        cluster->simulator().now(), 24, /*fee=*/10, r));
    cluster->run_for(Duration::seconds(2));
  }

  // --- 3. inspect the ledger ------------------------------------------------------
  const auto& chain = cluster->endorser(0).chain();
  std::printf("\nledger: height %llu, tip %s...\n",
              static_cast<unsigned long long>(chain.height()),
              chain.tip().hash().hex().substr(0, 16).c_str());
  for (Height h = 1; h <= chain.height(); ++h) {
    const auto& block = chain.at(h);
    std::printf("  block %llu: %zu tx, producer %s, era %llu, fees %llu\n",
                static_cast<unsigned long long>(h), block.transactions.size(),
                block.header.producer.str().c_str(),
                static_cast<unsigned long long>(block.header.era),
                static_cast<unsigned long long>(block.total_fees()));
  }

  // --- 4. incentive: 70% to producers, 30% shared (§III-B5) -----------------------
  std::printf("\nendorser reward balances:\n");
  for (const NodeId id : cluster->roster()) {
    std::printf("  %s: %lld\n", id.str().c_str(),
                static_cast<long long>(cluster->endorser(0).state().balance_of_node(id)));
  }

  // --- 5. the election table (the paper's Table II) -------------------------------
  const NodeId device = cluster->roster().front();
  std::printf("\nelection table of %s (geographic timer accumulates while fixed):\n%s\n",
              device.str().c_str(),
              cluster->endorser(0).election_table().render(device).c_str());
  return 0;
}
