// Simulated time.
//
// All protocol timing runs on the discrete-event simulator's clock, not on
// wall-clock time. Time is kept as integral nanoseconds to make event
// ordering exact and runs reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace gpbft {

/// A span of simulated time, in nanoseconds. Value type, totally ordered.
struct Duration {
  std::int64_t ns{0};

  friend constexpr auto operator<=>(Duration, Duration) = default;

  static constexpr Duration nanos(std::int64_t v) { return Duration{v}; }
  static constexpr Duration micros(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration millis(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  static constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }
  static constexpr Duration hours(std::int64_t v) { return seconds(v * 3600); }

  /// Closest Duration to `s` seconds; used for rate -> interval conversion.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns) / 1e6; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns + b.ns}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns - b.ns}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns / k}; }
};

/// An instant on the simulated clock (nanoseconds since simulation start).
struct TimePoint {
  std::int64_t ns{0};

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns + d.ns}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration{a.ns - b.ns}; }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) / 1e9; }
};

/// "1h 02m 03s"-style rendering for logs and election-table printing.
[[nodiscard]] inline std::string format_hms(Duration d) {
  std::int64_t total = d.ns / 1'000'000'000;
  const std::int64_t h = total / 3600;
  const std::int64_t m = (total % 3600) / 60;
  const std::int64_t s = total % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld", static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s));
  return buf;
}

}  // namespace gpbft
