#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace gpbft {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range requested
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % span);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + draw % span;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t label) const {
  std::uint64_t sm = seed_ ^ (0x6a09e667f3bcc908ull + label * 0x9e3779b97f4a7c15ull);
  const std::uint64_t child = splitmix64(sm);
  return Rng(child);
}

}  // namespace gpbft
