// Deterministic random number generation.
//
// Every stochastic element of the simulation (link jitter, workload arrival
// times, device placement, fault schedules) draws from a seeded Rng so that
// an experiment is exactly reproducible from its seed. xoshiro256** is used
// as the core generator with splitmix64 seeding, per the reference
// implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

namespace gpbft {

/// splitmix64 step; used for seed expansion and as a cheap standalone mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derives an independent child generator; children with distinct labels
  /// are decorrelated from the parent and from each other.
  [[nodiscard]] Rng fork(std::uint64_t label) const;

 private:
  std::array<std::uint64_t, 4> state_;
  std::uint64_t seed_;
};

}  // namespace gpbft
