// Minimal expected-style result type.
//
// The codebase avoids exceptions on hot protocol paths; fallible operations
// return Result<T> with a human-readable error string, mirroring the
// std::expected shape (C++23) on a C++20 toolchain.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace gpbft {

struct Error {
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(data_)); }

  [[nodiscard]] const std::string& error() const { return std::get<Error>(data_).message; }

 private:
  std::variant<T, Error> data_;
};

/// Result specialisation for operations that produce no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error.message)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::string error_;
  bool failed_{false};
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace gpbft
