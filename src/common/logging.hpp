// Leveled logger.
//
// A single process-wide sink with a runtime level filter. The simulator
// stamps log lines with simulated time when available; modules log through
// the free functions below. Logging is off (Warn) by default so tests and
// benches stay quiet; examples raise the level to narrate runs.
#pragma once

#include <cstdio>
#include <string>

namespace gpbft {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Optional simulated-time prefix, set by the running simulator.
  void set_sim_time_seconds(double t) { sim_time_ = t; has_sim_time_ = true; }
  void clear_sim_time() { has_sim_time_ = false; }
  [[nodiscard]] bool has_sim_time() const { return has_sim_time_; }
  [[nodiscard]] double sim_time_seconds() const { return sim_time_; }

  void log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_{LogLevel::Warn};
  double sim_time_{0.0};
  bool has_sim_time_{false};
};

/// RAII guard for the sim-time prefix: restores the previous prefix state
/// (set or cleared) on scope exit, so a harness that runs a simulator
/// inside a wall-clock program does not leak a stale timestamp onto later
/// non-sim log lines. Deployment teardown uses the same restore path.
class SimTimeScope {
 public:
  SimTimeScope()
      : had_(Logger::instance().has_sim_time()), previous_(Logger::instance().sim_time_seconds()) {}
  explicit SimTimeScope(double t) : SimTimeScope() {
    Logger::instance().set_sim_time_seconds(t);
  }
  ~SimTimeScope() {
    if (had_) {
      Logger::instance().set_sim_time_seconds(previous_);
    } else {
      Logger::instance().clear_sim_time();
    }
  }
  SimTimeScope(const SimTimeScope&) = delete;
  SimTimeScope& operator=(const SimTimeScope&) = delete;

 private:
  bool had_;
  double previous_;
};

void log_trace(const std::string& message);
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace gpbft
