// Byte-buffer alias and hex conversion helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gpbft {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of an arbitrary byte span.
[[nodiscard]] std::string to_hex(BytesView data);

/// Parses a hex string (case-insensitive, even length). Returns nullopt on
/// any malformed input instead of throwing.
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view hex);

/// Convenience: bytes of a string literal / std::string payload.
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Inverse of to_bytes for printable payloads.
[[nodiscard]] std::string to_string(BytesView data);

}  // namespace gpbft
