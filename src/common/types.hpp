// Fundamental identifier and numeric types shared by every module.
//
// Strong typedefs are deliberately minimal: a NodeId is a plain integral
// wrapper with value semantics, ordered and hashable so it can key maps in
// the registries and the simulator.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace gpbft {

/// Identifies one participant (endorser, candidate, or client/IoT device).
struct NodeId {
  std::uint64_t value{0};

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint64_t v) : value(v) {}

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

  [[nodiscard]] std::string str() const { return "node-" + std::to_string(value); }
};

/// Monotone view number within one era of PBFT.
using ViewId = std::uint64_t;

/// Sequence number assigned by the primary to a request.
using SeqNum = std::uint64_t;

/// Era number: each era is one intact PBFT run with a fixed roster.
using EraId = std::uint64_t;

/// Block height on the chain (genesis = 0).
using Height = std::uint64_t;

/// Smallest fee/reward unit used by the incentive mechanism.
using Amount = std::uint64_t;

/// A client-chosen request identifier, unique per client.
using RequestId = std::uint64_t;

}  // namespace gpbft

template <>
struct std::hash<gpbft::NodeId> {
  std::size_t operator()(const gpbft::NodeId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
