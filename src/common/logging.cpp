#include "common/logging.hpp"

#include <cstdlib>
#include <cstring>

namespace gpbft {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

/// GPBFT_LOG=trace|debug|info|warn|error|off overrides the default (Warn)
/// at process start; programmatic set_level still wins afterwards. Lets a
/// failing seed be re-run with full narration without a rebuild.
LogLevel initial_level() {
  const char* env = std::getenv("GPBFT_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  static const bool env_applied = [] {
    logger.set_level(initial_level());
    return true;
  }();
  (void)env_applied;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (level < level_) return;
  if (has_sim_time_) {
    std::fprintf(stderr, "[%s t=%.6fs] %s\n", level_name(level), sim_time_, message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  }
}

void log_trace(const std::string& message) { Logger::instance().log(LogLevel::Trace, message); }
void log_debug(const std::string& message) { Logger::instance().log(LogLevel::Debug, message); }
void log_info(const std::string& message) { Logger::instance().log(LogLevel::Info, message); }
void log_warn(const std::string& message) { Logger::instance().log(LogLevel::Warn, message); }
void log_error(const std::string& message) { Logger::instance().log(LogLevel::Error, message); }

}  // namespace gpbft
