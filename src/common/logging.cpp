#include "common/logging.hpp"

namespace gpbft {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (level < level_) return;
  if (has_sim_time_) {
    std::fprintf(stderr, "[%s t=%.6fs] %s\n", level_name(level), sim_time_, message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  }
}

void log_trace(const std::string& message) { Logger::instance().log(LogLevel::Trace, message); }
void log_debug(const std::string& message) { Logger::instance().log(LogLevel::Debug, message); }
void log_info(const std::string& message) { Logger::instance().log(LogLevel::Info, message); }
void log_warn(const std::string& message) { Logger::instance().log(LogLevel::Warn, message); }
void log_error(const std::string& message) { Logger::instance().log(LogLevel::Error, message); }

}  // namespace gpbft
