#include "sim/experiment.hpp"

#include <memory>

#include "dbft/delegate.hpp"
#include "ledger/genesis.hpp"
#include "pbft/messages.hpp"
#include "pow/miner.hpp"

namespace gpbft::sim {

ExperimentOptions default_options() {
  return ExperimentOptions{};  // field initialisers are the calibration
}

double consensus_kilobytes(const net::NetStats& stats) {
  std::uint64_t bytes = 0;
  for (const auto type :
       {pbft::msg_type::kClientRequest, pbft::msg_type::kPrePrepare, pbft::msg_type::kPrepare,
        pbft::msg_type::kCommit, pbft::msg_type::kReply}) {
    const auto it = stats.bytes_by_type.find(type);
    if (it != stats.bytes_by_type.end()) bytes += it->second;
  }
  return static_cast<double>(bytes) / 1024.0;
}

namespace {

net::NetConfig net_config_for(const ExperimentOptions& options) {
  net::NetConfig net;
  net.processing_rate_msgs_per_sec = options.processing_rate;
  return net;
}

pbft::PbftConfig pbft_config_for(const ExperimentOptions& options) {
  pbft::PbftConfig config;
  config.max_batch_size = options.batch_size;
  config.compute_macs = options.compute_macs;
  // Under the saturating workload of the latency experiments, requests can
  // legitimately queue for hundreds of simulated seconds (that queueing is
  // the measurement); the timeout must not fire view changes meanwhile.
  config.request_timeout = options.hard_deadline;
  return config;
}

::gpbft::gpbft::GpbftConfig gpbft_config_for(const ExperimentOptions& options) {
  ::gpbft::gpbft::GpbftConfig protocol;
  protocol.pbft = pbft_config_for(options);
  protocol.genesis.era_period = options.era_period;
  protocol.genesis.policy.min_endorsers = options.min_committee;
  protocol.genesis.policy.max_endorsers = options.max_committee;
  // Promotion machinery parameters: reports every 10 s, Algorithm 1 window
  // of one era period, at least 3 reports; the 72 h stationarity rule is
  // scaled into simulation range so candidate promotion is observable.
  protocol.genesis.geo_report_period = Duration::seconds(10);
  protocol.genesis.geo_window = options.era_period;
  protocol.genesis.min_geo_reports = 2;
  protocol.genesis.promotion_threshold = Duration::seconds(20);
  return protocol;
}

ExperimentResult finish_result(std::size_t nodes, std::size_t committee,
                               const LatencyRecorder& recorder, const net::NetStats& stats,
                               std::uint64_t committed, std::uint64_t expected,
                               double sim_seconds, std::uint64_t era_switches) {
  ExperimentResult result;
  result.nodes = nodes;
  result.committee = committee;
  result.latency_samples = recorder.samples();
  result.latency = recorder.boxplot();
  result.committed = committed;
  result.expected = expected;
  result.consensus_kb = consensus_kilobytes(stats);
  result.total_kb = stats.total_kilobytes();
  result.sim_seconds = sim_seconds;
  result.era_switches = era_switches;
  return result;
}

}  // namespace

// --- latency experiments ------------------------------------------------------------

ExperimentResult run_pbft_latency(std::size_t nodes, const ExperimentOptions& options) {
  PbftClusterConfig config;
  config.replicas = nodes;
  config.clients = nodes;  // one proposing device per node (§V-B)
  config.seed = options.seed;
  config.net = net_config_for(options);
  config.pbft = pbft_config_for(options);

  PbftCluster cluster(config);
  cluster.start();

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = options.proposal_period;
  workload.count = options.txs_per_client;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    // Loss-free measurement runs: retransmission off so REQUEST traffic
    // matches the paper's testbed (retries are for faulty networks).
    cluster.client(i).set_retry_interval(Duration{0});
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, &recorder);
  }

  const TimePoint deadline{options.hard_deadline.ns};
  cluster.run_until_committed(options.txs_per_client, deadline);
  cluster.stop();

  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  return finish_result(nodes, nodes, recorder, cluster.network().stats(), committed,
                       options.txs_per_client * cluster.client_count(),
                       cluster.simulator().now().to_seconds(), 0);
}

ExperimentResult run_gpbft_latency(std::size_t nodes, const ExperimentOptions& options) {
  GpbftClusterConfig config;
  config.nodes = nodes;
  // Steady state of the paper's Fig. 3b: all eligible nodes join until the
  // maximum; the genesis roster holds them directly so the measurement is
  // of the steady committee (era switches still run during the experiment).
  config.initial_committee = std::min(nodes, options.max_committee);
  config.clients = nodes;
  config.seed = options.seed;
  config.net = net_config_for(options);
  config.protocol = gpbft_config_for(options);

  GpbftCluster cluster(config);
  cluster.start();

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = options.proposal_period;
  workload.count = options.txs_per_client;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    // Loss-free measurement runs: retransmission off so REQUEST traffic
    // matches the paper's testbed (retries are for faulty networks).
    cluster.client(i).set_retry_interval(Duration{0});
    schedule_workload(cluster.simulator(), cluster.client(i), cluster.placement().position(i),
                      workload, i, &recorder);
  }

  const TimePoint deadline{options.hard_deadline.ns};
  cluster.run_until_committed(options.txs_per_client, deadline);
  cluster.stop();

  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    committed += cluster.client(i).committed_count();
  }
  return finish_result(nodes, cluster.committee_size(), recorder, cluster.network().stats(),
                       committed, options.txs_per_client * cluster.client_count(),
                       cluster.simulator().now().to_seconds(), cluster.total_era_switches());
}

// --- baseline protocols ---------------------------------------------------------------

ExperimentResult run_dbft_latency(std::size_t nodes, const ExperimentOptions& options) {
  net::Simulator sim(options.seed);
  net::Network network(sim, net_config_for(options));
  crypto::KeyRegistry keys(options.seed ^ 0x67e55044'10b1426full);
  Placement placement;

  const std::size_t delegate_count = std::min(nodes, options.dbft_delegates);
  ledger::GenesisConfig genesis_config;
  genesis_config.chain_seed = options.seed;
  for (std::size_t i = 0; i < delegate_count; ++i) {
    genesis_config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i + 1}, placement.position(i)});
  }
  const ledger::Block genesis = ledger::make_genesis_block(genesis_config);

  dbft::DbftConfig config;
  config.pbft = pbft_config_for(options);
  config.block_interval = options.dbft_block_interval;
  config.delegate_count = options.dbft_delegates;

  std::vector<NodeId> all;
  for (std::size_t i = 0; i < nodes; ++i) all.push_back(NodeId{i + 1});
  std::vector<NodeId> roster(all.begin(), all.begin() + static_cast<long>(delegate_count));

  dbft::StakeRegistry stakes;  // no voting during the measurement run
  std::vector<std::unique_ptr<dbft::Delegate>> members;
  for (std::size_t i = 0; i < nodes; ++i) {
    members.push_back(std::make_unique<dbft::Delegate>(NodeId{i + 1}, genesis, config, stakes,
                                                       all, network, keys));
  }
  std::vector<std::unique_ptr<pbft::Client>> clients;
  for (std::size_t i = 0; i < nodes; ++i) {
    clients.push_back(std::make_unique<pbft::Client>(NodeId{kClientIdBase + i + 1}, roster,
                                                     network, keys, options.compute_macs));
  }

  for (auto& member : members) member->start_protocol();
  for (auto& client : clients) client->start();

  LatencyRecorder recorder;
  WorkloadConfig workload;
  workload.period = options.proposal_period;
  workload.count = options.txs_per_client;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i]->set_retry_interval(Duration{0});
    schedule_workload(sim, *clients[i], placement.position(i), workload, i, &recorder);
  }

  const TimePoint deadline{options.hard_deadline.ns};
  while (sim.now() < deadline) {
    const bool done = std::all_of(clients.begin(), clients.end(), [&](const auto& client) {
      return client->committed_count() >= options.txs_per_client;
    });
    if (done) break;
    sim.run_until(sim.now() + Duration::seconds(1));
  }
  for (auto& member : members) member->stop_protocol();

  std::uint64_t committed = 0;
  for (const auto& client : clients) committed += client->committed_count();
  ExperimentResult result =
      finish_result(nodes, delegate_count, recorder, network.stats(), committed,
                    options.txs_per_client * clients.size(), sim.now().to_seconds(), 0);
  return result;
}

ExperimentResult run_pow_latency(std::size_t nodes, const ExperimentOptions& options) {
  net::Simulator sim(options.seed);
  net::Network network(sim, net_config_for(options));
  Placement placement;

  pow::MinerConfig config;
  config.hashrate = options.pow_hashrate;
  // Network-wide solve rate = nodes * hashrate / difficulty = 1/interval.
  config.difficulty = static_cast<std::uint64_t>(
      static_cast<double>(nodes) * options.pow_hashrate *
      options.pow_block_interval.to_seconds());
  config.confirmation_depth = options.pow_confirmations;
  config.max_batch_size = options.batch_size;
  const pow::PowBlock genesis = pow::make_pow_genesis(config.difficulty);

  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < nodes; ++i) ids.push_back(NodeId{i + 1});
  std::vector<std::unique_ptr<pow::Miner>> miners;
  for (NodeId id : ids) {
    miners.push_back(std::make_unique<pow::Miner>(id, ids, genesis, config, network));
  }
  for (auto& miner : miners) miner->start();

  // Miner 0 is the confirmation observer for all watched transactions.
  LatencyRecorder recorder;
  std::uint64_t confirmed = 0;
  miners[0]->set_confirmed_callback([&](const crypto::Hash256&, Duration latency) {
    recorder.record(latency);
    ++confirmed;
  });

  // One proposing device per miner node, same constant-frequency workload;
  // submissions travel to every miner as unsealed transaction gossip.
  const std::uint64_t expected = options.txs_per_client * nodes;
  struct PowDriver {
    net::Simulator* sim;
    net::Network* network;
    std::vector<std::unique_ptr<pow::Miner>>* miners;
    std::uint64_t client_index;
    geo::GeoPoint location;
    Duration period;
    std::uint64_t remaining;
    RequestId next_request{1};

    void step(const std::shared_ptr<PowDriver>& self) {
      if (remaining == 0) return;
      --remaining;
      const ledger::Transaction tx =
          make_workload_tx(NodeId{kClientIdBase + client_index + 1}, next_request++, location,
                           sim->now(), 32, 10, client_index);
      const Bytes encoded = tx.encode();
      for (const auto& miner : *miners) {
        net::Envelope envelope;
        envelope.from = NodeId{kClientIdBase + client_index + 1};
        envelope.to = miner->id();
        envelope.type = pbft::msg_type::kClientRequest;
        envelope.payload = encoded;
        network->send(std::move(envelope));
      }
      if (remaining > 0) {
        sim->schedule(period, [self]() { self->step(self); });
      }
    }
  };
  for (std::size_t i = 0; i < nodes; ++i) {
    auto driver = std::make_shared<PowDriver>();
    driver->sim = &sim;
    driver->network = &network;
    driver->miners = &miners;
    driver->client_index = i;
    driver->location = placement.position(i);
    driver->period = options.proposal_period;
    driver->remaining = options.txs_per_client;
    sim.schedule(Duration::millis(static_cast<std::int64_t>(25 * i) + 1000),
                 [driver]() { driver->step(driver); });
  }

  const TimePoint deadline{options.hard_deadline.ns};
  while (sim.now() < deadline && confirmed < expected) {
    sim.run_until(sim.now() + Duration::seconds(5));
  }
  double hashes = 0;
  for (auto& miner : miners) {
    miner->stop();
    hashes += miner->hashes_computed();
  }

  ExperimentResult result = finish_result(nodes, nodes, recorder, network.stats(), confirmed,
                                          expected, sim.now().to_seconds(), 0);
  result.hashes_computed = hashes;
  return result;
}

// --- communication-cost experiments ---------------------------------------------------

ExperimentResult run_pbft_single_tx(std::size_t nodes, const ExperimentOptions& options) {
  PbftClusterConfig config;
  config.replicas = nodes;
  config.clients = 1;
  config.seed = options.seed;
  config.net = net_config_for(options);
  config.pbft = pbft_config_for(options);

  PbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::millis(100));  // settle attachments
  cluster.network().reset_stats();

  LatencyRecorder recorder;
  cluster.client(0).set_retry_interval(Duration{0});
  cluster.client(0).set_commit_callback(
      [&recorder](const crypto::Hash256&, Height, Duration latency) {
        recorder.record(latency);
      });
  const ledger::Transaction tx = make_workload_tx(
      cluster.client(0).id(), 1, cluster.placement().position(0),
      cluster.simulator().now(), 32, 10, options.seed);
  cluster.client(0).submit(tx);

  const TimePoint deadline{options.hard_deadline.ns};
  cluster.run_until_committed(1, deadline);
  cluster.stop();

  return finish_result(nodes, nodes, recorder, cluster.network().stats(),
                       cluster.client(0).committed_count(), 1,
                       cluster.simulator().now().to_seconds(), 0);
}

ExperimentResult run_gpbft_single_tx(std::size_t nodes, const ExperimentOptions& options) {
  GpbftClusterConfig config;
  config.nodes = nodes;
  config.initial_committee = std::min(nodes, options.max_committee);
  config.clients = 1;
  config.seed = options.seed;
  config.net = net_config_for(options);
  config.protocol = gpbft_config_for(options);

  GpbftCluster cluster(config);
  cluster.start();
  cluster.run_for(Duration::millis(100));
  cluster.network().reset_stats();

  LatencyRecorder recorder;
  cluster.client(0).set_retry_interval(Duration{0});
  cluster.client(0).set_commit_callback(
      [&recorder](const crypto::Hash256&, Height, Duration latency) {
        recorder.record(latency);
      });
  const ledger::Transaction tx = make_workload_tx(
      cluster.client(0).id(), 1, cluster.placement().position(0),
      cluster.simulator().now(), 32, 10, options.seed);
  cluster.client(0).submit(tx);

  const TimePoint deadline{options.hard_deadline.ns};
  cluster.run_until_committed(1, deadline);
  cluster.stop();

  return finish_result(nodes, cluster.committee_size(), recorder, cluster.network().stats(),
                       cluster.client(0).committed_count(), 1,
                       cluster.simulator().now().to_seconds(), cluster.total_era_switches());
}

}  // namespace gpbft::sim
