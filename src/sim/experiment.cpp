#include "sim/experiment.hpp"

#include <algorithm>

#include "pbft/messages.hpp"
#include "sim/workload_plane.hpp"

namespace gpbft::sim {

ExperimentOptions default_options() {
  ExperimentOptions options;
  // Loss-free measurement runs: retransmission off so REQUEST traffic
  // matches the paper's testbed (retries are for faulty networks).
  options.workload.client_retries = false;
  options.engine.batch_size = 32;
  // Large sweeps skip recomputing HMAC tags (bytes unchanged); see
  // pbft::PbftConfig::compute_macs.
  options.engine.compute_macs = false;
  // Under the saturating workload of the latency experiments, requests can
  // legitimately queue for hundreds of simulated seconds (that queueing is
  // the measurement); the timeout must not fire view changes meanwhile.
  options.engine.request_timeout = options.hard_deadline;
  options.committee.era_period = Duration::seconds(30);
  // Promotion machinery parameters: reports every 10 s, Algorithm 1 window
  // of one era period, at least 2 reports; the 72 h stationarity rule is
  // scaled into simulation range so candidate promotion is observable.
  options.geo.window = options.committee.era_period;
  options.geo.min_reports = 2;
  options.geo.promotion_threshold = Duration::seconds(20);
  return options;
}

double consensus_kilobytes(const net::NetStats& stats) {
  std::uint64_t bytes = 0;
  for (const auto type :
       {pbft::msg_type::kClientRequest, pbft::msg_type::kPrePrepare, pbft::msg_type::kPrepare,
        pbft::msg_type::kCommit, pbft::msg_type::kReply}) {
    const auto it = stats.bytes_by_type.find(type);
    if (it != stats.bytes_by_type.end()) bytes += it->second;
  }
  return static_cast<double>(bytes) / 1024.0;
}

namespace {

ScenarioSpec scenario_for(ProtocolKind protocol, std::size_t nodes, std::size_t clients,
                          const ExperimentOptions& options) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.seed = options.seed;
  spec.nodes = nodes;
  spec.clients = clients;
  spec.deadline = options.hard_deadline;
  spec.workload = options.workload;
  spec.engine = options.engine;
  spec.batch = options.batch;
  spec.net = options.net;
  spec.committee = options.committee;
  spec.geo = options.geo;
  spec.dbft = options.dbft;
  spec.pow = options.pow;
  if (protocol == ProtocolKind::Gpbft) {
    // Steady state of the paper's Fig. 3b: all eligible nodes join until
    // the maximum; the genesis roster holds them directly so the
    // measurement is of the steady committee (era switches still run).
    spec.committee.initial = std::min(nodes, options.committee.max);
  }
  return spec;
}

/// Reads the per-phase histograms the replicas populated back out of the
/// deployment's registry (sums in seconds; zero family -> empty breakdown).
PhaseBreakdown phase_breakdown(Deployment& deployment) {
  PhaseBreakdown phases;
  const obs::Registry& reg = deployment.telemetry().metrics();
  const obs::Histogram prepare = reg.histogram_total("pbft.phase.prepare_seconds");
  const obs::Histogram commit = reg.histogram_total("pbft.phase.commit_seconds");
  const obs::Histogram execute = reg.histogram_total("pbft.phase.execute_seconds");
  phases.prepare_s = prepare.sum;
  phases.commit_s = commit.sum;
  phases.execute_s = execute.sum;
  phases.blocks = execute.count;
  return phases;
}

ExperimentResult finish_result(std::size_t nodes, std::size_t committee,
                               const LatencyRecorder& recorder, const net::NetStats& stats,
                               std::uint64_t committed, std::uint64_t expected,
                               double sim_seconds, std::uint64_t era_switches) {
  ExperimentResult result;
  result.nodes = nodes;
  result.committee = committee;
  result.latency_samples = recorder.samples();
  result.latency = recorder.boxplot();
  result.committed = committed;
  result.expected = expected;
  result.consensus_kb = consensus_kilobytes(stats);
  result.total_kb = stats.total_kilobytes();
  result.sim_seconds = sim_seconds;
  result.era_switches = era_switches;
  return result;
}

}  // namespace

ScenarioSpec latency_scenario(ProtocolKind protocol, std::size_t nodes,
                              const ExperimentOptions& options) {
  // One proposing device per node (§V-B).
  return scenario_for(protocol, nodes, nodes, options);
}

// --- latency experiments ------------------------------------------------------------

ExperimentResult run_latency(ProtocolKind protocol, std::size_t nodes,
                             const ExperimentOptions& options) {
  const ScenarioSpec spec = latency_scenario(protocol, nodes, options);
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);
  deployment->start();

  LatencyRecorder recorder;
  deployment->schedule_workload(spec.workload, &recorder);

  const TimePoint deadline{spec.deadline.ns};
  deployment->run_until_committed(spec.workload.txs_per_client, deadline);
  // Open-loop plane: expect what the arrival process actually generated,
  // not a per-client quota.
  const std::uint64_t expected = deployment->plane() != nullptr
                                     ? deployment->plane()->submitted()
                                     : spec.workload.txs_per_client * nodes;
  deployment->stop();

  deployment->finalize_telemetry();
  ExperimentResult result = finish_result(
      nodes, deployment->committee_size(), recorder, deployment->stats(),
      deployment->committed_count(), expected,
      deployment->simulator().now().to_seconds(), deployment->era_switches());
  result.hashes_computed = deployment->hashes_computed();
  result.phases = phase_breakdown(*deployment);
  return result;
}

ExperimentResult run_pbft_latency(std::size_t nodes, const ExperimentOptions& options) {
  return run_latency(ProtocolKind::Pbft, nodes, options);
}

ExperimentResult run_gpbft_latency(std::size_t nodes, const ExperimentOptions& options) {
  return run_latency(ProtocolKind::Gpbft, nodes, options);
}

ExperimentResult run_dbft_latency(std::size_t nodes, const ExperimentOptions& options) {
  return run_latency(ProtocolKind::Dbft, nodes, options);
}

ExperimentResult run_pow_latency(std::size_t nodes, const ExperimentOptions& options) {
  return run_latency(ProtocolKind::Pow, nodes, options);
}

// --- communication-cost experiments ---------------------------------------------------

namespace {

template <typename Cluster>
ExperimentResult run_single_tx(Cluster& cluster, std::size_t nodes,
                               const ExperimentOptions& options) {
  cluster.start();
  cluster.run_for(Duration::millis(100));  // settle attachments
  cluster.network().reset_stats();

  LatencyRecorder recorder;
  cluster.client(0).set_retry_interval(Duration{0});
  cluster.client(0).set_commit_callback(
      [&recorder](const crypto::Hash256&, Height, Duration latency) {
        recorder.record(latency);
      });
  const ledger::Transaction tx = make_workload_tx(
      cluster.client(0).id(), 1, cluster.placement().position(0),
      cluster.simulator().now(), 32, 10, options.seed);
  cluster.client(0).submit(tx);

  const TimePoint deadline{options.hard_deadline.ns};
  cluster.run_until_committed(1, deadline);
  cluster.stop();
  cluster.finalize_telemetry();

  ExperimentResult result =
      finish_result(nodes, cluster.committee_size(), recorder, cluster.stats(),
                    cluster.client(0).committed_count(), 1,
                    cluster.simulator().now().to_seconds(), cluster.era_switches());
  result.phases = phase_breakdown(cluster);
  return result;
}

}  // namespace

ExperimentResult run_pbft_single_tx(std::size_t nodes, const ExperimentOptions& options) {
  const ScenarioSpec spec = scenario_for(ProtocolKind::Pbft, nodes, 1, options);
  const std::unique_ptr<PbftCluster> cluster = make_pbft_deployment(spec);
  return run_single_tx(*cluster, nodes, options);
}

ExperimentResult run_gpbft_single_tx(std::size_t nodes, const ExperimentOptions& options) {
  const ScenarioSpec spec = scenario_for(ProtocolKind::Gpbft, nodes, 1, options);
  const std::unique_ptr<GpbftCluster> cluster = make_gpbft_deployment(spec);
  return run_single_tx(*cluster, nodes, options);
}

}  // namespace gpbft::sim
