// Online invariant monitor for chaos runs.
//
// Hooks every watched replica's executed-block callback and checks, at the
// moment each block executes (not just at the end of a run):
//
//   AGREEMENT   no two honest replicas execute different blocks at the same
//               height (continuous prefix consistency);
//   VALIDITY    every committed client transaction was actually submitted,
//               and no replica executes the same transaction twice;
//   ROSTER      every configuration block committed for an era carries the
//               same roster (and enrolled cells) on every endorser;
//   LIVENESS    progress resumes within a bounded grace period after all
//               injected faults heal (checked by the harness at run end).
//
// Violations are recorded with the simulated time and the most recent fault
// context (fed by FaultPlan's event hook), so a report reads as "what broke,
// when, and under which fault". Nodes currently under a Byzantine fault mode
// are excluded from the honest-agreement check while faulty.
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ledger/block.hpp"
#include "net/simulator.hpp"
#include "obs/telemetry.hpp"

namespace gpbft::pbft {
class Replica;
}

namespace gpbft::sim {

struct Violation {
  enum class Kind {
    Agreement,
    Validity,
    DuplicateExecution,
    RosterMismatch,
    Liveness,
    RestartConvergence,
    CommitteeQuality,  // a config block seats a device its own score
                       // snapshot marks quarantined
    SybilSeated,       // a config block seats a device currently flooding
                       // forged geo reports (fed by note_sybil)
    EraConvergence,    // an honest node applied an era's config later than
                       // the convergence bound after its first application
    RejectSafe,        // a tampered (Inject-mode, MACs on) run's chain tip
                       // diverged from the clean run at the same seed —
                       // some forged message must have been accepted
  };

  Kind kind{Kind::Agreement};
  TimePoint at;
  NodeId node;
  Height height{0};
  std::string detail;  // human-readable, includes the active fault context
};

[[nodiscard]] const char* violation_kind_name(Violation::Kind kind);

class InvariantMonitor {
 public:
  explicit InvariantMonitor(net::Simulator& sim) : sim_(sim) { bind_counters(); }

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Routes the monitor's tallies (blocks/transactions checked, violations)
  /// into `telemetry`'s registry — the single source of truth the exporters
  /// snapshot — and its violation events into the trace stream. Standalone
  /// monitors keep an owned fallback registry so the accessors always work;
  /// Deployment::watch rebinds to the deployment's telemetry. Tallies
  /// accumulated before rebinding are carried over.
  void set_telemetry(obs::Telemetry& telemetry);

  /// Hooks one replica's executed-block callback. The monitor must outlive
  /// the replica (or the replica must stop executing first). Deployments
  /// hook every node via Deployment::watch.
  void watch(pbft::Replica& replica);

  /// Registers a client submission; committed client transactions outside
  /// this set are VALIDITY violations.
  void expect_submission(const ledger::Transaction& tx);

  /// Marks a node Byzantine (excluded from agreement while faulty).
  void set_faulty(NodeId id, bool faulty);
  /// Marks a node as currently flooding forged geo reports (SybilBurst
  /// chaos events toggle this). Such a node stays honest on the consensus
  /// plane, but a config block seating it while flagged is a SYBIL-SEATED
  /// violation — the committee-quality claim the reputation election makes.
  void note_sybil(NodeId id, bool active);
  /// SYBIL-SEATED fairness window: a config only violates when the seated
  /// device had been flooding for at least `grace` by the time the config
  /// first committed — a rate-anomaly audit cannot flag a flood that has
  /// not yet spanned its lookback window. Zero (default) is strict.
  void set_sybil_detection_grace(Duration grace) { sybil_grace_ = grace; }
  /// Arms the ERA-CONVERGENCE check: once the first honest node applies an
  /// era's configuration, every other honest application of that era must
  /// land within `bound`. Zero (the default) disables the check.
  void set_era_convergence_bound(Duration bound) { era_convergence_bound_ = bound; }
  /// Updates the fault context attached to subsequent violations.
  void note_fault(const std::string& description);

  /// The executed-block check; public so tests (and custom harnesses) can
  /// drive it directly.
  void on_executed(NodeId node, const ledger::Block& block);

  /// Fine-grained entry points for protocols without an execution hook
  /// (PoW replays its confirmed prefix through these at run end).
  /// AGREEMENT: the first honest node at a height fixes the canonical hash.
  void check_block_hash(NodeId node, Height height, const crypto::Hash256& hash);
  /// VALIDITY / DUPLICATE-EXECUTION / ROSTER checks for one transaction.
  void check_transaction(NodeId node, Height height, const ledger::Transaction& tx);

  /// LIVENESS: call once every injected fault has healed and the workload
  /// has had `grace` time to finish. Records a violation when commits are
  /// still missing.
  void check_bounded_liveness(std::uint64_t committed, std::uint64_t expected,
                              TimePoint healed_at, Duration grace);

  /// Restart bookkeeping: Deployment::restart_node calls this after
  /// rebuilding a node from disk with the height its restored chain
  /// resumed at. The node's per-node executed set is reset — after disk
  /// amnesia it legitimately re-executes blocks above the restored height —
  /// but re-executing anything AT OR BELOW the restored height is a
  /// DUPLICATE-EXECUTION violation (the restore already replayed those),
  /// and the canonical height at restart time becomes the node's
  /// convergence target for check_restart_convergence.
  void note_restart(NodeId node, Height resumed_height);

  /// Post-restart convergence (run end, after finish_invariants): every
  /// restarted node must have re-reached the agreed prefix as of its
  /// restart. Records a RESTART-CONVERGENCE violation per laggard.
  void check_restart_convergence();

  [[nodiscard]] std::uint64_t restarts_observed() const { return restarts_.size(); }

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  // Tallies live in the telemetry registry (metric family "invariant.*");
  // the accessors read the registry counters, not private shadow counts.
  [[nodiscard]] std::uint64_t blocks_checked() const { return blocks_counter_->value; }
  [[nodiscard]] std::uint64_t transactions_checked() const { return txs_counter_->value; }

  /// Deterministic text report (identical runs produce identical bytes).
  [[nodiscard]] std::string report() const;

 private:
  void record(Violation::Kind kind, NodeId node, Height height, std::string detail);
  void bind_counters();

  net::Simulator& sim_;
  obs::Telemetry own_telemetry_;  // fallback registry for standalone monitors
  obs::Telemetry* telemetry_{&own_telemetry_};
  obs::Counter* blocks_counter_{nullptr};
  obs::Counter* txs_counter_{nullptr};
  obs::Counter* violations_counter_{nullptr};

  std::map<Height, crypto::Hash256> canonical_;                // height -> agreed hash
  std::map<EraId, ledger::EraConfig> canonical_config_;        // era -> agreed roster
  std::set<crypto::Hash256> submitted_;                        // client submissions
  std::unordered_map<std::uint64_t, std::unordered_set<crypto::Hash256>> executed_txs_;
  std::unordered_set<std::uint64_t> faulty_;
  std::map<std::uint64_t, TimePoint> sybil_;  // active flooders -> flood start
  Duration sybil_grace_{0};                  // see set_sybil_detection_grace
  Duration era_convergence_bound_{0};        // zero: check disabled
  std::map<EraId, TimePoint> era_first_applied_;  // era -> first honest apply

  struct RestartInfo {
    TimePoint at;
    Height floor{0};   // restored height; re-executing <= floor is a dup
    Height target{0};  // canonical height at restart time; must be re-reached
  };
  std::map<std::uint64_t, RestartInfo> restarts_;  // latest restart per node
  std::map<std::uint64_t, Height> observed_height_;  // per-node max executed height

  std::string fault_context_ = "no faults injected yet";
  std::vector<Violation> violations_;
};

}  // namespace gpbft::sim
