#include "sim/deployment.hpp"

#include <algorithm>
#include <string_view>

#include "common/logging.hpp"
#include "ledger/store.hpp"
#include "net/workers.hpp"
#include "pbft/messages.hpp"
#include "pow/pow_store.hpp"
#include "sim/invariants.hpp"
#include "sim/workload.hpp"
#include "sim/workload_plane.hpp"

namespace gpbft::sim {

namespace {

/// Same correlation rule as the PBFT client's request lifeline: the first
/// 8 bytes of the transaction digest, so PoW submit/confirm async spans pair
/// up with the ones other stacks emit for identical transactions.
std::uint64_t request_trace_id(const crypto::Hash256& digest) {
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i) id = (id << 8) | digest.bytes[i];
  return id;
}

}  // namespace

// --- Deployment base -----------------------------------------------------------------

Deployment::Deployment(std::uint64_t seed, const net::NetConfig& net,
                       const PlacementConfig& placement)
    : sim_(seed),
      network_(sim_, net),
      keys_(seed ^ 0x67e55044'10b1426full),
      placement_(placement),
      // Disk-fault randomness gets its own stream, decorrelated from the
      // simulator, key and network-fault streams.
      storage_(seed ^ 0x6469736b'5f666c74ull) {
  telemetry_.set_clock([this]() { return sim_.now(); });
  telemetry_.set_message_namer([](std::uint32_t type) -> std::string {
    switch (type) {
      case pow::kPowBlock: return "POW-BLOCK";
      case dbft::kPublishedBlock: return "PUBLISHED-BLOCK";
      case pow::kPowBlockRequest: return "POW-BLOCK-REQUEST";
      default: break;
    }
    const char* name = pbft::message_type_name(type);
    if (std::string_view(name) == "UNKNOWN") return "type-" + std::to_string(type);
    return name;
  });
  telemetry_.set_node_namer([](NodeId id) {
    if (id.value == 0) return std::string("deployment");
    if (id.value > kClientIdBase) {
      return "client-" + std::to_string(id.value - kClientIdBase);
    }
    return "node-" + std::to_string(id.value);
  });
  network_.set_telemetry(telemetry_);
}

Deployment::~Deployment() {
  // The last simulated event's timestamp must not leak onto log lines the
  // harness writes after the deployment is gone.
  Logger::instance().clear_sim_time();
}

void Deployment::inject_disk_fault(NodeId id, DiskFaultKind kind) {
  storage_.inject(id, kind);
  telemetry_.count("disk.faults_injected", id);
  telemetry_.instant("disk.fault", "chaos", id, {{"kind", disk_fault_name(kind)}});
}

void Deployment::finalize_telemetry() {
  if (!telemetry_.enabled()) return;
  obs::Registry& reg = telemetry_.metrics();
  reg.gauge("sim.end_seconds").set(sim_.now().to_seconds());
  reg.gauge("sim.events_processed").set(static_cast<double>(sim_.events_processed()));
  reg.gauge("sim.max_queue_depth").set(static_cast<double>(sim_.max_queue_depth()));
  const std::vector<NodeId> roster = committee();
  reg.gauge("net.committee_size").set(static_cast<double>(roster.size()));
  // Protocol-specific roll-ups reuse the uniform virtual accessors; zero
  // means "not applicable", so the series is only materialized when real.
  if (const double hashes = hashes_computed(); hashes > 0) {
    reg.gauge("pow.hashes_computed").set(hashes);
  }
  if (const std::uint64_t eras = era_switches(); eras > 0) {
    reg.gauge("gpbft.total_era_switches").set(static_cast<double>(eras));
  }
  if (telemetry_.trace_enabled()) {
    for (NodeId id : roster) telemetry_.name_node(id, telemetry_.node_name(id));
    for (const auto& client : clients_) {
      telemetry_.name_node(client->id(), telemetry_.node_name(client->id()));
    }
    // Candidates and other off-committee emitters get a row label too.
    for (const obs::TraceEvent& event : telemetry_.trace().events()) {
      telemetry_.name_node(NodeId{event.tid}, telemetry_.node_name(NodeId{event.tid}));
    }
  }
}

void Deployment::start() {
  start_nodes();
  for (auto& client : clients_) client->start();
}

void Deployment::stop() {
  // Revoke the workload liveness token before anything else: scheduled
  // submission events (drivers and the plane alike) check it and become
  // no-ops, so nothing feeds requests into the stopping cluster.
  workload_alive_.reset();
  stop_nodes();
  for (auto& client : clients_) client->stop();
}

void Deployment::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

bool Deployment::run_until_committed(std::uint64_t per_client, TimePoint deadline) {
  const Duration chunk = Duration::seconds(1);
  while (sim_.now() < deadline) {
    if (workload_done(per_client)) return true;
    sim_.run_until(sim_.now() + chunk);
  }
  return workload_done(per_client);
}

bool Deployment::workload_done(std::uint64_t per_client) const {
  if (plane_ != nullptr) {
    // Open-loop plane: done once the generation window closed and every
    // submission committed (the plane never waits, so "per client" targets
    // do not apply).
    return plane_->generation_done() && committed_count() >= plane_->submitted();
  }
  return std::all_of(clients_.begin(), clients_.end(), [per_client](const auto& client) {
    return client->committed_count() >= per_client;
  });
}

void Deployment::schedule_workload(const WorkloadSpec& workload, LatencyRecorder* recorder,
                                   SubmitHook on_submit) {
  workload_alive_ = std::make_shared<const bool>(true);
  // Loss-free measurement runs disable retransmission so REQUEST traffic
  // matches the paper's testbed; chaos runs keep retries on.
  if (!workload.client_retries) {
    for (auto& client : clients_) client->set_retry_interval(Duration{0});
  }
  if (workload.mode == WorkloadMode::Plane) {
    std::vector<pbft::Client*> endpoints;
    std::vector<geo::GeoPoint> positions;
    endpoints.reserve(clients_.size());
    positions.reserve(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      endpoints.push_back(clients_[i].get());
      positions.push_back(placement_.position(i));
    }
    plane_ = std::make_unique<WorkloadPlane>(sim_, workload, std::move(endpoints),
                                             std::move(positions), telemetry_);
    plane_->start(recorder, std::move(on_submit), workload_alive_);
    return;
  }
  WorkloadConfig config;
  config.period = workload.period;
  config.payload_bytes = workload.payload_bytes;
  config.fee = workload.fee;
  config.start = workload.start;
  config.stagger = workload.stagger;
  config.count = workload.txs_per_client;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    sim::schedule_workload(sim_, *clients_[i], placement_.position(i), config, i, recorder,
                           on_submit, workload_alive_);
  }
}

std::uint64_t Deployment::committed_count() const {
  std::uint64_t committed = 0;
  for (const auto& client : clients_) committed += client->committed_count();
  return committed;
}

void Deployment::set_fault_mode(NodeId id, pbft::FaultMode mode) {
  (void)id;
  (void)mode;
}

bool Deployment::restart_node(NodeId id) {
  (void)id;
  return false;
}

void Deployment::attach_persistence(pbft::Replica& replica) {
  const NodeId id = replica.id();
  replica.set_persist_callback([this, id](const ledger::Chain& chain) {
    storage_.disk(id).save(ledger::serialize_chain(chain));
  });
}

void Deployment::restore_from_disk(pbft::Replica& replica) {
  const NodeId id = replica.id();
  if (!storage_.has(id) || storage_.disk(id).empty()) return;
  const Bytes& image = storage_.disk(id).image();
  auto restored = ledger::deserialize_chain(BytesView(image.data(), image.size()));
  if (!restored) {
    log_warn(id.str() + ": disk image rejected (" + restored.error() +
             "); restarting from genesis");
    return;
  }
  if (auto adopted = replica.restore_chain(restored.value()); !adopted) {
    log_warn(id.str() + ": restore stopped: " + adopted.error());
  }
}

void Deployment::note_restarted(pbft::Replica& replica) {
  telemetry_.count("node.restarts", replica.id());
  telemetry_.instant("restart", "chaos", replica.id(),
                     {{"height", std::to_string(replica.chain().height())}});
  if (monitor_ == nullptr) return;
  monitor_->watch(replica);
  monitor_->note_restart(replica.id(), replica.chain().height());
}

void Deployment::watch(InvariantMonitor& monitor) {
  monitor_ = &monitor;
  // The monitor's tallies and violation events join this deployment's
  // registry/trace, so exports carry the invariant verdicts too.
  monitor.set_telemetry(telemetry_);
}

void Deployment::finish_invariants(InvariantMonitor& monitor) { (void)monitor; }

void Deployment::enable_mac_plane(std::size_t threads, bool compute_macs) {
  if (threads <= 1) return;  // the seed's single-threaded execution
  runner_ = std::make_unique<net::OrderedRunner>(threads);
  // Hook runs at every on_arrival: submit the open prologue and pin the job
  // to the envelope. The prologue reads only the key registry (thread-safe,
  // pure) and the envelope's immutable payload cell — capturing the payload
  // by value is a refcount bump, and forcing a lazy seal on the worker is
  // exactly the point.
  network_.set_mac_plane(
      *runner_, [this, compute_macs](net::Envelope& envelope) {
        auto job = std::make_shared<net::OpenJob>();
        job->macs = compute_macs;
        job->ticket = runner_->submit(
            [&keys = keys_, from = envelope.from, to = envelope.to, type = envelope.type,
             payload = envelope.payload, compute_macs, job]() -> net::OrderedRunner::Epilogue {
              auto body = pbft::open(keys, from, to, type, payload.view(), compute_macs);
              // The epilogue publishes on the sim thread, in arrival order:
              // handlers never touch the job until release_until ran.
              return [job, body = std::move(body)]() mutable {
                job->body = std::move(body);
                job->ready = true;
              };
            });
        envelope.open_job = std::move(job);
      });
}

// --- PbftCluster -----------------------------------------------------------------

PbftCluster::PbftCluster(PbftClusterConfig config)
    : Deployment(config.seed, config.net, config.placement), config_(config) {
  enable_mac_plane(config.threads, config.pbft.compute_macs);
  // Genesis: the whole network is the committee (plain PBFT).
  ledger::GenesisConfig genesis_config;
  genesis_config.chain_seed = config.seed;
  for (std::size_t i = 0; i < config.replicas; ++i) {
    genesis_config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i + 1}, placement_.position(i)});
  }
  genesis_config.policy.min_endorsers = config.replicas;
  genesis_config.policy.max_endorsers = config.replicas;
  genesis_ = ledger::make_genesis_block(genesis_config);

  for (std::size_t i = 0; i < config.replicas; ++i) member_ids_.push_back(NodeId{i + 1});

  for (std::size_t i = 0; i < config.replicas; ++i) {
    replicas_.push_back(std::make_unique<pbft::Replica>(NodeId{i + 1}, member_ids_, genesis_,
                                                        config.pbft, network_, keys_));
    attach_persistence(*replicas_.back());
  }
  for (std::size_t i = 0; i < config.clients; ++i) {
    clients_.push_back(std::make_unique<pbft::Client>(NodeId{kClientIdBase + i + 1}, member_ids_,
                                                      network_, keys_,
                                                      config.pbft.compute_macs));
  }
}

void PbftCluster::start_nodes() {
  for (auto& replica : replicas_) replica->start();
}

void PbftCluster::stop_nodes() {
  for (auto& replica : replicas_) replica->stop();
}

std::vector<NodeId> PbftCluster::committee() const {
  std::vector<NodeId> out;
  out.reserve(replicas_.size());
  for (const auto& replica : replicas_) out.push_back(replica->id());
  return out;
}

void PbftCluster::set_fault_mode(NodeId id, pbft::FaultMode mode) {
  for (auto& replica : replicas_) {
    if (replica->id() == id) replica->set_fault_mode(mode);
  }
}

void PbftCluster::watch(InvariantMonitor& monitor) {
  Deployment::watch(monitor);
  for (auto& replica : replicas_) monitor.watch(*replica);
}

bool PbftCluster::restart_node(NodeId id) {
  for (auto& slot : replicas_) {
    if (slot->id() != id) continue;
    network_.recover(id);  // a reboot clears the crash flag and the backlog
    network_.detach(id);
    slot.reset();  // scheduled timers die with the lifetime token

    auto replica = std::make_unique<pbft::Replica>(id, member_ids_, genesis_, config_.pbft,
                                                   network_, keys_);
    restore_from_disk(*replica);  // replay happens before the monitor re-watches
    attach_persistence(*replica);
    note_restarted(*replica);
    replica->start();
    replica->begin_resync();
    slot = std::move(replica);
    return true;
  }
  return false;
}

// --- GpbftCluster ------------------------------------------------------------------

GpbftCluster::GpbftCluster(GpbftClusterConfig config)
    : Deployment(config.seed, config.net, config.placement), config_(std::move(config)) {
  enable_mac_plane(config_.threads, config_.protocol.pbft.compute_macs);
  const std::size_t committee_size = std::min(config_.initial_committee, config_.nodes);

  protocol_ = config_.protocol;
  protocol_.genesis.chain_seed = config_.seed;
  protocol_.genesis.area_prefix = placement_.area_prefix();
  protocol_.genesis.initial_endorsers.clear();
  for (std::size_t i = 0; i < committee_size; ++i) {
    protocol_.genesis.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i + 1}, placement_.position(i)});
  }
  genesis_ = ledger::make_genesis_block(protocol_.genesis);

  roster_.clear();
  for (std::size_t i = 0; i < committee_size; ++i) roster_.push_back(NodeId{i + 1});

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    const NodeId id{i + 1};
    const geo::GeoPoint position = placement_.position(i);
    area_.place(id, position);
    auto endorser = std::make_unique<::gpbft::gpbft::Endorser>(id, position, protocol_, genesis_,
                                                               network_, keys_, &area_);
    endorser->set_roster_callback(
        [this](EraId era, const std::vector<NodeId>& roster) { on_roster(era, roster); });
    attach_persistence(*endorser);
    endorsers_.push_back(std::move(endorser));
  }

  for (std::size_t i = 0; i < config_.clients; ++i) {
    const NodeId id{kClientIdBase + i + 1};
    // Clients sit next to "their" fixed device (one per node position).
    area_.place(id, placement_.position(i % std::max<std::size_t>(config_.nodes, 1)));
    clients_.push_back(std::make_unique<pbft::Client>(id, roster_, network_, keys_,
                                                      config_.protocol.pbft.compute_macs));
  }
}

void GpbftCluster::start_nodes() {
  for (auto& endorser : endorsers_) endorser->start_protocol();
}

void GpbftCluster::stop_nodes() {
  for (auto& endorser : endorsers_) endorser->stop_protocol();
}

void GpbftCluster::on_roster(EraId era, const std::vector<NodeId>& roster) {
  if (era <= era_) return;
  era_ = era;
  // Track the most recent promotion (highest newly seated id of the newest
  // era): TargetedCrash chaos events resolve their victim from this.
  for (NodeId member : roster) {
    if (std::find(roster_.begin(), roster_.end(), member) == roster_.end()) {
      latest_elected_ = member;
    }
  }
  roster_ = roster;
  for (auto& client : clients_) client->set_committee(roster);
  for (auto& endorser : endorsers_) {
    if (endorser->role() == ::gpbft::gpbft::Role::Candidate) {
      endorser->set_known_committee(roster);
    }
  }
}

std::vector<NodeId> GpbftCluster::fault_targets() const {
  const std::size_t committee_size = std::min(config_.initial_committee, config_.nodes);
  std::vector<NodeId> victims;
  for (std::size_t i = 0; i < committee_size; ++i) victims.push_back(NodeId{i + 1});
  return victims;
}

NodeId GpbftCluster::latest_elected() const {
  if (latest_elected_.value != 0) return latest_elected_;
  return Deployment::latest_elected();  // no promotion yet: a genesis member
}

void GpbftCluster::displace_node(NodeId id, bool displaced) {
  for (auto& endorser : endorsers_) {
    if (endorser->id() != id) continue;
    if (displaced) {
      if (displaced_origin_.contains(id)) return;  // already away from home
      const geo::GeoPoint origin = endorser->location();
      displaced_origin_[id] = origin;
      geo::GeoPoint moved = origin;
      // ~33 m north: far beyond the 5 m truthfulness tolerance (a different
      // CSC cell, so the stationarity timer resets) yet still inside the
      // precision-5 deployment area. Oracle and reported location move
      // together — the attack is *mobility*, not lying about position.
      moved.latitude += 0.0003;
      area_.place(id, moved);
      endorser->set_location(moved);
    } else {
      const auto it = displaced_origin_.find(id);
      if (it == displaced_origin_.end()) return;
      area_.place(id, it->second);
      endorser->set_location(it->second);
      displaced_origin_.erase(it);
    }
    telemetry_.instant("mobility.oscillate", "chaos", id,
                       {{"displaced", displaced ? "true" : "false"}});
    return;
  }
}

std::uint64_t GpbftCluster::total_era_switches() const {
  std::uint64_t max_switches = 0;
  for (const auto& endorser : endorsers_) {
    max_switches = std::max(max_switches, endorser->era_switches());
  }
  return max_switches;
}

void GpbftCluster::set_fault_mode(NodeId id, pbft::FaultMode mode) {
  for (auto& endorser : endorsers_) {
    if (endorser->id() == id) endorser->set_fault_mode(mode);
  }
}

void GpbftCluster::watch(InvariantMonitor& monitor) {
  Deployment::watch(monitor);
  for (auto& endorser : endorsers_) monitor.watch(*endorser);
}

bool GpbftCluster::restart_node(NodeId id) {
  for (auto& slot : endorsers_) {
    if (slot->id() != id) continue;
    network_.recover(id);
    network_.detach(id);
    slot.reset();

    const std::size_t index = static_cast<std::size_t>(id.value - 1);
    // A reboot re-seats the device at its home spot; drop any outstanding
    // mobility displacement so the oracle matches what it will report.
    if (displaced_origin_.erase(id) > 0) area_.place(id, placement_.position(index));
    auto endorser = std::make_unique<::gpbft::gpbft::Endorser>(
        id, placement_.position(index), protocol_, genesis_, network_, keys_, &area_);
    endorser->set_roster_callback(
        [this](EraId era, const std::vector<NodeId>& roster) { on_roster(era, roster); });
    // Replaying the disk image re-derives era, roster, production order and
    // enrolled cells from the persisted config blocks (on_executed path) —
    // the cluster's on_roster guard drops the stale callbacks this fires.
    restore_from_disk(*endorser);
    // A node whose image predates its own promotion (or that lost its disk)
    // comes back as a candidate; aim its reports at the live committee so
    // the next era can re-admit it.
    if (endorser->role() == ::gpbft::gpbft::Role::Candidate) {
      endorser->set_known_committee(roster_);
    }
    attach_persistence(*endorser);
    note_restarted(*endorser);
    endorser->start_protocol();
    endorser->begin_resync();
    slot = std::move(endorser);
    return true;
  }
  return false;
}

// --- DbftCluster -------------------------------------------------------------------

DbftCluster::DbftCluster(DbftClusterConfig config)
    : Deployment(config.seed, config.net, config.placement), config_(config) {
  enable_mac_plane(config.threads, config.pbft.compute_macs);
  const std::size_t delegate_count = std::min(config.nodes, config.delegates);
  ledger::GenesisConfig genesis_config;
  genesis_config.chain_seed = config.seed;
  for (std::size_t i = 0; i < delegate_count; ++i) {
    genesis_config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i + 1}, placement_.position(i)});
  }
  genesis_ = ledger::make_genesis_block(genesis_config);

  dbft_config_.pbft = config.pbft;
  dbft_config_.block_interval = config.block_interval;
  dbft_config_.delegate_count = config.delegates;
  dbft_config_.epoch_blocks = config.epoch_blocks;

  for (std::size_t i = 0; i < config.nodes; ++i) all_members_.push_back(NodeId{i + 1});
  roster_.assign(all_members_.begin(), all_members_.begin() + static_cast<long>(delegate_count));

  for (std::size_t i = 0; i < config.nodes; ++i) {
    members_.push_back(std::make_unique<dbft::Delegate>(NodeId{i + 1}, genesis_, dbft_config_,
                                                        stakes_, all_members_, network_, keys_));
    attach_persistence(*members_.back());
  }
  for (std::size_t i = 0; i < config.clients; ++i) {
    clients_.push_back(std::make_unique<pbft::Client>(NodeId{kClientIdBase + i + 1}, roster_,
                                                      network_, keys_, config.pbft.compute_macs));
  }
}

void DbftCluster::start_nodes() {
  for (auto& member : members_) member->start_protocol();
}

void DbftCluster::stop_nodes() {
  for (auto& member : members_) member->stop_protocol();
}

void DbftCluster::set_fault_mode(NodeId id, pbft::FaultMode mode) {
  for (auto& member : members_) {
    if (member->id() == id) member->set_fault_mode(mode);
  }
}

void DbftCluster::watch(InvariantMonitor& monitor) {
  Deployment::watch(monitor);
  for (auto& member : members_) monitor.watch(*member);
}

bool DbftCluster::restart_node(NodeId id) {
  for (auto& slot : members_) {
    if (slot->id() != id) continue;
    network_.recover(id);
    network_.detach(id);
    slot.reset();

    auto member = std::make_unique<dbft::Delegate>(id, genesis_, dbft_config_, stakes_,
                                                   all_members_, network_, keys_);
    // dBFT persists on every executed block (2f+1 PREPARE finality), so a
    // clean image resumes at the exact height it stopped at.
    restore_from_disk(*member);
    attach_persistence(*member);
    note_restarted(*member);
    member->start_protocol();
    member->begin_resync();
    slot = std::move(member);
    return true;
  }
  return false;
}

// --- PowCluster --------------------------------------------------------------------

namespace {

/// Constant-frequency PoW proposer: submissions travel to every miner as
/// unsealed transaction gossip (there is no reply path; confirmation is
/// observed on the miners' chains).
struct PowDriver {
  net::Simulator* sim;
  net::Network* network;
  std::vector<std::unique_ptr<pow::Miner>>* miners;
  std::uint64_t client_index;
  geo::GeoPoint location;
  Duration period;
  std::uint64_t remaining;
  std::size_t payload_bytes;
  Amount fee;
  Deployment::SubmitHook on_submit;
  RequestId next_request{1};
  // Liveness gate (see Deployment::stop): the simulator cannot cancel
  // events, so a scheduled step otherwise keeps this driver alive — and
  // submitting — after the deployment stopped.
  std::weak_ptr<const bool> alive;

  void step(const std::shared_ptr<PowDriver>& self) {
    if (alive.expired()) return;  // deployment stopped
    if (remaining == 0) return;
    --remaining;
    const NodeId client_id{kClientIdBase + client_index + 1};
    const ledger::Transaction tx =
        make_workload_tx(client_id, next_request++, location, sim->now(), payload_bytes, fee,
                         client_index);
    if (on_submit) on_submit(tx);
    const crypto::Hash256 digest = tx.digest();
    network->telemetry().count("client.submitted", client_id);
    network->telemetry().async_begin(request_trace_id(digest), client_id, "request", "client",
                                     {{"tx", digest.short_hex()}});
    // One encoded buffer refcounted across the whole miner fan-out.
    const net::Payload encoded{tx.encode()};
    for (const auto& miner : *miners) {
      net::Envelope envelope;
      envelope.from = NodeId{kClientIdBase + client_index + 1};
      envelope.to = miner->id();
      envelope.type = pbft::msg_type::kClientRequest;
      envelope.payload = encoded;
      network->send(std::move(envelope));
    }
    if (remaining > 0) {
      sim->schedule(period, [self]() { self->step(self); });
    }
  }
};

}  // namespace

PowCluster::PowCluster(PowClusterConfig config)
    : Deployment(config.seed, config.net, config.placement), config_(config) {
  miner_config_.hashrate = config.hashrate;
  // Network-wide solve rate = miners * hashrate / difficulty = 1/interval.
  miner_config_.difficulty = static_cast<std::uint64_t>(
      static_cast<double>(config.miners) * config.hashrate * config.block_interval.to_seconds());
  miner_config_.confirmation_depth = config.confirmations;
  miner_config_.max_batch_size = config.txs_per_block;
  genesis_ = pow::make_pow_genesis(miner_config_.difficulty);

  for (std::size_t i = 0; i < config.miners; ++i) miner_ids_.push_back(NodeId{i + 1});
  for (NodeId id : miner_ids_) {
    miners_.push_back(std::make_unique<pow::Miner>(id, miner_ids_, genesis_, miner_config_,
                                                   network_));
    wire_miner(*miners_.back());
  }
}

void PowCluster::wire_miner(pow::Miner& miner) {
  // Every miner observes confirmations; a transaction counts once, at its
  // first confirmation anywhere (robust when single miners are crashed or
  // partitioned while a watched transaction confirms).
  const NodeId observer = miner.id();
  miner.set_confirmed_callback([this, observer](const crypto::Hash256& digest, Duration latency) {
    if (confirmed_.insert(digest).second) {
      if (recorder_ != nullptr) recorder_->record(latency);
      telemetry_.observe("pow.confirm_seconds", latency.to_seconds());
      telemetry_.async_end(request_trace_id(digest), observer, "request", "client",
                           {{"depth", std::to_string(config_.confirmations)}});
    }
  });
  const NodeId id = miner.id();
  miner.set_persist_callback([this, id](const pow::PowChain& chain) {
    storage_.disk(id).save(pow::serialize_pow_chain(chain));
  });
}

bool PowCluster::restart_node(NodeId id) {
  for (auto& slot : miners_) {
    if (slot->id() != id) continue;
    network_.recover(id);
    network_.detach(id);
    slot.reset();

    auto miner = std::make_unique<pow::Miner>(id, miner_ids_, genesis_, miner_config_, network_);
    if (storage_.has(id) && !storage_.disk(id).empty()) {
      const Bytes& image = storage_.disk(id).image();
      if (auto blocks = pow::deserialize_pow_chain(BytesView(image.data(), image.size()))) {
        miner->restore_chain(blocks.value());
      } else {
        log_warn(id.str() + ": pow disk image rejected (" + blocks.error() +
                 "); restarting from genesis");
      }
    }
    wire_miner(*miner);
    telemetry_.count("node.restarts", id);
    telemetry_.instant("restart", "chaos", id,
                       {{"height", std::to_string(miner->chain().tip_height())}});
    if (monitor_ != nullptr) {
      // No online execution hook for PoW; the restart is still recorded so
      // restart bookkeeping (and finish_invariants' replay) sees it.
      monitor_->note_restart(id, miner->chain().tip_height());
    }
    // Gossip closes the gap: the next announced block triggers the orphan
    // parent-fetch walk back to whatever the restored image ends at.
    miner->start();
    slot = std::move(miner);
    return true;
  }
  return false;
}

void PowCluster::start_nodes() {
  for (auto& miner : miners_) miner->start();
}

void PowCluster::stop_nodes() {
  for (auto& miner : miners_) miner->stop();
}

std::vector<NodeId> PowCluster::committee() const {
  std::vector<NodeId> out;
  out.reserve(miners_.size());
  for (const auto& miner : miners_) out.push_back(miner->id());
  return out;
}

void PowCluster::schedule_workload(const WorkloadSpec& workload, LatencyRecorder* recorder,
                                   SubmitHook on_submit) {
  recorder_ = recorder;
  workload_alive_ = std::make_shared<const bool>(true);
  if (workload.mode == WorkloadMode::Plane) {
    // PoW proposers are gossip drivers, not pbft::Clients, so the plane's
    // endpoint multiplexing does not apply; fall back to per-client streams.
    log_warn("workload.mode=plane is not supported for PoW; using per-client drivers");
  }
  for (std::size_t i = 0; i < config_.clients; ++i) {
    auto driver = std::make_shared<PowDriver>();
    driver->sim = &sim_;
    driver->network = &network_;
    driver->miners = &miners_;
    driver->client_index = i;
    driver->location = placement_.position(i);
    driver->period = workload.period;
    driver->remaining = workload.txs_per_client;
    driver->payload_bytes = workload.payload_bytes;
    driver->fee = workload.fee;
    driver->on_submit = on_submit;
    driver->alive = workload_alive_;
    sim_.schedule_at(workload.start + workload.stagger * static_cast<std::int64_t>(i),
                     [driver]() { driver->step(driver); });
  }
}

double PowCluster::hashes_computed() const {
  double hashes = 0;
  for (const auto& miner : miners_) hashes += miner->hashes_computed();
  return hashes;
}

bool PowCluster::workload_done(std::uint64_t per_client) const {
  return confirmed_.size() >= per_client * config_.clients;
}

void PowCluster::finish_invariants(InvariantMonitor& monitor) {
  // Agreement for PoW is probabilistic, bounded by the confirmation depth:
  // honest miners must agree on every block that either of them considers
  // confirmed. Validity/duplicate checks run over the same prefix.
  for (const auto& miner : miners_) {
    const Height tip = miner->chain().tip_height();
    if (tip < config_.confirmations) continue;
    const Height limit = tip - config_.confirmations;
    for (const pow::PowBlock& block : miner->chain().best_chain()) {
      const Height height = block.header.height;
      if (height == 0 || height > limit) continue;  // genesis is shared by construction
      monitor.check_block_hash(miner->id(), height, block.hash());
      for (const ledger::Transaction& tx : block.transactions) {
        monitor.check_transaction(miner->id(), height, tx);
      }
    }
  }
}

// --- factory ---------------------------------------------------------------------

pbft::PbftConfig to_pbft_config(const EngineSpec& engine) {
  pbft::PbftConfig config;
  config.max_batch_size = engine.batch_size;
  config.pipeline_depth = engine.pipeline_depth;
  config.checkpoint_interval = engine.checkpoint_interval;
  config.compute_macs = engine.compute_macs;
  config.request_timeout = engine.request_timeout;
  config.view_change_timeout = engine.view_change_timeout;
  return config;
}

pbft::PbftConfig to_pbft_config(const EngineSpec& engine, const BatchSpec& batch) {
  pbft::PbftConfig config = to_pbft_config(engine);
  config.batch_close_size = batch.size;
  config.batch_close_timeout = batch.timeout;
  return config;
}

std::unique_ptr<PbftCluster> make_pbft_deployment(const ScenarioSpec& spec) {
  PbftClusterConfig config;
  config.replicas = spec.nodes;
  config.clients = spec.clients;
  config.seed = spec.seed;
  config.threads = spec.threads;
  config.net = spec.net;
  config.pbft = to_pbft_config(spec.engine, spec.batch);
  config.placement = spec.placement;
  return std::make_unique<PbftCluster>(config);
}

std::unique_ptr<GpbftCluster> make_gpbft_deployment(const ScenarioSpec& spec) {
  GpbftClusterConfig config;
  config.nodes = spec.nodes;
  config.initial_committee = std::min(spec.committee.initial, spec.nodes);
  config.clients = spec.clients;
  config.seed = spec.seed;
  config.threads = spec.threads;
  config.net = spec.net;
  config.placement = spec.placement;
  config.protocol.pbft = to_pbft_config(spec.engine, spec.batch);
  config.protocol.genesis.era_period = spec.committee.era_period;
  config.protocol.genesis.policy.min_endorsers = spec.committee.min;
  config.protocol.genesis.policy.max_endorsers = spec.committee.max;
  config.protocol.genesis.geo_report_period = spec.geo.report_period;
  config.protocol.genesis.geo_window = spec.geo.window;
  config.protocol.genesis.min_geo_reports = spec.geo.min_reports;
  config.protocol.genesis.promotion_threshold = spec.geo.promotion_threshold;
  config.protocol.geo_reports_on_chain = spec.geo.reports_on_chain;
  config.protocol.genesis.reputation.enabled = spec.reputation.enabled;
  config.protocol.genesis.reputation.half_life = spec.reputation.half_life;
  config.protocol.genesis.reputation.quarantine_enter = spec.reputation.quarantine_enter;
  config.protocol.genesis.reputation.quarantine_exit = spec.reputation.quarantine_exit;
  config.protocol.genesis.sybil_rate_factor = spec.reputation.sybil_rate_factor;
  return std::make_unique<GpbftCluster>(config);
}

std::unique_ptr<DbftCluster> make_dbft_deployment(const ScenarioSpec& spec) {
  DbftClusterConfig config;
  config.nodes = spec.nodes;
  config.clients = spec.clients;
  config.seed = spec.seed;
  config.threads = spec.threads;
  config.net = spec.net;
  config.pbft = to_pbft_config(spec.engine, spec.batch);
  config.block_interval = spec.dbft.block_interval;
  config.delegates = spec.dbft.delegates;
  config.epoch_blocks = spec.dbft.epoch_blocks;
  config.placement = spec.placement;
  return std::make_unique<DbftCluster>(config);
}

std::unique_ptr<PowCluster> make_pow_deployment(const ScenarioSpec& spec) {
  PowClusterConfig config;
  config.miners = spec.nodes;
  config.clients = spec.clients;
  config.seed = spec.seed;
  config.net = spec.net;
  config.txs_per_block = spec.engine.batch_size;
  config.block_interval = spec.pow.block_interval;
  config.confirmations = spec.pow.confirmations;
  config.hashrate = spec.pow.hashrate;
  config.placement = spec.placement;
  return std::make_unique<PowCluster>(config);
}

std::unique_ptr<Deployment> make_deployment(const ScenarioSpec& spec) {
  switch (spec.protocol) {
    case ProtocolKind::Pbft: return make_pbft_deployment(spec);
    case ProtocolKind::Gpbft: return make_gpbft_deployment(spec);
    case ProtocolKind::Dbft: return make_dbft_deployment(spec);
    case ProtocolKind::Pow: return make_pow_deployment(spec);
  }
  return nullptr;
}

}  // namespace gpbft::sim
