#include "sim/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace gpbft::sim {

namespace {
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  // Clamp p into [0, 100]: a negative rank cast to size_t or a rank past
  // the last element would otherwise index out of bounds.
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

BoxplotStats BoxplotStats::from_samples(std::vector<double> samples) {
  BoxplotStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.min = samples.front();
  stats.max = samples.back();
  stats.q1 = percentile_sorted(samples, 25.0);
  stats.median = percentile_sorted(samples, 50.0);
  stats.q3 = percentile_sorted(samples, 75.0);
  stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
  return stats;
}

std::string BoxplotStats::str() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f (n=%zu)", min, q1, median,
                q3, max, mean, count);
  return buf;
}

double LatencyRecorder::mean() const {
  if (seconds_.empty()) return 0.0;
  return std::accumulate(seconds_.begin(), seconds_.end(), 0.0) /
         static_cast<double>(seconds_.size());
}

double LatencyRecorder::percentile(double p) const {
  std::vector<double> sorted = seconds_;
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

}  // namespace gpbft::sim
