#include "sim/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "sim/deployment.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {

namespace {

std::string time_str(TimePoint at) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", at.to_seconds());
  return buf;
}

std::string nodes_str(const std::vector<NodeId>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(nodes[i].value);
  }
  return out;
}

const char* chaos_kind_name(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::Crash: return "crash";
    case ChaosEvent::Kind::Recover: return "recover";
    case ChaosEvent::Kind::Partition: return "partition";
    case ChaosEvent::Kind::Heal: return "heal";
    case ChaosEvent::Kind::LinkFault: return "link_fault";
    case ChaosEvent::Kind::LinkClear: return "link_clear";
    case ChaosEvent::Kind::Brownout: return "brownout";
    case ChaosEvent::Kind::BrownoutClear: return "brownout_clear";
    case ChaosEvent::Kind::Byzantine: return "byzantine";
    case ChaosEvent::Kind::ByzantineHeal: return "byzantine_heal";
    case ChaosEvent::Kind::Restart: return "restart";
    case ChaosEvent::Kind::DiskFault: return "disk_fault";
    case ChaosEvent::Kind::SybilBurst: return "sybil_burst";
    case ChaosEvent::Kind::SybilHeal: return "sybil_heal";
    case ChaosEvent::Kind::TargetedCrash: return "targeted_crash";
    case ChaosEvent::Kind::OscillateMobility: return "oscillate_mobility";
    case ChaosEvent::Kind::OscillateRestore: return "oscillate_restore";
    case ChaosEvent::Kind::Tamper: return "tamper";
    case ChaosEvent::Kind::TamperHeal: return "tamper_heal";
  }
  return "unknown";
}

const char* tamper_mode_name(net::TamperRule::Mode mode) {
  switch (mode) {
    case net::TamperRule::Mode::Replace: return "replace";
    case net::TamperRule::Mode::Inject: return "inject";
  }
  return "unknown";
}

const char* fault_mode_name(pbft::FaultMode mode) {
  switch (mode) {
    case pbft::FaultMode::None: return "none";
    case pbft::FaultMode::Silent: return "silent";
    case pbft::FaultMode::EquivocateDigest: return "equivocate";
    case pbft::FaultMode::CorruptProposals: return "corrupt-proposals";
    case pbft::FaultMode::SybilGeoReports: return "sybil-geo-reports";
  }
  return "unknown";
}

}  // namespace

// --- ChaosEvent -------------------------------------------------------------------

std::string ChaosEvent::describe() const {
  std::string out = time_str(at) + " ";
  char buf[128];
  switch (kind) {
    case Kind::Crash:
      out += "crash node " + nodes_str(nodes);
      break;
    case Kind::Recover:
      out += "recover node " + nodes_str(nodes);
      break;
    case Kind::Partition:
      out += "partition {" + nodes_str(nodes) + "} from the rest";
      break;
    case Kind::Heal:
      out += "heal partition";
      break;
    case Kind::LinkFault:
      std::snprintf(buf, sizeof(buf), "link %llu->%llu loss=%.2f lat+=%.0fms dup=%.2f reorder=%.0fms",
                    static_cast<unsigned long long>(nodes.at(0).value),
                    static_cast<unsigned long long>(nodes.at(1).value), fault.loss,
                    fault.extra_latency.to_millis(), fault.duplicate,
                    fault.reorder_window.to_millis());
      out += buf;
      break;
    case Kind::LinkClear:
      out += "clear link " + std::to_string(nodes.at(0).value) + "->" +
             std::to_string(nodes.at(1).value);
      break;
    case Kind::Brownout:
      std::snprintf(buf, sizeof(buf), "brownout node %llu x%.1f",
                    static_cast<unsigned long long>(nodes.at(0).value), factor);
      out += buf;
      break;
    case Kind::BrownoutClear:
      out += "brownout clear node " + nodes_str(nodes);
      break;
    case Kind::Byzantine:
      out += "byzantine node " + nodes_str(nodes) + " mode=" + fault_mode_name(mode);
      break;
    case Kind::ByzantineHeal:
      out += "byzantine heal node " + nodes_str(nodes);
      break;
    case Kind::Restart:
      out += "restart node " + nodes_str(nodes);
      break;
    case Kind::DiskFault:
      out += "disk fault node " + nodes_str(nodes) + " kind=" + disk_fault_name(disk);
      break;
    case Kind::SybilBurst:
      out += "sybil burst node " + nodes_str(nodes);
      break;
    case Kind::SybilHeal:
      out += "sybil heal node " + nodes_str(nodes);
      break;
    case Kind::TargetedCrash:
      std::snprintf(buf, sizeof(buf), "targeted crash (latest elected) hold=%.3fs",
                    hold.to_seconds());
      out += buf;
      break;
    case Kind::OscillateMobility:
      out += "oscillate mobility node " + nodes_str(nodes);
      break;
    case Kind::OscillateRestore:
      out += "oscillate restore node " + nodes_str(nodes);
      break;
    case Kind::Tamper:
      std::snprintf(buf, sizeof(buf), "tamper wire mode=%s rate=%.3f",
                    tamper_mode_name(tamper_rule.mode), tamper_rule.chance);
      out += buf;
      break;
    case Kind::TamperHeal:
      out += "tamper heal";
      break;
  }
  return out;
}

ChaosEvent ChaosEvent::crash(TimePoint at, NodeId victim) {
  return ChaosEvent{at, Kind::Crash, {victim}};
}
ChaosEvent ChaosEvent::recover(TimePoint at, NodeId victim) {
  return ChaosEvent{at, Kind::Recover, {victim}};
}
ChaosEvent ChaosEvent::partition(TimePoint at, std::vector<NodeId> minority) {
  return ChaosEvent{at, Kind::Partition, std::move(minority)};
}
ChaosEvent ChaosEvent::heal(TimePoint at) { return ChaosEvent{at, Kind::Heal, {}}; }
ChaosEvent ChaosEvent::link_fault(TimePoint at, NodeId from, NodeId to, net::LinkFault fault) {
  ChaosEvent event{at, Kind::LinkFault, {from, to}};
  event.fault = fault;
  return event;
}
ChaosEvent ChaosEvent::link_clear(TimePoint at, NodeId from, NodeId to) {
  return ChaosEvent{at, Kind::LinkClear, {from, to}};
}
ChaosEvent ChaosEvent::brownout(TimePoint at, NodeId victim, double factor) {
  ChaosEvent event{at, Kind::Brownout, {victim}};
  event.factor = factor;
  return event;
}
ChaosEvent ChaosEvent::brownout_clear(TimePoint at, NodeId victim) {
  return ChaosEvent{at, Kind::BrownoutClear, {victim}};
}
ChaosEvent ChaosEvent::byzantine(TimePoint at, NodeId victim, pbft::FaultMode mode) {
  ChaosEvent event{at, Kind::Byzantine, {victim}};
  event.mode = mode;
  return event;
}
ChaosEvent ChaosEvent::byzantine_heal(TimePoint at, NodeId victim) {
  ChaosEvent event{at, Kind::ByzantineHeal, {victim}};
  event.mode = pbft::FaultMode::None;
  return event;
}
ChaosEvent ChaosEvent::restart(TimePoint at, NodeId victim) {
  return ChaosEvent{at, Kind::Restart, {victim}};
}
ChaosEvent ChaosEvent::disk_fault(TimePoint at, NodeId victim, DiskFaultKind kind) {
  ChaosEvent event{at, Kind::DiskFault, {victim}};
  event.disk = kind;
  return event;
}
ChaosEvent ChaosEvent::sybil_burst(TimePoint at, NodeId victim) {
  ChaosEvent event{at, Kind::SybilBurst, {victim}};
  event.mode = pbft::FaultMode::SybilGeoReports;
  return event;
}
ChaosEvent ChaosEvent::sybil_heal(TimePoint at, NodeId victim) {
  ChaosEvent event{at, Kind::SybilHeal, {victim}};
  event.mode = pbft::FaultMode::None;
  return event;
}
ChaosEvent ChaosEvent::targeted_crash(TimePoint at, Duration hold) {
  ChaosEvent event{at, Kind::TargetedCrash, {}};
  event.hold = hold;
  return event;
}
ChaosEvent ChaosEvent::oscillate_mobility(TimePoint at, NodeId victim) {
  return ChaosEvent{at, Kind::OscillateMobility, {victim}};
}
ChaosEvent ChaosEvent::oscillate_restore(TimePoint at, NodeId victim) {
  return ChaosEvent{at, Kind::OscillateRestore, {victim}};
}
ChaosEvent ChaosEvent::tamper(TimePoint at, net::TamperRule rule) {
  ChaosEvent event{at, Kind::Tamper, {}};
  event.tamper_rule = std::move(rule);
  return event;
}
ChaosEvent ChaosEvent::tamper_heal(TimePoint at) { return ChaosEvent{at, Kind::TamperHeal, {}}; }

// --- ChaosProfile ------------------------------------------------------------------

ChaosProfile ChaosProfile::light() {
  ChaosProfile profile;
  profile.crash_chance = 0.15;
  profile.link_fault_chance = 0.15;
  profile.brownout_chance = 0.1;
  profile.partition_chance = 0.0;
  profile.byzantine_chance = 0.0;
  profile.max_loss = 0.1;
  profile.max_duplicate = 0.15;
  profile.max_brownout = 4.0;
  return profile;
}

ChaosProfile ChaosProfile::medium() {
  ChaosProfile profile;
  profile.crash_chance = 0.25;
  profile.link_fault_chance = 0.25;
  profile.brownout_chance = 0.2;
  profile.partition_chance = 0.1;
  profile.byzantine_chance = 0.0;
  profile.max_loss = 0.2;
  profile.max_duplicate = 0.25;
  profile.max_brownout = 6.0;
  return profile;
}

ChaosProfile ChaosProfile::heavy() {
  ChaosProfile profile;
  profile.crash_chance = 0.35;
  profile.link_fault_chance = 0.35;
  profile.brownout_chance = 0.3;
  profile.partition_chance = 0.15;
  profile.byzantine_chance = 0.15;
  profile.max_loss = 0.3;
  profile.max_extra_latency = Duration::millis(80);
  profile.max_duplicate = 0.4;
  profile.max_reorder = Duration::millis(40);
  profile.max_brownout = 10.0;
  return profile;
}

// --- FaultPlan ---------------------------------------------------------------------

FaultPlan& FaultPlan::add(ChaosEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const ChaosProfile& profile,
                            const std::vector<NodeId>& nodes, Duration horizon) {
  FaultPlan plan;
  if (nodes.empty() || profile.step.ns <= 0) return plan;
  Rng rng(seed);
  // Durability faults (restart / disk corruption) draw from a forked stream:
  // enabling them must not shift the draws of the pre-existing families, so
  // a plan with restart_chance == 0 is byte-identical to one generated
  // before these families existed.
  Rng durability = rng.fork(0x64757261'62696c69ull);
  // Election-attack families likewise draw from their own stream: plans
  // with all attack chances at zero stay byte-identical to older ones.
  Rng election = rng.fork(0x656c6563'74696f6eull);
  // Wire-tamper windows: same forked-stream discipline ("tamper").
  Rng wire = rng.fork(0x74616d'706572ull);

  std::map<std::uint64_t, std::int64_t> down_until;  // node -> instant it is healthy again
  std::int64_t partition_until = 0;                  // one partition at a time
  std::int64_t targeted_until = 0;  // fire-time-resolved crash window (victim unknown here)
  std::int64_t tamper_until = 0;    // one wire adversary at a time

  const auto faulty_at = [&down_until, &targeted_until](std::int64_t t) {
    std::size_t n = targeted_until > t ? 1 : 0;
    for (const auto& [node, until] : down_until) {
      (void)node;
      if (until > t) ++n;
    }
    return n;
  };
  const auto pick_healthy = [&](std::int64_t t) -> std::optional<NodeId> {
    std::vector<NodeId> healthy;
    for (NodeId node : nodes) {
      const auto it = down_until.find(node.value);
      if (it == down_until.end() || it->second <= t) healthy.push_back(node);
    }
    if (healthy.empty()) return std::nullopt;
    return healthy[rng.uniform(0, healthy.size() - 1)];
  };
  const auto random_node = [&rng, &nodes]() { return nodes[rng.uniform(0, nodes.size() - 1)]; };

  // Every fault starts no later than horizon - fault_duration, so the whole
  // plan (heals included) fits inside the horizon.
  for (std::int64_t t = profile.step.ns; t + profile.fault_duration.ns <= horizon.ns;
       t += profile.step.ns) {
    const std::int64_t heal_at = t + profile.fault_duration.ns;

    if (rng.chance(profile.crash_chance) && faulty_at(t) < profile.max_faulty) {
      if (const auto victim = pick_healthy(t)) {
        plan.add(ChaosEvent::crash(TimePoint{t}, *victim));
        plan.add(ChaosEvent::recover(TimePoint{heal_at}, *victim));
        down_until[victim->value] = heal_at;
      }
    }
    if (rng.chance(profile.byzantine_chance) && faulty_at(t) < profile.max_faulty) {
      if (const auto victim = pick_healthy(t)) {
        static constexpr pbft::FaultMode kModes[] = {pbft::FaultMode::Silent,
                                                     pbft::FaultMode::EquivocateDigest,
                                                     pbft::FaultMode::CorruptProposals};
        plan.add(ChaosEvent::byzantine(TimePoint{t}, *victim, kModes[rng.uniform(0, 2)]));
        plan.add(ChaosEvent::byzantine_heal(TimePoint{heal_at}, *victim));
        down_until[victim->value] = heal_at;
      }
    }
    if (rng.chance(profile.partition_chance) && partition_until <= t &&
        faulty_at(t) < profile.max_faulty) {
      const std::size_t budget = profile.max_faulty - faulty_at(t);
      std::vector<NodeId> minority;
      const std::size_t want = rng.uniform(1, budget);
      for (std::size_t i = 0; i < want; ++i) {
        if (const auto victim = pick_healthy(t)) {
          minority.push_back(*victim);
          down_until[victim->value] = heal_at;
        }
      }
      if (!minority.empty()) {
        plan.add(ChaosEvent::partition(TimePoint{t}, minority));
        plan.add(ChaosEvent::heal(TimePoint{heal_at}));
        partition_until = heal_at;
      }
    }
    if (rng.chance(profile.link_fault_chance) && nodes.size() >= 2) {
      const NodeId from = random_node();
      NodeId to = random_node();
      while (to == from) to = random_node();
      net::LinkFault fault;
      fault.loss = rng.uniform_real(0.0, profile.max_loss);
      fault.extra_latency = Duration{static_cast<std::int64_t>(
          rng.uniform(0, static_cast<std::uint64_t>(profile.max_extra_latency.ns)))};
      fault.duplicate = rng.uniform_real(0.0, profile.max_duplicate);
      fault.reorder_window = Duration{static_cast<std::int64_t>(
          rng.uniform(0, static_cast<std::uint64_t>(profile.max_reorder.ns)))};
      plan.add(ChaosEvent::link_fault(TimePoint{t}, from, to, fault));
      plan.add(ChaosEvent::link_clear(TimePoint{heal_at}, from, to));
    }
    if (rng.chance(profile.brownout_chance)) {
      plan.add(ChaosEvent::brownout(TimePoint{t}, random_node(),
                                    rng.uniform_real(2.0, profile.max_brownout)));
      plan.add(ChaosEvent::brownout_clear(TimePoint{heal_at}, plan.events_.back().nodes[0]));
    }
    if (durability.chance(profile.restart_chance) && faulty_at(t) < profile.max_faulty) {
      std::vector<NodeId> healthy;
      for (NodeId node : nodes) {
        const auto it = down_until.find(node.value);
        if (it == down_until.end() || it->second <= t) healthy.push_back(node);
      }
      if (!healthy.empty()) {
        const NodeId victim = healthy[durability.uniform(0, healthy.size() - 1)];
        plan.add(ChaosEvent::restart(TimePoint{t}, victim));
        // The reboot itself is instantaneous, but the node may lag until
        // resync closes the gap — budget it as faulty for a fault window so
        // other families cannot push the system past f alongside it.
        down_until[victim.value] = heal_at;
      }
    }
    if (durability.chance(profile.disk_fault_chance)) {
      static constexpr DiskFaultKind kDiskKinds[] = {
          DiskFaultKind::TornWrite, DiskFaultKind::BitRot, DiskFaultKind::StaleSnapshot};
      const NodeId victim = nodes[durability.uniform(0, nodes.size() - 1)];
      plan.add(
          ChaosEvent::disk_fault(TimePoint{t}, victim, kDiskKinds[durability.uniform(0, 2)]));
    }
    // Election-attack families. A Sybil flooder stays live on the consensus
    // plane, but budget it as faulty anyway: reputation may quarantine it
    // out of the committee, and the roster must keep a 2f+1 honest quorum.
    if (election.chance(profile.sybil_burst_chance) && faulty_at(t) < profile.max_faulty) {
      std::vector<NodeId> healthy;
      for (NodeId node : nodes) {
        const auto it = down_until.find(node.value);
        if (it == down_until.end() || it->second <= t) healthy.push_back(node);
      }
      if (!healthy.empty()) {
        const NodeId victim = healthy[election.uniform(0, healthy.size() - 1)];
        // A flood shorter than the audit window is pointless for the
        // attacker (no rate anomaly ever spans a full window), so bursts
        // run 3x the ordinary fault duration, clamped to the horizon.
        const std::int64_t flood_heal =
            std::min(t + 3 * profile.fault_duration.ns, horizon.ns);
        plan.add(ChaosEvent::sybil_burst(TimePoint{t}, victim));
        plan.add(ChaosEvent::sybil_heal(TimePoint{flood_heal}, victim));
        down_until[victim.value] = flood_heal;
      }
    }
    if (election.chance(profile.targeted_crash_chance) && targeted_until <= t &&
        faulty_at(t) < profile.max_faulty) {
      // The victim — the most-recently-elected endorser — is only known at
      // fire time (ChaosHandlers::resolve_target); reserve one budget slot
      // for the hold window regardless of who it lands on.
      plan.add(ChaosEvent::targeted_crash(TimePoint{t}, profile.fault_duration));
      targeted_until = heal_at;
    }
    if (election.chance(profile.oscillate_chance)) {
      const NodeId victim = nodes[election.uniform(0, nodes.size() - 1)];
      plan.add(ChaosEvent::oscillate_mobility(TimePoint{t}, victim));
      plan.add(ChaosEvent::oscillate_restore(TimePoint{heal_at}, victim));
    }
    // The wire adversary attacks messages, not nodes: it never consumes the
    // concurrent-fault budget. One window at a time keeps the installed
    // rule unambiguous (set_tamper replaces, so overlap would double-heal).
    if (wire.chance(profile.tamper_chance) && tamper_until <= t) {
      net::TamperRule rule = profile.tamper_template;
      rule.chance = wire.uniform_real(0.02, std::max(0.02, profile.max_tamper_rate));
      plan.add(ChaosEvent::tamper(TimePoint{t}, std::move(rule)));
      plan.add(ChaosEvent::tamper_heal(TimePoint{heal_at}));
      tamper_until = heal_at;
    }
  }
  return plan;
}

TimePoint FaultPlan::all_healed_at() const {
  TimePoint healed{};
  for (const ChaosEvent& event : events_) healed = std::max(healed, event.at);
  return healed;
}

std::string FaultPlan::describe() const {
  std::vector<const ChaosEvent*> ordered;
  ordered.reserve(events_.size());
  for (const ChaosEvent& event : events_) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ChaosEvent* a, const ChaosEvent* b) { return a->at < b->at; });
  std::string out;
  for (const ChaosEvent* event : ordered) out += event->describe() + "\n";
  return out;
}

void FaultPlan::schedule(net::Simulator& sim, net::Network& network,
                         ByzantineSetter set_byzantine, EventHook hook) const {
  ChaosHandlers handlers;
  handlers.set_byzantine = std::move(set_byzantine);
  handlers.hook = std::move(hook);
  schedule(sim, network, handlers);
}

void FaultPlan::schedule(net::Simulator& sim, net::Network& network,
                         const ChaosHandlers& handlers) const {
  for (const ChaosEvent& event : events_) {
    sim.schedule_at(event.at, [&sim, &network, handlers, event]() {
      switch (event.kind) {
        case ChaosEvent::Kind::Crash:
          for (NodeId node : event.nodes) network.crash(node);
          break;
        case ChaosEvent::Kind::Recover:
          for (NodeId node : event.nodes) network.recover(node);
          break;
        case ChaosEvent::Kind::Partition:
          // Group 0 (implicit for unmentioned nodes, clients included) is
          // the majority; the event's nodes form the isolated minority.
          network.partition({{}, event.nodes});
          break;
        case ChaosEvent::Kind::Heal:
          network.heal_partition();
          break;
        case ChaosEvent::Kind::LinkFault:
          network.set_link_fault(event.nodes.at(0), event.nodes.at(1), event.fault);
          break;
        case ChaosEvent::Kind::LinkClear:
          network.clear_link_fault(event.nodes.at(0), event.nodes.at(1));
          break;
        case ChaosEvent::Kind::Brownout:
          network.set_brownout(event.nodes.at(0), event.factor);
          break;
        case ChaosEvent::Kind::BrownoutClear:
          network.clear_brownout(event.nodes.at(0));
          break;
        case ChaosEvent::Kind::Byzantine:
        case ChaosEvent::Kind::ByzantineHeal:
          if (handlers.set_byzantine) handlers.set_byzantine(event.nodes.at(0), event.mode);
          break;
        case ChaosEvent::Kind::Restart:
          if (handlers.restart) handlers.restart(event.nodes.at(0));
          break;
        case ChaosEvent::Kind::DiskFault:
          if (handlers.disk_fault) handlers.disk_fault(event.nodes.at(0), event.disk);
          break;
        case ChaosEvent::Kind::SybilBurst:
        case ChaosEvent::Kind::SybilHeal:
          if (handlers.set_byzantine) handlers.set_byzantine(event.nodes.at(0), event.mode);
          break;
        case ChaosEvent::Kind::TargetedCrash:
          if (handlers.resolve_target) {
            const NodeId victim = handlers.resolve_target();
            network.crash(victim);
            sim.schedule(event.hold, [&network, victim]() { network.recover(victim); });
          }
          break;
        case ChaosEvent::Kind::OscillateMobility:
          if (handlers.oscillate) handlers.oscillate(event.nodes.at(0), /*displaced=*/true);
          break;
        case ChaosEvent::Kind::OscillateRestore:
          if (handlers.oscillate) handlers.oscillate(event.nodes.at(0), /*displaced=*/false);
          break;
        case ChaosEvent::Kind::Tamper:
          network.set_tamper(event.tamper_rule);
          break;
        case ChaosEvent::Kind::TamperHeal:
          network.clear_tamper();
          break;
      }
      // Fault injections land in the same telemetry stream the protocols
      // write to, so a trace shows cause (chaos) next to effect (phases).
      obs::Telemetry& tel = network.telemetry();
      tel.count(std::string("chaos.") + chaos_kind_name(event.kind));
      tel.instant(std::string("chaos.") + chaos_kind_name(event.kind), "chaos",
                  event.nodes.empty() ? NodeId{0} : event.nodes.front(),
                  {{"detail", event.describe()}});
      if (handlers.hook) handlers.hook(event);
    });
  }
}

// --- campaigns ---------------------------------------------------------------------

ChaosProfile profile_for(const std::string& intensity) {
  if (intensity == "light") return ChaosProfile::light();
  if (intensity == "medium") return ChaosProfile::medium();
  if (intensity == "heavy") return ChaosProfile::heavy();
  if (intensity == "none") {
    // All-zero: no family fires until a campaign opts one in on top.
    ChaosProfile profile;
    profile.crash_chance = 0.0;
    profile.partition_chance = 0.0;
    profile.byzantine_chance = 0.0;
    profile.link_fault_chance = 0.0;
    profile.brownout_chance = 0.0;
    return profile;
  }
  std::fprintf(stderr, "unknown chaos intensity: %s\n", intensity.c_str());
  std::abort();
}

namespace {

/// Decorrelates (base seed, run index, intensity) into a plan seed.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t run, const std::string& intensity) {
  std::uint64_t h = base * 0x9e3779b97f4a7c15ull + run * 0x2545f4914f6cdd1dull;
  for (const char c : intensity) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return splitmix64(h);
}

/// The ScenarioSpec a chaos run deploys for `protocol`. Shared pieces:
/// campaign workload with retries on (faulty networks), PBFT timeouts tuned
/// below the horizon so view changes fire under faults.
ScenarioSpec chaos_scenario(ProtocolKind protocol, const ChaosCampaignOptions& options,
                            std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.seed = seed;
  spec.nodes = options.committee;
  spec.clients = options.clients;
  spec.workload.txs_per_client = options.txs_per_client;
  spec.workload.period = options.tx_period;
  spec.engine.request_timeout = Duration::seconds(6);
  spec.engine.view_change_timeout = Duration::seconds(5);
  // Only the G-PBFT deployment reads this; for the other protocols it is
  // inert configuration.
  spec.reputation.enabled = options.reputation;
  switch (protocol) {
    case ProtocolKind::Pbft:
      break;
    case ProtocolKind::Gpbft:
      // Candidates join mid-run; the promotion machinery is compressed into
      // the horizon so era switches happen while faults are live.
      spec.nodes = options.committee + options.candidates;
      spec.committee.initial = options.committee;
      spec.committee.min = std::min<std::size_t>(options.committee, 4);
      spec.committee.max = spec.nodes;
      spec.committee.era_period = Duration::seconds(15);
      spec.geo.report_period = Duration::seconds(3);
      spec.geo.window = Duration::seconds(12);
      spec.geo.min_reports = 2;
      spec.geo.promotion_threshold = Duration::seconds(20);
      break;
    case ProtocolKind::Dbft:
      // Block pacing compressed below the fault horizon so several blocks
      // (and the speaker rotation) happen while faults are live.
      spec.dbft.delegates = options.committee;
      spec.dbft.block_interval = Duration::seconds(5);
      break;
    case ProtocolKind::Pow:
      // Faster blocks and a shallower depth keep confirmation latency well
      // inside the liveness grace window.
      spec.pow.block_interval = Duration::seconds(5);
      spec.pow.confirmations = 2;
      break;
  }
  return spec;
}

ChaosRunResult run_protocol_chaos(ProtocolKind protocol, const ChaosCampaignOptions& options,
                                  const std::string& intensity, std::uint64_t run_index) {
  const std::uint64_t seed = options.base_seed + run_index;
  ChaosRunResult result;
  result.protocol = protocol_name(protocol);
  result.intensity = intensity;
  result.seed = seed;

  const ScenarioSpec spec = chaos_scenario(protocol, options, seed);
  const std::unique_ptr<Deployment> deployment = make_deployment(spec);

  InvariantMonitor monitor(deployment->simulator());
  deployment->watch(monitor);
  if (protocol == ProtocolKind::Gpbft) {
    // A flood can only show up as a rate anomaly once it spans the audit's
    // lookback window; only seatings past that age count as violations.
    monitor.set_sybil_detection_grace(spec.geo.window + spec.geo.report_period);
    // Reputation campaigns also claim bounded committee churn: every honest
    // application of an era's configuration must land within the bound of
    // the first one (generous enough for a crash-held victim's resync).
    if (options.reputation) monitor.set_era_convergence_bound(Duration::seconds(30));
  }
  deployment->start();
  deployment->schedule_workload(
      spec.workload, nullptr,
      [&monitor](const ledger::Transaction& tx) { monitor.expect_submission(tx); });

  ChaosProfile profile = profile_for(intensity);
  profile.max_faulty = (options.committee - 1) / 3;
  profile.restart_chance = options.restart_chance;
  profile.disk_fault_chance = options.disk_fault_chance;
  profile.sybil_burst_chance = options.sybil_burst_chance;
  profile.targeted_crash_chance = options.targeted_crash_chance;
  profile.oscillate_chance = options.oscillate_chance;
  profile.tamper_chance = options.tamper_chance;
  profile.tamper_template = options.tamper_template;
  // Miners model no equivocation faults (there is no FaultMode to toggle);
  // PoW runs get the profile's crash/partition/link/brownout families only.
  if (protocol == ProtocolKind::Pow) {
    profile.byzantine_chance = 0.0;
    // PoW's wire carries no MACs and its client requests no signatures:
    // tampering a request forges workload (a VALIDITY violation by
    // construction), and replaying a mined one re-seeds the mempool. Spare
    // the request plane; the proof/merkle checks cover the block plane.
    profile.tamper_template.spare_types.push_back(pbft::msg_type::kClientRequest);
    if (profile.tamper_template.mode == net::TamperRule::Mode::Inject) {
      // A mutated block header can pass the proof check by sheer luck and
      // would then be a *valid* sibling block — an outcome MAC-based tip
      // identity cannot claim anything about. The Inject campaign spares
      // the gossip plane; Replace storms still cover it (as loss).
      profile.tamper_template.spare_types.push_back(pow::kPowBlock);
    }
  }
  const FaultPlan plan = FaultPlan::random(
      mix_seed(options.base_seed, run_index, std::string(protocol_name(protocol)) + "-" + intensity),
      profile, deployment->fault_targets(), options.horizon);
  FaultPlan::ChaosHandlers handlers;
  handlers.set_byzantine = [&deployment, &monitor](NodeId id, pbft::FaultMode mode) {
    deployment->set_fault_mode(id, mode);
    // A Sybil report flood leaves the consensus plane honest: the node is
    // still held to agreement, but marked for the no-Sybil-seated check.
    monitor.set_faulty(id, mode != pbft::FaultMode::None &&
                               mode != pbft::FaultMode::SybilGeoReports);
    monitor.note_sybil(id, mode == pbft::FaultMode::SybilGeoReports);
  };
  handlers.resolve_target = [&deployment]() { return deployment->latest_elected(); };
  handlers.oscillate = [&deployment](NodeId id, bool displaced) {
    deployment->displace_node(id, displaced);
  };
  handlers.restart = [&deployment](NodeId id) { (void)deployment->restart_node(id); };
  handlers.disk_fault = [&deployment](NodeId id, DiskFaultKind kind) {
    deployment->inject_disk_fault(id, kind);
  };
  handlers.hook = [&monitor](const ChaosEvent& event) { monitor.note_fault(event.describe()); };
  plan.schedule(deployment->simulator(), deployment->network(), handlers);

  deployment->run_for(options.horizon);
  const TimePoint healed = plan.all_healed_at();
  const TimePoint deadline{std::max(options.horizon.ns, healed.ns) + options.liveness_grace.ns};
  deployment->run_until_committed(options.txs_per_client, deadline);
  // Restarted nodes may still be closing their resync gap when the last
  // client transaction lands; give the final round-trips time to settle
  // before holding them to the post-restart convergence bound.
  if (monitor.restarts_observed() > 0) {
    deployment->run_for(spec.engine.request_timeout * 3);
  }
  deployment->stop();
  result.tip_hex = deployment->tip_hex();
  deployment->finish_invariants(monitor);
  monitor.check_restart_convergence();

  result.expected = options.txs_per_client * options.clients;
  result.committed = deployment->committed_count();
  monitor.check_bounded_liveness(result.committed, result.expected, healed,
                                 options.liveness_grace);
  result.violations = monitor.violations();
  result.blocks_checked = monitor.blocks_checked();
  result.fault_events = plan.events().size();
  result.restarts = monitor.restarts_observed();
  return result;
}

}  // namespace

std::size_t ChaosCampaignResult::failed_runs() const {
  std::size_t failed = 0;
  for (const ChaosRunResult& run : runs) {
    if (!run.passed()) ++failed;
  }
  return failed;
}

std::string ChaosCampaignResult::summary() const {
  std::string out = "proto  intensity  seed        committed  faults  blocks  result\n";
  char buf[160];
  for (const ChaosRunResult& run : runs) {
    std::snprintf(buf, sizeof(buf), "%-6s %-10s %-11llu %4llu/%-4llu %7zu %7llu  %s\n",
                  run.protocol.c_str(), run.intensity.c_str(),
                  static_cast<unsigned long long>(run.seed),
                  static_cast<unsigned long long>(run.committed),
                  static_cast<unsigned long long>(run.expected), run.fault_events,
                  static_cast<unsigned long long>(run.blocks_checked),
                  run.passed() ? "PASS" : "FAIL");
    out += buf;
    for (const Violation& violation : run.violations) {
      std::snprintf(buf, sizeof(buf), "    [t=%.3fs] %s node=%llu height=%llu: ",
                    violation.at.to_seconds(), violation_kind_name(violation.kind),
                    static_cast<unsigned long long>(violation.node.value),
                    static_cast<unsigned long long>(violation.height));
      out += buf;
      out += violation.detail + "\n";
    }
  }
  std::snprintf(buf, sizeof(buf), "campaign: %zu run(s), %zu failed\n", runs.size(),
                failed_runs());
  out += buf;
  return out;
}

ChaosCampaignResult run_chaos_campaign(const ChaosCampaignOptions& options) {
  ChaosCampaignResult result;
  for (const ProtocolKind protocol : options.protocols) {
    for (const std::string& intensity : options.intensities) {
      for (std::uint64_t run = 0; run < options.seeds; ++run) {
        result.runs.push_back(run_protocol_chaos(protocol, options, intensity, run));
      }
    }
  }
  return result;
}

ChaosCampaignResult run_tamper_campaign(const ChaosCampaignOptions& options) {
  ChaosCampaignResult result;
  ChaosCampaignOptions clean = options;
  clean.tamper_chance = 0.0;
  ChaosCampaignOptions tampered = options;
  tampered.tamper_chance = options.tamper_chance > 0.0 ? options.tamper_chance : 0.75;
  tampered.tamper_template.mode = net::TamperRule::Mode::Inject;
  // Replays re-deliver *genuine* sealed messages; honest nodes answer them
  // (reply caches, sync responses), legitimately perturbing the clean
  // plane. REJECT-SAFE claims silence for forgeries only, so the Inject
  // pair disables the replay family — Replace storms still exercise it.
  tampered.tamper_template.replay = 0.0;
  for (const ProtocolKind protocol : options.protocols) {
    for (std::uint64_t run = 0; run < options.seeds; ++run) {
      const ChaosRunResult clean_run = run_protocol_chaos(protocol, clean, "none", run);
      ChaosRunResult tampered_run = run_protocol_chaos(protocol, tampered, "none", run);
      tampered_run.intensity = "inject";
      if (tampered_run.tip_hex != clean_run.tip_hex) {
        Violation violation;
        violation.kind = Violation::Kind::RejectSafe;
        violation.detail = "tampered tip " + tampered_run.tip_hex + " != clean tip " +
                           clean_run.tip_hex + " at seed " + std::to_string(tampered_run.seed);
        tampered_run.violations.push_back(std::move(violation));
      }
      result.runs.push_back(std::move(tampered_run));
    }
  }
  return result;
}

}  // namespace gpbft::sim
