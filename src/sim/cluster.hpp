// Cluster builders: assemble whole simulated deployments.
//
// PbftCluster — the baseline: every node is a PBFT replica, the committee is
// the whole network (the configuration the paper measures in Fig. 3a/5a).
//
// GpbftCluster — the G-PBFT deployment: endorser-capable fixed devices (an
// initial core committee plus candidates) and client devices submitting
// transactions. The cluster maintains the control plane the harness owns:
// placing devices in the AreaRegistry and fanning roster changes out to
// clients and candidates after each era switch (zero simulated-wire cost;
// see DESIGN.md).
#pragma once

#include <memory>
#include <vector>

#include "gpbft/endorser.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "sim/placement.hpp"

namespace gpbft::sim {

/// Node-id layout shared by both clusters: replicas/endorsers are 1..N,
/// clients 10001..; id 0 is the system/null node.
inline constexpr std::uint64_t kClientIdBase = 10'000;

// --- PBFT baseline ------------------------------------------------------------

struct PbftClusterConfig {
  std::size_t replicas{4};
  std::size_t clients{0};
  std::uint64_t seed{1};
  net::NetConfig net;
  pbft::PbftConfig pbft;
  PlacementConfig placement;
};

class PbftCluster {
 public:
  explicit PbftCluster(PbftClusterConfig config);

  void start();

  [[nodiscard]] net::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] pbft::Replica& replica(std::size_t i) { return *replicas_.at(i); }
  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] pbft::Client& client(std::size_t i) { return *clients_.at(i); }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] std::vector<NodeId> committee() const;
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const crypto::KeyRegistry& keys() const { return keys_; }

  /// Advances simulated time by `d` (processing all events due in it).
  void run_for(Duration d);

  /// Runs until every client has committed `per_client` transactions or the
  /// deadline passes; returns true when all committed.
  bool run_until_committed(std::uint64_t per_client, TimePoint deadline);

  /// Stops replica timers so the event queue can drain.
  void stop();

 private:
  PbftClusterConfig config_;
  net::Simulator sim_;
  net::Network network_;
  crypto::KeyRegistry keys_;
  Placement placement_;
  std::vector<std::unique_ptr<pbft::Replica>> replicas_;
  std::vector<std::unique_ptr<pbft::Client>> clients_;
};

// --- G-PBFT deployment ----------------------------------------------------------

struct GpbftClusterConfig {
  /// Endorser-capable fixed devices (ids 1..nodes). The first
  /// `initial_committee` form the genesis roster; the rest start as
  /// candidates and may be promoted by era switches.
  std::size_t nodes{4};
  std::size_t initial_committee{4};
  std::size_t clients{0};
  std::uint64_t seed{1};
  net::NetConfig net;
  ::gpbft::gpbft::GpbftConfig protocol;  // genesis roster/area filled by the cluster
  PlacementConfig placement;
};

class GpbftCluster {
 public:
  explicit GpbftCluster(GpbftClusterConfig config);

  void start();

  [[nodiscard]] net::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] ::gpbft::gpbft::Endorser& endorser(std::size_t i) { return *endorsers_.at(i); }
  [[nodiscard]] std::size_t endorser_count() const { return endorsers_.size(); }
  [[nodiscard]] pbft::Client& client(std::size_t i) { return *clients_.at(i); }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] ::gpbft::gpbft::AreaRegistry& area() { return area_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const std::vector<NodeId>& roster() const { return roster_; }
  [[nodiscard]] EraId era() const { return era_; }
  [[nodiscard]] const crypto::KeyRegistry& keys() const { return keys_; }

  /// Number of committee members currently active.
  [[nodiscard]] std::size_t committee_size() const { return roster_.size(); }
  [[nodiscard]] std::uint64_t total_era_switches() const;

  void run_for(Duration d);
  bool run_until_committed(std::uint64_t per_client, TimePoint deadline);
  void stop();

 private:
  void on_roster(EraId era, const std::vector<NodeId>& roster);

  GpbftClusterConfig config_;
  net::Simulator sim_;
  net::Network network_;
  crypto::KeyRegistry keys_;
  Placement placement_;
  ::gpbft::gpbft::AreaRegistry area_;
  std::vector<std::unique_ptr<::gpbft::gpbft::Endorser>> endorsers_;
  std::vector<std::unique_ptr<pbft::Client>> clients_;
  std::vector<NodeId> roster_;
  EraId era_{0};
};

}  // namespace gpbft::sim
