// IoT workload generation.
//
// Models the paper's evaluation workload (§V-B): "each node is set to
// propose new transactions at a constant frequency". A workload drives one
// client: starting at `start` (plus a deterministic per-client stagger so
// submissions do not align artificially), it submits `count` normal
// transactions, one every `period`, each carrying the device's geographic
// trailer. Latencies are recorded by the client's commit callback.
#pragma once

#include <functional>
#include <memory>

#include "pbft/client.hpp"
#include "sim/metrics.hpp"

namespace gpbft::sim {

struct WorkloadConfig {
  Duration period = Duration::seconds(5);
  std::size_t payload_bytes{32};
  Amount fee{10};
  TimePoint start{Duration::seconds(1).ns};
  Duration stagger = Duration::millis(25);  // multiplied by the client index
  std::uint64_t count{12};
};

/// Schedules a constant-frequency submission stream for `client` located at
/// `location`. `client_index` derives the stagger offset and seeds payload
/// contents. The recorder (optional) collects commit latencies. `on_submit`
/// (optional) fires for every transaction as it is submitted — chaos runs
/// wire it to InvariantMonitor::expect_submission for the validity check.
/// `alive` (optional) is a liveness token: the simulator cannot cancel
/// events, so scheduled steps otherwise keep the driver alive after
/// Deployment::stop and enqueue requests into a stopping cluster. When the
/// token's owner drops it, pending steps become no-ops (same pattern as the
/// replicas' restart timers). A null token leaves the stream ungated.
void schedule_workload(net::Simulator& sim, pbft::Client& client, const geo::GeoPoint& location,
                       const WorkloadConfig& config, std::uint64_t client_index,
                       LatencyRecorder* recorder,
                       std::function<void(const ledger::Transaction&)> on_submit = {},
                       std::shared_ptr<const bool> alive = nullptr);

/// Builds the normal transaction a workload would submit (exposed for tests
/// and single-transaction experiments).
[[nodiscard]] ledger::Transaction make_workload_tx(NodeId sender, RequestId request_id,
                                                   const geo::GeoPoint& location, TimePoint now,
                                                   std::size_t payload_bytes, Amount fee,
                                                   std::uint64_t salt);

}  // namespace gpbft::sim
