// Experiment runners for the paper's evaluation section.
//
// Each runner builds a fresh, seeded deployment, drives the paper's
// workload and returns the measured quantities:
//
//   * latency experiments (Figs. 3a/3b/4, Table III): every node proposes
//     transactions at a constant frequency; per-transaction consensus
//     latency = submission to (f+1)-th matching reply;
//   * communication-cost experiments (Figs. 5a/5b/6, Table III): a single
//     transaction is proposed and the bytes on the wire are accounted,
//     split into consensus traffic (REQUEST + three phases + REPLY) and
//     total (including geo reports and era control).
//
// Calibration is centralised in default_options() — see DESIGN.md §4.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {

struct ExperimentOptions {
  std::uint64_t seed{1};

  // Workload (§V-B: constant-frequency proposals per node).
  std::uint64_t txs_per_client{12};
  Duration proposal_period = Duration::seconds(5);

  // Node model (the paper's s, §IV-B) and batching.
  double processing_rate{160.0};
  std::size_t batch_size{32};

  // G-PBFT parameters (§V-A: min 4, max 40; era switches during the run).
  std::size_t initial_committee{4};
  std::size_t min_committee{4};
  std::size_t max_committee{40};
  Duration era_period = Duration::seconds(30);

  // Simulation guard rail.
  Duration hard_deadline = Duration::seconds(4000);

  /// Large sweeps skip recomputing HMAC tags (bytes unchanged); see
  /// pbft::PbftConfig::compute_macs.
  bool compute_macs{false};

  // --- baseline protocols (Table IV rows) -------------------------------------
  /// dBFT block cadence (NEO: ~15 s, the §VI-A critique) and committee.
  Duration dbft_block_interval = Duration::seconds(15);
  std::size_t dbft_delegates{7};
  /// PoW: expected network-wide block interval and confirmation depth.
  Duration pow_block_interval = Duration::seconds(10);
  Height pow_confirmations{3};
  double pow_hashrate{1e6};  // hashes per second per IoT-class miner
};

/// Calibrated defaults shared by every bench (single source of truth).
[[nodiscard]] ExperimentOptions default_options();

struct ExperimentResult {
  std::size_t nodes{0};
  std::size_t committee{0};
  BoxplotStats latency;              // seconds, over latency_samples
  std::vector<double> latency_samples;  // per-transaction latencies (s)
  std::uint64_t committed{0};
  std::uint64_t expected{0};
  double consensus_kb{0};            // REQUEST + 3 phases + REPLY bytes
  double total_kb{0};                // everything on the wire
  double sim_seconds{0};             // simulated time consumed
  std::uint64_t era_switches{0};     // G-PBFT only
  double hashes_computed{0};         // PoW only: total network hash work
};

/// Consensus-traffic bytes from network stats (KB).
[[nodiscard]] double consensus_kilobytes(const net::NetStats& stats);

// --- latency (Figs. 3a, 3b, 4; Table III) -----------------------------------------

[[nodiscard]] ExperimentResult run_pbft_latency(std::size_t nodes,
                                                const ExperimentOptions& options);
[[nodiscard]] ExperimentResult run_gpbft_latency(std::size_t nodes,
                                                 const ExperimentOptions& options);

// --- baseline protocols (Table IV's dBFT and PoW rows, measured) --------------------

/// dBFT: `nodes` dBFT nodes (min(nodes, dbft_delegates) genesis delegates),
/// one proposing client per node, NEO-style 15 s block pacing.
[[nodiscard]] ExperimentResult run_dbft_latency(std::size_t nodes,
                                                const ExperimentOptions& options);

/// PoW: `nodes` miners, one proposing client per node; a transaction counts
/// once it reaches pow_confirmations depth on the observer miner's best
/// chain. hashes_computed reports the network's total mining work.
[[nodiscard]] ExperimentResult run_pow_latency(std::size_t nodes,
                                               const ExperimentOptions& options);

// --- communication cost (Figs. 5a, 5b, 6; Table III) -------------------------------

[[nodiscard]] ExperimentResult run_pbft_single_tx(std::size_t nodes,
                                                  const ExperimentOptions& options);
[[nodiscard]] ExperimentResult run_gpbft_single_tx(std::size_t nodes,
                                                   const ExperimentOptions& options);

/// Repeats a runner over `runs` seeds and merges all per-transaction
/// latency samples into one distribution (Fig. 3 draws boxplots over ten
/// runs per node count). Byte costs are averaged across runs.
template <typename Runner>
[[nodiscard]] ExperimentResult repeat_runs(Runner&& runner, std::size_t nodes,
                                           const ExperimentOptions& base_options,
                                           std::size_t runs) {
  ExperimentResult merged{};
  for (std::size_t r = 0; r < runs; ++r) {
    ExperimentOptions options = base_options;
    options.seed = base_options.seed * 7919 + r + 1;
    ExperimentResult result = runner(nodes, options);
    merged.nodes = result.nodes;
    merged.committee = result.committee;
    merged.latency_samples.insert(merged.latency_samples.end(), result.latency_samples.begin(),
                                  result.latency_samples.end());
    merged.committed += result.committed;
    merged.expected += result.expected;
    merged.era_switches += result.era_switches;
    merged.consensus_kb += result.consensus_kb;
    merged.total_kb += result.total_kb;
    merged.sim_seconds += result.sim_seconds;
  }
  merged.consensus_kb /= static_cast<double>(runs);
  merged.total_kb /= static_cast<double>(runs);
  merged.latency = BoxplotStats::from_samples(merged.latency_samples);
  return merged;
}

}  // namespace gpbft::sim
