// Experiment runners for the paper's evaluation section.
//
// Each runner builds a fresh, seeded deployment from a declarative
// ScenarioSpec (see scenario.hpp / deployment.hpp), drives the paper's
// workload and returns the measured quantities:
//
//   * latency experiments (Figs. 3a/3b/4, Tables III-IV): every node
//     proposes transactions at a constant frequency; per-transaction
//     consensus latency = submission to (f+1)-th matching reply (PoW:
//     submission to confirmation depth);
//   * communication-cost experiments (Figs. 5a/5b/6, Table III): a single
//     transaction is proposed and the bytes on the wire are accounted,
//     split into consensus traffic (REQUEST + three phases + REPLY) and
//     total (including geo reports and era control).
//
// Calibration is centralised in default_options() — see DESIGN.md §4.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "sim/deployment.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {

/// Experiment calibration, decomposed into the same spec pieces a
/// ScenarioSpec carries. latency_scenario() translates options into the
/// spec the deployment factory consumes.
struct ExperimentOptions {
  std::uint64_t seed{1};

  /// Workload (§V-B: constant-frequency proposals per node). Measurement
  /// runs keep client_retries off — loss-free testbed semantics.
  WorkloadSpec workload;

  /// PBFT engine shared by the PBFT / G-PBFT / dBFT deployments.
  EngineSpec engine;

  /// Consensus batching (batch.size=1 keeps the unbatched seed behaviour).
  BatchSpec batch;

  /// Network model (the paper's s = processing_rate, §IV-B).
  net::NetConfig net;

  /// G-PBFT committee bounds (§V-A: min 4, max 40) and era cadence.
  CommitteeSpec committee;

  /// Geographic-promotion machinery, scaled into simulation range.
  GeoSpec geo;

  // Simulation guard rail.
  Duration hard_deadline = Duration::seconds(4000);

  // Baseline protocols (Table IV rows).
  DbftSpec dbft;
  PowSpec pow;
};

/// Calibrated defaults shared by every bench (single source of truth).
[[nodiscard]] ExperimentOptions default_options();

/// Per-phase consensus time, read back from the telemetry registry's
/// pbft.phase.* histograms (summed seconds over all executed blocks on all
/// replicas, so means weight every block equally when runs are merged).
struct PhaseBreakdown {
  double prepare_s{0};   // pre-prepare accepted -> prepared
  double commit_s{0};    // prepared -> committed
  double execute_s{0};   // committed -> executed
  std::uint64_t blocks{0};  // block executions observed (all replicas)

  [[nodiscard]] double prepare_mean() const {
    return blocks == 0 ? 0.0 : prepare_s / static_cast<double>(blocks);
  }
  [[nodiscard]] double commit_mean() const {
    return blocks == 0 ? 0.0 : commit_s / static_cast<double>(blocks);
  }
  [[nodiscard]] double execute_mean() const {
    return blocks == 0 ? 0.0 : execute_s / static_cast<double>(blocks);
  }
};

struct ExperimentResult {
  std::size_t nodes{0};
  std::size_t committee{0};
  BoxplotStats latency;              // seconds, over latency_samples
  std::vector<double> latency_samples;  // per-transaction latencies (s)
  std::uint64_t committed{0};
  std::uint64_t expected{0};
  double consensus_kb{0};            // REQUEST + 3 phases + REPLY bytes
  double total_kb{0};                // everything on the wire
  double sim_seconds{0};             // simulated time consumed
  std::uint64_t era_switches{0};     // G-PBFT only
  double hashes_computed{0};         // PoW only: total network hash work
  PhaseBreakdown phases;             // PBFT-engine protocols; empty for PoW
};

/// Consensus-traffic bytes from network stats (KB).
[[nodiscard]] double consensus_kilobytes(const net::NetStats& stats);

/// The ScenarioSpec a latency experiment deploys: `nodes` protocol nodes,
/// one proposing client per node, calibrated engine/net/committee pieces.
/// (G-PBFT seeds the genesis roster at min(nodes, committee.max): the
/// paper's Fig. 3b steady state, with era switches still running.)
[[nodiscard]] ScenarioSpec latency_scenario(ProtocolKind protocol, std::size_t nodes,
                                            const ExperimentOptions& options);

// --- latency (Figs. 3a, 3b, 4; Tables III-IV) ---------------------------------------

/// Runs the constant-frequency workload against the protocol's deployment
/// and measures per-transaction consensus latency.
[[nodiscard]] ExperimentResult run_latency(ProtocolKind protocol, std::size_t nodes,
                                           const ExperimentOptions& options);

[[nodiscard]] ExperimentResult run_pbft_latency(std::size_t nodes,
                                                const ExperimentOptions& options);
[[nodiscard]] ExperimentResult run_gpbft_latency(std::size_t nodes,
                                                 const ExperimentOptions& options);
/// dBFT: min(nodes, dbft.delegates) genesis delegates, NEO-style pacing.
[[nodiscard]] ExperimentResult run_dbft_latency(std::size_t nodes,
                                                const ExperimentOptions& options);
/// PoW: a transaction counts once it reaches pow.confirmations depth on any
/// miner's best chain. hashes_computed reports total mining work.
[[nodiscard]] ExperimentResult run_pow_latency(std::size_t nodes,
                                               const ExperimentOptions& options);

// --- communication cost (Figs. 5a, 5b, 6; Table III) -------------------------------

[[nodiscard]] ExperimentResult run_pbft_single_tx(std::size_t nodes,
                                                  const ExperimentOptions& options);
[[nodiscard]] ExperimentResult run_gpbft_single_tx(std::size_t nodes,
                                                   const ExperimentOptions& options);

/// Repeats a runner over `runs` seeds and merges all per-transaction
/// latency samples into one distribution (Fig. 3 draws boxplots over ten
/// runs per node count). Byte costs are averaged across runs.
template <typename Runner>
[[nodiscard]] ExperimentResult repeat_runs(Runner&& runner, std::size_t nodes,
                                           const ExperimentOptions& base_options,
                                           std::size_t runs) {
  ExperimentResult merged{};
  for (std::size_t r = 0; r < runs; ++r) {
    ExperimentOptions options = base_options;
    options.seed = base_options.seed * 7919 + r + 1;
    ExperimentResult result = runner(nodes, options);
    merged.nodes = result.nodes;
    merged.committee = result.committee;
    merged.latency_samples.insert(merged.latency_samples.end(), result.latency_samples.begin(),
                                  result.latency_samples.end());
    merged.committed += result.committed;
    merged.expected += result.expected;
    merged.era_switches += result.era_switches;
    merged.consensus_kb += result.consensus_kb;
    merged.total_kb += result.total_kb;
    merged.sim_seconds += result.sim_seconds;
    merged.hashes_computed += result.hashes_computed;
    merged.phases.prepare_s += result.phases.prepare_s;
    merged.phases.commit_s += result.phases.commit_s;
    merged.phases.execute_s += result.phases.execute_s;
    merged.phases.blocks += result.phases.blocks;
  }
  merged.consensus_kb /= static_cast<double>(runs);
  merged.total_kb /= static_cast<double>(runs);
  merged.latency = BoxplotStats::from_samples(merged.latency_samples);
  return merged;
}

}  // namespace gpbft::sim
