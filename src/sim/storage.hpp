// Deterministic simulated storage: one in-memory "disk" per node.
//
// The ledger's `save_chain`/`load_chain` image format (magic + version +
// blocks + SHA-256 integrity tail) was designed so a node can stop and
// resume without replaying consensus — but a real IoT flash part fails in
// characteristic ways that the restart machinery must survive:
//
//   TornWrite      power loss mid-write: the *next* save lands truncated at
//                  an arbitrary offset. The integrity tail catches it at
//                  load time, so the node falls back to genesis and resyncs.
//   BitRot        a single bit of the stored image flips in place (flash
//                  wear, cosmic ray). Also caught by the integrity tail.
//   StaleSnapshot the most recent save is lost (write-back cache never
//                  flushed); the disk reverts to the previous image. The
//                  image is *valid* but old — the node restarts behind and
//                  must close the gap via chain sync.
//
// All fault decisions (torn-write offsets, bit positions) draw from a
// dedicated RNG stream forked off the deployment seed, never from the
// simulator's main stream: injecting a disk fault must not perturb
// workload, jitter or protocol randomness, so faulted and clean runs stay
// comparable seed-for-seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace gpbft::sim {

enum class DiskFaultKind : std::uint8_t {
  TornWrite,      ///< next save is truncated at an RNG-chosen offset
  BitRot,         ///< one RNG-chosen bit of the current image flips now
  StaleSnapshot,  ///< the most recent save is lost; previous image restored
};

[[nodiscard]] const char* disk_fault_name(DiskFaultKind kind);

/// One node's non-volatile store. Holds the current image plus the previous
/// one (the file `std::rename` atomically replaced), mirroring what a
/// temp+rename save sequence leaves on a real filesystem.
class SimDisk {
 public:
  explicit SimDisk(Rng rng) : rng_(rng) {}

  /// Persists a new image (a serialized chain). If a torn write is armed,
  /// the stored copy is truncated at a random offset instead.
  void save(Bytes image);

  [[nodiscard]] const Bytes& image() const { return image_; }
  [[nodiscard]] bool empty() const { return image_.empty(); }

  /// Injects a fault. TornWrite arms the *next* save; BitRot and
  /// StaleSnapshot take effect immediately (no-ops on an empty disk).
  void inject(DiskFaultKind kind);

  [[nodiscard]] std::uint64_t saves() const { return saves_; }
  [[nodiscard]] std::uint64_t faults_applied() const { return faults_applied_; }

 private:
  Rng rng_;
  Bytes image_;
  Bytes previous_;  // what the last save overwrote, for StaleSnapshot
  bool torn_next_{false};
  std::uint64_t saves_{0};
  std::uint64_t faults_applied_{0};
};

/// The deployment's collection of per-node disks. Disks are created on
/// first use, each with its own RNG stream forked from the fabric seed and
/// the node id, so the fault pattern on one node's disk is independent of
/// how often any other node saves.
class StorageFabric {
 public:
  explicit StorageFabric(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] SimDisk& disk(NodeId id);
  [[nodiscard]] bool has(NodeId id) const { return disks_.contains(id.value); }

  /// Injects a fault into `id`'s disk (creating it if absent, so a fault
  /// can be armed before the node's first save).
  void inject(NodeId id, DiskFaultKind kind) { disk(id).inject(kind); }

 private:
  Rng rng_;
  std::map<std::uint64_t, SimDisk> disks_;
};

}  // namespace gpbft::sim
