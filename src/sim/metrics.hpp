// Experiment metrics: latency recording and boxplot statistics.
//
// Fig. 3 of the paper draws boxplots (min / Q1 / median / Q3 / max) of
// per-transaction consensus latency; Fig. 4 and Table III use means. The
// quartile convention is linear interpolation between closest ranks
// (type-7, the numpy/R default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace gpbft::sim {

struct BoxplotStats {
  double min{0}, q1{0}, median{0}, q3{0}, max{0};
  double mean{0};
  std::size_t count{0};

  [[nodiscard]] static BoxplotStats from_samples(std::vector<double> samples);
  [[nodiscard]] std::string str() const;
};

class LatencyRecorder {
 public:
  void record(Duration latency) { seconds_.push_back(latency.to_seconds()); }

  [[nodiscard]] std::size_t count() const { return seconds_.size(); }
  [[nodiscard]] bool empty() const { return seconds_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] BoxplotStats boxplot() const { return BoxplotStats::from_samples(seconds_); }
  [[nodiscard]] const std::vector<double>& samples() const { return seconds_; }

  void clear() { seconds_.clear(); }

 private:
  std::vector<double> seconds_;
};

}  // namespace gpbft::sim
