#include "sim/workload_plane.hpp"

#include <cmath>
#include <utility>

#include "ledger/transaction.hpp"
#include "net/simulator.hpp"
#include "sim/workload.hpp"

namespace gpbft::sim {

namespace {

constexpr std::uint64_t kPlaneRngLabel = 0x706c616e65ull;  // "plane"
constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

WorkloadPlane::WorkloadPlane(net::Simulator& sim, const WorkloadSpec& spec,
                             std::vector<pbft::Client*> endpoints,
                             std::vector<geo::GeoPoint> positions, obs::Telemetry& telemetry)
    : sim_(sim),
      spec_(spec),
      endpoints_(std::move(endpoints)),
      positions_(std::move(positions)),
      telemetry_(telemetry),
      rng_(sim.rng().fork(kPlaneRngLabel)),
      peak_(static_cast<double>(spec.devices) * spec.rate_hz),
      end_(spec.start + spec.horizon),
      next_seq_(spec.devices, 0) {}

double WorkloadPlane::rate_at(TimePoint t) const {
  if (t.ns < spec_.start.ns || t.ns >= end_.ns) return 0.0;
  const std::int64_t elapsed = t.ns - spec_.start.ns;
  switch (spec_.arrival) {
    case ArrivalProcess::Constant:
    case ArrivalProcess::Poisson:
      return peak_;
    case ArrivalProcess::Burst: {
      const std::int64_t cycle = spec_.burst_on.ns + spec_.burst_off.ns;
      if (cycle <= 0) return peak_;
      return (elapsed % cycle) < spec_.burst_on.ns ? peak_ : 0.0;
    }
    case ArrivalProcess::Diurnal: {
      if (spec_.diurnal_period.ns <= 0) return peak_;
      const double phase =
          static_cast<double>(elapsed % spec_.diurnal_period.ns) /
          static_cast<double>(spec_.diurnal_period.ns);
      const double day = 0.5 * (1.0 - std::cos(kTwoPi * phase));
      return peak_ * (spec_.diurnal_trough + (1.0 - spec_.diurnal_trough) * day);
    }
  }
  return peak_;
}

void WorkloadPlane::start(LatencyRecorder* recorder, SubmitHook on_submit,
                          std::shared_ptr<const bool> alive) {
  on_submit_ = std::move(on_submit);
  if (alive == nullptr) {
    // No deployment token: gate pending events on the plane's own lifetime
    // instead, so destroying the plane still quiesces the stream.
    self_token_ = std::make_shared<const bool>(true);
    alive_ = self_token_;
  } else {
    alive_ = alive;
  }
  if (recorder != nullptr) {
    for (pbft::Client* endpoint : endpoints_) {
      endpoint->set_commit_callback(
          [recorder](const crypto::Hash256&, Height, Duration latency) {
            recorder->record(latency);
          });
    }
  }
  if (endpoints_.empty() || spec_.devices == 0 || peak_ <= 0.0) {
    done_ = true;
    return;
  }
  // First candidate: one inter-arrival gap past the window start, so a zero
  // gap can never fire before the deployment's clients have started.
  arm(spec_.start);
}

void WorkloadPlane::arm(TimePoint from) {
  double gap_s;
  if (spec_.arrival == ArrivalProcess::Constant) {
    gap_s = 1.0 / peak_;  // evenly spaced fleet aggregate, no RNG draw
  } else {
    gap_s = rng_.exponential(1.0 / peak_);
  }
  Duration gap = Duration::from_seconds(gap_s);
  if (gap.ns < 1) gap = Duration::nanos(1);  // always advance the clock
  const TimePoint at = from + gap;
  if (at.ns >= end_.ns) {
    finish_generation();
    return;
  }
  sim_.schedule_at(at, [this, token = alive_]() {
    if (token.expired()) return;  // deployment stopped; plane may be gone
    on_arrival();
  });
}

void WorkloadPlane::on_arrival() {
  const TimePoint now = sim_.now();
  // Thinning: accept this candidate with probability rate(now) / peak. The
  // flat processes run at peak everywhere, so they skip the Bernoulli draw
  // and keep their RNG stream to pure gap + device-pick draws.
  bool accept = true;
  if (spec_.arrival == ArrivalProcess::Burst || spec_.arrival == ArrivalProcess::Diurnal) {
    accept = rng_.chance(rate_at(now) / peak_);
  }
  if (accept) {
    emit(now);
  } else {
    ++thinned_;
    telemetry_.count("plane.thinned");
  }
  arm(now);
}

void WorkloadPlane::emit(TimePoint at) {
  std::uint64_t device;
  if (spec_.arrival == ArrivalProcess::Constant) {
    device = arrivals_ % spec_.devices;  // round-robin, RNG-free
  } else {
    device = rng_.uniform(0, spec_.devices - 1);
  }
  ++arrivals_;

  const std::size_t endpoint_idx = static_cast<std::size_t>(device % endpoints_.size());
  pbft::Client& endpoint = *endpoints_[endpoint_idx];

  // Device identity folds into the request id: replies route to the shared
  // endpoint, but (device << 24 | seq) keeps digests distinct across the
  // whole fleet (seq wraps at 2^24 — far beyond any simulated horizon).
  const std::uint32_t seq = ++next_seq_[device];
  const RequestId request_id = (device << 24) + seq;

  const ledger::Transaction tx =
      make_workload_tx(endpoint.id(), request_id, positions_[endpoint_idx], at,
                       spec_.payload_bytes, spec_.fee, /*salt=*/device);
  if (on_submit_) on_submit_(tx);
  endpoint.submit(tx);
  ++submitted_;
  telemetry_.count("plane.submitted");
}

void WorkloadPlane::finish_generation() {
  done_ = true;
  telemetry_.instant("plane.generation_done", "workload", NodeId{0},
                     {{"submitted", std::to_string(submitted_)},
                      {"thinned", std::to_string(thinned_)}});
}

}  // namespace gpbft::sim
