#include "sim/workload.hpp"

#include <memory>

#include "common/rng.hpp"
#include "ledger/transaction.hpp"

namespace gpbft::sim {

ledger::Transaction make_workload_tx(NodeId sender, RequestId request_id,
                                     const geo::GeoPoint& location, TimePoint now,
                                     std::size_t payload_bytes, Amount fee, std::uint64_t salt) {
  // Deterministic pseudo-sensor payload derived from (sender, request, salt).
  Bytes payload(payload_bytes);
  std::uint64_t mix = sender.value * 0x9e3779b97f4a7c15ull + request_id * 31 + salt;
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(splitmix64(mix));

  geo::GeoReport report;
  report.point = location;
  report.timestamp = now;
  return ledger::make_normal_tx(sender, request_id, std::move(payload), fee, report);
}

namespace {

struct WorkloadDriver {
  pbft::Client* client{nullptr};
  geo::GeoPoint location;
  WorkloadConfig config;
  std::uint64_t client_index{0};
  RequestId next_request{1};
  std::uint64_t submitted{0};
  std::function<void(const ledger::Transaction&)> on_submit;
  // Liveness gating (see schedule_workload docs). `gated` distinguishes "no
  // token supplied" from "token supplied and since expired".
  bool gated{false};
  std::weak_ptr<const bool> alive;
};

// Self-rescheduling step; the shared_ptr keeps the driver alive across the
// whole submission stream.
void step(const std::shared_ptr<WorkloadDriver>& driver, net::Simulator& sim) {
  if (driver->gated && driver->alive.expired()) return;  // deployment stopped
  if (driver->submitted >= driver->config.count) return;
  const ledger::Transaction tx =
      make_workload_tx(driver->client->id(), driver->next_request++, driver->location, sim.now(),
                       driver->config.payload_bytes, driver->config.fee, driver->client_index);
  if (driver->on_submit) driver->on_submit(tx);
  driver->client->submit(tx);
  ++driver->submitted;
  if (driver->submitted < driver->config.count) {
    sim.schedule(driver->config.period, [driver, &sim]() { step(driver, sim); });
  }
}

}  // namespace

void schedule_workload(net::Simulator& sim, pbft::Client& client, const geo::GeoPoint& location,
                       const WorkloadConfig& config, std::uint64_t client_index,
                       LatencyRecorder* recorder,
                       std::function<void(const ledger::Transaction&)> on_submit,
                       std::shared_ptr<const bool> alive) {
  if (recorder != nullptr) {
    client.set_commit_callback(
        [recorder](const crypto::Hash256&, Height, Duration latency) {
          recorder->record(latency);
        });
  }

  auto driver = std::make_shared<WorkloadDriver>();
  driver->client = &client;
  driver->location = location;
  driver->config = config;
  driver->client_index = client_index;
  driver->on_submit = std::move(on_submit);
  if (alive != nullptr) {
    driver->gated = true;
    driver->alive = alive;
  }

  const TimePoint first =
      TimePoint{config.start.ns + config.stagger.ns * static_cast<std::int64_t>(client_index)};
  sim.schedule_at(first, [driver, &sim]() { step(driver, sim); });
}

}  // namespace gpbft::sim
