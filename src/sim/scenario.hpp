// Declarative scenario specifications.
//
// A ScenarioSpec is the single description of a simulated deployment: which
// protocol to run (PBFT / G-PBFT / dBFT / PoW), how many nodes and clients,
// committee bounds, network and placement models, the workload, and an
// optional chaos (fault-injection) plan reference. Every consumer of the
// harness — the experiment runners, the chaos campaigns, the CLI, benches
// and examples — builds deployments from a spec via make_deployment()
// (deployment.hpp) instead of wiring protocol objects by hand.
//
// Specs serialise to a small deterministic key=value text format
// (print_scenario / parse_scenario): one `key=value` per line, `#` comments,
// durations as integral nanoseconds (`*_ns` keys), doubles printed with
// %.17g so parse(print(spec)) == spec exactly. Parsing is strict — unknown
// keys, trailing junk and out-of-range values are errors, not warnings.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "net/network.hpp"
#include "sim/placement.hpp"

namespace gpbft::sim {

enum class ProtocolKind { Pbft, Gpbft, Dbft, Pow };

[[nodiscard]] const char* protocol_name(ProtocolKind kind);
/// Parses "pbft" / "gpbft" / "dbft" / "pow"; error on anything else.
[[nodiscard]] Result<ProtocolKind> protocol_from_name(const std::string& name);

/// How client devices generate requests.
///  * PerClient — the seed behaviour: one WorkloadDriver per concrete
///    pbft::Client submits `txs_per_client` transactions at a constant
///    frequency (§V-B: every device proposes at a fixed rate).
///  * Plane — a sim::WorkloadPlane multiplexes `devices` virtual IoT
///    devices over the deployment's O(regions) concrete clients with an
///    open-loop arrival process; device count no longer implies per-device
///    object overhead.
enum class WorkloadMode { PerClient, Plane };

[[nodiscard]] const char* workload_mode_name(WorkloadMode mode);
/// Parses "per_client" / "plane"; error on anything else.
[[nodiscard]] Result<WorkloadMode> workload_mode_from_name(const std::string& name);

/// Open-loop arrival process of the workload plane (rates are per device):
/// Constant spaces arrivals evenly, Poisson draws exponential gaps, Burst
/// alternates on/off windows, Diurnal modulates a raised-cosine day curve.
enum class ArrivalProcess { Constant, Poisson, Burst, Diurnal };

[[nodiscard]] const char* arrival_name(ArrivalProcess process);
/// Parses "constant" / "poisson" / "burst" / "diurnal".
[[nodiscard]] Result<ArrivalProcess> arrival_from_name(const std::string& name);

/// Constant-frequency client workload (§V-B: every device proposes at a
/// fixed rate). Mirrors WorkloadConfig plus the client-retransmission
/// switch: measurement runs disable retries so REQUEST traffic matches the
/// paper's loss-free testbed; chaos runs keep them on.
struct WorkloadSpec {
  std::uint64_t txs_per_client{12};
  Duration period = Duration::seconds(5);
  std::size_t payload_bytes{32};
  Amount fee{10};
  TimePoint start{Duration::seconds(1).ns};
  Duration stagger = Duration::millis(25);  // multiplied by the client index
  bool client_retries{true};

  // --- workload plane (consulted only when mode == Plane) -------------------
  WorkloadMode mode{WorkloadMode::PerClient};
  /// Virtual IoT devices multiplexed over the concrete clients.
  std::uint64_t devices{100'000};
  ArrivalProcess arrival{ArrivalProcess::Poisson};
  /// Mean submissions per device per second (aggregate = devices * rate).
  double rate_hz{0.001};
  /// Generation window: arrivals occur in [start, start + horizon).
  Duration horizon = Duration::seconds(60);
  /// Burst process: full-rate windows of `burst_on` separated by silent
  /// windows of `burst_off`.
  Duration burst_on = Duration::seconds(5);
  Duration burst_off = Duration::seconds(15);
  /// Diurnal process: raised-cosine day of this period whose night floor is
  /// `diurnal_trough` x the peak rate.
  Duration diurnal_period = Duration::seconds(120);
  double diurnal_trough{0.2};

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Consensus batching knobs shared by the PBFT / G-PBFT / dBFT engines
/// (pbft::PbftConfig::batch_close_*). The default — size 1 — reproduces the
/// unbatched seed behaviour exactly; see docs/protocol.md §11.
struct BatchSpec {
  /// Queued requests that close an accumulating batch immediately.
  std::size_t size{1};
  /// Deadline for a partially filled batch, measured from its first request.
  Duration timeout = Duration::millis(250);

  friend bool operator==(const BatchSpec&, const BatchSpec&) = default;
};

/// Committee bounds and era cadence (G-PBFT: §V-A min 4 / max 40; dBFT
/// reuses `initial` as its delegate count ceiling via DbftSpec).
struct CommitteeSpec {
  std::size_t initial{4};
  std::size_t min{4};
  std::size_t max{40};
  Duration era_period = Duration::seconds(60);

  friend bool operator==(const CommitteeSpec&, const CommitteeSpec&) = default;
};

/// Geographic-promotion machinery (Algorithm 1 parameters).
struct GeoSpec {
  Duration report_period = Duration::seconds(10);
  Duration window = Duration::seconds(60);
  std::size_t min_reports{3};
  Duration promotion_threshold = Duration::hours(72);
  bool reports_on_chain{false};

  friend bool operator==(const GeoSpec&, const GeoSpec&) = default;
};

/// PBFT engine knobs shared by the PBFT, G-PBFT and dBFT deployments.
/// Defaults mirror pbft::PbftConfig so a default spec builds the same
/// replica a default PbftConfig does.
struct EngineSpec {
  std::size_t batch_size{8};
  std::size_t pipeline_depth{1};
  std::size_t checkpoint_interval{16};
  bool compute_macs{true};
  Duration request_timeout = Duration::seconds(20);
  Duration view_change_timeout = Duration::seconds(10);

  friend bool operator==(const EngineSpec&, const EngineSpec&) = default;
};

/// dBFT deployment parameters (NEO-style block pacing).
struct DbftSpec {
  Duration block_interval = Duration::seconds(15);
  std::size_t delegates{7};
  std::size_t epoch_blocks{16};

  friend bool operator==(const DbftSpec&, const DbftSpec&) = default;
};

/// PoW deployment parameters. The consensus difficulty is derived as
/// nodes * hashrate * block_interval so the whole network finds a block
/// every `block_interval` on average.
struct PowSpec {
  Duration block_interval = Duration::seconds(10);
  Height confirmations{3};
  double hashrate{1e6};  // hashes per second per IoT-class miner

  friend bool operator==(const PowSpec&, const PowSpec&) = default;
};

/// Optional fault-plan reference: intensity "none" runs fault-free;
/// light/medium/heavy select the seeded ChaosProfile of the same name
/// (chaos.hpp), generated over `horizon` with the spec's seed.
struct ChaosSpec {
  std::string intensity{"none"};
  Duration horizon = Duration::seconds(40);
  Duration liveness_grace = Duration::seconds(300);
  /// Durability chaos on top of the intensity profile: per decision step,
  /// the chance a node crash–restarts from its simulated disk and the
  /// chance a random disk is corrupted (torn write / bit rot / stale
  /// snapshot). Zero (the default) disables both families.
  double restart_chance{0.0};
  double disk_fault_chance{0.0};
  /// Election-attack chances (per decision step, own forked RNG stream):
  /// Sybil geo-report floods, targeted crashes of the most-recently-elected
  /// endorser, and mobility oscillation at the stability boundary. Zero
  /// keeps plans byte-identical to pre-attack runs.
  double sybil_burst_chance{0.0};
  double targeted_crash_chance{0.0};
  double oscillate_chance{0.0};
  /// Wire-tamper chaos (per decision step, own forked RNG stream): the
  /// chance a tamper window opens — an in-flight adversary mutating
  /// envelopes with bit flips, truncation, extension, type confusion,
  /// oversized payloads and replays. `tamper_mode` picks the adversary
  /// model: "replace" (MITM: the mutant takes the genuine message's place)
  /// or "inject" (man-on-the-side: the genuine message is untouched and the
  /// mutant arrives as an extra edge-injected ghost).
  double tamper_chance{0.0};
  std::string tamper_mode{"replace"};

  friend bool operator==(const ChaosSpec&, const ChaosSpec&) = default;
};

/// Reputation-weighted endorser election (G-PBFT only; the other protocols
/// ignore this block). Scores always *record*; `enabled` gates their
/// influence — election ranking, quarantine exclusion and the score
/// snapshot persisted in era-configuration blocks.
struct ReputationSpec {
  bool enabled{false};
  Duration half_life = Duration::hours(24);
  /// Milli-score hysteresis band: quarantine latches below `enter` and
  /// releases only once decay lifts the score past `exit` (1000 = neutral).
  std::int64_t quarantine_enter{400};
  std::int64_t quarantine_exit{750};
  /// Era-switch flood audit: reports above `rate_factor` x the expected
  /// per-window count earn a Sybil-anomaly strike.
  std::size_t sybil_rate_factor{3};

  friend bool operator==(const ReputationSpec&, const ReputationSpec&) = default;
};

/// The full declarative deployment description.
struct ScenarioSpec {
  ProtocolKind protocol{ProtocolKind::Gpbft};
  std::uint64_t seed{1};
  /// Consensus-capable nodes: replicas / endorser-capable devices /
  /// dBFT members / miners, ids 1..nodes.
  std::size_t nodes{4};
  /// Proposing client devices, ids kClientIdBase+1.. (for PoW these drive
  /// transaction gossip to every miner).
  std::size_t clients{0};
  /// Simulation guard rail for run-until-committed drivers.
  Duration deadline = Duration::seconds(4000);
  /// Total host threads the deployment may use: 1 (default) keeps the seed's
  /// single-threaded execution; N>1 adds N-1 MAC-plane workers behind the
  /// ordered sequencer (net::OrderedRunner). Results are byte-identical for
  /// every value — this is a host-performance knob, not a model parameter.
  std::size_t threads{1};

  WorkloadSpec workload;
  CommitteeSpec committee;
  GeoSpec geo;
  EngineSpec engine;
  BatchSpec batch;
  net::NetConfig net;
  PlacementConfig placement;
  DbftSpec dbft;
  PowSpec pow;
  ChaosSpec chaos;
  ReputationSpec reputation;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Deterministic key=value rendering; parse_scenario(print_scenario(s)) == s.
[[nodiscard]] std::string print_scenario(const ScenarioSpec& spec);

/// Strict parse of the text format. Unknown keys, malformed numbers
/// (trailing junk, overflow), invalid enum values and out-of-range
/// parameters are errors. Keys not present keep their defaults.
[[nodiscard]] Result<ScenarioSpec> parse_scenario(const std::string& text);

}  // namespace gpbft::sim
