// Chaos engine: declarative, seeded fault schedules.
//
// A FaultPlan is a timeline of ChaosEvents — crash/recover, partition/heal,
// per-link fault rules, brownouts, Byzantine fault-mode toggles — that can
// be authored literally (tests pin exact scenarios) or generated randomly
// from a seed and an intensity profile (campaigns sweep seeds). Scheduling
// a plan onto the simulator replays it deterministically: the same plan on
// the same seeded deployment produces a bit-identical run.
//
// Random generation respects a concurrent-fault budget (ChaosProfile::
// max_faulty, normally the committee's f): at no instant are more than that
// many nodes crashed, Byzantine, or partitioned away, and every generated
// fault is paired with a heal — so a correct protocol must come back to
// full liveness after FaultPlan::all_healed_at(). That is exactly the claim
// the paper's evaluation rests on (§IV: tolerance under node churn and
// failures), turned into a repeatable harness.
//
// run_chaos_campaign drives N seeds x intensity levels x protocols
// (PBFT / G-PBFT / dBFT / PoW, all behind the Deployment interface) with an
// InvariantMonitor attached and renders a deterministic pass/fail report
// (the CLI `chaos` subcommand is a thin wrapper over it). Each protocol is
// checked against the invariant subset that applies to it: the BFT
// deployments hook every execution online; PoW has no execution hook and
// instead replays every miner's confirmed prefix at run end — agreement is
// only claimed at the configured confirmation depth. Byzantine fault-mode
// toggles only exist for the BFT protocols; PoW profiles zero that chance.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "pbft/config.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario.hpp"
#include "sim/storage.hpp"

namespace gpbft::sim {

/// One scheduled fault action.
struct ChaosEvent {
  enum class Kind {
    Crash,          // nodes: victims
    Recover,        // nodes: victims
    Partition,      // nodes: the isolated minority (everyone else majority)
    Heal,           // heals the partition
    LinkFault,      // nodes: {from, to}; fault: the rule
    LinkClear,      // nodes: {from, to}
    Brownout,       // nodes: {victim}; factor: rate divisor
    BrownoutClear,  // nodes: {victim}
    Byzantine,      // nodes: {victim}; mode: the behaviour
    ByzantineHeal,  // nodes: {victim}
    Restart,        // nodes: {victim}; crash–restart from the node's disk
    DiskFault,      // nodes: {victim}; disk: the corruption injected
    // Election-attack family (targets G-PBFT's endorser election):
    SybilBurst,        // nodes: {victim}; floods forged geo reports
    SybilHeal,         // nodes: {victim}; stops the flood
    TargetedCrash,     // nodes empty; victim resolved at fire time via
                       // ChaosHandlers::resolve_target (most-recently-
                       // elected endorser); recovers after `hold`
    OscillateMobility,  // nodes: {victim}; displaces its reported cell
    OscillateRestore,   // nodes: {victim}; moves it back
    // Wire-tamper family (a network-wide in-flight adversary, not a node
    // fault — it never consumes the concurrent-fault budget):
    Tamper,      // nodes empty; tamper_rule: the adversary installed
    TamperHeal,  // removes the adversary
  };

  TimePoint at;
  Kind kind{Kind::Crash};
  std::vector<NodeId> nodes;
  net::LinkFault fault{};
  double factor{1.0};
  pbft::FaultMode mode{pbft::FaultMode::None};
  DiskFaultKind disk{DiskFaultKind::TornWrite};
  Duration hold{};  // TargetedCrash: downtime before the scheduled recover
  net::TamperRule tamper_rule{};  // Tamper: the rule to install

  /// Deterministic one-line rendering ("t=12.000s crash node 3").
  [[nodiscard]] std::string describe() const;

  // Literal-authoring helpers.
  static ChaosEvent crash(TimePoint at, NodeId victim);
  static ChaosEvent recover(TimePoint at, NodeId victim);
  static ChaosEvent partition(TimePoint at, std::vector<NodeId> minority);
  static ChaosEvent heal(TimePoint at);
  static ChaosEvent link_fault(TimePoint at, NodeId from, NodeId to, net::LinkFault fault);
  static ChaosEvent link_clear(TimePoint at, NodeId from, NodeId to);
  static ChaosEvent brownout(TimePoint at, NodeId victim, double factor);
  static ChaosEvent brownout_clear(TimePoint at, NodeId victim);
  static ChaosEvent byzantine(TimePoint at, NodeId victim, pbft::FaultMode mode);
  static ChaosEvent byzantine_heal(TimePoint at, NodeId victim);
  static ChaosEvent restart(TimePoint at, NodeId victim);
  static ChaosEvent disk_fault(TimePoint at, NodeId victim, DiskFaultKind kind);
  static ChaosEvent sybil_burst(TimePoint at, NodeId victim);
  static ChaosEvent sybil_heal(TimePoint at, NodeId victim);
  static ChaosEvent targeted_crash(TimePoint at, Duration hold);
  static ChaosEvent oscillate_mobility(TimePoint at, NodeId victim);
  static ChaosEvent oscillate_restore(TimePoint at, NodeId victim);
  static ChaosEvent tamper(TimePoint at, net::TamperRule rule);
  static ChaosEvent tamper_heal(TimePoint at);
};

/// Intensity profile for random plan generation. Every `step`, each fault
/// family fires with its chance; a fired fault lasts `fault_duration` and
/// then heals. Parameter maxima bound the drawn severities.
struct ChaosProfile {
  Duration step = Duration::seconds(5);
  Duration fault_duration = Duration::seconds(10);

  double crash_chance{0.2};
  double partition_chance{0.0};
  double byzantine_chance{0.0};
  double link_fault_chance{0.2};
  double brownout_chance{0.15};
  /// Durability faults; zero in the built-in profiles (campaigns opt in via
  /// ChaosCampaignOptions). Their randomness draws from a stream forked off
  /// the plan seed, so enabling them never perturbs the other families.
  double restart_chance{0.0};
  double disk_fault_chance{0.0};

  /// Election-attack families (Sybil report floods, targeted crashes of the
  /// most-recently-elected endorser, mobility oscillation at the stability
  /// boundary); zero in the built-in profiles. Like the durability pair,
  /// their randomness draws from its own stream forked off the plan seed —
  /// zero-chance plans are byte-identical to pre-attack ones.
  double sybil_burst_chance{0.0};
  double targeted_crash_chance{0.0};
  double oscillate_chance{0.0};

  /// Wire-tamper windows (in-flight bit flips, truncation, type confusion,
  /// oversized payloads, replays); zero in the built-in profiles. Like the
  /// other opt-in families the draws come from a forked stream, so
  /// zero-chance plans are byte-identical to pre-tamper ones. A fired
  /// window installs `tamper_template` with a per-message mutation rate
  /// drawn up to `max_tamper_rate`; one window is live at a time.
  double tamper_chance{0.0};
  double max_tamper_rate{0.25};
  net::TamperRule tamper_template{};

  double max_loss{0.15};
  Duration max_extra_latency = Duration::millis(40);
  double max_duplicate{0.25};
  Duration max_reorder = Duration::millis(20);
  double max_brownout{6.0};

  /// Concurrent crashed + Byzantine + partitioned-away budget (set to the
  /// committee's f by campaigns).
  std::size_t max_faulty{1};

  static ChaosProfile light();
  static ChaosProfile medium();
  static ChaosProfile heavy();
};

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(ChaosEvent event);

  /// Generates a plan over [0, horizon): one decision round per
  /// profile.step, faults drawn only among `nodes`, every fault healed by
  /// horizon. Same (seed, profile, nodes, horizon) => identical plan.
  static FaultPlan random(std::uint64_t seed, const ChaosProfile& profile,
                          const std::vector<NodeId>& nodes, Duration horizon);

  [[nodiscard]] const std::vector<ChaosEvent>& events() const { return events_; }
  /// Instant of the last scheduled event — after it, every generated fault
  /// has healed (random plans always pair faults with heals).
  [[nodiscard]] TimePoint all_healed_at() const;
  /// Deterministic multi-line rendering of the whole timeline.
  [[nodiscard]] std::string describe() const;

  using ByzantineSetter = std::function<void(NodeId, pbft::FaultMode)>;
  using EventHook = std::function<void(const ChaosEvent&)>;
  using RestartHandler = std::function<void(NodeId)>;
  using DiskFaultHandler = std::function<void(NodeId, DiskFaultKind)>;
  using TargetResolver = std::function<NodeId()>;
  using MobilityToggler = std::function<void(NodeId, bool)>;

  /// Receivers for the event families that need deployment cooperation.
  /// Network-level events (crash, partition, link, brownout) always apply;
  /// an event whose handler is unset is skipped (the hook still fires).
  struct ChaosHandlers {
    ByzantineSetter set_byzantine;
    RestartHandler restart;        // wire to Deployment::restart_node
    DiskFaultHandler disk_fault;   // wire to Deployment::inject_disk_fault
    /// TargetedCrash resolution: called at fire time, returns the victim
    /// (G-PBFT wires the most-recently-elected endorser). Unset = skipped.
    TargetResolver resolve_target;
    /// OscillateMobility: displace (`true`) or restore (`false`) a device's
    /// reported cell (G-PBFT moves its location and area-registry slot).
    MobilityToggler oscillate;
    EventHook hook;                // fires after each applied event
  };

  /// Schedules every event onto the simulator with the full handler set.
  void schedule(net::Simulator& sim, net::Network& network, const ChaosHandlers& handlers) const;

  /// Convenience overload for plans without restart/disk-fault events.
  void schedule(net::Simulator& sim, net::Network& network, ByzantineSetter set_byzantine = {},
                EventHook hook = {}) const;

 private:
  std::vector<ChaosEvent> events_;
};

// --- seeded campaigns ---------------------------------------------------------------

/// Profile by name; aborts on an unknown intensity. "none" yields an
/// all-zero profile — no fault family fires — so campaigns can isolate an
/// opt-in family (tamper storms, REJECT-SAFE pairs) from node faults.
[[nodiscard]] ChaosProfile profile_for(const std::string& intensity);

struct ChaosCampaignOptions {
  std::size_t seeds{10};
  std::uint64_t base_seed{1};
  std::vector<std::string> intensities{"light", "medium", "heavy"};
  /// Protocols swept, in report order.
  std::vector<ProtocolKind> protocols{ProtocolKind::Pbft, ProtocolKind::Gpbft,
                                      ProtocolKind::Dbft, ProtocolKind::Pow};

  /// Committee size (PBFT replicas / G-PBFT initial committee / dBFT
  /// delegates / PoW miners).
  std::size_t committee{7};
  /// Extra G-PBFT candidate endorsers (era switches promote them mid-run).
  std::size_t candidates{2};
  std::size_t clients{2};
  std::uint64_t txs_per_client{6};
  Duration tx_period = Duration::seconds(4);

  /// Fault-injection window; the liveness deadline is horizon + grace.
  Duration horizon = Duration::seconds(40);
  Duration liveness_grace = Duration::seconds(300);

  /// Durability chaos, applied on top of the intensity profile: per step,
  /// the chance a node is crash–restarted from its simulated disk, and the
  /// chance a random disk suffers a fault (torn write / bit rot / stale
  /// snapshot). Zero keeps campaigns byte-identical to pre-durability runs.
  double restart_chance{0.0};
  double disk_fault_chance{0.0};

  /// Election-attack chances (per step, own forked RNG stream; see
  /// ChaosProfile). Meaningful for G-PBFT runs; the other protocols have no
  /// election to attack, so the events degrade to plain faults or no-ops.
  double sybil_burst_chance{0.0};
  double targeted_crash_chance{0.0};
  double oscillate_chance{0.0};

  /// Wire-tamper chaos: per step, the chance a tamper window opens (the
  /// in-flight adversary of `tamper_template` with a drawn mutation rate).
  /// Campaigns spare PoW client requests automatically — nothing end-to-end
  /// authenticates them, so tampering there forges workload, not wire noise.
  double tamper_chance{0.0};
  net::TamperRule tamper_template{};

  /// Enables the reputation-weighted election (G-PBFT deployments): scores
  /// shape the roster, quarantine demotes attackers, configuration blocks
  /// carry the score snapshot.
  bool reputation{false};
};

struct ChaosRunResult {
  std::string protocol;
  std::string intensity;
  std::uint64_t seed{0};
  std::uint64_t committed{0};
  std::uint64_t expected{0};
  std::size_t fault_events{0};
  std::uint64_t restarts{0};
  std::uint64_t blocks_checked{0};
  std::vector<Violation> violations;
  /// Hex hash of node 0's chain tip at run end — the REJECT-SAFE campaign
  /// compares it across a clean/tampered pair.
  std::string tip_hex;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

struct ChaosCampaignResult {
  std::vector<ChaosRunResult> runs;

  [[nodiscard]] std::size_t failed_runs() const;
  /// Deterministic report: same options => byte-identical text.
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] ChaosCampaignResult run_chaos_campaign(const ChaosCampaignOptions& options);

/// The REJECT-SAFE campaign: for every protocol x seed it runs the scenario
/// twice at the same seed — once clean, once with an Inject-mode tamper
/// storm (man-on-the-side ghosts; replay disabled because replayed genuine
/// messages legitimately elicit responses) — and requires the tampered
/// run's chain tip to be byte-identical to the clean run's. With MACs on,
/// every forged ghost must be rejected at the wire layer without perturbing
/// the genuine plane; a tip mismatch records a RejectSafe violation. Runs
/// with `options.intensities` ignored ("none" is used so node faults stay
/// out of the picture); a non-positive options.tamper_chance defaults to
/// windows opening on three quarters of the steps.
[[nodiscard]] ChaosCampaignResult run_tamper_campaign(const ChaosCampaignOptions& options);

}  // namespace gpbft::sim
