#include "sim/storage.hpp"

#include <utility>

namespace gpbft::sim {

const char* disk_fault_name(DiskFaultKind kind) {
  switch (kind) {
    case DiskFaultKind::TornWrite: return "torn-write";
    case DiskFaultKind::BitRot: return "bit-rot";
    case DiskFaultKind::StaleSnapshot: return "stale-snapshot";
  }
  return "unknown";
}

void SimDisk::save(Bytes image) {
  ++saves_;
  previous_ = std::move(image_);
  image_ = std::move(image);
  if (torn_next_) {
    torn_next_ = false;
    ++faults_applied_;
    if (!image_.empty()) {
      // Power loss mid-write: keep a strict prefix (possibly empty). The
      // integrity tail makes any truncation detectable at load time.
      image_.resize(rng_.uniform(0, image_.size() - 1));
    }
  }
}

void SimDisk::inject(DiskFaultKind kind) {
  switch (kind) {
    case DiskFaultKind::TornWrite:
      torn_next_ = true;
      break;
    case DiskFaultKind::BitRot:
      if (!image_.empty()) {
        const std::uint64_t bit = rng_.uniform(0, image_.size() * 8 - 1);
        image_[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        ++faults_applied_;
      }
      break;
    case DiskFaultKind::StaleSnapshot:
      if (!previous_.empty() || !image_.empty()) {
        image_ = previous_;
        ++faults_applied_;
      }
      break;
  }
}

SimDisk& StorageFabric::disk(NodeId id) {
  auto it = disks_.find(id.value);
  if (it == disks_.end()) {
    it = disks_.emplace(id.value, SimDisk(rng_.fork(id.value))).first;
  }
  return it->second;
}

}  // namespace gpbft::sim
