#include "sim/mobility.hpp"

namespace gpbft::sim {

void Mobility::move(::gpbft::gpbft::Endorser& device, const geo::GeoPoint& to) {
  device.set_location(to);
  area_.place(device.id(), to);  // ground truth follows: the move is honest
}

void Mobility::random_hop(::gpbft::gpbft::Endorser& device, Duration period,
                          std::size_t slot_base, std::size_t slot_count, Duration start) {
  ++drivers_;
  struct Hopper {
    Mobility* mobility;
    ::gpbft::gpbft::Endorser* device;
    Duration period;
    std::size_t slot_base;
    std::size_t slot_count;
    std::size_t hop{0};
    std::shared_ptr<bool> alive;

    void step(const std::shared_ptr<Hopper>& self) {
      if (!*alive) return;
      const std::size_t slot = slot_base + (hop++ % slot_count);
      mobility->move(*device, mobility->placement_.position(slot));
      mobility->sim_.schedule(period, [self]() { self->step(self); });
    }
  };
  auto hopper = std::make_shared<Hopper>();
  hopper->mobility = this;
  hopper->device = &device;
  hopper->period = period;
  hopper->slot_base = slot_base;
  hopper->slot_count = std::max<std::size_t>(1, slot_count);
  hopper->alive = alive_;
  sim_.schedule(start, [hopper]() { hopper->step(hopper); });
}

void Mobility::relocate_at(::gpbft::gpbft::Endorser& device, Duration when,
                           const geo::GeoPoint& to) {
  ++drivers_;
  auto alive = alive_;
  auto* device_ptr = &device;
  sim_.schedule(when, [this, alive, device_ptr, to]() {
    if (!*alive) return;
    move(*device_ptr, to);
  });
}

}  // namespace gpbft::sim
