#include "sim/scenario.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>

namespace gpbft::sim {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Pbft: return "pbft";
    case ProtocolKind::Gpbft: return "gpbft";
    case ProtocolKind::Dbft: return "dbft";
    case ProtocolKind::Pow: return "pow";
  }
  return "unknown";
}

Result<ProtocolKind> protocol_from_name(const std::string& name) {
  if (name == "pbft") return ProtocolKind::Pbft;
  if (name == "gpbft") return ProtocolKind::Gpbft;
  if (name == "dbft") return ProtocolKind::Dbft;
  if (name == "pow") return ProtocolKind::Pow;
  return make_error("unknown protocol: \"" + name + "\" (expected pbft|gpbft|dbft|pow)");
}

const char* workload_mode_name(WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::PerClient: return "per_client";
    case WorkloadMode::Plane: return "plane";
  }
  return "unknown";
}

Result<WorkloadMode> workload_mode_from_name(const std::string& name) {
  if (name == "per_client") return WorkloadMode::PerClient;
  if (name == "plane") return WorkloadMode::Plane;
  return make_error("unknown workload mode: \"" + name + "\" (expected per_client|plane)");
}

const char* arrival_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::Constant: return "constant";
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::Burst: return "burst";
    case ArrivalProcess::Diurnal: return "diurnal";
  }
  return "unknown";
}

Result<ArrivalProcess> arrival_from_name(const std::string& name) {
  if (name == "constant") return ArrivalProcess::Constant;
  if (name == "poisson") return ArrivalProcess::Poisson;
  if (name == "burst") return ArrivalProcess::Burst;
  if (name == "diurnal") return ArrivalProcess::Diurnal;
  return make_error("unknown arrival process: \"" + name +
                    "\" (expected constant|poisson|burst|diurnal)");
}

namespace {

// --- strict value parsers ------------------------------------------------------------
//
// Every parser consumes the whole value or fails: "3abc", "1e3garbage" and
// silent overflow are rejected (the historical strtol-accepts-junk trap).

Result<std::uint64_t> parse_u64(const std::string& value) {
  if (value.empty() || value[0] == '-' || value[0] == '+') {
    return make_error("expected unsigned integer, got \"" + value + "\"");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    return make_error("expected unsigned integer, got \"" + value + "\"");
  }
  return static_cast<std::uint64_t>(parsed);
}

Result<std::int64_t> parse_i64(const std::string& value) {
  if (value.empty()) return make_error("expected integer, got \"\"");
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    return make_error("expected integer, got \"" + value + "\"");
  }
  return static_cast<std::int64_t>(parsed);
}

Result<double> parse_double(const std::string& value) {
  if (value.empty()) return make_error("expected number, got \"\"");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    return make_error("expected number, got \"" + value + "\"");
  }
  return parsed;
}

Result<bool> parse_bool(const std::string& value) {
  if (value == "true") return true;
  if (value == "false") return false;
  return make_error("expected true|false, got \"" + value + "\"");
}

std::string double_str(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// --- field table --------------------------------------------------------------------
//
// One table drives both directions: print_scenario walks it in order,
// parse_scenario looks lines up in it. Adding a spec field means adding one
// row here; round-trip identity then holds by construction.

struct Field {
  const char* key;
  std::function<std::string(const ScenarioSpec&)> print;
  std::function<Result<void>(ScenarioSpec&, const std::string&)> parse;
};

Field u64_field(const char* key, std::uint64_t ScenarioSpec::* member) {
  return {key, [member](const ScenarioSpec& s) { return std::to_string(s.*member); },
          [member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_u64(v);
            if (!parsed) return make_error(parsed.error());
            s.*member = parsed.value();
            return {};
          }};
}

template <typename Sub>
Field size_field(const char* key, Sub ScenarioSpec::* sub, std::size_t Sub::* member) {
  return {key,
          [sub, member](const ScenarioSpec& s) { return std::to_string(s.*sub.*member); },
          [sub, member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_u64(v);
            if (!parsed) return make_error(parsed.error());
            s.*sub.*member = static_cast<std::size_t>(parsed.value());
            return {};
          }};
}

template <typename Sub>
Field u64_sub_field(const char* key, Sub ScenarioSpec::* sub, std::uint64_t Sub::* member) {
  return {key,
          [sub, member](const ScenarioSpec& s) { return std::to_string(s.*sub.*member); },
          [sub, member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_u64(v);
            if (!parsed) return make_error(parsed.error());
            s.*sub.*member = parsed.value();
            return {};
          }};
}

template <typename Sub>
Field duration_field(const char* key, Sub ScenarioSpec::* sub, Duration Sub::* member) {
  return {key,
          [sub, member](const ScenarioSpec& s) { return std::to_string((s.*sub.*member).ns); },
          [sub, member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_i64(v);
            if (!parsed) return make_error(parsed.error());
            if (parsed.value() < 0) return make_error("negative duration: \"" + v + "\"");
            (s.*sub.*member).ns = parsed.value();
            return {};
          }};
}

template <typename Sub>
Field i64_sub_field(const char* key, Sub ScenarioSpec::* sub, std::int64_t Sub::* member) {
  return {key,
          [sub, member](const ScenarioSpec& s) { return std::to_string(s.*sub.*member); },
          [sub, member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_i64(v);
            if (!parsed) return make_error(parsed.error());
            s.*sub.*member = parsed.value();
            return {};
          }};
}

template <typename Sub>
Field double_field(const char* key, Sub ScenarioSpec::* sub, double Sub::* member) {
  return {key, [sub, member](const ScenarioSpec& s) { return double_str(s.*sub.*member); },
          [sub, member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_double(v);
            if (!parsed) return make_error(parsed.error());
            s.*sub.*member = parsed.value();
            return {};
          }};
}

template <typename Sub>
Field bool_field(const char* key, Sub ScenarioSpec::* sub, bool Sub::* member) {
  return {key,
          [sub, member](const ScenarioSpec& s) { return s.*sub.*member ? "true" : "false"; },
          [sub, member](ScenarioSpec& s, const std::string& v) -> Result<void> {
            auto parsed = parse_bool(v);
            if (!parsed) return make_error(parsed.error());
            s.*sub.*member = parsed.value();
            return {};
          }};
}

const std::vector<Field>& field_table() {
  static const std::vector<Field> fields = [] {
    std::vector<Field> f;
    f.push_back({"protocol",
                 [](const ScenarioSpec& s) { return std::string(protocol_name(s.protocol)); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = protocol_from_name(v);
                   if (!parsed) return make_error(parsed.error());
                   s.protocol = parsed.value();
                   return {};
                 }});
    f.push_back(u64_field("seed", &ScenarioSpec::seed));
    f.push_back({"nodes", [](const ScenarioSpec& s) { return std::to_string(s.nodes); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_u64(v);
                   if (!parsed) return make_error(parsed.error());
                   if (parsed.value() == 0) return make_error("nodes must be >= 1");
                   s.nodes = static_cast<std::size_t>(parsed.value());
                   return {};
                 }});
    f.push_back({"clients", [](const ScenarioSpec& s) { return std::to_string(s.clients); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_u64(v);
                   if (!parsed) return make_error(parsed.error());
                   s.clients = static_cast<std::size_t>(parsed.value());
                   return {};
                 }});
    f.push_back({"deadline_ns",
                 [](const ScenarioSpec& s) { return std::to_string(s.deadline.ns); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_i64(v);
                   if (!parsed) return make_error(parsed.error());
                   if (parsed.value() < 0) return make_error("negative duration: \"" + v + "\"");
                   s.deadline.ns = parsed.value();
                   return {};
                 }});
    f.push_back({"sim.threads", [](const ScenarioSpec& s) { return std::to_string(s.threads); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_u64(v);
                   if (!parsed) return make_error(parsed.error());
                   if (parsed.value() == 0) return make_error("sim.threads must be >= 1");
                   s.threads = static_cast<std::size_t>(parsed.value());
                   return {};
                 }});

    f.push_back(u64_sub_field("workload.txs_per_client", &ScenarioSpec::workload,
                              &WorkloadSpec::txs_per_client));
    f.push_back(duration_field("workload.period_ns", &ScenarioSpec::workload,
                               &WorkloadSpec::period));
    f.push_back(size_field("workload.payload_bytes", &ScenarioSpec::workload,
                           &WorkloadSpec::payload_bytes));
    f.push_back(u64_sub_field("workload.fee", &ScenarioSpec::workload, &WorkloadSpec::fee));
    f.push_back({"workload.start_ns",
                 [](const ScenarioSpec& s) { return std::to_string(s.workload.start.ns); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_i64(v);
                   if (!parsed) return make_error(parsed.error());
                   if (parsed.value() < 0) return make_error("negative instant: \"" + v + "\"");
                   s.workload.start.ns = parsed.value();
                   return {};
                 }});
    f.push_back(duration_field("workload.stagger_ns", &ScenarioSpec::workload,
                               &WorkloadSpec::stagger));
    f.push_back(bool_field("workload.client_retries", &ScenarioSpec::workload,
                           &WorkloadSpec::client_retries));
    f.push_back({"workload.mode",
                 [](const ScenarioSpec& s) {
                   return std::string(workload_mode_name(s.workload.mode));
                 },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = workload_mode_from_name(v);
                   if (!parsed) return make_error(parsed.error());
                   s.workload.mode = parsed.value();
                   return {};
                 }});
    f.push_back(u64_sub_field("workload.devices", &ScenarioSpec::workload,
                              &WorkloadSpec::devices));
    f.push_back({"workload.arrival",
                 [](const ScenarioSpec& s) {
                   return std::string(arrival_name(s.workload.arrival));
                 },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = arrival_from_name(v);
                   if (!parsed) return make_error(parsed.error());
                   s.workload.arrival = parsed.value();
                   return {};
                 }});
    f.push_back(double_field("workload.rate_hz", &ScenarioSpec::workload,
                             &WorkloadSpec::rate_hz));
    f.push_back(duration_field("workload.horizon_ns", &ScenarioSpec::workload,
                               &WorkloadSpec::horizon));
    f.push_back(duration_field("workload.burst_on_ns", &ScenarioSpec::workload,
                               &WorkloadSpec::burst_on));
    f.push_back(duration_field("workload.burst_off_ns", &ScenarioSpec::workload,
                               &WorkloadSpec::burst_off));
    f.push_back(duration_field("workload.diurnal_period_ns", &ScenarioSpec::workload,
                               &WorkloadSpec::diurnal_period));
    f.push_back(double_field("workload.diurnal_trough", &ScenarioSpec::workload,
                             &WorkloadSpec::diurnal_trough));

    f.push_back(size_field("committee.initial", &ScenarioSpec::committee,
                           &CommitteeSpec::initial));
    f.push_back(size_field("committee.min", &ScenarioSpec::committee, &CommitteeSpec::min));
    f.push_back(size_field("committee.max", &ScenarioSpec::committee, &CommitteeSpec::max));
    f.push_back(duration_field("committee.era_period_ns", &ScenarioSpec::committee,
                               &CommitteeSpec::era_period));

    f.push_back(duration_field("geo.report_period_ns", &ScenarioSpec::geo,
                               &GeoSpec::report_period));
    f.push_back(duration_field("geo.window_ns", &ScenarioSpec::geo, &GeoSpec::window));
    f.push_back(size_field("geo.min_reports", &ScenarioSpec::geo, &GeoSpec::min_reports));
    f.push_back(duration_field("geo.promotion_threshold_ns", &ScenarioSpec::geo,
                               &GeoSpec::promotion_threshold));
    f.push_back(bool_field("geo.reports_on_chain", &ScenarioSpec::geo,
                           &GeoSpec::reports_on_chain));

    f.push_back(size_field("engine.batch_size", &ScenarioSpec::engine, &EngineSpec::batch_size));
    f.push_back(size_field("engine.pipeline_depth", &ScenarioSpec::engine,
                           &EngineSpec::pipeline_depth));
    f.push_back(size_field("engine.checkpoint_interval", &ScenarioSpec::engine,
                           &EngineSpec::checkpoint_interval));
    f.push_back(bool_field("engine.compute_macs", &ScenarioSpec::engine,
                           &EngineSpec::compute_macs));
    f.push_back(duration_field("engine.request_timeout_ns", &ScenarioSpec::engine,
                               &EngineSpec::request_timeout));
    f.push_back(duration_field("engine.view_change_timeout_ns", &ScenarioSpec::engine,
                               &EngineSpec::view_change_timeout));

    f.push_back({"batch.size",
                 [](const ScenarioSpec& s) { return std::to_string(s.batch.size); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_u64(v);
                   if (!parsed) return make_error(parsed.error());
                   if (parsed.value() == 0) return make_error("batch.size must be >= 1");
                   s.batch.size = static_cast<std::size_t>(parsed.value());
                   return {};
                 }});
    f.push_back(duration_field("batch.timeout_ns", &ScenarioSpec::batch, &BatchSpec::timeout));

    f.push_back(duration_field("net.base_latency_ns", &ScenarioSpec::net,
                               &net::NetConfig::base_latency));
    f.push_back(duration_field("net.jitter_ns", &ScenarioSpec::net, &net::NetConfig::jitter));
    f.push_back(double_field("net.bandwidth_bytes_per_sec", &ScenarioSpec::net,
                             &net::NetConfig::bandwidth_bytes_per_sec));
    f.push_back(double_field("net.processing_rate_msgs_per_sec", &ScenarioSpec::net,
                             &net::NetConfig::processing_rate_msgs_per_sec));
    f.push_back(double_field("net.processing_secs_per_byte", &ScenarioSpec::net,
                             &net::NetConfig::processing_secs_per_byte));
    f.push_back(double_field("net.drop_rate", &ScenarioSpec::net, &net::NetConfig::drop_rate));

    f.push_back({"placement.base_latitude",
                 [](const ScenarioSpec& s) { return double_str(s.placement.base.latitude); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_double(v);
                   if (!parsed) return make_error(parsed.error());
                   s.placement.base.latitude = parsed.value();
                   return {};
                 }});
    f.push_back({"placement.base_longitude",
                 [](const ScenarioSpec& s) { return double_str(s.placement.base.longitude); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_double(v);
                   if (!parsed) return make_error(parsed.error());
                   s.placement.base.longitude = parsed.value();
                   return {};
                 }});
    f.push_back({"placement.area_precision",
                 [](const ScenarioSpec& s) { return std::to_string(s.placement.area_precision); },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   auto parsed = parse_i64(v);
                   if (!parsed) return make_error(parsed.error());
                   if (parsed.value() < 1 || parsed.value() > 12) {
                     return make_error("placement.area_precision must be in [1, 12]");
                   }
                   s.placement.area_precision = static_cast<int>(parsed.value());
                   return {};
                 }});
    f.push_back(double_field("placement.spacing_meters", &ScenarioSpec::placement,
                             &PlacementConfig::spacing_meters));

    f.push_back(duration_field("dbft.block_interval_ns", &ScenarioSpec::dbft,
                               &DbftSpec::block_interval));
    f.push_back(size_field("dbft.delegates", &ScenarioSpec::dbft, &DbftSpec::delegates));
    f.push_back(size_field("dbft.epoch_blocks", &ScenarioSpec::dbft, &DbftSpec::epoch_blocks));

    f.push_back(duration_field("pow.block_interval_ns", &ScenarioSpec::pow,
                               &PowSpec::block_interval));
    f.push_back(u64_sub_field("pow.confirmations", &ScenarioSpec::pow, &PowSpec::confirmations));
    f.push_back(double_field("pow.hashrate", &ScenarioSpec::pow, &PowSpec::hashrate));

    f.push_back({"chaos.intensity",
                 [](const ScenarioSpec& s) { return s.chaos.intensity; },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   if (v != "none" && v != "light" && v != "medium" && v != "heavy") {
                     return make_error("chaos.intensity must be none|light|medium|heavy, got \"" +
                                       v + "\"");
                   }
                   s.chaos.intensity = v;
                   return {};
                 }});
    f.push_back(duration_field("chaos.horizon_ns", &ScenarioSpec::chaos, &ChaosSpec::horizon));
    f.push_back(duration_field("chaos.liveness_grace_ns", &ScenarioSpec::chaos,
                               &ChaosSpec::liveness_grace));
    f.push_back(double_field("chaos.restart_chance", &ScenarioSpec::chaos,
                             &ChaosSpec::restart_chance));
    f.push_back(double_field("chaos.disk_fault_chance", &ScenarioSpec::chaos,
                             &ChaosSpec::disk_fault_chance));
    f.push_back(double_field("chaos.sybil_burst_chance", &ScenarioSpec::chaos,
                             &ChaosSpec::sybil_burst_chance));
    f.push_back(double_field("chaos.targeted_crash_chance", &ScenarioSpec::chaos,
                             &ChaosSpec::targeted_crash_chance));
    f.push_back(double_field("chaos.oscillate_chance", &ScenarioSpec::chaos,
                             &ChaosSpec::oscillate_chance));
    f.push_back(double_field("chaos.tamper_chance", &ScenarioSpec::chaos,
                             &ChaosSpec::tamper_chance));
    f.push_back({"chaos.tamper_mode",
                 [](const ScenarioSpec& s) { return s.chaos.tamper_mode; },
                 [](ScenarioSpec& s, const std::string& v) -> Result<void> {
                   if (v != "replace" && v != "inject") {
                     return make_error("chaos.tamper_mode must be replace|inject, got \"" + v +
                                       "\"");
                   }
                   s.chaos.tamper_mode = v;
                   return {};
                 }});

    f.push_back(bool_field("reputation.enabled", &ScenarioSpec::reputation,
                           &ReputationSpec::enabled));
    f.push_back(duration_field("reputation.half_life_ns", &ScenarioSpec::reputation,
                               &ReputationSpec::half_life));
    f.push_back(i64_sub_field("reputation.quarantine_enter", &ScenarioSpec::reputation,
                              &ReputationSpec::quarantine_enter));
    f.push_back(i64_sub_field("reputation.quarantine_exit", &ScenarioSpec::reputation,
                              &ReputationSpec::quarantine_exit));
    f.push_back(size_field("reputation.sybil_rate_factor", &ScenarioSpec::reputation,
                           &ReputationSpec::sybil_rate_factor));
    return f;
  }();
  return fields;
}

}  // namespace

std::string print_scenario(const ScenarioSpec& spec) {
  std::string out = "# gpbft scenario (key=value; durations in nanoseconds)\n";
  for (const Field& field : field_table()) {
    out += field.key;
    out += '=';
    out += field.print(spec);
    out += '\n';
  }
  return out;
}

Result<ScenarioSpec> parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  std::size_t line_start = 0;
  std::size_t line_number = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_number;

    // Trim whitespace; skip blanks and comments.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line[0] == '#') continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return make_error("line " + std::to_string(line_number) + ": expected key=value, got \"" +
                        line + "\"");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);

    const Field* match = nullptr;
    for (const Field& field : field_table()) {
      if (key == field.key) {
        match = &field;
        break;
      }
    }
    if (match == nullptr) {
      return make_error("line " + std::to_string(line_number) + ": unknown key \"" + key + "\"");
    }
    if (Result<void> parsed = match->parse(spec, value); !parsed) {
      return make_error("line " + std::to_string(line_number) + ": " + key + ": " +
                        parsed.error());
    }
  }
  return spec;
}

}  // namespace gpbft::sim
