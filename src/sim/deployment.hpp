// Uniform deployment layer: every consensus protocol behind one interface.
//
// A Deployment owns a whole simulated system — simulator, network, key
// registry, placement, protocol nodes and client devices — and exposes the
// uniform surface the harness drives: start / run_for / run_until_committed
// / committee / stop / stats, plus workload scheduling, Byzantine fault
// toggles and invariant-monitor attachment. The common run/stop plumbing
// lives here exactly once; subclasses contribute only protocol wiring.
//
// Four deployments exist, one per protocol the paper evaluates (§V):
//
//   PbftCluster  — the baseline: every node is a PBFT replica, the
//                  committee is the whole network (Fig. 3a/5a);
//   GpbftCluster — endorser-capable fixed devices (initial committee +
//                  candidates) with the control plane the harness owns:
//                  AreaRegistry placement and roster fan-out after era
//                  switches (zero simulated-wire cost; see DESIGN.md);
//   DbftCluster  — NEO-style dBFT: every node a delegate-capable member,
//                  blocks paced at a fixed interval, speaker rotation;
//   PowCluster   — simulated Poisson miners with heaviest-chain fork
//                  choice; transactions confirm at a configured depth.
//
// Deployments are built from a declarative ScenarioSpec via
// make_deployment() — the only construction path benches, examples and the
// CLI use. Tests that need full-fidelity knobs may still fill the concrete
// config structs directly.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "dbft/delegate.hpp"
#include "gpbft/endorser.hpp"
#include "pbft/client.hpp"
#include "pbft/replica.hpp"
#include "pow/miner.hpp"
#include "sim/metrics.hpp"
#include "sim/placement.hpp"
#include "sim/scenario.hpp"
#include "sim/storage.hpp"

namespace gpbft::sim {

class InvariantMonitor;
class WorkloadPlane;

/// Node-id layout shared by all deployments: protocol nodes are 1..N,
/// clients 10001..; id 0 is the system/null node.
inline constexpr std::uint64_t kClientIdBase = 10'000;

class Deployment {
 public:
  using SubmitHook = std::function<void(const ledger::Transaction&)>;

  /// Clears the Logger's sim-time prefix: a harness that outlives its
  /// deployment must not stamp later wall-clock log lines with the dead
  /// simulation's final timestamp.
  virtual ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Starts protocol nodes, then client devices.
  void start();
  /// Stops protocol timers so the event queue can drain.
  void stop();

  /// Advances simulated time by `d` (processing all events due in it).
  void run_for(Duration d);

  /// Runs until the workload is done (every client committed `per_client`
  /// transactions) or the deadline passes; returns true when done.
  bool run_until_committed(std::uint64_t per_client, TimePoint deadline);

  [[nodiscard]] virtual ProtocolKind kind() const = 0;
  /// The current consensus committee (all nodes for PBFT/PoW).
  [[nodiscard]] virtual std::vector<NodeId> committee() const = 0;
  [[nodiscard]] virtual std::size_t committee_size() const { return committee().size(); }
  /// Nodes chaos campaigns may fault (the genesis committee by default:
  /// promoted committees are only ever larger, so a budget computed from
  /// these stays conservative).
  [[nodiscard]] virtual std::vector<NodeId> fault_targets() const { return committee(); }

  /// Schedules the workload. PerClient mode drives one constant-frequency
  /// stream per concrete client; Plane mode builds a WorkloadPlane
  /// multiplexing `workload.devices` virtual devices over those clients.
  /// `recorder` (optional) collects commit latencies; `on_submit`
  /// (optional) fires per submitted transaction — chaos runs wire it to
  /// InvariantMonitor::expect_submission. Either way the streams are gated
  /// on a liveness token that stop() revokes, so pending submission events
  /// cannot outlive the deployment's active phase.
  virtual void schedule_workload(const WorkloadSpec& workload, LatencyRecorder* recorder,
                                 SubmitHook on_submit = {});

  /// The workload plane, when schedule_workload ran in Plane mode.
  [[nodiscard]] WorkloadPlane* plane() { return plane_.get(); }
  [[nodiscard]] const WorkloadPlane* plane() const { return plane_.get(); }

  /// Hex hash of node 0's chain tip (PoW: miner 0's best tip) — the
  /// byte-level fingerprint the REJECT-SAFE tamper campaign compares
  /// across a clean/tampered pair at the same seed.
  [[nodiscard]] virtual std::string tip_hex() const = 0;

  /// Transactions committed (PoW: confirmed at depth) across all clients.
  [[nodiscard]] virtual std::uint64_t committed_count() const;
  [[nodiscard]] virtual std::uint64_t era_switches() const { return 0; }
  [[nodiscard]] virtual double hashes_computed() const { return 0.0; }

  /// Toggles a node's Byzantine behaviour (no-op for PoW: miners model no
  /// equivocation faults; chaos profiles keep byzantine_chance at zero).
  virtual void set_fault_mode(NodeId id, pbft::FaultMode mode);

  /// The most recently seated committee member — the victim a TargetedCrash
  /// chaos event resolves at fire time. G-PBFT tracks promotions across era
  /// switches; protocols without elections fall back to the last fault
  /// target, so the event degrades to a plain crash of a fixed node.
  [[nodiscard]] virtual NodeId latest_elected() const {
    const std::vector<NodeId> targets = fault_targets();
    return targets.empty() ? NodeId{0} : targets.back();
  }

  /// Displaces (`true`) or restores (`false`) a node's physical position at
  /// the mobility-stability boundary (OscillateMobility chaos events).
  /// No-op for protocols without geo reporting.
  virtual void displace_node(NodeId id, bool displaced) {
    (void)id;
    (void)displaced;
  }

  /// Crash–restart with durability: destroys the protocol object (its
  /// scheduled timers die with its lifetime token), rebuilds it from
  /// whatever its simulated disk yields — genesis when the image is absent
  /// or corrupt — re-attaches it and kicks off active resync. Returns false
  /// when `id` is not a protocol node of this deployment.
  virtual bool restart_node(NodeId id);
  /// Injects a disk fault into `id`'s simulated disk (see DiskFaultKind).
  void inject_disk_fault(NodeId id, DiskFaultKind kind);
  [[nodiscard]] StorageFabric& storage() { return storage_; }

  /// The deployment-owned telemetry sink. Metrics are on by default; call
  /// `telemetry().set_trace_enabled(true)` before start() to also record
  /// causal traces, and finalize_telemetry() before exporting.
  [[nodiscard]] obs::Telemetry& telemetry() { return telemetry_; }
  /// Copies end-of-run gauges (simulator queue high-water mark, events
  /// processed, committee size) into the registry and labels trace rows.
  void finalize_telemetry();

  /// Attaches the invariant monitor to every node's execution path.
  /// PoW has no online execution hook; it is checked at finish_invariants.
  /// Subclass overrides must call the base so restarts re-watch rebuilt
  /// nodes and report to InvariantMonitor::note_restart.
  virtual void watch(InvariantMonitor& monitor);
  /// End-of-run checks: PoW replays every miner's confirmed prefix through
  /// the monitor (agreement/validity/duplicates over confirmed blocks).
  virtual void finish_invariants(InvariantMonitor& monitor);

  [[nodiscard]] net::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const net::NetStats& stats() const { return network_.stats(); }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const crypto::KeyRegistry& keys() const { return keys_; }
  [[nodiscard]] pbft::Client& client(std::size_t i) { return *clients_.at(i); }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

 protected:
  Deployment(std::uint64_t seed, const net::NetConfig& net, const PlacementConfig& placement);

  virtual void start_nodes() = 0;
  virtual void stop_nodes() = 0;
  /// Whether the workload finished; default: every client committed.
  [[nodiscard]] virtual bool workload_done(std::uint64_t per_client) const;

  /// Wires a replica's persist callback to its node's simulated disk.
  void attach_persistence(pbft::Replica& replica);
  /// Replays `replica`'s disk image through restore_chain. An absent or
  /// corrupt image (torn write, bit rot) leaves the replica at genesis —
  /// the fallback path chain sync then closes.
  void restore_from_disk(pbft::Replica& replica);
  /// Monitor bookkeeping shared by every restart_node override.
  void note_restarted(pbft::Replica& replica);

  /// Turns on the parallel MAC plane: `threads` total host threads (<=1 is
  /// a no-op — the seed's single-threaded execution), of which threads-1
  /// become OrderedRunner workers. Every arriving envelope gets an open
  /// prologue (framing parse, plus HMAC verification when `compute_macs`)
  /// submitted at its arrival instant and released — in exact submission
  /// order — before its handler runs. Pure latency hiding: the prologue is
  /// a pure function of key material and payload bytes, so results are
  /// byte-identical to the inline path. Call from the subclass constructor,
  /// after the network exists and before any traffic.
  void enable_mac_plane(std::size_t threads, bool compute_macs);

 public:
  /// The parallel MAC plane's runner, or null when threads <= 1 (bench
  /// diagnostics: offload/steal counters).
  [[nodiscard]] const net::OrderedRunner* mac_runner() const { return runner_.get(); }

 protected:

  obs::Telemetry telemetry_;  // before network_: the network holds a pointer
  net::Simulator sim_;
  net::Network network_;
  crypto::KeyRegistry keys_;
  Placement placement_;
  StorageFabric storage_;
  InvariantMonitor* monitor_{nullptr};
  std::vector<std::unique_ptr<pbft::Client>> clients_;
  /// Liveness token handed to workload streams; stop() resets it first so
  /// already-queued submission events become no-ops.
  std::shared_ptr<const bool> workload_alive_;
  std::unique_ptr<WorkloadPlane> plane_;
  /// Parallel MAC plane (see enable_mac_plane). Declared last: its
  /// destructor drains in-flight prologues that reference keys_ and node
  /// state, so it must be destroyed before everything it reads.
  std::unique_ptr<net::OrderedRunner> runner_;
};

// --- PBFT baseline ------------------------------------------------------------

struct PbftClusterConfig {
  std::size_t replicas{4};
  std::size_t clients{0};
  std::uint64_t seed{1};
  /// Total host threads (see ScenarioSpec::threads); 1 = single-threaded.
  std::size_t threads{1};
  net::NetConfig net;
  pbft::PbftConfig pbft;
  PlacementConfig placement;
};

class PbftCluster : public Deployment {
 public:
  explicit PbftCluster(PbftClusterConfig config);

  [[nodiscard]] ProtocolKind kind() const override { return ProtocolKind::Pbft; }
  [[nodiscard]] std::vector<NodeId> committee() const override;
  void set_fault_mode(NodeId id, pbft::FaultMode mode) override;
  bool restart_node(NodeId id) override;
  void watch(InvariantMonitor& monitor) override;

  [[nodiscard]] pbft::Replica& replica(std::size_t i) { return *replicas_.at(i); }
  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] std::string tip_hex() const override {
    return replicas_.at(0)->chain().tip().hash().hex();
  }

 protected:
  void start_nodes() override;
  void stop_nodes() override;

 private:
  PbftClusterConfig config_;
  ledger::Block genesis_;            // reconstruction material for restarts
  std::vector<NodeId> member_ids_;
  std::vector<std::unique_ptr<pbft::Replica>> replicas_;
};

// --- G-PBFT deployment ----------------------------------------------------------

struct GpbftClusterConfig {
  /// Endorser-capable fixed devices (ids 1..nodes). The first
  /// `initial_committee` form the genesis roster; the rest start as
  /// candidates and may be promoted by era switches.
  std::size_t nodes{4};
  std::size_t initial_committee{4};
  std::size_t clients{0};
  std::uint64_t seed{1};
  /// Total host threads (see ScenarioSpec::threads); 1 = single-threaded.
  std::size_t threads{1};
  net::NetConfig net;
  ::gpbft::gpbft::GpbftConfig protocol;  // genesis roster/area filled by the cluster
  PlacementConfig placement;
};

class GpbftCluster : public Deployment {
 public:
  explicit GpbftCluster(GpbftClusterConfig config);

  [[nodiscard]] ProtocolKind kind() const override { return ProtocolKind::Gpbft; }
  [[nodiscard]] std::vector<NodeId> committee() const override { return roster_; }
  [[nodiscard]] std::size_t committee_size() const override { return roster_.size(); }
  /// Fault victims are the genesis committee (see fault_targets docs).
  [[nodiscard]] std::vector<NodeId> fault_targets() const override;
  [[nodiscard]] std::uint64_t era_switches() const override { return total_era_switches(); }
  void set_fault_mode(NodeId id, pbft::FaultMode mode) override;
  /// The member most recently promoted into the roster (the genesis lead
  /// until the first era switch seats someone new).
  [[nodiscard]] NodeId latest_elected() const override;
  /// Moves the endorser ~33 m north — a different CSC cell inside the same
  /// deployment area — keeping reported location and the area oracle in
  /// sync, so reports stay truthful but the stationarity timer resets.
  void displace_node(NodeId id, bool displaced) override;
  bool restart_node(NodeId id) override;
  void watch(InvariantMonitor& monitor) override;

  [[nodiscard]] ::gpbft::gpbft::Endorser& endorser(std::size_t i) { return *endorsers_.at(i); }
  [[nodiscard]] std::size_t endorser_count() const { return endorsers_.size(); }
  [[nodiscard]] std::string tip_hex() const override {
    return endorsers_.at(0)->chain().tip().hash().hex();
  }
  [[nodiscard]] ::gpbft::gpbft::AreaRegistry& area() { return area_; }
  [[nodiscard]] const std::vector<NodeId>& roster() const { return roster_; }
  [[nodiscard]] EraId era() const { return era_; }
  [[nodiscard]] std::uint64_t total_era_switches() const;

 protected:
  void start_nodes() override;
  void stop_nodes() override;

 private:
  void on_roster(EraId era, const std::vector<NodeId>& roster);

  GpbftClusterConfig config_;
  ::gpbft::gpbft::AreaRegistry area_;
  ::gpbft::gpbft::GpbftConfig protocol_;  // resolved config, for restarts
  ledger::Block genesis_;
  std::vector<std::unique_ptr<::gpbft::gpbft::Endorser>> endorsers_;
  std::vector<NodeId> roster_;
  EraId era_{0};
  NodeId latest_elected_{};  // last id newly seated by an era switch
  std::unordered_map<NodeId, geo::GeoPoint> displaced_origin_;  // pre-displacement spots
};

// --- dBFT deployment ------------------------------------------------------------

struct DbftClusterConfig {
  /// Delegate-capable members (ids 1..nodes); the first
  /// min(nodes, delegates) form the genesis delegate roster.
  std::size_t nodes{7};
  std::size_t clients{0};
  std::uint64_t seed{1};
  /// Total host threads (see ScenarioSpec::threads); 1 = single-threaded.
  std::size_t threads{1};
  net::NetConfig net;
  pbft::PbftConfig pbft;
  Duration block_interval = Duration::seconds(15);
  std::size_t delegates{7};
  std::size_t epoch_blocks{16};
  PlacementConfig placement;
};

class DbftCluster : public Deployment {
 public:
  explicit DbftCluster(DbftClusterConfig config);

  [[nodiscard]] ProtocolKind kind() const override { return ProtocolKind::Dbft; }
  [[nodiscard]] std::vector<NodeId> committee() const override { return roster_; }
  void set_fault_mode(NodeId id, pbft::FaultMode mode) override;
  bool restart_node(NodeId id) override;
  void watch(InvariantMonitor& monitor) override;

  [[nodiscard]] dbft::Delegate& delegate(std::size_t i) { return *members_.at(i); }
  [[nodiscard]] std::size_t delegate_count() const { return members_.size(); }
  [[nodiscard]] std::string tip_hex() const override {
    return members_.at(0)->chain().tip().hash().hex();
  }

 protected:
  void start_nodes() override;
  void stop_nodes() override;

 private:
  DbftClusterConfig config_;
  dbft::StakeRegistry stakes_;  // no voting unless a test registers stake
  dbft::DbftConfig dbft_config_;  // reconstruction material for restarts
  ledger::Block genesis_;
  std::vector<NodeId> all_members_;
  std::vector<std::unique_ptr<dbft::Delegate>> members_;
  std::vector<NodeId> roster_;
};

// --- PoW deployment -------------------------------------------------------------

struct PowClusterConfig {
  std::size_t miners{7};
  /// Proposing devices; their submissions gossip to every miner. PoW has no
  /// reply path, so proposers are simulated drivers, not pbft::Clients.
  std::size_t clients{0};
  std::uint64_t seed{1};
  net::NetConfig net;
  /// Transactions a miner packs into one block template. (Distinct from the
  /// consensus-engine batch.* request-pipeline knobs — this caps block
  /// contents, not how many requests share a three-phase instance.)
  std::size_t txs_per_block{32};
  /// Consensus difficulty = miners * hashrate * block_interval (network-
  /// wide solve rate of one block per interval).
  Duration block_interval = Duration::seconds(10);
  Height confirmations{3};
  double hashrate{1e6};
  PlacementConfig placement;
};

class PowCluster : public Deployment {
 public:
  explicit PowCluster(PowClusterConfig config);

  [[nodiscard]] ProtocolKind kind() const override { return ProtocolKind::Pow; }
  [[nodiscard]] std::vector<NodeId> committee() const override;
  void schedule_workload(const WorkloadSpec& workload, LatencyRecorder* recorder,
                         SubmitHook on_submit = {}) override;
  /// Distinct transactions confirmed at depth on any miner's best chain
  /// (first confirmation records the latency).
  [[nodiscard]] std::uint64_t committed_count() const override { return confirmed_.size(); }
  [[nodiscard]] double hashes_computed() const override;
  bool restart_node(NodeId id) override;
  /// Replays every miner's confirmed prefix (blocks at least
  /// `confirmations` below that miner's tip) through the monitor.
  void finish_invariants(InvariantMonitor& monitor) override;

  [[nodiscard]] pow::Miner& miner(std::size_t i) { return *miners_.at(i); }
  [[nodiscard]] std::size_t miner_count() const { return miners_.size(); }
  [[nodiscard]] std::string tip_hex() const override {
    return miners_.at(0)->chain().tip_hash().hex();
  }

 protected:
  void start_nodes() override;
  void stop_nodes() override;
  [[nodiscard]] bool workload_done(std::uint64_t per_client) const override;

 private:
  void wire_miner(pow::Miner& miner);

  PowClusterConfig config_;
  pow::MinerConfig miner_config_;  // reconstruction material for restarts
  pow::PowBlock genesis_;
  std::vector<NodeId> miner_ids_;
  std::vector<std::unique_ptr<pow::Miner>> miners_;
  std::set<crypto::Hash256> confirmed_;  // union over miners, first wins
  LatencyRecorder* recorder_{nullptr};
};

// --- factory ---------------------------------------------------------------------

/// Translates the engine piece of a spec into the PBFT replica config.
[[nodiscard]] pbft::PbftConfig to_pbft_config(const EngineSpec& engine);
/// As above, plus the consensus batching knobs (batch.size / batch.timeout
/// map to PbftConfig::batch_close_size / batch_close_timeout).
[[nodiscard]] pbft::PbftConfig to_pbft_config(const EngineSpec& engine, const BatchSpec& batch);

/// Builds the deployment a spec describes. The only construction path for
/// benches, examples and the CLI.
[[nodiscard]] std::unique_ptr<Deployment> make_deployment(const ScenarioSpec& spec);

/// Typed factories for consumers that need the concrete API (G-PBFT area
/// registry, endorser access, ...). The spec's protocol field must match.
[[nodiscard]] std::unique_ptr<PbftCluster> make_pbft_deployment(const ScenarioSpec& spec);
[[nodiscard]] std::unique_ptr<GpbftCluster> make_gpbft_deployment(const ScenarioSpec& spec);
[[nodiscard]] std::unique_ptr<DbftCluster> make_dbft_deployment(const ScenarioSpec& spec);
[[nodiscard]] std::unique_ptr<PowCluster> make_pow_deployment(const ScenarioSpec& spec);

}  // namespace gpbft::sim
