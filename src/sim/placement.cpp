#include "sim/placement.hpp"

#include <cmath>

namespace gpbft::sim {

Placement::Placement(PlacementConfig config) : config_(config) {
  area_prefix_ = geo::geohash_encode(config_.base, config_.area_precision);
  center_ = geo::geohash_decode_center(area_prefix_).value_or(config_.base);
  // Degrees per meter: latitude is uniform; longitude shrinks with cos(lat).
  lat_step_ = config_.spacing_meters / 111'320.0;
  lng_step_ = config_.spacing_meters /
              (111'320.0 * std::cos(center_.latitude * 3.14159265358979323846 / 180.0));
}

geo::GeoPoint Placement::position(std::size_t index) const {
  // Square spiral-free grid: row-major square centred on the cell center,
  // so growing fleets stay near the middle of the area cell.
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(1024.0)));
  const std::size_t row = index / side;
  const std::size_t col = index % side;
  const double row_offset = (static_cast<double>(row) - static_cast<double>(side) / 2.0);
  const double col_offset = (static_cast<double>(col) - static_cast<double>(side) / 2.0);
  return geo::GeoPoint{center_.latitude + row_offset * lat_step_,
                       center_.longitude + col_offset * lng_step_};
}

geo::GeoPoint Placement::outside_position(std::size_t index) const {
  // Two full area-cells away: guaranteed a different geohash prefix.
  const auto box = geo::geohash_decode(area_prefix_);
  const double cell_height = box ? (box->lat_max - box->lat_min) : 0.05;
  return geo::GeoPoint{center_.latitude + 2.0 * cell_height +
                           static_cast<double>(index) * lat_step_,
                       center_.longitude};
}

}  // namespace gpbft::sim
