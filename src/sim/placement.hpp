// Device placement: synthetic stand-in for real GPS positions (DESIGN.md §1).
//
// Fixed IoT devices are placed on a grid inside one deployment area (a
// geohash cell), spaced several meters apart so each occupies a distinct
// sub-meter CSC cell — two honest devices never collide in the Sybil
// filter. The default area is centred in Hong Kong (the authors' locale).
#pragma once

#include <string>
#include <vector>

#include "geo/geohash.hpp"
#include "geo/geopoint.hpp"

namespace gpbft::sim {

struct PlacementConfig {
  geo::GeoPoint base{22.3964, 114.1095};  // Hong Kong
  /// Geohash precision of the deployment-area prefix (5 ~ 4.9 km cell).
  int area_precision{5};
  /// Grid spacing between neighbouring devices, meters.
  double spacing_meters{10.0};

  friend bool operator==(const PlacementConfig&, const PlacementConfig&) = default;
};

class Placement {
 public:
  explicit Placement(PlacementConfig config = {});

  /// Deployment-area geohash prefix (for the genesis area policy).
  [[nodiscard]] const std::string& area_prefix() const { return area_prefix_; }

  /// Deterministic position of device `index` on the grid, inside the area.
  [[nodiscard]] geo::GeoPoint position(std::size_t index) const;

  /// A position guaranteed *outside* the deployment area (for attackers).
  [[nodiscard]] geo::GeoPoint outside_position(std::size_t index) const;

 private:
  PlacementConfig config_;
  geo::GeoPoint center_;  // center of the deployment-area cell
  std::string area_prefix_;
  double lat_step_{0};
  double lng_step_{0};
};

}  // namespace gpbft::sim
