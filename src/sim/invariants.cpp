#include "sim/invariants.hpp"

#include <algorithm>
#include <cstdio>

#include "pbft/replica.hpp"
#include "sim/deployment.hpp"

namespace gpbft::sim {

namespace {

std::string format_time(TimePoint at) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", at.to_seconds());
  return buf;
}

std::string roster_str(const std::vector<NodeId>& roster) {
  std::string out = "[";
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(roster[i].value);
  }
  return out + "]";
}

}  // namespace

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::Agreement: return "AGREEMENT";
    case Violation::Kind::Validity: return "VALIDITY";
    case Violation::Kind::DuplicateExecution: return "DUPLICATE-EXECUTION";
    case Violation::Kind::RosterMismatch: return "ROSTER-MISMATCH";
    case Violation::Kind::Liveness: return "LIVENESS";
    case Violation::Kind::RestartConvergence: return "RESTART-CONVERGENCE";
    case Violation::Kind::CommitteeQuality: return "COMMITTEE-QUALITY";
    case Violation::Kind::SybilSeated: return "SYBIL-SEATED";
    case Violation::Kind::EraConvergence: return "ERA-CONVERGENCE";
    case Violation::Kind::RejectSafe: return "REJECT-SAFE";
  }
  return "UNKNOWN";
}

void InvariantMonitor::bind_counters() {
  obs::Registry& reg = telemetry_->metrics();
  blocks_counter_ = &reg.counter("invariant.blocks_checked");
  txs_counter_ = &reg.counter("invariant.txs_checked");
  violations_counter_ = &reg.counter("invariant.violations");
}

void InvariantMonitor::set_telemetry(obs::Telemetry& telemetry) {
  if (telemetry_ == &telemetry) return;
  const std::uint64_t blocks = blocks_counter_->value;
  const std::uint64_t txs = txs_counter_->value;
  const std::uint64_t violations = violations_counter_->value;
  telemetry_ = &telemetry;
  bind_counters();
  blocks_counter_->add(blocks);
  txs_counter_->add(txs);
  violations_counter_->add(violations);
}

void InvariantMonitor::watch(pbft::Replica& replica) {
  const NodeId id = replica.id();
  replica.set_executed_callback(
      [this, id](const ledger::Block& block) { on_executed(id, block); });
}

void InvariantMonitor::expect_submission(const ledger::Transaction& tx) {
  submitted_.insert(tx.digest());
}

void InvariantMonitor::set_faulty(NodeId id, bool faulty) {
  if (faulty) {
    faulty_.insert(id.value);
  } else {
    faulty_.erase(id.value);
  }
}

void InvariantMonitor::note_sybil(NodeId id, bool active) {
  if (active) {
    sybil_.emplace(id.value, sim_.now());  // keep the original flood start
  } else {
    sybil_.erase(id.value);
  }
}

void InvariantMonitor::note_fault(const std::string& description) {
  fault_context_ = description;
}

void InvariantMonitor::on_executed(NodeId node, const ledger::Block& block) {
  const Height height = block.header.height;
  // Restart floor: the restore path replays persisted blocks *before* the
  // monitor re-watches the node, so any live execution at or below the
  // restored height means the node re-ran state transitions it already
  // owned on disk. (check_block_hash is exempt: PoW replays whole chains
  // through it at run end.)
  if (const auto it = restarts_.find(node.value);
      it != restarts_.end() && !faulty_.contains(node.value) && height <= it->second.floor) {
    record(Violation::Kind::DuplicateExecution, node, height,
           "re-executed height " + std::to_string(height) +
               " at or below restart floor " + std::to_string(it->second.floor));
  }
  check_block_hash(node, height, block.hash());
  for (const ledger::Transaction& tx : block.transactions) {
    check_transaction(node, height, tx);
  }
}

void InvariantMonitor::check_block_hash(NodeId node, Height height, const crypto::Hash256& hash) {
  // A Byzantine node may execute anything; only honest replicas are held to
  // the invariants.
  if (faulty_.contains(node.value)) return;
  blocks_counter_->add();

  // AGREEMENT: first honest executor of a height fixes the canonical block.
  const auto [it, inserted] = canonical_.emplace(height, hash);
  if (!inserted && it->second != hash) {
    record(Violation::Kind::Agreement, node, height,
           "executed " + hash.short_hex() + " but canonical is " + it->second.short_hex());
  }

  auto& observed = observed_height_[node.value];
  observed = std::max(observed, height);
}

void InvariantMonitor::check_transaction(NodeId node, Height height,
                                         const ledger::Transaction& tx) {
  if (faulty_.contains(node.value)) return;
  txs_counter_->add();
  const crypto::Hash256 digest = tx.digest();

  // VALIDITY: client-submitted transactions must come from the registered
  // workload (protocol-generated geo/config transactions are endorser-sent
  // and exempt).
  if (tx.sender.value > kClientIdBase && !submitted_.contains(digest)) {
    record(Violation::Kind::Validity, node, height,
           "committed unsubmitted tx " + digest.short_hex() + " from " + tx.sender.str());
  }
  if (!executed_txs_[node.value].insert(digest).second) {
    record(Violation::Kind::DuplicateExecution, node, height,
           "tx " + digest.short_hex() + " executed twice");
  }

  // ROSTER: every endorser must commit the same configuration for an era.
  if (tx.kind == ledger::TxKind::Config) {
    const auto [config_it, first] = canonical_config_.emplace(tx.era_config.era, tx.era_config);
    if (!first && !(config_it->second == tx.era_config)) {
      record(Violation::Kind::RosterMismatch, node, height,
             "era " + std::to_string(tx.era_config.era) + " roster " +
                 roster_str(tx.era_config.endorsers) + " but canonical is " +
                 roster_str(config_it->second.endorsers));
    }

    // The two committee-quality checks judge the *election*, so they run
    // once per era — on its first (canonical) application, not when slow
    // or restarted nodes replay the same config block later.
    if (first) {
      // COMMITTEE-QUALITY: the configuration must not contradict itself —
      // a device its own score snapshot marks quarantined may not be
      // seated. Vacuous when the reputation election is off (no scores).
      for (const ledger::ReputationScore& score : tx.era_config.scores) {
        if (!score.quarantined) continue;
        if (std::find(tx.era_config.endorsers.begin(), tx.era_config.endorsers.end(),
                      score.device) != tx.era_config.endorsers.end()) {
          record(Violation::Kind::CommitteeQuality, node, height,
                 "era " + std::to_string(tx.era_config.era) + " seats quarantined device " +
                     score.device.str() + " (score " + std::to_string(score.score) + ")");
        }
      }

      // SYBIL-SEATED: no device that has been flooding forged geo reports
      // for at least the detection grace may be seated (fed by SybilBurst
      // chaos events; a flood younger than the audit window is exempt).
      for (NodeId member : tx.era_config.endorsers) {
        const auto sybil_it = sybil_.find(member.value);
        if (sybil_it == sybil_.end()) continue;
        if (sim_.now() - sybil_it->second < sybil_grace_) continue;
        record(Violation::Kind::SybilSeated, node, height,
               "era " + std::to_string(tx.era_config.era) + " seats active Sybil flooder " +
                   member.str() + " (flooding since " + format_time(sybil_it->second) + ")");
      }
    }

    // ERA-CONVERGENCE: the first honest application of an era's config
    // starts the clock; every other honest application must land within the
    // bound (era switches must not leave the committee split for long).
    if (era_convergence_bound_.ns > 0) {
      const auto [era_it, first_apply] =
          era_first_applied_.emplace(tx.era_config.era, sim_.now());
      if (!first_apply && sim_.now() - era_it->second > era_convergence_bound_) {
        record(Violation::Kind::EraConvergence, node, height,
               "era " + std::to_string(tx.era_config.era) + " applied " +
                   format_time(sim_.now()) + ", " +
                   format_time(TimePoint{(sim_.now() - era_it->second).ns}) +
                   " after the first application at " + format_time(era_it->second) +
                   " (bound " + format_time(TimePoint{era_convergence_bound_.ns}) + ")");
      }
    }
  }
}

void InvariantMonitor::check_bounded_liveness(std::uint64_t committed, std::uint64_t expected,
                                              TimePoint healed_at, Duration grace) {
  if (committed >= expected) return;
  record(Violation::Kind::Liveness, NodeId{0}, 0,
         std::to_string(committed) + "/" + std::to_string(expected) +
             " committed; no full recovery within " + format_time(TimePoint{grace.ns}) +
             " after faults healed at " + format_time(healed_at));
}

void InvariantMonitor::note_restart(NodeId node, Height resumed_height) {
  // Disk amnesia: everything above the restored height is legitimately
  // re-executed, so the duplicate-execution set starts over; the restart
  // floor (on_executed) covers the heights the restore already replayed.
  executed_txs_[node.value].clear();
  Height target = 0;
  if (!canonical_.empty()) target = canonical_.rbegin()->first;
  restarts_[node.value] = RestartInfo{sim_.now(), resumed_height, target};
  observed_height_[node.value] = resumed_height;
}

void InvariantMonitor::check_restart_convergence() {
  for (const auto& [node, info] : restarts_) {
    const Height reached = observed_height_[node];
    if (reached >= info.target) continue;
    record(Violation::Kind::RestartConvergence, NodeId{node}, reached,
           "restarted at " + format_time(info.at) + " with height " +
               std::to_string(info.floor) + " but only re-reached " +
               std::to_string(reached) + " of the agreed prefix " +
               std::to_string(info.target));
  }
}

void InvariantMonitor::record(Violation::Kind kind, NodeId node, Height height,
                              std::string detail) {
  detail += " (last fault: " + fault_context_ + ")";
  violations_counter_->add();
  // Verdicts land in the same trace stream as protocol phases and chaos
  // injections, so a violation shows up next to what caused it.
  telemetry_->instant("invariant.violation", "invariant", node,
                      {{"kind", violation_kind_name(kind)}, {"detail", detail}});
  violations_.push_back(Violation{kind, sim_.now(), node, height, std::move(detail)});
}

std::string InvariantMonitor::report() const {
  std::string out = "checked " + std::to_string(blocks_checked()) + " block executions, " +
                    std::to_string(transactions_checked()) + " transactions; " +
                    std::to_string(violations_.size()) + " violation(s)\n";
  for (const Violation& violation : violations_) {
    out += "  [t=" + format_time(violation.at) + "] " +
           violation_kind_name(violation.kind) + " node=" +
           std::to_string(violation.node.value) + " height=" +
           std::to_string(violation.height) + ": " + violation.detail + "\n";
  }
  return out;
}

}  // namespace gpbft::sim
