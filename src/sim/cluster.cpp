#include "sim/cluster.hpp"

#include <algorithm>

namespace gpbft::sim {

namespace {

bool all_clients_committed(const std::vector<std::unique_ptr<pbft::Client>>& clients,
                           std::uint64_t per_client) {
  return std::all_of(clients.begin(), clients.end(), [per_client](const auto& client) {
    return client->committed_count() >= per_client;
  });
}

template <typename ClusterT>
bool run_until(ClusterT& cluster, net::Simulator& sim,
               const std::vector<std::unique_ptr<pbft::Client>>& clients,
               std::uint64_t per_client, TimePoint deadline) {
  (void)cluster;
  const Duration chunk = Duration::seconds(1);
  while (sim.now() < deadline) {
    if (all_clients_committed(clients, per_client)) return true;
    sim.run_until(sim.now() + chunk);
  }
  return all_clients_committed(clients, per_client);
}

}  // namespace

// --- PbftCluster -----------------------------------------------------------------

PbftCluster::PbftCluster(PbftClusterConfig config)
    : config_(config),
      sim_(config.seed),
      network_(sim_, config.net),
      keys_(config.seed ^ 0x67e55044'10b1426full),
      placement_(config.placement) {
  // Genesis: the whole network is the committee (plain PBFT).
  ledger::GenesisConfig genesis_config;
  genesis_config.chain_seed = config.seed;
  for (std::size_t i = 0; i < config.replicas; ++i) {
    genesis_config.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i + 1}, placement_.position(i)});
  }
  genesis_config.policy.min_endorsers = config.replicas;
  genesis_config.policy.max_endorsers = config.replicas;
  const ledger::Block genesis = ledger::make_genesis_block(genesis_config);

  std::vector<NodeId> committee;
  for (std::size_t i = 0; i < config.replicas; ++i) committee.push_back(NodeId{i + 1});

  for (std::size_t i = 0; i < config.replicas; ++i) {
    replicas_.push_back(std::make_unique<pbft::Replica>(NodeId{i + 1}, committee, genesis,
                                                        config.pbft, network_, keys_));
  }
  for (std::size_t i = 0; i < config.clients; ++i) {
    clients_.push_back(std::make_unique<pbft::Client>(NodeId{kClientIdBase + i + 1}, committee,
                                                      network_, keys_,
                                                      config.pbft.compute_macs));
  }
}

void PbftCluster::start() {
  for (auto& replica : replicas_) replica->start();
  for (auto& client : clients_) client->start();
}

std::vector<NodeId> PbftCluster::committee() const {
  std::vector<NodeId> out;
  out.reserve(replicas_.size());
  for (const auto& replica : replicas_) out.push_back(replica->id());
  return out;
}

void PbftCluster::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

bool PbftCluster::run_until_committed(std::uint64_t per_client, TimePoint deadline) {
  return run_until(*this, sim_, clients_, per_client, deadline);
}

void PbftCluster::stop() {
  for (auto& replica : replicas_) replica->stop();
  for (auto& client : clients_) client->stop();
}

// --- GpbftCluster ------------------------------------------------------------------

GpbftCluster::GpbftCluster(GpbftClusterConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(sim_, config_.net),
      keys_(config_.seed ^ 0x67e55044'10b1426full),
      placement_(config_.placement) {
  const std::size_t committee_size = std::min(config_.initial_committee, config_.nodes);

  ::gpbft::gpbft::GpbftConfig protocol = config_.protocol;
  protocol.genesis.chain_seed = config_.seed;
  protocol.genesis.area_prefix = placement_.area_prefix();
  protocol.genesis.initial_endorsers.clear();
  for (std::size_t i = 0; i < committee_size; ++i) {
    protocol.genesis.initial_endorsers.push_back(
        ledger::EndorserInfo{NodeId{i + 1}, placement_.position(i)});
  }
  const ledger::Block genesis = ledger::make_genesis_block(protocol.genesis);

  roster_.clear();
  for (std::size_t i = 0; i < committee_size; ++i) roster_.push_back(NodeId{i + 1});

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    const NodeId id{i + 1};
    const geo::GeoPoint position = placement_.position(i);
    area_.place(id, position);
    auto endorser = std::make_unique<::gpbft::gpbft::Endorser>(id, position, protocol, genesis,
                                                               network_, keys_, &area_);
    endorser->set_roster_callback(
        [this](EraId era, const std::vector<NodeId>& roster) { on_roster(era, roster); });
    endorsers_.push_back(std::move(endorser));
  }

  for (std::size_t i = 0; i < config_.clients; ++i) {
    const NodeId id{kClientIdBase + i + 1};
    // Clients sit next to "their" fixed device (one per node position).
    area_.place(id, placement_.position(i % std::max<std::size_t>(config_.nodes, 1)));
    clients_.push_back(std::make_unique<pbft::Client>(id, roster_, network_, keys_,
                                                      config_.protocol.pbft.compute_macs));
  }
}

void GpbftCluster::start() {
  for (auto& endorser : endorsers_) endorser->start_protocol();
  for (auto& client : clients_) client->start();
}

void GpbftCluster::on_roster(EraId era, const std::vector<NodeId>& roster) {
  if (era <= era_) return;
  era_ = era;
  roster_ = roster;
  for (auto& client : clients_) client->set_committee(roster);
  for (auto& endorser : endorsers_) {
    if (endorser->role() == ::gpbft::gpbft::Role::Candidate) {
      endorser->set_known_committee(roster);
    }
  }
}

std::uint64_t GpbftCluster::total_era_switches() const {
  std::uint64_t max_switches = 0;
  for (const auto& endorser : endorsers_) {
    max_switches = std::max(max_switches, endorser->era_switches());
  }
  return max_switches;
}

void GpbftCluster::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

bool GpbftCluster::run_until_committed(std::uint64_t per_client, TimePoint deadline) {
  return run_until(*this, sim_, clients_, per_client, deadline);
}

void GpbftCluster::stop() {
  for (auto& endorser : endorsers_) endorser->stop_protocol();
  for (auto& client : clients_) client->stop();
}

}  // namespace gpbft::sim
