// Device mobility models.
//
// G-PBFT's whole premise is the fixed/mobile distinction: fixed devices
// qualify as endorsers, mobile ones must not (§I, §III-B). The Mobility
// driver moves endorser-capable devices on the simulated clock, keeping the
// AreaRegistry ground truth in sync so their reports stay *honest* — a
// mobile device is not an attacker, it just moves.
//
// Patterns:
//   * random_hop — teleports between grid slots at a fixed period (the
//     shared-bicycle / handheld-scanner pattern): never stationary long
//     enough to qualify when the hop period is below the promotion
//     threshold;
//   * relocate_at — a single scheduled move (the "device reinstalled
//     elsewhere" pattern of the era-churn scenarios).
#pragma once

#include <memory>
#include <vector>

#include "gpbft/endorser.hpp"
#include "sim/placement.hpp"

namespace gpbft::sim {

class Mobility {
 public:
  Mobility(net::Simulator& sim, ::gpbft::gpbft::AreaRegistry& area, const Placement& placement)
      : sim_(sim), area_(area), placement_(placement) {}

  Mobility(const Mobility&) = delete;
  Mobility& operator=(const Mobility&) = delete;

  /// Hops `device` through grid slots [slot_base, slot_base + slot_count)
  /// every `period`, starting at `start`. Slots should be disjoint from
  /// other devices' to keep the moves honest.
  void random_hop(::gpbft::gpbft::Endorser& device, Duration period, std::size_t slot_base,
                  std::size_t slot_count, Duration start = Duration::seconds(1));

  /// One scheduled relocation (registry updated at the same instant).
  void relocate_at(::gpbft::gpbft::Endorser& device, Duration when, const geo::GeoPoint& to);

  /// Stops all drivers (safe to call mid-simulation).
  void stop() { *alive_ = false; }

  [[nodiscard]] std::size_t active_drivers() const { return drivers_; }

 private:
  void move(::gpbft::gpbft::Endorser& device, const geo::GeoPoint& to);

  net::Simulator& sim_;
  ::gpbft::gpbft::AreaRegistry& area_;
  const Placement& placement_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::size_t drivers_{0};
};

}  // namespace gpbft::sim
