// Open-loop workload plane: 10^5–10^6 virtual IoT devices over O(regions)
// concrete endpoints.
//
// The per-client WorkloadDriver instantiates a full pbft::Client plus a
// heap-allocated driver per device, which caps realistic experiments at a
// few hundred clients. The plane inverts that: virtual devices are plain
// indices — their only per-device state is one uint32 sequence counter in a
// flat vector (~4 MB at 10^6 devices) — and every submission is routed
// through one of the deployment's few concrete clients (device % endpoints),
// so a million-device fleet costs O(regions) protocol objects.
//
// Arrivals are open-loop (the fleet does not wait for replies) and come
// from one aggregate renewal process simulated with thinning: candidate
// gaps are exponential at the fleet's peak rate (devices * rate_hz) and a
// candidate is accepted with probability rate(t) / peak, so only O(peak *
// horizon) simulator events exist regardless of device count. Constant
// spacing, Poisson, on/off burst windows and a raised-cosine diurnal curve
// share this one mechanism. All randomness draws from a fork of the
// simulator's RNG stream in a fixed order, so a seed replays byte-
// identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "obs/telemetry.hpp"
#include "pbft/client.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace gpbft::sim {

class WorkloadPlane {
 public:
  using SubmitHook = std::function<void(const ledger::Transaction&)>;

  /// `endpoints` are the deployment's concrete clients (one per region);
  /// `positions` are their geographic spots, parallel to `endpoints` — a
  /// virtual device reports the location of the region endpoint it rides.
  /// Plane knobs are read from the spec's workload.* plane fields.
  WorkloadPlane(net::Simulator& sim, const WorkloadSpec& spec,
                std::vector<pbft::Client*> endpoints, std::vector<geo::GeoPoint> positions,
                obs::Telemetry& telemetry);

  /// Schedules the arrival stream over [start, start + horizon). `recorder`
  /// (optional) collects commit latencies via the endpoints' commit
  /// callbacks; `on_submit` fires per submitted transaction; `alive` is the
  /// deployment's workload liveness token — once its owner drops it,
  /// pending arrival events become no-ops (the simulator cannot cancel).
  void start(LatencyRecorder* recorder, SubmitHook on_submit, std::shared_ptr<const bool> alive);

  /// True once the generation window closed (no further arrivals will be
  /// scheduled). The run itself drains until submissions commit.
  [[nodiscard]] bool generation_done() const { return done_; }
  /// Transactions submitted so far (accepted arrivals).
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t devices() const { return spec_.devices; }
  [[nodiscard]] std::size_t endpoints() const { return endpoints_.size(); }

  /// Aggregate fleet arrival rate (submissions/s) at simulated time `t`;
  /// exposed for tests of the burst/diurnal profiles.
  [[nodiscard]] double rate_at(TimePoint t) const;
  /// Peak aggregate rate: devices * rate_hz.
  [[nodiscard]] double peak_rate() const { return peak_; }

 private:
  void arm(TimePoint at);
  void on_arrival();
  void emit(TimePoint at);
  void finish_generation();

  net::Simulator& sim_;
  WorkloadSpec spec_;
  std::vector<pbft::Client*> endpoints_;
  std::vector<geo::GeoPoint> positions_;
  obs::Telemetry& telemetry_;
  Rng rng_;

  double peak_{0.0};
  TimePoint end_{};

  /// The only per-device state: next sequence number, flat by device index.
  std::vector<std::uint32_t> next_seq_;

  SubmitHook on_submit_;
  std::weak_ptr<const bool> alive_;
  std::shared_ptr<const bool> self_token_;  // fallback gate when start() gets no token
  std::uint64_t arrivals_{0};   // accepted arrivals (device assignment basis)
  std::uint64_t submitted_{0};
  std::uint64_t thinned_{0};    // candidates rejected by thinning
  bool done_{false};
};

}  // namespace gpbft::sim
