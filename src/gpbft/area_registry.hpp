// Area registry and Sybil filter (§III-A, §IV-A1 of the paper).
//
// The paper's Sybil defence rests on two observations:
//   1. "Different nodes cannot report the same geographic information at the
//      same time" — one physical spot holds one device.
//   2. All devices of an application share a small physical area, so peers
//      can spot a report from a position where no device exists.
//
// Observation 2 is peer supervision; we make that assumption explicit as an
// oracle: the AreaRegistry records where devices *actually are* (ground
// truth maintained by the simulation harness — the stand-in for neighbours
// physically seeing each other). The SybilFilter then rejects reports that
//   * fall outside the deployment area,
//   * claim a cell where the registry knows no such device is present, or
//   * collide with another node's report for the same cell at the same
//     report instant (observation 1).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"
#include "geo/csc.hpp"
#include "geo/geopoint.hpp"

namespace gpbft::gpbft {

/// Ground truth of physical device positions (the peer-supervision oracle).
class AreaRegistry {
 public:
  void place(NodeId device, const geo::GeoPoint& position) { positions_[device] = position; }
  void remove(NodeId device) { positions_.erase(device); }

  [[nodiscard]] std::optional<geo::GeoPoint> position_of(NodeId device) const {
    const auto it = positions_.find(device);
    if (it == positions_.end()) return std::nullopt;
    return it->second;
  }

  /// True when `device` is physically within ~tolerance meters of `claim`.
  [[nodiscard]] bool claim_is_truthful(NodeId device, const geo::GeoPoint& claim,
                                       double tolerance_meters = 5.0) const;

  [[nodiscard]] std::size_t size() const { return positions_.size(); }

 private:
  std::unordered_map<NodeId, geo::GeoPoint> positions_;
};

enum class ReportVerdict {
  Accepted,
  OutsideArea,       // claim not within the deployment area prefix
  UntruthfulClaim,   // registry knows the device is elsewhere / absent
  DuplicateLocation, // another node claimed the same cell at the same time
};

[[nodiscard]] const char* verdict_name(ReportVerdict verdict);

/// Stateful per-endorser filter applied to incoming geo reports.
class SybilFilter {
 public:
  SybilFilter(std::string area_prefix, const AreaRegistry* registry);

  /// Checks one report; on DuplicateLocation both the new claimer and the
  /// previous claimer of the cell are flagged (neither can be trusted).
  [[nodiscard]] ReportVerdict check(NodeId device, const geo::GeoPoint& claim,
                                    TimePoint reported_at);

  [[nodiscard]] bool is_flagged(NodeId device) const { return flagged_.contains(device); }
  [[nodiscard]] std::size_t flagged_count() const { return flagged_.size(); }
  void unflag(NodeId device) { flagged_.erase(device); }

 private:
  std::string area_prefix_;
  const AreaRegistry* registry_;  // may be null: oracle checks disabled

  struct CellClaim {
    NodeId device;
    TimePoint at;
  };
  std::unordered_map<std::string, CellClaim> last_claim_;  // cell -> last claimer
  std::unordered_set<NodeId> flagged_;
};

}  // namespace gpbft::gpbft
