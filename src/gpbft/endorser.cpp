#include "gpbft/endorser.hpp"

#include "obs/profiler.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpbft::gpbft {

namespace {
ledger::EraConfig genesis_config(const ledger::Block& genesis) {
  for (const ledger::Transaction& tx : genesis.transactions) {
    if (tx.kind == ledger::TxKind::Config) return tx.era_config;
  }
  return {};
}

std::vector<NodeId> genesis_roster(const ledger::Block& genesis) {
  return genesis_config(genesis).endorsers;
}

EnrolledCells enrolled_from(const ledger::EraConfig& config) {
  EnrolledCells cells;
  for (std::size_t i = 0; i < config.endorsers.size() && i < config.cells.size(); ++i) {
    cells[config.endorsers[i]] = config.cells[i];
  }
  return cells;
}

/// Forged report copies a Sybil-burst attacker adds per period on top of
/// the honest one.
constexpr std::size_t kSybilFanout = 4;
}  // namespace

Endorser::Endorser(NodeId id, geo::GeoPoint location, GpbftConfig config, ledger::Block genesis,
                   net::Network& network, const crypto::KeyRegistry& keys,
                   const AreaRegistry* area)
    : Replica(id, genesis_roster(genesis), genesis, config.pbft, network, keys),
      config_(std::move(config)),
      location_(location),
      filter_(config_.genesis.area_prefix, area),
      reputation_(config_.genesis.reputation) {
  producer_order_ = genesis_roster(genesis);
  known_committee_ = producer_order_;
  enrolled_cells_ = enrolled_from(genesis_config(genesis));
  role_ = std::find(producer_order_.begin(), producer_order_.end(), id) != producer_order_.end()
              ? Role::Active
              : Role::Candidate;
}

void Endorser::start_protocol() {
  if (protocol_started_) return;
  protocol_started_ = true;
  start();
  // Stagger the first geo report per node id to avoid an artificial
  // thundering herd at t=0 (real devices report on independent clocks).
  schedule_protected(
      Duration{static_cast<std::int64_t>(id().value % 1000) * 1'000'000}, [this]() {
        if (!protocol_started_) return;
        send_geo_report();
        arm_geo_timer();
      });
  arm_era_timer();
}

void Endorser::stop_protocol() {
  protocol_started_ = false;
  stop();
}

void Endorser::set_known_committee(std::vector<NodeId> committee) {
  known_committee_ = std::move(committee);
}

NodeId Endorser::primary_of(ViewId view) const {
  if (producer_order_.empty()) return Replica::primary_of(view);
  return producer_order_[static_cast<std::size_t>(view % producer_order_.size())];
}

// --- geo reporting -----------------------------------------------------------

void Endorser::arm_geo_timer() {
  schedule_protected(config_.genesis.geo_report_period, [this]() {
    if (!protocol_started_) return;
    send_geo_report();
    arm_geo_timer();
  });
}

void Endorser::send_geo_report() {
  if (network().is_crashed(id())) return;
  // A Sybil-burst attacker floods forged copies of its own report each
  // period: every copy is truthful (same position, so the area-registry
  // check passes and the stationary timer holds) but the flood inflates
  // the device's election-table presence. The stock election cannot see
  // this; the reputation audit flags the rate anomaly at the era switch.
  const std::size_t copies =
      fault_mode() == pbft::FaultMode::SybilGeoReports ? 1 + kSybilFanout : 1;
  for (std::size_t copy = 0; copy < copies; ++copy) {
    telemetry().count("gpbft.geo_reports_sent", id());

    if (config_.geo_reports_on_chain) {
      // Full-fidelity mode: the report is a zero-fee transaction, so G(v, t)
      // is literally a chain lookup once it commits.
      geo::GeoReport report;
      report.point = location_;
      report.timestamp = now();
      const ledger::Transaction tx =
          ledger::make_geo_report_tx(id(), next_request_id_++, report);
      // The report must reach the primary to be ordered: broadcast it to the
      // committee like any client request (and enqueue locally when active).
      const pbft::ClientRequest request{tx};
      const Bytes body = request.encode();
      const std::vector<NodeId>& targets =
          role_ == Role::Active ? committee() : known_committee_;
      send_to_each(targets, pbft::msg_type::kClientRequest, BytesView(body.data(), body.size()));
      if (role_ == Role::Active) accept_request(tx);
      continue;
    }

    pbft::GeoReportMsg msg;
    msg.device = id();
    msg.latitude = location_.latitude;
    msg.longitude = location_.longitude;
    msg.reported_at = now();
    const Bytes body = msg.encode();

    const std::vector<NodeId>& targets =
        role_ == Role::Active ? committee() : known_committee_;
    send_to_each(targets, pbft::msg_type::kGeoReport, BytesView(body.data(), body.size()));
    // Record the self-report locally (an endorser supervises itself too).
    if (role_ == Role::Active) process_geo_report(id(), msg);
  }
}

void Endorser::process_geo_report(NodeId from, const pbft::GeoReportMsg& msg) {
  if (from != msg.device) return;  // relayed reports are not accepted
  const geo::GeoPoint point{msg.latitude, msg.longitude};
  if (!point.valid()) return;

  const ReportVerdict verdict = filter_.check(msg.device, point, msg.reported_at);
  if (verdict != ReportVerdict::Accepted) {
    log_debug(id().str() + ": rejected geo report from " + msg.device.str() + " (" +
              verdict_name(verdict) + ")");
    // A rejected claim is observed misbehaviour (untruthful location or a
    // duplicate-cell Sybil claim), not mere absence — strike the reporter.
    if (verdict == ReportVerdict::UntruthfulClaim || verdict == ReportVerdict::DuplicateLocation) {
      reputation_.record_fault_observation(msg.device, now());
    }
    return;
  }
  record_geo(msg.device, point, msg.reported_at);

  const auto& roster = committee();
  if (std::find(roster.begin(), roster.end(), msg.device) == roster.end()) {
    known_candidates_.insert(msg.device);
  }
}

void Endorser::record_geo(NodeId device, const geo::GeoPoint& point, TimePoint at) {
  const geo::Csc csc(point, crypto::address_for_node(device));
  table_.record(device, csc, at);
}

// --- era switches -------------------------------------------------------------

void Endorser::arm_era_timer() {
  schedule_protected(config_.genesis.era_period, [this]() {
    if (!protocol_started_) return;
    on_era_timer();
    arm_era_timer();
  });
}

void Endorser::on_era_timer() {
  if (network().is_crashed(id())) return;
  if (role_ != Role::Active || switch_in_progress_ || in_view_change()) return;
  // The current primary leads the switch (§III-E); if it is down, the view
  // change replaces it and the next timer firing is led by its successor.
  if (primary_of(view()) != id()) return;
  initiate_era_switch();
}

void Endorser::initiate_era_switch() {
  switch_in_progress_ = true;
  switch_started_ = now();
  set_halted(true);
  telemetry().count("gpbft.era_switches_initiated", id());
  telemetry().instant("era_switch.halt", "gpbft", id(),
                      {{"closing_era", std::to_string(era_)}});

  pbft::EraHaltMsg halt;
  halt.closing_era = era_;
  halt.sender = id();
  const Bytes body = halt.encode();
  broadcast_committee(pbft::msg_type::kEraHalt, BytesView(body.data(), body.size()));

  // Let in-flight instances land, then elect and propose the new roster.
  schedule_protected(config_.halt_settle, [this, closing = era_]() {
    if (!protocol_started_ || era_ != closing || !switch_in_progress_) return;

    ElectionParams params;
    params.window = config_.genesis.geo_window;
    params.min_reports = config_.genesis.min_geo_reports;
    params.promotion_threshold = config_.genesis.promotion_threshold;

    // Behaviour audit before the election: silent members and report
    // floods earn reputation strikes as of this switch.
    observe_committee_behaviour(now(), params);

    std::vector<NodeId> candidates(known_candidates_.begin(), known_candidates_.end());
    const ElectionOutcome outcome = run_geographic_authentication(
        table_, committee(), candidates, now(), params, &enrolled_cells_);
    telemetry().count("gpbft.elections", id());
    telemetry().instant("election", "gpbft", id(),
                        {{"era", std::to_string(era_)},
                         {"promoted", std::to_string(outcome.promoted.size())},
                         {"demoted", std::to_string(outcome.demoted.size())}});
    for (NodeId demoted : outcome.demoted) {
      log_info(id().str() + ": era " + std::to_string(era_) + " election demotes " +
               demoted.str() + " (reports in window: " +
               std::to_string(table_.reports_in_window(demoted, now(), params.window).size()) +
               ")");
    }
    for (NodeId promoted : outcome.promoted) {
      log_info(id().str() + ": era " + std::to_string(era_) + " election promotes " +
               promoted.str());
    }

    RosterInputs inputs;
    inputs.current = committee();
    inputs.outcome = outcome;
    inputs.penalized = penalized_;
    for (NodeId flagged : known_candidates_) {
      if (filter_.is_flagged(flagged)) inputs.sybil_flagged.insert(flagged);
    }
    for (NodeId member : committee()) {
      if (filter_.is_flagged(member)) inputs.sybil_flagged.insert(member);
    }
    for (NodeId candidate : candidates) {
      if (config_.genesis.policy.whitelisted(candidate)) {
        inputs.whitelisted_candidates.push_back(candidate);
      }
    }
    inputs.reputation = &reputation_;

    std::vector<NodeId> roster =
        build_roster(inputs, config_.genesis.policy, table_, now());

    // Compare as sets: if membership is unchanged there is nothing to
    // reconfigure — cancel the switch and resume (the production order is
    // refreshed only when membership changes, keeping switches meaningful).
    std::vector<NodeId> old_sorted = committee();
    std::vector<NodeId> new_sorted = roster;
    std::sort(new_sorted.begin(), new_sorted.end());
    if (new_sorted == old_sorted) {
      cancel_era_switch();
      return;
    }

    if (roster.size() < config_.genesis.policy.min_endorsers) {
      // Below the minimum the system must not continue (§III-C); keep the
      // old roster rather than committing an unsafe configuration.
      log_warn(id().str() + ": era switch aborted, roster below minimum");
      cancel_era_switch();
      return;
    }

    ledger::EraConfig next;
    next.era = era_ + 1;
    next.endorsers = std::move(roster);
    // Record each member's enrolled cell: elected members keep theirs, new
    // promotions enroll at the cell they qualified from.
    next.cells.reserve(next.endorsers.size());
    for (const NodeId member : next.endorsers) {
      const auto it = enrolled_cells_.find(member);
      if (it != enrolled_cells_.end()) {
        next.cells.push_back(it->second);
      } else if (const auto latest = table_.latest(member)) {
        next.cells.push_back(latest->csc.cell());
      } else {
        next.cells.push_back("");
      }
    }
    // With reputation enabled the configuration block carries the lead's
    // full score snapshot (not just the seated roster), so every endorser
    // — including one restarting from disk — rebuilds the same ledger.
    if (reputation_.params().enabled) {
      for (const auto& snap : reputation_.snapshot(now())) {
        next.scores.push_back(ledger::ReputationScore{snap.device, snap.score, snap.quarantined});
      }
    }

    geo::GeoReport self_geo;
    self_geo.point = location_;
    self_geo.timestamp = now();
    ledger::Transaction tx =
        ledger::make_config_tx(id(), next_request_id_++, std::move(next), self_geo);
    accept_request(tx);
    propose_config(tx, 0);
  });
}

void Endorser::propose_config(const ledger::Transaction& tx, int attempt) {
  if (!switch_in_progress_ || !protocol_started_) return;
  if (propose_batch({tx})) return;
  // An in-flight instance (proposed just before the halt) is still landing;
  // retry until it clears. Give up after ~20 attempts — the halt failsafe
  // then resumes normal operation and the next era period tries again.
  if (attempt >= 20) {
    log_warn(id().str() + ": could not propose configuration block; abandoning switch");
    cancel_era_switch();
    return;
  }
  schedule_protected(config_.halt_settle,
                     [this, tx, attempt]() { propose_config(tx, attempt + 1); });
}

void Endorser::cancel_era_switch() {
  // Every abort path must broadcast the unchanged-era launch, not just
  // unhalt locally: the lead's ERA-HALT already silenced the peers, and
  // without this message they would stay halted until the era_period/2
  // failsafe — long enough to miss the liveness deadline under load.
  switch_in_progress_ = false;
  set_halted(false);
  pbft::EraLaunchMsg launch;
  launch.config.era = era_;  // unchanged era: peers just unhalt
  launch.config.endorsers = producer_order_;
  launch.config_height = chain().height();
  launch.sender = id();
  const Bytes launch_body = launch.encode();
  broadcast_committee(pbft::msg_type::kEraLaunch,
                      BytesView(launch_body.data(), launch_body.size()));
}

void Endorser::record_block_geo(const ledger::Block& block) {
  // Record transaction geo trailers into the election table ("data uploaded
  // from IoT devices to blockchains will add an entry", §III-B3). Trailers
  // pass the same Sybil filter as direct reports — a committed transaction
  // proves its sender paid for inclusion, not that its location is genuine.
  for (const ledger::Transaction& tx : block.transactions) {
    if (tx.kind != ledger::TxKind::Normal) continue;
    if (!tx.geo.point.valid() || tx.geo.point == geo::GeoPoint{}) continue;
    const ReportVerdict verdict = filter_.check(tx.sender, tx.geo.point, tx.geo.timestamp);
    if (verdict != ReportVerdict::Accepted) continue;
    record_geo(tx.sender, tx.geo.point, tx.geo.timestamp);
    // On-chain location reports are candidate applications (§III-D).
    if (ledger::is_geo_report_tx(tx)) {
      const auto& roster = committee();
      if (std::find(roster.begin(), roster.end(), tx.sender) == roster.end()) {
        known_candidates_.insert(tx.sender);
      }
    }
  }
}

void Endorser::on_executed(const ledger::Block& block) {
  record_block_geo(block);

  // Producing a block resets the producer's geographic timer (§III-B5)
  // and earns it a reputation reward — the positive signal that lets a
  // rehabilitated node decay back above the quarantine-exit threshold.
  table_.reset_timer(block.header.producer, now());
  reputation_.record_block_produced(block.header.producer, now());

  for (const ledger::Transaction& tx : block.transactions) {
    if (tx.kind != ledger::TxKind::Config) continue;
    apply_era_config(tx.era_config, block.header.height);
  }
}

void Endorser::apply_era_config(const ledger::EraConfig& config, Height config_height) {
  if (config.era <= era_) return;

  const bool was_lead = switch_in_progress_ && primary_of(view()) == id();
  const std::vector<NodeId> old_committee = committee();

  // Adopt the lead's score snapshot: the committed configuration block is
  // the authoritative reputation state, replacing local observations. A
  // node restoring its chain from disk replays the same blocks through
  // this path, so a restart rebuilds the exact pre-crash ledger.
  for (const ledger::ReputationScore& s : config.scores) {
    reputation_.restore(geo::ReputationLedger::Snapshot{s.device, s.score, s.quarantined}, now());
  }
  if (!config.scores.empty()) publish_reputation_gauges(now());

  era_ = config.era;
  producer_order_ = config.endorsers;
  known_committee_ = config.endorsers;
  enrolled_cells_ = enrolled_from(config);
  reconfigure_committee(config.endorsers);

  const bool member = std::find(config.endorsers.begin(), config.endorsers.end(), id()) !=
                      config.endorsers.end();
  role_ = member ? Role::Active : Role::Candidate;
  set_halted(false);

  for (NodeId m : config.endorsers) known_candidates_.erase(m);

  if (switch_started_ != TimePoint{}) {
    last_switch_duration_ = now() - switch_started_;
    // The halt-to-launch pause is the era-switch overhead Table IV measures.
    telemetry().observe("gpbft.era_switch_seconds", last_switch_duration_.to_seconds());
    telemetry().span(switch_started_, now(), id(), "era_switch", "gpbft",
                     {{"era", std::to_string(era_)}});
  }
  switch_in_progress_ = false;
  ++era_switches_;
  telemetry().count("gpbft.era_switches", id());
  telemetry().instant("era_switch.launch", "gpbft", id(),
                      {{"era", std::to_string(era_)},
                       {"endorsers", std::to_string(producer_order_.size())}});

  // The lead performs state transfer to members who were not in the old
  // committee (they have not followed the chain).
  if (was_lead) {
    std::vector<NodeId> newcomers;
    for (NodeId m : config.endorsers) {
      if (std::find(old_committee.begin(), old_committee.end(), m) == old_committee.end()) {
        newcomers.push_back(m);
      }
    }
    if (!newcomers.empty()) {
      pbft::EraLaunchMsg launch;
      launch.config = config;
      launch.config_height = config_height;
      launch.sender = id();
      for (Height h = 1; h <= chain().height(); ++h) launch.blocks.push_back(chain().at(h));
      const Bytes body = launch.encode();
      for (NodeId newcomer : newcomers) {
        send_to(newcomer, pbft::msg_type::kEraLaunch, BytesView(body.data(), body.size()));
      }
    }
  }

  if (roster_cb_) roster_cb_(era_, producer_order_);
  log_info(id().str() + ": entered era " + std::to_string(era_) + " with " +
           std::to_string(producer_order_.size()) + " endorsers");
}

// --- extra message handling -----------------------------------------------------

void Endorser::handle_extra(const net::Envelope& envelope) {
  GPBFT_PROFILE_SCOPE("gpbft.endorser.handle");
  // The base class already verified the seal; re-open without verification
  // to extract the body (cheap: just framing — and a parallel-plane verdict,
  // when one rode in on the envelope, is reused outright).
  auto body = pbft::open_envelope(keys(), id(), envelope, /*compute_macs=*/false);
  if (!body) {
    network().note_rejected(envelope.type);
    return;
  }
  const BytesView view = body.value();

  switch (envelope.type) {
    case pbft::msg_type::kGeoReport: {
      auto m = pbft::GeoReportMsg::decode(view);
      if (!m) {
        network().note_rejected(envelope.type);
        return;
      }
      if (role_ != Role::Active) return;  // only endorsers keep election tables
      process_geo_report(envelope.from, m.value());
      break;
    }
    case pbft::msg_type::kEraHalt: {
      auto m = pbft::EraHaltMsg::decode(view);
      if (!m) {
        network().note_rejected(envelope.type);
        return;
      }
      if (role_ != Role::Active) return;
      // Only the current lead may halt the committee.
      if (m.value().sender != primary_of(this->view()) || m.value().closing_era != era_) return;
      switch_in_progress_ = true;
      switch_started_ = now();
      set_halted(true);
      // Failsafe: if the lead dies mid-switch, resume after half a period.
      schedule_protected(config_.genesis.era_period / 2, [this, closing = era_]() {
        if (switch_in_progress_ && era_ == closing) {
          switch_in_progress_ = false;
          set_halted(false);
        }
      });
      break;
    }
    case pbft::msg_type::kEraLaunch: {
      auto m = pbft::EraLaunchMsg::decode(view);
      if (!m) {
        network().note_rejected(envelope.type);
        return;
      }
      const pbft::EraLaunchMsg& launch = m.value();
      if (launch.config.era == era_) {
        // Cancelled switch: membership unchanged, just resume.
        if (switch_in_progress_) {
          switch_in_progress_ = false;
          set_halted(false);
        }
        return;
      }
      if (launch.config.era < era_) return;
      // A newcomer: adopt the chain suffix (on_executed fires per adopted
      // block, which replays geo trailers into the election table and
      // applies any configuration transactions), then the era config.
      if (!launch.blocks.empty()) {
        if (auto adopted = adopt_chain_suffix(launch.blocks); !adopted) {
          log_warn(id().str() + ": state transfer failed: " + adopted.error());
          return;
        }
      }
      apply_era_config(launch.config, launch.config_height);
      break;
    }
    default:
      Replica::handle_extra(envelope);
      break;
  }
}

void Endorser::on_view_changed(ViewId previous, ViewId current) {
  // The primary of the abandoned view failed to drive a request to
  // execution: a "missed block". It loses endorsement and is expelled at
  // the next era switch (§III-B5).
  const NodeId missed = primary_of(previous);
  log_info(id().str() + ": view change " + std::to_string(previous) + " -> " +
           std::to_string(current) + " in era " + std::to_string(era_) + "; penalizing " +
           missed.str());
  if (missed != id()) penalized_.insert(missed);
  reputation_.record_view_change(missed, now());
  telemetry().count("gpbft.penalties_recorded", id());
  // A view change during a switch means the lead died; resume normal
  // operation under the new primary.
  if (switch_in_progress_) {
    switch_in_progress_ = false;
    set_halted(false);
  }
}

void Endorser::report_fork(const ledger::ForkEvidence& evidence) {
  penalized_.insert(evidence.producer);
  reputation_.record_fault_observation(evidence.producer, now());
  log_warn(id().str() + ": fork evidence against " + evidence.producer.str() + " at height " +
           std::to_string(evidence.height));
}

// --- reputation ---------------------------------------------------------------

void Endorser::note_invariant_violation(NodeId device) {
  reputation_.record_invariant_violation(device, now());
}

void Endorser::observe_committee_behaviour(TimePoint at, const ElectionParams& params) {
  const std::int64_t period = config_.genesis.geo_report_period.ns;
  if (period <= 0) return;
  // Periodic reporting puts at most window/period + 1 honest reports in the
  // lookback window; a member far above that is flooding (Sybil burst),
  // one with none at all is silent (missed heartbeat).
  const std::size_t expected = static_cast<std::size_t>(params.window.ns / period) + 1;
  const std::size_t flood_floor = config_.genesis.sybil_rate_factor * expected;
  const auto audit = [&](NodeId device, bool seated) {
    const std::vector<geo::ElectionEntry> reports =
        table_.reports_in_window(device, at, params.window);
    // Flood copies carry the timestamp of the report they forge, so they
    // collide exactly; the network duplicates a delivery at most once, so an
    // honest report appears at most twice. Three or more copies of one
    // instant is proof of a sender-side flood even when the auditor saw only
    // a slice of the window (it was crashed, or links were lossy) and the
    // total count stays under the rate floor.
    std::size_t max_copies = 0;
    std::size_t run = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      run = (i > 0 && reports[i].timestamp.ns == reports[i - 1].timestamp.ns) ? run + 1 : 1;
      max_copies = std::max(max_copies, run);
    }
    if (seated && reports.empty()) {
      reputation_.record_missed_heartbeat(device, at);
      telemetry().count("gpbft.reputation.heartbeat_strikes", id());
      log_info(id().str() + ": missed-heartbeat strike against " + device.str());
    } else if (reports.size() > flood_floor || max_copies >= 3) {
      reputation_.record_sybil_anomaly(device, at);
      telemetry().count("gpbft.reputation.sybil_strikes", id());
      log_info(id().str() + ": sybil-rate strike against " + device.str() + " (" +
               std::to_string(reports.size()) + " reports in window, expected <= " +
               std::to_string(expected) + ", max copies of one instant " +
               std::to_string(max_copies) + ")");
    }
  };
  for (NodeId member : committee()) audit(member, /*seated=*/true);
  // Candidates are audited for floods only — absence is normal for them.
  for (NodeId candidate : known_candidates_) audit(candidate, /*seated=*/false);
}

void Endorser::publish_reputation_gauges(TimePoint at) {
  if (!telemetry().enabled()) return;
  for (const auto& snap : reputation_.snapshot(at)) {
    // Scores export in natural units (neutral = 1.0) plus the latch state.
    telemetry().metrics().gauge("gpbft.reputation.score", snap.device)
        .set(static_cast<double>(snap.score) / 1000.0);
    telemetry().metrics().gauge("gpbft.reputation.quarantined", snap.device)
        .set(snap.quarantined ? 1.0 : 0.0);
  }
}

}  // namespace gpbft::gpbft
