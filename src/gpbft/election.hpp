// Endorser election — Algorithm 1 of the paper plus roster assembly.
//
// Algorithm 1 ("Geographical location-related authentication of endorsers")
// runs every era period T over the chain-recorded geo reports G(v, t):
//
//   for each current endorser v:   fewer than n reports in the window, or
//                                  any two reports at different locations
//                                  -> invalid next era (demoted)
//   for each candidate c:          at least n reports, all at the same
//                                  location -> endorser next era (promoted)
//
// We additionally require a candidate's geographic timer to have reached
// the promotion threshold (72 h in the paper: "an IoT device stays at the
// same location for 72 hours will be elected as an endorser").
//
// build_roster() then applies the genesis admittance policy (§III-C):
// blacklist exclusion, whitelist fast-path, penalized-producer expulsion
// (§III-B5: missed block / fork), and the min/max committee bounds — at the
// maximum, election is suspended until members leave.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/election_table.hpp"
#include "geo/reputation.hpp"
#include "gpbft/area_registry.hpp"
#include "ledger/genesis.hpp"

namespace gpbft::gpbft {

struct ElectionParams {
  Duration window = Duration::seconds(60);       // the t of G(v, t)
  std::size_t min_reports{3};                    // the n of Algorithm 1
  Duration promotion_threshold = Duration::hours(72);
};

struct ElectionOutcome {
  std::vector<NodeId> demoted;   // endorsers judged invalid for next era
  std::vector<NodeId> promoted;  // candidates qualified for next era
};

/// Enrolled locations: geohash cell per endorser, taken from the chain's
/// configuration transactions (genesis locations + each promotion's cell).
using EnrolledCells = std::unordered_map<NodeId, std::string>;

/// Pure Algorithm 1 over an election table snapshot.
///
/// One strengthening over the paper's listing: Algorithm 1 as printed only
/// compares reports *within* the lookback window, so an endorser that moved
/// more than `window` ago would look stationary again and escape the
/// demotion §III-B1 clearly intends ("if the location of an endorser
/// changes, it will be kicked out"). When `enrolled` provides the cell an
/// endorser was elected at (carried on chain, §III-C), any window report
/// from a different cell demotes it regardless of when the move happened.
[[nodiscard]] ElectionOutcome run_geographic_authentication(
    const geo::ElectionTable& table, const std::vector<NodeId>& endorsers,
    const std::vector<NodeId>& candidates, TimePoint now, const ElectionParams& params,
    const EnrolledCells* enrolled = nullptr);

struct RosterInputs {
  std::vector<NodeId> current;          // current committee
  ElectionOutcome outcome;              // Algorithm 1 result
  std::set<NodeId> penalized;           // missed-block / fork producers
  std::set<NodeId> sybil_flagged;       // SybilFilter rejects
  std::vector<NodeId> whitelisted_candidates;  // join without qualification

  /// Optional reputation ledger. When set *and* its params enable weighting,
  /// the roster ranks by geographic timer × score (neutral score 1000 keeps
  /// the stock order) and quarantined devices are excluded outright. When
  /// null or disabled the election is byte-identical to the stock one.
  const geo::ReputationLedger* reputation{nullptr};
};

/// Assembles the next era's roster under the admittance policy. The result
/// is ordered by descending geographic timer (ties by id) — that order *is*
/// the block-production priority of the incentive mechanism (§III-B5), so
/// it travels inside the configuration transaction and every endorser
/// derives the same primary schedule. With reputation enabled the ranking
/// key becomes timer × score/1000, so a neutral committee orders exactly as
/// before while misbehaving members sink (and quarantined ones never seat).
[[nodiscard]] std::vector<NodeId> build_roster(const RosterInputs& inputs,
                                               const ledger::AdmittancePolicy& policy,
                                               const geo::ElectionTable& table, TimePoint now);

}  // namespace gpbft::gpbft
