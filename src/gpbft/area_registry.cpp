#include "gpbft/area_registry.hpp"

namespace gpbft::gpbft {

bool AreaRegistry::claim_is_truthful(NodeId device, const geo::GeoPoint& claim,
                                     double tolerance_meters) const {
  const auto actual = position_of(device);
  if (!actual) return false;  // no such physical device: a fabricated identity
  return geo::haversine_meters(*actual, claim) <= tolerance_meters;
}

const char* verdict_name(ReportVerdict verdict) {
  switch (verdict) {
    case ReportVerdict::Accepted: return "accepted";
    case ReportVerdict::OutsideArea: return "outside-area";
    case ReportVerdict::UntruthfulClaim: return "untruthful-claim";
    case ReportVerdict::DuplicateLocation: return "duplicate-location";
  }
  return "?";
}

SybilFilter::SybilFilter(std::string area_prefix, const AreaRegistry* registry)
    : area_prefix_(std::move(area_prefix)), registry_(registry) {}

ReportVerdict SybilFilter::check(NodeId device, const geo::GeoPoint& claim,
                                 TimePoint reported_at) {
  const std::string cell = geo::geohash_encode(claim);

  if (!area_prefix_.empty() &&
      (cell.size() < area_prefix_.size() ||
       cell.compare(0, area_prefix_.size(), area_prefix_) != 0)) {
    flagged_.insert(device);
    return ReportVerdict::OutsideArea;
  }

  if (registry_ != nullptr && !registry_->claim_is_truthful(device, claim)) {
    flagged_.insert(device);
    return ReportVerdict::UntruthfulClaim;
  }

  // Two *different* nodes claiming one cell at the same instant cannot both
  // be real (§IV-A1); flag both, since an honest observer cannot tell which
  // of the two actually occupies the spot.
  const auto it = last_claim_.find(cell);
  if (it != last_claim_.end() && it->second.device != device &&
      it->second.at == reported_at) {
    flagged_.insert(device);
    flagged_.insert(it->second.device);
    return ReportVerdict::DuplicateLocation;
  }
  last_claim_[cell] = CellClaim{device, reported_at};
  return ReportVerdict::Accepted;
}

}  // namespace gpbft::gpbft
