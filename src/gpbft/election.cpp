#include "gpbft/election.hpp"

#include <algorithm>

namespace gpbft::gpbft {

namespace {

/// True when every report in `reports` names the same location (Algorithm 1
/// lines 8-13 / 20-24 compare longitude and latitude pairwise; comparing
/// each against the first is equivalent and linear).
bool all_same_location(const std::vector<geo::ElectionEntry>& reports) {
  for (std::size_t i = 1; i < reports.size(); ++i) {
    if (!reports[i].csc.same_cell(reports[0].csc)) return false;
  }
  return true;
}

}  // namespace

ElectionOutcome run_geographic_authentication(const geo::ElectionTable& table,
                                              const std::vector<NodeId>& endorsers,
                                              const std::vector<NodeId>& candidates,
                                              TimePoint now, const ElectionParams& params,
                                              const EnrolledCells* enrolled) {
  ElectionOutcome outcome;

  // Lines 2-14: re-authenticate the current committee.
  for (NodeId v : endorsers) {
    const auto reports = table.reports_in_window(v, now, params.window);
    bool valid = reports.size() >= params.min_reports && all_same_location(reports);
    if (valid && enrolled != nullptr) {
      // Enrolled-location check (see header): every report must come from
      // the cell the endorser was elected at.
      const auto it = enrolled->find(v);
      if (it != enrolled->end()) {
        for (const geo::ElectionEntry& report : reports) {
          if (report.csc.cell() != it->second) {
            valid = false;
            break;
          }
        }
      }
    }
    if (!valid) outcome.demoted.push_back(v);
  }

  // Lines 15-26: qualify candidates.
  for (NodeId c : candidates) {
    const auto reports = table.reports_in_window(c, now, params.window);
    if (reports.size() < params.min_reports) continue;
    if (!all_same_location(reports)) continue;
    // The 72-hour stationarity requirement (§III-B3).
    if (table.timer_at(c, now) < params.promotion_threshold) continue;
    outcome.promoted.push_back(c);
  }

  std::sort(outcome.demoted.begin(), outcome.demoted.end());
  std::sort(outcome.promoted.begin(), outcome.promoted.end());
  return outcome;
}

std::vector<NodeId> build_roster(const RosterInputs& inputs,
                                 const ledger::AdmittancePolicy& policy,
                                 const geo::ElectionTable& table, TimePoint now) {
  const auto contains = [](const std::vector<NodeId>& v, NodeId id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  };

  const geo::ReputationLedger* reputation =
      (inputs.reputation != nullptr && inputs.reputation->params().enabled) ? inputs.reputation
                                                                            : nullptr;

  std::vector<NodeId> roster;
  const auto eligible = [&](NodeId id) {
    if (policy.blacklisted(id)) return false;
    if (inputs.penalized.contains(id)) return false;
    if (inputs.sybil_flagged.contains(id)) return false;
    if (reputation != nullptr && reputation->quarantined(id, now)) return false;
    return true;
  };

  // Surviving current members.
  for (NodeId id : inputs.current) {
    if (!eligible(id)) continue;
    if (contains(inputs.outcome.demoted, id)) continue;
    roster.push_back(id);
  }

  // Whitelisted candidates join without qualification (§III-C), then the
  // Algorithm-1 promotions — both only while room remains below the
  // maximum ("endorser election will be terminated until old endorsers
  // leave").
  const auto admit = [&](const std::vector<NodeId>& ids) {
    for (NodeId id : ids) {
      if (roster.size() >= policy.max_endorsers) break;
      if (!eligible(id)) continue;
      if (contains(roster, id)) continue;
      roster.push_back(id);
    }
  };
  admit(inputs.whitelisted_candidates);
  admit(inputs.outcome.promoted);

  // Production-priority order: descending geographic timer, ties by id
  // ("a longer time in the geographic timer will have a higher chance of
  // generating a new block", §III-B5). With reputation enabled the key is
  // timer × score/1000 — a uniformly neutral committee keeps the stock
  // order exactly, so the golden hashes with reputation off stay valid.
  const auto rank = [&](NodeId id) -> std::int64_t {
    const std::int64_t timer = table.timer_at(id, now).ns;
    if (reputation == nullptr) return timer;
    return timer / 1000 * reputation->score_of(id, now);
  };
  std::sort(roster.begin(), roster.end(), [&](NodeId a, NodeId b) {
    const std::int64_t ra = rank(a);
    const std::int64_t rb = rank(b);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  return roster;
}

}  // namespace gpbft::gpbft
