// G-PBFT endorser node (§III of the paper).
//
// An Endorser layers onto the PBFT replica:
//
//  * periodic geo reporting: every device uploads <longitude, latitude,
//    timestamp> to the committee; endorsers run the SybilFilter and record
//    accepted reports in their election tables (§III-B3). Transaction geo
//    trailers are recorded at execution time (chain-based, Table II row 2).
//  * era switches (§III-E): every era period T the current primary (the
//    "lead") halts ordering, runs Algorithm 1 over its election table,
//    assembles the next roster under the admittance policy, and commits it
//    as a configuration block through PBFT itself. When that block
//    executes, every endorser reconfigures: view 0 of the new era, roster
//    (and production priority) taken from the configuration transaction.
//    Newly admitted members receive an ERA-LAUNCH with the chain suffix
//    they miss (state transfer, paid for on the simulated wire).
//  * incentives (§III-B5): the configuration roster is ordered by
//    geographic timer, and primary_of() follows that order, so devices
//    stationary longer produce blocks first; producing a block resets the
//    producer's timer; a primary that loses its view to a view change (a
//    "missed block") or is caught forking is penalized and expelled at the
//    next switch. Fee distribution (70/30) happens in ledger::State.
//
// Role lifecycle: a node starts Active (in the genesis roster) or Candidate
// (reporting location, waiting to qualify); era switches move nodes in both
// directions.
//
// Simplifications vs. the paper, documented in DESIGN.md: committee/roster
// propagation to *clients* is a zero-cost control-plane callback (the
// harness updates them), and election tables are replicated via the
// broadcast geo reports rather than re-derived from chain data by new
// members — a freshly joined member fills its table over the next era.
#pragma once

#include <functional>
#include <set>

#include "geo/reputation.hpp"
#include "gpbft/area_registry.hpp"
#include "gpbft/election.hpp"
#include "gpbft/protocol_config.hpp"
#include "pbft/replica.hpp"

namespace gpbft::gpbft {

enum class Role { Active, Candidate };

class Endorser : public pbft::Replica {
 public:
  /// (era, roster in production-priority order) after each switch.
  using RosterCallback = std::function<void(EraId, const std::vector<NodeId>&)>;

  Endorser(NodeId id, geo::GeoPoint location, GpbftConfig config, ledger::Block genesis,
           net::Network& network, const crypto::KeyRegistry& keys, const AreaRegistry* area);

  /// Attaches, arms geo-report and era timers. Call once.
  void start_protocol();
  /// Stops rescheduling timers so a simulation can drain.
  void stop_protocol();

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] EraId era() const { return era_; }
  [[nodiscard]] const geo::ElectionTable& election_table() const { return table_; }
  [[nodiscard]] const SybilFilter& sybil_filter() const { return filter_; }
  [[nodiscard]] const std::vector<NodeId>& producer_order() const { return producer_order_; }
  [[nodiscard]] const std::set<NodeId>& penalized() const { return penalized_; }
  [[nodiscard]] const EnrolledCells& enrolled_cells() const { return enrolled_cells_; }
  [[nodiscard]] std::uint64_t era_switches() const { return era_switches_; }
  [[nodiscard]] Duration last_switch_duration() const { return last_switch_duration_; }
  [[nodiscard]] geo::GeoPoint location() const { return location_; }
  [[nodiscard]] const geo::ReputationLedger& reputation() const { return reputation_; }

  /// Feeds an invariant-monitor violation implicating `device` into the
  /// reputation ledger (wired by the harness; see sim::InvariantMonitor).
  void note_invariant_violation(NodeId device);

  /// Moves the device (examples / mobility): subsequent reports carry the
  /// new position, so its geographic timer restarts on peers.
  void set_location(const geo::GeoPoint& location) { location_ = location; }

  /// Candidates aim their reports at this roster (normally maintained via
  /// the roster callback by the harness).
  void set_known_committee(std::vector<NodeId> committee);

  void set_roster_callback(RosterCallback cb) { roster_cb_ = std::move(cb); }

  /// Feeds fork evidence (conflicting header for a committed height); the
  /// producer is penalized and expelled at the next era switch (§III-B5).
  void report_fork(const ledger::ForkEvidence& evidence);

  /// Production-priority primary: follows the configuration-roster order
  /// (descending geographic timer) instead of plain round-robin.
  [[nodiscard]] NodeId primary_of(ViewId view) const override;

 protected:
  [[nodiscard]] EraId current_era() const override { return era_; }
  void on_executed(const ledger::Block& block) override;
  void handle_extra(const net::Envelope& envelope) override;
  void on_view_changed(ViewId previous, ViewId current) override;

 private:
  void arm_geo_timer();
  void send_geo_report();
  void arm_era_timer();
  void on_era_timer();
  void initiate_era_switch();
  void cancel_era_switch();
  void propose_config(const ledger::Transaction& tx, int attempt);
  void process_geo_report(NodeId from, const pbft::GeoReportMsg& msg);
  void apply_era_config(const ledger::EraConfig& config, Height config_height);
  void record_geo(NodeId device, const geo::GeoPoint& point, TimePoint at);
  void record_block_geo(const ledger::Block& block);
  /// Era-switch behaviour audit: missed-heartbeat strikes for silent
  /// members, Sybil-rate strikes for report floods (run by the lead; the
  /// resulting scores travel in the configuration block).
  void observe_committee_behaviour(TimePoint at, const ElectionParams& params);
  /// Exports `gpbft.reputation.*` gauges for every scored device.
  void publish_reputation_gauges(TimePoint at);

  GpbftConfig config_;
  Role role_;
  geo::GeoPoint location_;

  geo::ElectionTable table_;
  SybilFilter filter_;
  geo::ReputationLedger reputation_;
  std::set<NodeId> penalized_;
  std::set<NodeId> known_candidates_;
  EnrolledCells enrolled_cells_;  // cell each member was elected at (from chain)
  std::vector<NodeId> producer_order_;  // roster in production-priority order
  std::vector<NodeId> known_committee_; // where candidates send reports

  EraId era_{0};
  bool switch_in_progress_{false};
  TimePoint switch_started_{};
  std::uint64_t era_switches_{0};
  Duration last_switch_duration_{};
  bool protocol_started_{false};
  RequestId next_request_id_{1};

  RosterCallback roster_cb_;
};

}  // namespace gpbft::gpbft
