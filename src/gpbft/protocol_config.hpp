// G-PBFT protocol configuration: the PBFT engine settings plus the
// geographic/era machinery parameters fixed in the genesis block (§III-C).
#pragma once

#include "ledger/genesis.hpp"
#include "pbft/config.hpp"

namespace gpbft::gpbft {

struct GpbftConfig {
  pbft::PbftConfig pbft;
  ledger::GenesisConfig genesis;

  /// Extra settling delay the lead endorser waits after announcing a halt
  /// before proposing the configuration block, letting in-flight instances
  /// finish. Together with the config-block consensus this forms the
  /// observable "switch period" (~0.25 s in the paper's Fig. 3b).
  Duration halt_settle = Duration::millis(50);

  /// When true, devices upload their periodic location reports as zero-fee
  /// transactions so they are *committed to the chain* — the full-fidelity
  /// reading of the paper's chain-based G(v, t) (§III-D): any node,
  /// including a freshly joined endorser, can rebuild the election table
  /// from blocks alone. When false (default) reports travel as direct
  /// messages to the committee — cheaper, and the configuration the
  /// communication-cost experiments measure.
  bool geo_reports_on_chain{false};
};

}  // namespace gpbft::gpbft
