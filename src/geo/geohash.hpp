// Geohash encoding (base-32 interleaved latitude/longitude).
//
// Crypto-Spatial Coordinates (§III-B3) are built on geohash: a shorter hash
// names a larger cell, a longer one a more specific location; 12 characters
// give sub-meter resolution, matching the paper's "about one square meter".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/geopoint.hpp"

namespace gpbft::geo {

/// Geohash cell bounding box returned by decode.
struct GeoBox {
  double lat_min{0}, lat_max{0};
  double lng_min{0}, lng_max{0};

  [[nodiscard]] GeoPoint center() const {
    return GeoPoint{(lat_min + lat_max) / 2, (lng_min + lng_max) / 2};
  }
  [[nodiscard]] bool contains(const GeoPoint& p) const {
    return p.latitude >= lat_min && p.latitude <= lat_max && p.longitude >= lng_min &&
           p.longitude <= lng_max;
  }
};

/// Sub-meter precision used for CSCs.
inline constexpr int kCscPrecision = 12;

/// Encodes a point to `precision` base-32 characters (1..22).
[[nodiscard]] std::string geohash_encode(const GeoPoint& point, int precision = kCscPrecision);

/// Decodes a geohash to its cell; nullopt on invalid characters/empty input.
[[nodiscard]] std::optional<GeoBox> geohash_decode(const std::string& hash);

/// Decoded cell center as a point; nullopt on invalid input.
[[nodiscard]] std::optional<GeoPoint> geohash_decode_center(const std::string& hash);

/// Cell edge sizes (meters, approximate at the equator) for a precision.
struct CellSize {
  double lat_meters{0};
  double lng_meters{0};
};
[[nodiscard]] CellSize geohash_cell_size(int precision);

/// Compass directions for neighbour lookups.
enum class Direction { North, NorthEast, East, SouthEast, South, SouthWest, West, NorthWest };

/// The adjacent cell in `direction` at the same precision; nullopt for
/// invalid input or when stepping past the poles. Longitude wraps at the
/// antimeridian.
[[nodiscard]] std::optional<std::string> geohash_adjacent(const std::string& hash,
                                                          Direction direction);

/// All (up to 8) neighbours of a cell, clockwise from north. Cells at the
/// pole edges have fewer. Nullopt on invalid input.
[[nodiscard]] std::optional<std::vector<std::string>> geohash_neighbors(const std::string& hash);

}  // namespace gpbft::geo
