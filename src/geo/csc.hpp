// Crypto-Spatial Coordinates (CSC).
//
// Per §III-B3, a CSC associates an IoT device's location with its blockchain
// address: CSC = f(geohash, contract address). It is hierarchical — a prefix
// names a containing area — and resolves to about one square meter. We
// realise the CSC as:
//
//   csc_string = base32( sha256( geohash || address )[0..10] )
//
// prefixed by the geohash itself so the hierarchical-prefix property of
// geohash carries over to CSC comparisons, while the hashed suffix binds the
// location claim to one chain identity (two devices at the same place still
// have distinct CSCs; the *cell* part is what the Sybil rule compares).
#pragma once

#include <compare>
#include <string>

#include "crypto/address.hpp"
#include "geo/geohash.hpp"

namespace gpbft::geo {

class Csc {
 public:
  Csc() = default;
  Csc(const GeoPoint& point, const crypto::Address& address, int precision = kCscPrecision);

  /// Full CSC string: "<geohash>-<identity suffix>".
  [[nodiscard]] const std::string& str() const { return value_; }

  /// The location cell alone (geohash prefix).
  [[nodiscard]] const std::string& cell() const { return cell_; }

  /// True when two CSCs claim the same geographic cell — the comparison the
  /// Sybil detector and Algorithm 1 rely on.
  [[nodiscard]] bool same_cell(const Csc& other) const { return cell_ == other.cell_; }

  /// True when this CSC's cell is inside `area_prefix` (hierarchical check:
  /// a shorter geohash names a larger area).
  [[nodiscard]] bool within(const std::string& area_prefix) const;

  friend auto operator<=>(const Csc&, const Csc&) = default;

 private:
  std::string value_;
  std::string cell_;
};

}  // namespace gpbft::geo
