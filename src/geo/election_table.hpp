// The election table (§III-B3, Table II of the paper).
//
// Endorsers maintain, per device, the history of (CSC, timestamp) pairs the
// device reported, plus a *geographic timer* recording for how long the
// device has stayed in the same cell. A device whose timer reaches the
// promotion threshold (72 h in the paper) becomes an endorser candidate; the
// timer also weights block-production priority in the incentive mechanism
// and is reset when the device produces a block.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "geo/csc.hpp"

namespace gpbft::geo {

/// One row of the election table, as in Table II.
struct ElectionEntry {
  Csc csc;
  TimePoint timestamp;
  Duration geographic_timer;  // time at the same location up to `timestamp`
};

class ElectionTable {
 public:
  /// `history_limit` bounds per-device retained rows (old rows are pruned).
  explicit ElectionTable(std::size_t history_limit = 256);

  /// Records a report. If the device moved to a different cell its timer
  /// restarts from zero; otherwise the timer accumulates the elapsed time
  /// since its first report from that cell (Table II semantics).
  void record(NodeId device, const Csc& csc, TimePoint now);

  /// Geographic timer of a device as of its last report (zero if unknown).
  [[nodiscard]] Duration timer(NodeId device) const;

  /// Timer projected to `now`, assuming the device has not moved since its
  /// last report. Used when ranking producers between reports.
  [[nodiscard]] Duration timer_at(NodeId device, TimePoint now) const;

  /// Resets a device's timer (after it produced a block, §III-B5). The
  /// device keeps its location history; accumulation restarts at `now`.
  void reset_timer(NodeId device, TimePoint now);

  /// Reports of a device within the window [now - window, now] — the
  /// chain-based G(v, t) lookup Algorithm 1 iterates over.
  [[nodiscard]] std::vector<ElectionEntry> reports_in_window(NodeId device, TimePoint now,
                                                             Duration window) const;

  /// Latest entry for a device, if any.
  [[nodiscard]] std::optional<ElectionEntry> latest(NodeId device) const;

  /// All known devices.
  [[nodiscard]] std::vector<NodeId> devices() const;

  /// Devices whose projected timer at `now` is >= `threshold` (candidates
  /// for promotion).
  [[nodiscard]] std::vector<NodeId> stationary_devices(TimePoint now, Duration threshold) const;

  void forget(NodeId device);

  /// Renders the table for a device in the paper's Table II layout.
  [[nodiscard]] std::string render(NodeId device) const;

 private:
  struct DeviceState {
    std::vector<ElectionEntry> history;
    TimePoint cell_since;   // when the current cell was first reported
    std::string cell;       // current cell
    bool has_cell{false};
  };

  std::size_t history_limit_;
  std::unordered_map<NodeId, DeviceState> devices_;
};

}  // namespace gpbft::geo
