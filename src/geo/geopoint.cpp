#include "geo/geopoint.hpp"

#include <cmath>
#include <cstdio>

namespace gpbft::geo {

namespace {
constexpr double kEarthRadiusMeters = 6'371'000.0;
constexpr double kPi = 3.14159265358979323846;

double radians(double degrees) { return degrees * kPi / 180.0; }
}  // namespace

bool GeoPoint::valid() const {
  return latitude >= -90.0 && latitude <= 90.0 && longitude >= -180.0 && longitude < 180.0 &&
         std::isfinite(latitude) && std::isfinite(longitude);
}

std::string GeoPoint::str() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", latitude, longitude);
  return buf;
}

double haversine_meters(const GeoPoint& a, const GeoPoint& b) {
  const double phi1 = radians(a.latitude);
  const double phi2 = radians(b.latitude);
  const double dphi = radians(b.latitude - a.latitude);
  const double dlambda = radians(b.longitude - a.longitude);

  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) * std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(s)));
}

bool same_location(const GeoPoint& a, const GeoPoint& b) {
  // CSC resolution is about one square meter (§III-B3); anything closer than
  // half a meter is "the same place".
  return haversine_meters(a, b) < 0.5;
}

}  // namespace gpbft::geo
