#include "geo/reputation.hpp"

#include <algorithm>

namespace gpbft::geo {

ReputationLedger::ReputationLedger(ReputationParams params) : params_(params) {}

std::int64_t ReputationLedger::decayed(const State& state, TimePoint now) const {
  std::int64_t deviation = state.score - params_.neutral;
  if (deviation == 0 || now <= state.updated) return state.score;
  const std::int64_t half_life = params_.half_life.ns;
  if (half_life <= 0) return state.score;
  std::int64_t elapsed = (now - state.updated).ns;
  // Exact halving per full half-life; a 63-step cap covers any i64 span.
  std::int64_t halvings = elapsed / half_life;
  if (halvings > 62) halvings = 62;
  if (deviation > 0) {
    deviation >>= halvings;
  } else {
    deviation = -((-deviation) >> halvings);
  }
  // Linear interpolation inside the final half-life: d' = d - d/2 * r/hl.
  const std::int64_t remainder = elapsed % half_life;
  deviation -= deviation * remainder / (2 * half_life);
  return params_.neutral + deviation;
}

void ReputationLedger::apply(NodeId device, std::int64_t delta, TimePoint now) {
  auto [it, inserted] = states_.try_emplace(device, State{params_.initial, now, false});
  State& state = it->second;
  std::int64_t score = inserted ? state.score : decayed(state, now);
  score += delta;
  score = std::clamp(score, params_.floor, params_.ceiling);
  state.score = score;
  state.updated = now;
  if (state.latched) {
    if (score >= params_.quarantine_exit) state.latched = false;
  } else if (score < params_.quarantine_enter) {
    state.latched = true;
  }
}

void ReputationLedger::record_block_produced(NodeId device, TimePoint now) {
  apply(device, params_.block_reward, now);
}

void ReputationLedger::record_view_change(NodeId device, TimePoint now) {
  apply(device, -params_.view_change_penalty, now);
}

void ReputationLedger::record_fault_observation(NodeId device, TimePoint now) {
  apply(device, -params_.fault_penalty, now);
}

void ReputationLedger::record_missed_heartbeat(NodeId device, TimePoint now) {
  apply(device, -params_.heartbeat_penalty, now);
}

void ReputationLedger::record_invariant_violation(NodeId device, TimePoint now) {
  apply(device, -params_.invariant_penalty, now);
}

void ReputationLedger::record_sybil_anomaly(NodeId device, TimePoint now) {
  apply(device, -params_.sybil_penalty, now);
}

std::int64_t ReputationLedger::score_of(NodeId device, TimePoint now) const {
  const auto it = states_.find(device);
  if (it == states_.end()) return params_.initial;
  return decayed(it->second, now);
}

bool ReputationLedger::quarantined(NodeId device, TimePoint now) const {
  const auto it = states_.find(device);
  if (it == states_.end()) return false;
  const std::int64_t score = decayed(it->second, now);
  if (it->second.latched) return score < params_.quarantine_exit;
  return score < params_.quarantine_enter;
}

std::vector<NodeId> ReputationLedger::devices() const {
  std::vector<NodeId> out;
  out.reserve(states_.size());
  for (const auto& [id, state] : states_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ReputationLedger::Snapshot> ReputationLedger::snapshot(TimePoint now) const {
  std::vector<Snapshot> out;
  out.reserve(states_.size());
  for (const auto& [id, state] : states_) {
    out.push_back(Snapshot{id, decayed(state, now),
                           state.latched && decayed(state, now) < params_.quarantine_exit});
  }
  std::sort(out.begin(), out.end(),
            [](const Snapshot& a, const Snapshot& b) { return a.device < b.device; });
  return out;
}

void ReputationLedger::restore(const Snapshot& snap, TimePoint now) {
  states_[snap.device] = State{snap.score, now, snap.quarantined};
}

void ReputationLedger::forget(NodeId device) { states_.erase(device); }

}  // namespace gpbft::geo
