#include "geo/csc.hpp"

#include "crypto/sha256.hpp"
#include "serde/writer.hpp"

namespace gpbft::geo {

namespace {
constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

std::string identity_suffix(const std::string& cell, const crypto::Address& address) {
  serde::Writer w;
  w.string(cell);
  w.raw(address.view());
  const crypto::Hash256 digest =
      crypto::sha256(BytesView(w.buffer().data(), w.buffer().size()));
  std::string out;
  out.reserve(10);
  for (int i = 0; i < 10; ++i) {
    out.push_back(kBase32[digest.bytes[static_cast<std::size_t>(i)] & 0x1f]);
  }
  return out;
}
}  // namespace

Csc::Csc(const GeoPoint& point, const crypto::Address& address, int precision) {
  cell_ = geohash_encode(point, precision);
  value_ = cell_ + "-" + identity_suffix(cell_, address);
}

bool Csc::within(const std::string& area_prefix) const {
  return cell_.size() >= area_prefix.size() &&
         cell_.compare(0, area_prefix.size(), area_prefix) == 0;
}

}  // namespace gpbft::geo
