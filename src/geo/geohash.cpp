#include "geo/geohash.hpp"

#include <array>
#include <cmath>

namespace gpbft::geo {

namespace {
constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

int base32_value(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  return -1;
}
}  // namespace

std::string geohash_encode(const GeoPoint& point, int precision) {
  precision = std::max(1, std::min(precision, 22));
  double lat_min = -90.0, lat_max = 90.0;
  double lng_min = -180.0, lng_max = 180.0;

  std::string hash;
  hash.reserve(static_cast<std::size_t>(precision));
  int bit = 0;
  int current = 0;
  bool even_bit = true;  // even bits encode longitude

  while (static_cast<int>(hash.size()) < precision) {
    if (even_bit) {
      const double mid = (lng_min + lng_max) / 2;
      if (point.longitude >= mid) {
        current = (current << 1) | 1;
        lng_min = mid;
      } else {
        current <<= 1;
        lng_max = mid;
      }
    } else {
      const double mid = (lat_min + lat_max) / 2;
      if (point.latitude >= mid) {
        current = (current << 1) | 1;
        lat_min = mid;
      } else {
        current <<= 1;
        lat_max = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      hash.push_back(kBase32[current]);
      bit = 0;
      current = 0;
    }
  }
  return hash;
}

std::optional<GeoBox> geohash_decode(const std::string& hash) {
  if (hash.empty()) return std::nullopt;

  GeoBox box{-90.0, 90.0, -180.0, 180.0};
  bool even_bit = true;
  for (char c : hash) {
    const int value = base32_value(c);
    if (value < 0) return std::nullopt;
    for (int shift = 4; shift >= 0; --shift) {
      const int bit = (value >> shift) & 1;
      if (even_bit) {
        const double mid = (box.lng_min + box.lng_max) / 2;
        if (bit) {
          box.lng_min = mid;
        } else {
          box.lng_max = mid;
        }
      } else {
        const double mid = (box.lat_min + box.lat_max) / 2;
        if (bit) {
          box.lat_min = mid;
        } else {
          box.lat_max = mid;
        }
      }
      even_bit = !even_bit;
    }
  }
  return box;
}

std::optional<GeoPoint> geohash_decode_center(const std::string& hash) {
  const auto box = geohash_decode(hash);
  if (!box) return std::nullopt;
  return box->center();
}

std::optional<std::string> geohash_adjacent(const std::string& hash, Direction direction) {
  const auto box = geohash_decode(hash);
  if (!box) return std::nullopt;

  const double lat_span = box->lat_max - box->lat_min;
  const double lng_span = box->lng_max - box->lng_min;
  GeoPoint center = box->center();

  int lat_step = 0, lng_step = 0;
  switch (direction) {
    case Direction::North: lat_step = 1; break;
    case Direction::NorthEast: lat_step = 1; lng_step = 1; break;
    case Direction::East: lng_step = 1; break;
    case Direction::SouthEast: lat_step = -1; lng_step = 1; break;
    case Direction::South: lat_step = -1; break;
    case Direction::SouthWest: lat_step = -1; lng_step = -1; break;
    case Direction::West: lng_step = -1; break;
    case Direction::NorthWest: lat_step = 1; lng_step = -1; break;
  }

  center.latitude += lat_step * lat_span;
  center.longitude += lng_step * lng_span;
  // Stepping past a pole has no neighbour; longitude wraps.
  if (center.latitude > 90.0 || center.latitude < -90.0) return std::nullopt;
  if (center.longitude >= 180.0) center.longitude -= 360.0;
  if (center.longitude < -180.0) center.longitude += 360.0;

  return geohash_encode(center, static_cast<int>(hash.size()));
}

std::optional<std::vector<std::string>> geohash_neighbors(const std::string& hash) {
  if (!geohash_decode(hash)) return std::nullopt;
  std::vector<std::string> out;
  for (const Direction d :
       {Direction::North, Direction::NorthEast, Direction::East, Direction::SouthEast,
        Direction::South, Direction::SouthWest, Direction::West, Direction::NorthWest}) {
    if (auto neighbor = geohash_adjacent(hash, d)) out.push_back(std::move(*neighbor));
  }
  return out;
}

CellSize geohash_cell_size(int precision) {
  precision = std::max(1, std::min(precision, 22));
  const int total_bits = precision * 5;
  const int lng_bits = (total_bits + 1) / 2;
  const int lat_bits = total_bits / 2;
  // 1 degree latitude ~ 111 320 m; longitude the same at the equator.
  const double lat_deg = 180.0 / std::pow(2.0, lat_bits);
  const double lng_deg = 360.0 / std::pow(2.0, lng_bits);
  return CellSize{lat_deg * 111'320.0, lng_deg * 111'320.0};
}

}  // namespace gpbft::geo
