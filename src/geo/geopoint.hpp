// Geographic information primitives.
//
// Per §II-C of the paper, a piece of geographic information has the shape
// <longitude, latitude, timestamp>. GeoPoint carries the coordinate pair;
// GeoReport couples it with the simulated timestamp at which a device
// reported it (periodic reports drive Algorithm 1 and the election table).
#pragma once

#include <compare>
#include <string>

#include "common/sim_time.hpp"

namespace gpbft::geo {

struct GeoPoint {
  double latitude{0.0};   // degrees, [-90, 90]
  double longitude{0.0};  // degrees, [-180, 180)

  friend constexpr auto operator<=>(const GeoPoint&, const GeoPoint&) = default;

  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::string str() const;
};

/// One periodic location report: <longitude, latitude, timestamp>.
struct GeoReport {
  GeoPoint point;
  TimePoint timestamp;

  friend constexpr auto operator<=>(const GeoReport&, const GeoReport&) = default;
};

/// Great-circle distance in meters (haversine, mean Earth radius 6371 km).
[[nodiscard]] double haversine_meters(const GeoPoint& a, const GeoPoint& b);

/// True when the two coordinates are identical per Algorithm 1's equality
/// test (the paper compares lng/lat exactly; we allow a sub-meter epsilon to
/// absorb floating-point noise from encode/decode roundtrips).
[[nodiscard]] bool same_location(const GeoPoint& a, const GeoPoint& b);

}  // namespace gpbft::geo
