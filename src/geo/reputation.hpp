// Reputation ledger for the endorser election.
//
// The paper's election trusts geographic stability alone: a device that
// stays in one cell for 72 h is promoted (§III-B3). That leaves the
// committee open to adversaries who attack the election itself — flaky
// endorsers that stay put, Sybil report floods, mobility oscillation at
// the promotion boundary. The reputation ledger scores each device from
// observed behaviour (blocks produced, view changes suffered as primary,
// Byzantine/fault observations, missed heartbeats, invariant violations)
// and the election weights the geographic timer by that score, demoting
// devices that fall below a quarantine threshold.
//
// Everything is deterministic fixed-point arithmetic: scores are integral
// milli-units (1000 = neutral) and decay toward neutral along a
// piecewise-linear approximation of exponential decay (exact halvings per
// elapsed half-life, linear within one). No floating point, no RNG — the
// same observation sequence always yields the same scores, and scores
// snapshot/restore losslessly through persisted configuration blocks.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace gpbft::geo {

/// Tuning knobs for the reputation model. All score values are fixed-point
/// milli-units. `enabled` gates *influence* (election weighting, quarantine,
/// score persistence) — observations are always recorded, so a stock run can
/// still report what reputation *would* have flagged.
struct ReputationParams {
  bool enabled{false};
  std::int64_t initial{1000};   ///< score of a never-observed device
  std::int64_t neutral{1000};   ///< decay attractor
  std::int64_t floor{0};
  std::int64_t ceiling{2000};
  std::int64_t block_reward{25};            ///< block produced on time
  std::int64_t view_change_penalty{350};    ///< view change suffered as primary
  std::int64_t fault_penalty{500};          ///< observed Byzantine behaviour
  std::int64_t heartbeat_penalty{300};      ///< no geo-report in the window
  std::int64_t invariant_penalty{600};      ///< implicated in a violation
  /// Geo-report rate anomaly (Sybil flood). Deliberately below `enter` in
  /// one strike: the era switch that detects a flood must not seat the
  /// flooder, so detection and demotion land in the same election.
  std::int64_t sybil_penalty{650};
  Duration half_life{Duration::hours(24)};  ///< decay toward neutral
  /// Hysteresis band: a device is quarantined when its score drops below
  /// `quarantine_enter` and rehabilitated only once decay lifts it back
  /// above `quarantine_exit`. With the default penalties a single strike
  /// (1000 - 350 = 650) never quarantines; repeated strikes do.
  std::int64_t quarantine_enter{400};
  std::int64_t quarantine_exit{750};
};

/// Deterministic per-device behaviour scores with exponential decay in
/// sim-time and a hysteresis quarantine latch.
class ReputationLedger {
 public:
  explicit ReputationLedger(ReputationParams params = {});

  [[nodiscard]] const ReputationParams& params() const { return params_; }

  // --- observations ------------------------------------------------------
  void record_block_produced(NodeId device, TimePoint now);
  void record_view_change(NodeId device, TimePoint now);
  void record_fault_observation(NodeId device, TimePoint now);
  void record_missed_heartbeat(NodeId device, TimePoint now);
  void record_invariant_violation(NodeId device, TimePoint now);
  void record_sybil_anomaly(NodeId device, TimePoint now);

  // --- queries ------------------------------------------------------------
  /// Score projected to `now` (decay applied, no state mutated). Devices
  /// never observed score `params.initial`.
  [[nodiscard]] std::int64_t score_of(NodeId device, TimePoint now) const;

  /// Effective quarantine state at `now`: latched devices stay quarantined
  /// until decay lifts their score above `quarantine_exit`; unlatched
  /// devices are quarantined only below `quarantine_enter`.
  [[nodiscard]] bool quarantined(NodeId device, TimePoint now) const;

  /// Devices with recorded observations, ascending by id.
  [[nodiscard]] std::vector<NodeId> devices() const;

  [[nodiscard]] std::size_t size() const { return states_.size(); }

  // --- persistence --------------------------------------------------------
  struct Snapshot {
    NodeId device;
    std::int64_t score{0};  ///< milli fixed-point, decayed to snapshot time
    bool quarantined{false};
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  /// Full ledger state decayed to `now`, ascending by device id — the form
  /// persisted inside configuration blocks.
  [[nodiscard]] std::vector<Snapshot> snapshot(TimePoint now) const;

  /// Reinstates one device's state (from a persisted configuration block).
  /// Overwrites any local observations for that device.
  void restore(const Snapshot& snap, TimePoint now);

  void forget(NodeId device);

 private:
  struct State {
    std::int64_t score{0};
    TimePoint updated{};
    bool latched{false};  ///< quarantine latch (hysteresis)
  };

  /// Decays `state.score` toward neutral as of `now`.
  [[nodiscard]] std::int64_t decayed(const State& state, TimePoint now) const;

  /// Folds decay into the stored score, applies `delta`, clamps, and
  /// updates the quarantine latch.
  void apply(NodeId device, std::int64_t delta, TimePoint now);

  ReputationParams params_;
  std::unordered_map<NodeId, State> states_;
};

}  // namespace gpbft::geo
