#include "geo/election_table.hpp"

#include <algorithm>
#include <sstream>

namespace gpbft::geo {

ElectionTable::ElectionTable(std::size_t history_limit) : history_limit_(history_limit) {}

void ElectionTable::record(NodeId device, const Csc& csc, TimePoint now) {
  DeviceState& state = devices_[device];

  if (!state.has_cell || state.cell != csc.cell()) {
    // Moved (or first sighting): the geographic timer restarts.
    state.cell = csc.cell();
    state.cell_since = now;
    state.has_cell = true;
  }

  ElectionEntry entry;
  entry.csc = csc;
  entry.timestamp = now;
  entry.geographic_timer = now - state.cell_since;
  state.history.push_back(entry);

  if (state.history.size() > history_limit_) {
    state.history.erase(state.history.begin(),
                        state.history.begin() +
                            static_cast<std::ptrdiff_t>(state.history.size() - history_limit_));
  }
}

Duration ElectionTable::timer(NodeId device) const {
  const auto it = devices_.find(device);
  if (it == devices_.end() || it->second.history.empty()) return Duration{0};
  return it->second.history.back().geographic_timer;
}

Duration ElectionTable::timer_at(NodeId device, TimePoint now) const {
  const auto it = devices_.find(device);
  if (it == devices_.end() || !it->second.has_cell) return Duration{0};
  if (now < it->second.cell_since) return Duration{0};
  return now - it->second.cell_since;
}

void ElectionTable::reset_timer(NodeId device, TimePoint now) {
  auto it = devices_.find(device);
  if (it == devices_.end()) return;
  it->second.cell_since = now;
}

std::vector<ElectionEntry> ElectionTable::reports_in_window(NodeId device, TimePoint now,
                                                            Duration window) const {
  std::vector<ElectionEntry> out;
  const auto it = devices_.find(device);
  if (it == devices_.end()) return out;
  const TimePoint start = TimePoint{now.ns - window.ns};
  for (const ElectionEntry& entry : it->second.history) {
    if (entry.timestamp >= start && entry.timestamp <= now) out.push_back(entry);
  }
  return out;
}

std::optional<ElectionEntry> ElectionTable::latest(NodeId device) const {
  const auto it = devices_.find(device);
  if (it == devices_.end() || it->second.history.empty()) return std::nullopt;
  return it->second.history.back();
}

std::vector<NodeId> ElectionTable::devices() const {
  std::vector<NodeId> out;
  out.reserve(devices_.size());
  for (const auto& [id, state] : devices_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ElectionTable::stationary_devices(TimePoint now, Duration threshold) const {
  std::vector<NodeId> out;
  for (const auto& [id, state] : devices_) {
    if (timer_at(id, now) >= threshold) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ElectionTable::forget(NodeId device) { devices_.erase(device); }

std::string ElectionTable::render(NodeId device) const {
  std::ostringstream os;
  os << "  # | CSC                      | Timestamp (s) | Geographic Timer\n";
  const auto it = devices_.find(device);
  if (it == devices_.end()) return os.str();
  std::size_t row = 1;
  for (const ElectionEntry& entry : it->second.history) {
    os << "  " << row++ << " | " << entry.csc.str() << " | " << entry.timestamp.to_seconds()
       << " | " << format_hms(entry.geographic_timer) << "\n";
  }
  return os.str();
}

}  // namespace gpbft::geo
