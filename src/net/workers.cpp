#include "net/workers.hpp"

#include <cassert>
#include <utility>

namespace gpbft::net {

OrderedRunner::OrderedRunner(std::size_t threads) : ring_(kRingSize) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

OrderedRunner::~OrderedRunner() {
  // Finish everything first: prologues may reference state (key registry,
  // payload cells) owned by layers that outlive the runner, and running the
  // leftover epilogues keeps teardown on the same code path as a release.
  drain();
  stopping_.store(true, std::memory_order_release);
  {
    // Taking the lock orders the store against a worker's predicate check,
    // so no worker can park after missing the stop flag.
    const std::lock_guard<std::mutex> lock(mu_);
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::uint64_t OrderedRunner::submit(Prologue prologue) {
  const std::uint64_t ticket = ++next_ticket_;
  // Ring full (kRingSize unreleased tickets): free the oldest slots. submit
  // runs on the releasing thread, so releasing here is in-contract.
  if (ticket > kRingSize && released_ < ticket - kRingSize) {
    release_until(ticket - kRingSize);
  }
  Slot& slot = ring_[ticket & kRingMask];
  assert(slot.state.load(std::memory_order_relaxed) == Slot::kEmpty);
  slot.run = std::move(prologue);
  slot.state.store(Slot::kQueued, std::memory_order_relaxed);
  // Publication point: a worker that acquires submitted_ >= ticket sees the
  // slot writes above. seq_cst pairs with the worker's seq_cst sleepers_
  // increment (Dekker): either this thread sees the sleeper and notifies,
  // or the sleeper's predicate sees the new ticket and never parks.
  submitted_.store(ticket, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Lock-then-notify closes the race against a worker between its
    // predicate check and its park; skipped entirely while workers spin.
    { const std::lock_guard<std::mutex> lock(mu_); }
    task_cv_.notify_all();
  }
  return ticket;
}

void OrderedRunner::release_until(std::uint64_t ticket) {
  if (ticket > next_ticket_) ticket = next_ticket_;
  while (released_ < ticket) {
    const std::uint64_t t = released_ + 1;
    Slot& slot = ring_[t & kRingMask];
    std::uint64_t expected = t;
    if (claim_.compare_exchange_strong(expected, t + 1, std::memory_order_acq_rel)) {
      // Unclaimed: help-steal. Runs the prologue right here instead of
      // waiting for a worker — with zero workers this IS the execution path.
      slot.epilogue = slot.run();
      slot.run = nullptr;
      ++stolen_;
    } else {
      // A worker owns ticket t; spin until it publishes the epilogue. The
      // wait is bounded by one prologue execution, so parking would cost
      // more than it saves.
      while (slot.state.load(std::memory_order_acquire) != Slot::kDone) {
        std::this_thread::yield();
      }
    }
    Epilogue epilogue = std::move(slot.epilogue);
    slot.epilogue = nullptr;
    slot.state.store(Slot::kEmpty, std::memory_order_release);
    ++released_;
    if (epilogue) epilogue();
  }
}

void OrderedRunner::worker_loop() {
  int idle = 0;
  for (;;) {
    std::uint64_t t = claim_.load(std::memory_order_relaxed);
    if (t > submitted_.load(std::memory_order_acquire)) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (++idle < kIdleSpins) {
        std::this_thread::yield();
        continue;
      }
      // Queue has been dry for a while: park until new work or shutdown.
      // seq_cst on the sleepers_/submitted_ pair — see submit().
      std::unique_lock<std::mutex> lock(mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      task_cv_.wait(lock, [this]() {
        return stopping_.load(std::memory_order_acquire) ||
               claim_.load(std::memory_order_relaxed) <=
                   submitted_.load(std::memory_order_seq_cst);
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      idle = 0;
      continue;
    }
    if (!claim_.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel)) {
      continue;  // lost the race (another worker or the help-stealing releaser)
    }
    idle = 0;
    Slot& slot = ring_[t & kRingMask];
    slot.epilogue = slot.run();
    slot.run = nullptr;
    // Publication point: the releaser acquires kDone and sees the epilogue.
    slot.state.store(Slot::kDone, std::memory_order_release);
  }
}

}  // namespace gpbft::net
