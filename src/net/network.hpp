// Simulated network with per-node processing queues and fault injection.
//
// Timing model (calibrated in DESIGN.md §4):
//
//   delivery = link propagation (base + jitter)
//            + transmission (wire_size / bandwidth)
//   handling = max(arrival, receiver busy-until)
//            + processing (1/s + wire_size * per-byte cost)
//
// The receiver-side queue is the load-bearing part: the paper's analysis
// (§IV-B) models a node as processing s messages per second, and the
// superlinear PBFT latency of Fig. 3a/4 emerges from exactly this queueing
// once n nodes broadcast O(n) messages each. Byte counters feed the
// communication-cost experiments (Figs. 5-6, Table III).
//
// Fault injection covers the behaviours the protocols must tolerate: drops,
// crashes, partitions, and per-link degradation (loss, added latency,
// duplication, reordering) plus per-node "brownouts" that slow a node's
// processing rate. Byzantine *content* faults live in the protocol layers
// (a faulty replica sends bad payloads); the network only models
// lossy/partitioned transport.
//
// All fault decisions draw from a dedicated RNG stream (forked off the
// simulator seed), never from the simulator's main stream: toggling a
// partition or a link rule must not perturb jitter, workload or protocol
// randomness, so faulty and clean runs stay comparable seed-for-seed.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/simulator.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace gpbft::net {

class OrderedRunner;

/// A node attached to the network. Implementations are the PBFT replica,
/// the G-PBFT endorser, and client/IoT-device models.
class INetNode {
 public:
  virtual ~INetNode() = default;
  [[nodiscard]] virtual NodeId id() const = 0;
  virtual void handle(const Envelope& envelope) = 0;
};

struct NetConfig {
  /// One-way propagation delay per link.
  Duration base_latency = Duration::millis(2);
  /// Uniform jitter added on top of base latency: U[0, jitter].
  Duration jitter = Duration::millis(1);
  /// Link bandwidth in bytes per simulated second (transmission delay).
  double bandwidth_bytes_per_sec = 12.5e6;  // 100 Mbit/s
  /// Receiver processing rate: messages handled per second (the paper's s).
  /// This is the fleet default; per-node overrides model the heterogeneity
  /// the paper builds on — "fixed IoT devices always have more
  /// computational power than other IoT devices such as mobile phones and
  /// sensors" (§III-B). See Network::set_processing_rate.
  double processing_rate_msgs_per_sec = 160.0;
  /// Additional per-byte processing cost (models MAC checks over payloads).
  double processing_secs_per_byte = 0.0;
  /// Probability a message is silently dropped.
  double drop_rate = 0.0;

  friend bool operator==(const NetConfig&, const NetConfig&) = default;
};

/// Per-link fault rule (the chaos engine's richer link faults). Applied to
/// traffic from one node to another on top of the global drop rate.
struct LinkFault {
  /// Extra per-link drop probability (on top of NetConfig::drop_rate).
  double loss{0.0};
  /// Added one-way propagation delay (degraded route).
  Duration extra_latency{};
  /// Probability the message is delivered twice (retransmit ghosts).
  double duplicate{0.0};
  /// Uniform extra delay U[0, window] per message; a nonzero window lets
  /// later messages overtake earlier ones (reordering).
  Duration reorder_window{};
};

/// Wire-level Byzantine adversary: a rule that corrupts envelopes in
/// flight. Every random decision draws from the network's dedicated tamper
/// stream (forked off the simulator seed, like the fault stream), so
/// installing or removing a rule never perturbs jitter, link faults,
/// workload or protocol randomness — a run with tampering off is
/// byte-identical to one where the feature does not exist.
///
/// Two adversary strengths:
///   - Replace: a man-in-the-middle. The mutant *replaces* the original
///     (the genuine bytes are lost), so the attack doubles as message loss
///     and exercises timeout/recovery paths. Asserted crash-free and
///     invariant-clean, not tip-identical.
///   - Inject: a man-on-the-side. The original is delivered untouched and
///     a mutated ghost copy is injected alongside it. With MACs on, every
///     ghost must be rejected at the wire layer, which makes the whole
///     attack byte-invisible — the REJECT-SAFE invariant (docs/protocol.md
///     §12) demands chain tips identical to the tamper-free run.
struct TamperRule {
  enum class Mode { Replace, Inject };
  Mode mode{Mode::Replace};
  /// Per-message probability that the adversary acts.
  double chance{0.0};

  /// Relative weights of the mutation families (zero disables a family).
  double bitflip{1.0};
  double truncate{1.0};
  double extend{1.0};
  double retype{1.0};    // type confusion: same bytes, different MessageType
  double oversize{1.0};  // forged huge declared lengths (allocation attack)
  double replay{1.0};    // re-deliver an old genuine envelope verbatim

  /// Bit flips per mutated payload: U[1, max_flips].
  std::size_t max_flips{8};
  /// Garbage bytes appended by the extend family: U[1, max_extend].
  std::size_t max_extend{64};
  /// Replayed envelopes are re-delivered after U[0, replay_delay_max].
  Duration replay_delay_max{Duration::millis(500)};
  /// Sliding window of genuine envelopes the replay family can pick from.
  std::size_t replay_history{64};
  /// Message types the adversary never touches (neither mutates nor
  /// records for replay). Used where the model has no end-to-end
  /// authentication to detect forgery — e.g. PoW client transactions.
  std::vector<MessageType> spare_types{};
};

struct NodeTraffic {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t bytes_received{0};
};

struct NetStats {
  std::uint64_t total_messages{0};
  std::uint64_t total_bytes{0};
  std::uint64_t dropped_messages{0};
  std::uint64_t duplicated_messages{0};
  /// Envelopes the tamper rule mutated (Replace) or forged (Inject).
  std::uint64_t tampered_messages{0};
  /// Genuine envelopes the tamper rule re-delivered out of its history.
  std::uint64_t replayed_messages{0};
  /// Envelopes a receiver refused at the wire-decode layer (bad seal,
  /// undecodable body, unknown type). Mirrors dropped_messages: NetStats
  /// and the `net.msgs_rejected` telemetry always move together.
  std::uint64_t rejected_messages{0};
  std::unordered_map<NodeId, NodeTraffic> per_node;
  std::map<MessageType, std::uint64_t> bytes_by_type;
  std::map<MessageType, std::uint64_t> rejected_by_type;

  [[nodiscard]] double total_kilobytes() const { return static_cast<double>(total_bytes) / 1024.0; }
  void reset() { *this = NetStats{}; }
};

class Network {
 public:
  Network(Simulator& sim, NetConfig config);

  /// Registers a node. The pointer must outlive the network (nodes are owned
  /// by the cluster/harness layer). The node starts idle: its busy-until
  /// horizon is reset to now, so a restart (detach + attach) can never
  /// resurrect a pre-crash processing backlog.
  void attach(INetNode* node);
  /// Unregisters a node and drops all its per-node state (busy horizon,
  /// processing-rate override, brownout): a node id re-attached later — an
  /// era switch, a restart — must not inherit the old node's degradation.
  void detach(NodeId id);

  /// Sends an envelope; accounts traffic and schedules delivery + handling.
  /// Sending to an unknown or crashed destination still costs the sender
  /// bandwidth (the bytes go on the wire) but is not delivered.
  void send(Envelope envelope);

  /// Broadcast helper: one unicast per destination (PBFT's all-to-all).
  /// Every envelope refcounts the same payload buffer — no per-destination
  /// copy.
  void broadcast(NodeId from, const std::vector<NodeId>& destinations, MessageType type,
                 Payload payload);

  /// Overrides one node's processing rate (heterogeneous fleets: powerful
  /// fixed endorsers next to weak sensors). Pass <= 0 to restore default.
  void set_processing_rate(NodeId id, double msgs_per_sec);
  [[nodiscard]] double processing_rate_of(NodeId id) const;

  // --- fault injection -----------------------------------------------------
  void set_drop_rate(double p) { config_.drop_rate = p; }
  void crash(NodeId id) { crashed_.insert(id); }
  /// Models a reboot: the node comes back empty-handed, so any processing
  /// backlog accumulated before the crash is discarded (busy-until reset).
  void recover(NodeId id);
  [[nodiscard]] bool is_crashed(NodeId id) const { return crashed_.contains(id); }

  /// Splits the network: messages between nodes in different groups drop.
  /// Nodes not mentioned in any group stay in group 0.
  void partition(const std::vector<std::vector<NodeId>>& groups);
  void heal_partition();

  /// Adds a one-way rule dropping all traffic from `from` to `to`.
  void block_link(NodeId from, NodeId to);
  void unblock_link(NodeId from, NodeId to);

  /// Installs (replaces) a one-way per-link fault rule.
  void set_link_fault(NodeId from, NodeId to, const LinkFault& fault);
  void clear_link_fault(NodeId from, NodeId to);
  void clear_link_faults();
  /// Rule on a link, or nullptr when the link is clean.
  [[nodiscard]] const LinkFault* link_fault(NodeId from, NodeId to) const;

  /// Installs (replaces) the wire-tamper rule. One global rule at a time —
  /// the adversary owns the whole transport, matching the chaos engine's
  /// one-window-at-a-time scheduling.
  void set_tamper(const TamperRule& rule);
  void clear_tamper();
  /// Active rule, or nullptr when the wire is clean.
  [[nodiscard]] const TamperRule* tamper() const { return tamper_ ? &*tamper_ : nullptr; }

  /// Brownout: divides the node's processing rate by `factor` (>= 1) until
  /// cleared — a time-varying degradation (thermal throttling, contention).
  void set_brownout(NodeId id, double factor);
  void clear_brownout(NodeId id) { brownouts_.erase(id); }
  [[nodiscard]] double brownout_of(NodeId id) const;

  // --- accounting ----------------------------------------------------------
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  void reset_stats();

  // --- parallel MAC plane --------------------------------------------------
  /// Submits one open/verify prologue for an arriving envelope and attaches
  /// the resulting OpenJob to it. Installed by the deployment layer (which
  /// knows the key registry and MAC flag the network must stay agnostic
  /// of); only called for envelopes that passed the arrival liveness check.
  using MacPlaneHook = std::function<void(Envelope&)>;

  /// Activates the parallel MAC plane: every arriving envelope is handed to
  /// `hook` at its arrival instant, and process_next() releases the runner
  /// up to that envelope's ticket before invoking the handler. Both must
  /// outlive the network's message flow.
  void set_mac_plane(OrderedRunner& runner, MacPlaneHook hook);
  /// Whether senders should defer sealing to the plane's workers.
  [[nodiscard]] bool mac_plane_active() const { return runner_ != nullptr; }

  /// One wire-layer rejection, wherever it happens (seal/open failure,
  /// undecodable body, unknown message type, malformed fixed-size payload).
  /// Called by receive paths in all four stacks; keyed by the envelope's
  /// claimed type. NetStats and the `net.msgs_rejected` telemetry counters
  /// (total + per-type) always move together — the reject-side mirror of
  /// note_dropped's drop accounting.
  void note_rejected(MessageType type);

  /// Telemetry sink shared by every layer that holds a Network reference
  /// (protocol nodes reach the deployment's registry through here without
  /// any constructor changes). Defaults to the process-wide disabled
  /// instance, so bare-Network tests pay one branch per message and
  /// nothing else. The telemetry must outlive the network.
  void set_telemetry(obs::Telemetry& telemetry);
  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const NetConfig& config() const { return config_; }
  void set_config(const NetConfig& config) { config_ = config; }

 private:
  [[nodiscard]] bool partitioned_apart(NodeId a, NodeId b) const;
  void schedule_delivery(TimePoint arrival, Envelope envelope, std::size_t size);
  /// Arrival instant: crash/detach check, serial-queue fold into
  /// busy_until_, inbox enqueue, done-event scheduling.
  void on_arrival(Envelope envelope, std::size_t size);
  /// Processing-done instant: pops the receiver's inbox front, re-checks
  /// liveness, accounts the receive and invokes the handler.
  void process_next(NodeId to);
  /// One drop, wherever it happens (send-time fault, receiver down at
  /// arrival or at processing-done): NetStats and the `net.msgs_dropped`
  /// counter always move together.
  void note_dropped();

  /// Applies the active tamper rule to an in-flight envelope. Replace mode
  /// mutates `envelope`/`size` in place (the mutant continues down the
  /// normal delivery path); Inject mode leaves them untouched and schedules
  /// the mutant as a separate ghost delivery. Draws only from the tamper
  /// stream. Called only when a rule with chance > 0 is installed and the
  /// type is not spared.
  void apply_tamper(Envelope& envelope, std::size_t& size);
  /// Delivery path for Inject-mode ghosts: hands the envelope to the
  /// receiver at the arrival instant without folding into the serial
  /// processing queue — the injection happens at the network edge, and the
  /// receiver's wire-integrity check discards forgeries at line rate. This
  /// keeps the genuine plane causally untouched, which is what makes the
  /// REJECT-SAFE invariant (tampered tips byte-identical to clean tips with
  /// MACs on) exact rather than probabilistic.
  void deliver_injected(Envelope envelope, std::size_t size);
  /// Builds the mutated envelope for the drawn family (never replay).
  [[nodiscard]] Envelope mutate_envelope(const Envelope& original, const TamperRule& rule,
                                         int family);
  void note_tampered();

  /// Cached handles so the per-message hot path resolves each accounting
  /// slot once — the NetStats map entries and the telemetry registry rows
  /// (pointers into std::map / std::unordered_map values are stable).
  /// Telemetry rows resolve lazily and only while telemetry is enabled, so
  /// a disabled run never creates registry entries. Both caches are cleared
  /// by reset_stats() and set_telemetry().
  struct TypeHandles {
    std::uint64_t* stat_bytes{nullptr};     // into stats_.bytes_by_type
    std::uint64_t* stat_rejected{nullptr};  // into stats_.rejected_by_type
    obs::Counter* msgs{nullptr};
    obs::Counter* bytes{nullptr};
    obs::Counter* rejected{nullptr};
    /// Profiler site "net.deliver.<TYPE>" — per-event-type wall-clock
    /// attribution, resolved once per type like the counters above.
    obs::Profiler::SiteId deliver_site{obs::Profiler::kNoSite};
  };
  struct NodeHandles {
    NodeTraffic* traffic{nullptr};  // into stats_.per_node
    obs::Counter* msgs_sent{nullptr};
    obs::Counter* bytes_sent{nullptr};
    obs::Counter* msgs_received{nullptr};
    obs::Counter* bytes_received{nullptr};
  };
  [[nodiscard]] TypeHandles& type_handles(MessageType type);
  [[nodiscard]] NodeHandles& node_handles(NodeId id);
  void resolve_node_telemetry(NodeHandles& handles, NodeId id);

  /// A message past its arrival instant, waiting on the receiver's serial
  /// processor. Normally FIFO per receiver: done instants are non-decreasing
  /// in arrival order (each is max(arrival, previous done) + processing) and
  /// the simulator breaks timestamp ties in scheduling order, so the
  /// done-event for the front fires first. A recover()/attach() busy-until
  /// reset can break the monotone order (a post-reboot message finishes
  /// before pre-crash stragglers), so each entry records its done instant
  /// and process_next() pops the first entry due now.
  struct PendingDelivery {
    Envelope envelope;
    std::size_t size{0};
    TimePoint done;
  };

  Simulator& sim_;
  NetConfig config_;
  Rng fault_rng_;   // dedicated stream for every fault decision
  Rng tamper_rng_;  // dedicated stream for every tamper decision
  std::unordered_map<NodeId, INetNode*> nodes_;
  std::unordered_map<NodeId, TimePoint> busy_until_;
  std::unordered_map<NodeId, std::deque<PendingDelivery>> inbox_;
  std::unordered_map<NodeId, double> rate_overrides_;
  std::unordered_map<NodeId, double> brownouts_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_map<NodeId, int> partition_group_;
  bool partitioned_{false};
  std::set<std::pair<std::uint64_t, std::uint64_t>> blocked_links_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, LinkFault> link_faults_;
  std::optional<TamperRule> tamper_;
  OrderedRunner* runner_{nullptr};
  MacPlaneHook mac_hook_;
  /// Genuine envelopes seen while a rule with a replay family was active;
  /// the replay mutation re-delivers one of these verbatim. Bounded by
  /// TamperRule::replay_history; payloads are refcount bumps, not copies.
  std::deque<Envelope> replay_log_;
  NetStats stats_;

  obs::Telemetry* telemetry_{&obs::Telemetry::noop()};
  obs::Counter* tel_dropped_{nullptr};
  obs::Counter* tel_duplicated_{nullptr};
  obs::Counter* tel_tampered_{nullptr};
  obs::Counter* tel_rejected_{nullptr};
  obs::Histogram* tel_recv_stall_{nullptr};
  std::vector<TypeHandles> type_handles_;  // dense, indexed by MessageType
  std::unordered_map<std::uint64_t, NodeHandles> node_handles_;
};

}  // namespace gpbft::net
