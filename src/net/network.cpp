#include "net/network.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpbft::net {

Network::Network(Simulator& sim, NetConfig config)
    : sim_(sim), config_(config), fault_rng_(sim.rng().fork(0x6661756c74ull /* "fault" */)) {}

void Network::set_telemetry(obs::Telemetry& telemetry) {
  telemetry_ = &telemetry;
  // Cached handles point into the previous telemetry's registry.
  tel_dropped_ = nullptr;
  tel_duplicated_ = nullptr;
  tel_recv_stall_ = nullptr;
  type_telemetry_.clear();
  node_telemetry_.clear();
}

Network::TypeTelemetry& Network::type_telemetry(MessageType type) {
  auto [it, inserted] = type_telemetry_.try_emplace(type);
  if (inserted) {
    obs::Registry& reg = telemetry_->metrics();
    const std::string name = telemetry_->message_name(type);
    it->second.msgs = &reg.counter("net.msgs." + name);
    it->second.bytes = &reg.counter("net.bytes." + name);
  }
  return it->second;
}

Network::NodeTelemetry& Network::node_telemetry(NodeId id) {
  auto [it, inserted] = node_telemetry_.try_emplace(id.value);
  if (inserted) {
    obs::Registry& reg = telemetry_->metrics();
    it->second.msgs_sent = &reg.counter("net.msgs_sent", id);
    it->second.bytes_sent = &reg.counter("net.bytes_sent", id);
    it->second.msgs_received = &reg.counter("net.msgs_received", id);
    it->second.bytes_received = &reg.counter("net.bytes_received", id);
  }
  return it->second;
}

void Network::attach(INetNode* node) {
  nodes_[node->id()] = node;
  busy_until_.emplace(node->id(), sim_.now());
}

void Network::detach(NodeId id) {
  nodes_.erase(id);
  busy_until_.erase(id);
}

bool Network::partitioned_apart(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  const auto group_of = [this](NodeId id) {
    const auto it = partition_group_.find(id);
    return it == partition_group_.end() ? 0 : it->second;
  };
  return group_of(a) != group_of(b);
}

void Network::send(Envelope envelope) {
  const std::size_t size = envelope.wire_size();

  // Sender-side accounting: bytes leave the NIC regardless of what happens
  // to them downstream. A crashed sender sends nothing.
  if (crashed_.contains(envelope.from)) return;

  stats_.total_messages += 1;
  stats_.total_bytes += size;
  stats_.bytes_by_type[envelope.type] += size;
  stats_.per_node[envelope.from].messages_sent += 1;
  stats_.per_node[envelope.from].bytes_sent += size;
  if (telemetry_->enabled()) {
    TypeTelemetry& by_type = type_telemetry(envelope.type);
    by_type.msgs->add();
    by_type.bytes->add(size);
    NodeTelemetry& sender = node_telemetry(envelope.from);
    sender.msgs_sent->add();
    sender.bytes_sent->add(size);
  }

  // Fault decisions are drawn before (and regardless of) the blocked and
  // partition checks, all from the dedicated fault stream: toggling any
  // fault knob never changes which draws the main stream sees, so faulty
  // and clean runs remain comparable seed-for-seed.
  const LinkFault* fault = link_fault(envelope.from, envelope.to);
  const bool dropped = fault_rng_.chance(config_.drop_rate) ||
                       (fault != nullptr && fault_rng_.chance(fault->loss));
  const bool duplicated = fault != nullptr && fault_rng_.chance(fault->duplicate);
  const auto reorder_delay = [this, fault]() {
    return fault != nullptr && fault->reorder_window.ns > 0
               ? Duration{static_cast<std::int64_t>(fault_rng_.uniform(
                     0, static_cast<std::uint64_t>(fault->reorder_window.ns)))}
               : Duration{0};
  };
  const Duration first_reorder = reorder_delay();

  const bool blocked = blocked_links_.contains({envelope.from.value, envelope.to.value});
  if (blocked || partitioned_apart(envelope.from, envelope.to) || dropped) {
    stats_.dropped_messages += 1;
    if (telemetry_->enabled()) {
      if (tel_dropped_ == nullptr) tel_dropped_ = &telemetry_->metrics().counter("net.msgs_dropped");
      tel_dropped_->add();
    }
    return;
  }

  const Duration jitter =
      config_.jitter.ns > 0
          ? Duration{static_cast<std::int64_t>(
                sim_.rng().uniform(0, static_cast<std::uint64_t>(config_.jitter.ns)))}
          : Duration{0};
  const Duration transmission =
      Duration::from_seconds(static_cast<double>(size) / config_.bandwidth_bytes_per_sec);
  const Duration extra = fault != nullptr ? fault->extra_latency : Duration{0};
  const TimePoint departure = sim_.now() + config_.base_latency + extra + transmission;

  if (duplicated) {
    stats_.duplicated_messages += 1;
    if (telemetry_->enabled()) {
      if (tel_duplicated_ == nullptr) {
        tel_duplicated_ = &telemetry_->metrics().counter("net.msgs_duplicated");
      }
      tel_duplicated_->add();
    }
    // The ghost copy takes its own path through the reorder window; its
    // jitter comes from the fault stream (it only exists because of the
    // fault rule).
    const Duration ghost_jitter =
        config_.jitter.ns > 0
            ? Duration{static_cast<std::int64_t>(
                  fault_rng_.uniform(0, static_cast<std::uint64_t>(config_.jitter.ns)))}
            : Duration{0};
    schedule_delivery(departure + ghost_jitter + reorder_delay(), envelope, size);
  }
  schedule_delivery(departure + jitter + first_reorder, std::move(envelope), size);
}

void Network::schedule_delivery(TimePoint arrival, const Envelope& envelope, std::size_t size) {
  sim_.schedule_at(arrival, [this, envelope, size]() mutable {
    const auto it = nodes_.find(envelope.to);
    if (it == nodes_.end() || crashed_.contains(envelope.to)) {
      stats_.dropped_messages += 1;
      return;
    }

    // Receiver-side queueing: the node is a serial processor handling
    // messages at its rate (the paper's `s`, §IV-B; per-node overrides for
    // heterogeneous fleets, brownouts for time-varying degradation).
    const Duration processing = Duration::from_seconds(
        1.0 / processing_rate_of(envelope.to) +
        static_cast<double>(size) * config_.processing_secs_per_byte);
    TimePoint& busy = busy_until_[envelope.to];
    const TimePoint start = std::max(sim_.now(), busy);
    const TimePoint done = start + processing;
    busy = done;

    // The receiver-stall histogram is the queueing-delay signal behind the
    // superlinear PBFT curves: time a message waits for the serial
    // processor beyond its arrival instant.
    if (telemetry_->enabled()) {
      if (tel_recv_stall_ == nullptr) {
        tel_recv_stall_ = &telemetry_->metrics().histogram("net.recv_stall_seconds");
      }
      tel_recv_stall_->observe((start - sim_.now()).to_seconds());
    }

    sim_.schedule_at(done, [this, envelope = std::move(envelope), size]() {
      const auto node_it = nodes_.find(envelope.to);
      if (node_it == nodes_.end() || crashed_.contains(envelope.to)) {
        stats_.dropped_messages += 1;
        return;
      }
      stats_.per_node[envelope.to].messages_received += 1;
      stats_.per_node[envelope.to].bytes_received += size;
      if (telemetry_->enabled()) {
        NodeTelemetry& receiver = node_telemetry(envelope.to);
        receiver.msgs_received->add();
        receiver.bytes_received->add(size);
      }
      node_it->second->handle(envelope);
    });
  });
}

void Network::recover(NodeId id) {
  crashed_.erase(id);
  // Reboot semantics: whatever was queued on the node when it died is gone;
  // it must not resume with a pre-crash processing backlog.
  const auto it = busy_until_.find(id);
  if (it != busy_until_.end()) it->second = sim_.now();
}

void Network::broadcast(NodeId from, const std::vector<NodeId>& destinations, MessageType type,
                        const Bytes& payload) {
  for (NodeId to : destinations) {
    if (to == from) continue;
    send(Envelope{from, to, type, payload});
  }
}

void Network::set_processing_rate(NodeId id, double msgs_per_sec) {
  if (msgs_per_sec <= 0) {
    rate_overrides_.erase(id);
  } else {
    rate_overrides_[id] = msgs_per_sec;
  }
}

double Network::processing_rate_of(NodeId id) const {
  const auto it = rate_overrides_.find(id);
  const double rate =
      it == rate_overrides_.end() ? config_.processing_rate_msgs_per_sec : it->second;
  return rate / brownout_of(id);
}

void Network::set_brownout(NodeId id, double factor) {
  if (factor <= 1.0) {
    brownouts_.erase(id);
  } else {
    brownouts_[id] = factor;
  }
}

double Network::brownout_of(NodeId id) const {
  const auto it = brownouts_.find(id);
  return it == brownouts_.end() ? 1.0 : it->second;
}

void Network::partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_group_.clear();
  int group_index = 0;
  for (const auto& group : groups) {
    for (NodeId id : group) partition_group_[id] = group_index;
    ++group_index;
  }
  partitioned_ = true;
}

void Network::heal_partition() {
  partition_group_.clear();
  partitioned_ = false;
}

void Network::block_link(NodeId from, NodeId to) {
  blocked_links_.insert({from.value, to.value});
}

void Network::unblock_link(NodeId from, NodeId to) {
  blocked_links_.erase({from.value, to.value});
}

void Network::set_link_fault(NodeId from, NodeId to, const LinkFault& fault) {
  link_faults_[{from.value, to.value}] = fault;
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  link_faults_.erase({from.value, to.value});
}

void Network::clear_link_faults() { link_faults_.clear(); }

const LinkFault* Network::link_fault(NodeId from, NodeId to) const {
  const auto it = link_faults_.find({from.value, to.value});
  return it == link_faults_.end() ? nullptr : &it->second;
}

}  // namespace gpbft::net
