#include "net/network.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "net/workers.hpp"

namespace gpbft::net {

Network::Network(Simulator& sim, NetConfig config)
    : sim_(sim),
      config_(config),
      fault_rng_(sim.rng().fork(0x6661756c74ull /* "fault" */)),
      tamper_rng_(sim.rng().fork(0x74616d706572ull /* "tamper" */)) {}

void Network::set_telemetry(obs::Telemetry& telemetry) {
  telemetry_ = &telemetry;
  // Cached handles point into the previous telemetry's registry.
  tel_dropped_ = nullptr;
  tel_duplicated_ = nullptr;
  tel_tampered_ = nullptr;
  tel_rejected_ = nullptr;
  tel_recv_stall_ = nullptr;
  type_handles_.clear();
  node_handles_.clear();
}

void Network::reset_stats() {
  stats_.reset();
  // The stat pointers in the handle caches aimed into the maps the reset
  // just destroyed; the telemetry rows survive but re-resolve cheaply.
  type_handles_.clear();
  node_handles_.clear();
}

Network::TypeHandles& Network::type_handles(MessageType type) {
  // Message types are small consecutive constants (pbft::msg_type, PoW and
  // dBFT gossip kinds), so a dense vector replaces the ordered-map lookup
  // the old per-send accounting paid twice per message.
  if (type >= type_handles_.size()) type_handles_.resize(static_cast<std::size_t>(type) + 1);
  TypeHandles& handles = type_handles_[type];
  if (handles.stat_bytes == nullptr) handles.stat_bytes = &stats_.bytes_by_type[type];
  return handles;
}

Network::NodeHandles& Network::node_handles(NodeId id) {
  NodeHandles& handles = node_handles_[id.value];
  if (handles.traffic == nullptr) handles.traffic = &stats_.per_node[id];
  return handles;
}

void Network::resolve_node_telemetry(NodeHandles& handles, NodeId id) {
  obs::Registry& reg = telemetry_->metrics();
  handles.msgs_sent = &reg.counter("net.msgs_sent", id);
  handles.bytes_sent = &reg.counter("net.bytes_sent", id);
  handles.msgs_received = &reg.counter("net.msgs_received", id);
  handles.bytes_received = &reg.counter("net.bytes_received", id);
}

void Network::attach(INetNode* node) {
  nodes_[node->id()] = node;
  // Unconditional: an id that was crashed/detached mid-queue and re-attached
  // (Deployment::restart_node) starts idle — reboot wipes the backlog.
  busy_until_[node->id()] = sim_.now();
}

void Network::detach(NodeId id) {
  nodes_.erase(id);
  busy_until_.erase(id);
  rate_overrides_.erase(id);
  brownouts_.erase(id);
}

bool Network::partitioned_apart(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  const auto group_of = [this](NodeId id) {
    const auto it = partition_group_.find(id);
    return it == partition_group_.end() ? 0 : it->second;
  };
  return group_of(a) != group_of(b);
}

void Network::note_dropped() {
  stats_.dropped_messages += 1;
  if (telemetry_->enabled()) {
    if (tel_dropped_ == nullptr) tel_dropped_ = &telemetry_->metrics().counter("net.msgs_dropped");
    tel_dropped_->add();
  }
}

void Network::note_rejected(MessageType type) {
  stats_.rejected_messages += 1;
  TypeHandles& by_type = type_handles(type);
  if (by_type.stat_rejected == nullptr) by_type.stat_rejected = &stats_.rejected_by_type[type];
  *by_type.stat_rejected += 1;
  if (telemetry_->enabled()) {
    if (tel_rejected_ == nullptr) {
      tel_rejected_ = &telemetry_->metrics().counter("net.msgs_rejected");
    }
    tel_rejected_->add();
    if (by_type.rejected == nullptr) {
      by_type.rejected = &telemetry_->metrics().counter("net.msgs_rejected." +
                                                        telemetry_->message_name(type));
    }
    by_type.rejected->add();
  }
}

void Network::note_tampered() {
  stats_.tampered_messages += 1;
  if (telemetry_->enabled()) {
    if (tel_tampered_ == nullptr) {
      tel_tampered_ = &telemetry_->metrics().counter("net.msgs_tampered");
    }
    tel_tampered_->add();
  }
}

void Network::set_mac_plane(OrderedRunner& runner, MacPlaneHook hook) {
  runner_ = &runner;
  mac_hook_ = std::move(hook);
}

void Network::set_tamper(const TamperRule& rule) {
  tamper_ = rule;
  // A new adversary starts with an empty capture window.
  replay_log_.clear();
}

void Network::clear_tamper() {
  tamper_.reset();
  replay_log_.clear();
}

Envelope Network::mutate_envelope(const Envelope& original, const TamperRule& rule, int family) {
  Envelope mutant = original;  // payload is a refcount bump until replaced
  switch (family) {
    case 0: {  // bit flips
      Bytes bytes(original.payload.begin(), original.payload.end());
      if (bytes.empty()) {
        // Nothing to flip in the body; corrupt the header type bit instead.
        mutant.type = static_cast<MessageType>(mutant.type ^ 0x1u);
        break;
      }
      const std::uint64_t max_flips = rule.max_flips > 0 ? rule.max_flips : 1;
      const std::uint64_t flips = tamper_rng_.uniform(1, max_flips);
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t bit = tamper_rng_.uniform(0, bytes.size() * 8 - 1);
        bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      mutant.payload = std::move(bytes);
      break;
    }
    case 1: {  // truncation (always drops at least one byte)
      const std::size_t len = original.payload.size();
      const std::size_t keep =
          len == 0 ? 0 : static_cast<std::size_t>(tamper_rng_.uniform(0, len - 1));
      mutant.payload = Bytes(original.payload.begin(),
                             original.payload.begin() + static_cast<std::ptrdiff_t>(keep));
      break;
    }
    case 2: {  // extension: garbage appended past the genuine body
      Bytes bytes(original.payload.begin(), original.payload.end());
      const std::uint64_t max_extend = rule.max_extend > 0 ? rule.max_extend : 1;
      const std::uint64_t extra = tamper_rng_.uniform(1, max_extend);
      for (std::uint64_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(tamper_rng_.uniform(0, 255)));
      }
      mutant.payload = std::move(bytes);
      break;
    }
    case 3: {  // type confusion: genuine bytes under a different type
      // Sparing is bidirectional: a spared type is neither mutated nor
      // forged as a retype target (e.g. PoW campaigns spare client requests
      // because nothing end-to-end authenticates them). Bounded draw count
      // so a rule sparing every type cannot spin forever.
      MessageType retyped = original.type;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto candidate = static_cast<MessageType>(tamper_rng_.uniform(0, 31));
        if (candidate == original.type) continue;
        if (std::find(rule.spare_types.begin(), rule.spare_types.end(), candidate) !=
            rule.spare_types.end()) {
          continue;
        }
        retyped = candidate;
        break;
      }
      mutant.type = retyped;
      break;
    }
    default: {  // oversize: a declared length far beyond the actual buffer
      // A length-prefix of ~2^34 followed by a few real bytes: the attack
      // targets decoders that allocate from declared sizes before checking
      // what is actually on the wire (serde's remaining-bytes clamp).
      Bytes bytes{0xff, 0xff, 0xff, 0xff, 0x3f};
      const std::uint64_t tail = tamper_rng_.uniform(0, 32);
      for (std::uint64_t i = 0; i < tail; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(tamper_rng_.uniform(0, 255)));
      }
      mutant.payload = std::move(bytes);
      break;
    }
  }
  return mutant;
}

void Network::apply_tamper(Envelope& envelope, std::size_t& size) {
  const TamperRule& rule = *tamper_;
  // Record genuine traffic for the replay family before any mutation; the
  // log holds refcounted payloads, bounded by the rule's history window.
  if (rule.replay > 0.0 && rule.replay_history > 0) {
    replay_log_.push_back(envelope);
    while (replay_log_.size() > rule.replay_history) replay_log_.pop_front();
  }
  if (!tamper_rng_.chance(rule.chance)) return;

  const double weights[6] = {rule.bitflip, rule.truncate, rule.extend,
                             rule.retype,  rule.oversize, rule.replay};
  double total = 0.0;
  for (const double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return;
  double pick = tamper_rng_.uniform_real(0.0, total);
  int family = 0;
  while (family < 5) {
    pick -= std::max(0.0, weights[family]);
    if (pick < 0.0) break;
    ++family;
  }
  if (family == 5 && replay_log_.empty()) family = 0;  // no history yet

  note_tampered();
  const Duration ghost_jitter =
      config_.jitter.ns > 0
          ? Duration{static_cast<std::int64_t>(
                tamper_rng_.uniform(0, static_cast<std::uint64_t>(config_.jitter.ns)))}
          : Duration{0};

  if (family == 5) {
    // Replay a genuine old envelope verbatim, after an adversary-chosen
    // delay — stale views, closed instances, previous eras.
    stats_.replayed_messages += 1;
    const auto index =
        static_cast<std::size_t>(tamper_rng_.uniform(0, replay_log_.size() - 1));
    Envelope replayed = replay_log_[index];
    const Duration delay =
        rule.replay_delay_max.ns > 0
            ? Duration{static_cast<std::int64_t>(
                  tamper_rng_.uniform(0, static_cast<std::uint64_t>(rule.replay_delay_max.ns)))}
            : Duration{0};
    if (rule.mode == TamperRule::Mode::Replace) {
      envelope = std::move(replayed);
      size = envelope.wire_size();
      return;  // the replay takes the original's place on the wire
    }
    const std::size_t ghost_size = replayed.wire_size();
    const Duration transmission = Duration::from_seconds(static_cast<double>(ghost_size) /
                                                         config_.bandwidth_bytes_per_sec);
    const TimePoint arrival =
        sim_.now() + config_.base_latency + transmission + ghost_jitter + delay;
    sim_.schedule_at(arrival, [this, replayed = std::move(replayed), ghost_size]() mutable {
      deliver_injected(std::move(replayed), ghost_size);
    });
    return;
  }

  Envelope mutant = mutate_envelope(envelope, rule, family);
  if (rule.mode == TamperRule::Mode::Replace) {
    envelope = std::move(mutant);
    size = envelope.wire_size();  // the mutant's bytes ride the wire now
    return;
  }
  // Man-on-the-side: the genuine envelope continues untouched; the mutant
  // arrives as an extra edge injection with tamper-stream jitter only, so
  // the main stream sees exactly the draws of a clean run and the serial
  // receive queue carries exactly the clean run's load.
  const std::size_t ghost_size = mutant.wire_size();
  const Duration transmission =
      Duration::from_seconds(static_cast<double>(ghost_size) / config_.bandwidth_bytes_per_sec);
  const TimePoint arrival = sim_.now() + config_.base_latency + transmission + ghost_jitter;
  sim_.schedule_at(arrival, [this, mutant = std::move(mutant), ghost_size]() mutable {
    deliver_injected(std::move(mutant), ghost_size);
  });
}

void Network::deliver_injected(Envelope envelope, std::size_t size) {
  const NodeId to = envelope.to;
  const auto node_it = nodes_.find(to);
  if (node_it == nodes_.end() || crashed_.contains(to)) {
    note_dropped();
    return;
  }
  NodeHandles& receiver = node_handles(to);
  receiver.traffic->messages_received += 1;
  receiver.traffic->bytes_received += size;
  if (telemetry_->enabled()) {
    if (receiver.msgs_received == nullptr) resolve_node_telemetry(receiver, to);
    receiver.msgs_received->add();
    receiver.bytes_received->add(size);
  }
#ifndef GPBFT_PROF_DISABLED
  TypeHandles& by_type = type_handles(envelope.type);
  if (by_type.deliver_site == obs::Profiler::kNoSite) {
    by_type.deliver_site = obs::Profiler::instance().register_site(
        "net.deliver." + telemetry_->message_name(envelope.type));
  }
  obs::ScopedProbe deliver_probe(by_type.deliver_site);
#endif
  node_it->second->handle(envelope);
}

void Network::send(Envelope envelope) {
  GPBFT_PROFILE_SCOPE("net.send");
  std::size_t size = envelope.wire_size();

  // Sender-side accounting: bytes leave the NIC regardless of what happens
  // to them downstream. A crashed sender sends nothing.
  if (crashed_.contains(envelope.from)) return;

  stats_.total_messages += 1;
  stats_.total_bytes += size;
  TypeHandles& by_type = type_handles(envelope.type);
  *by_type.stat_bytes += size;
  NodeHandles& sender = node_handles(envelope.from);
  sender.traffic->messages_sent += 1;
  sender.traffic->bytes_sent += size;
  if (telemetry_->enabled()) {
    if (by_type.msgs == nullptr) {
      obs::Registry& reg = telemetry_->metrics();
      const std::string name = telemetry_->message_name(envelope.type);
      by_type.msgs = &reg.counter("net.msgs." + name);
      by_type.bytes = &reg.counter("net.bytes." + name);
    }
    by_type.msgs->add();
    by_type.bytes->add(size);
    if (sender.msgs_sent == nullptr) resolve_node_telemetry(sender, envelope.from);
    sender.msgs_sent->add();
    sender.bytes_sent->add(size);
  }

  // Fault decisions are drawn before (and regardless of) the blocked and
  // partition checks, all from the dedicated fault stream: toggling any
  // fault knob never changes which draws the main stream sees, so faulty
  // and clean runs remain comparable seed-for-seed.
  const LinkFault* fault = link_fault(envelope.from, envelope.to);
  const bool dropped = fault_rng_.chance(config_.drop_rate) ||
                       (fault != nullptr && fault_rng_.chance(fault->loss));
  const bool duplicated = fault != nullptr && fault_rng_.chance(fault->duplicate);
  const auto reorder_delay = [this, fault]() {
    return fault != nullptr && fault->reorder_window.ns > 0
               ? Duration{static_cast<std::int64_t>(fault_rng_.uniform(
                     0, static_cast<std::uint64_t>(fault->reorder_window.ns)))}
               : Duration{0};
  };
  const Duration first_reorder = reorder_delay();

  const bool blocked = blocked_links_.contains({envelope.from.value, envelope.to.value});
  if (blocked || partitioned_apart(envelope.from, envelope.to) || dropped) {
    note_dropped();
    return;
  }

  // Wire tampering happens after the transport faults (an adversary can
  // only touch bytes that made it onto the wire) and draws exclusively
  // from the tamper stream: with no rule installed this is one branch and
  // zero draws, so the feature is hash-neutral when off.
  if (tamper_.has_value() && tamper_->chance > 0.0 &&
      std::find(tamper_->spare_types.begin(), tamper_->spare_types.end(), envelope.type) ==
          tamper_->spare_types.end()) {
    apply_tamper(envelope, size);
  }

  const Duration jitter =
      config_.jitter.ns > 0
          ? Duration{static_cast<std::int64_t>(
                sim_.rng().uniform(0, static_cast<std::uint64_t>(config_.jitter.ns)))}
          : Duration{0};
  const Duration transmission =
      Duration::from_seconds(static_cast<double>(size) / config_.bandwidth_bytes_per_sec);
  const Duration extra = fault != nullptr ? fault->extra_latency : Duration{0};
  const TimePoint departure = sim_.now() + config_.base_latency + extra + transmission;

  if (duplicated) {
    stats_.duplicated_messages += 1;
    if (telemetry_->enabled()) {
      if (tel_duplicated_ == nullptr) {
        tel_duplicated_ = &telemetry_->metrics().counter("net.msgs_duplicated");
      }
      tel_duplicated_->add();
    }
    // The ghost copy takes its own path through the reorder window; its
    // jitter comes from the fault stream (it only exists because of the
    // fault rule). It shares the payload buffer with the original.
    const Duration ghost_jitter =
        config_.jitter.ns > 0
            ? Duration{static_cast<std::int64_t>(
                  fault_rng_.uniform(0, static_cast<std::uint64_t>(config_.jitter.ns)))}
            : Duration{0};
    schedule_delivery(departure + ghost_jitter + reorder_delay(), envelope, size);
  }
  schedule_delivery(departure + jitter + first_reorder, std::move(envelope), size);
}

void Network::schedule_delivery(TimePoint arrival, Envelope envelope, std::size_t size) {
  // One scheduled event per delivery carries the envelope (the payload is a
  // refcount bump, not a copy). The processing-done event it chains to
  // captures only (this, receiver) — 16 bytes, inside std::function's
  // small-buffer storage — so the second hop costs no allocation and no
  // copy. See docs/performance.md for why the two-instant structure itself
  // is load-bearing: arrival-time crash sampling and the serial-queue fold
  // must happen at the arrival instant to keep seeded runs byte-identical.
  sim_.schedule_at(arrival, [this, envelope = std::move(envelope), size]() mutable {
    on_arrival(std::move(envelope), size);
  });
}

void Network::on_arrival(Envelope envelope, std::size_t size) {
  GPBFT_PROFILE_SCOPE("net.arrival");
  const NodeId to = envelope.to;
  if (!nodes_.contains(to) || crashed_.contains(to)) {
    note_dropped();
    return;
  }

  // Receiver-side queueing: the node is a serial processor handling
  // messages at its rate (the paper's `s`, §IV-B; per-node overrides for
  // heterogeneous fleets, brownouts for time-varying degradation).
  const Duration processing =
      Duration::from_seconds(1.0 / processing_rate_of(to) +
                             static_cast<double>(size) * config_.processing_secs_per_byte);
  TimePoint& busy = busy_until_[to];
  const TimePoint start = std::max(sim_.now(), busy);
  const TimePoint done = start + processing;
  busy = done;

  // The receiver-stall histogram is the queueing-delay signal behind the
  // superlinear PBFT curves: time a message waits for the serial
  // processor beyond its arrival instant.
  if (telemetry_->enabled()) {
    if (tel_recv_stall_ == nullptr) {
      tel_recv_stall_ = &telemetry_->metrics().histogram("net.recv_stall_seconds");
    }
    tel_recv_stall_->observe((start - sim_.now()).to_seconds());
  }

  // Parallel MAC plane: the open/verify work for this envelope starts now,
  // on a worker, and is joined at the processing-done instant — the
  // message's queueing delay becomes compute overlap. Simulated time,
  // accounting and RNG draws are identical either way (the job computes a
  // pure function of key material and payload bytes).
  if (mac_hook_) mac_hook_(envelope);

  inbox_[to].push_back(PendingDelivery{std::move(envelope), size, done});
  sim_.schedule_at(done, [this, to]() { process_next(to); });
}

void Network::process_next(NodeId to) {
  // Exactly one done-event per inbox entry, firing precisely at that
  // entry's done instant; ties fire in enqueue order. The front matches
  // unless a reboot reset the busy horizon under pending stragglers (see
  // PendingDelivery) — then this event's message sits behind entries that
  // are still processing, so scan for the first entry due now.
  auto& queue = inbox_[to];
  auto entry = queue.begin();
  while (entry->done != sim_.now()) ++entry;
  const PendingDelivery pending = std::move(*entry);
  queue.erase(entry);

  const auto node_it = nodes_.find(to);
  if (node_it == nodes_.end() || crashed_.contains(to)) {
    // The receiver died (or was torn down) between arrival and the end of
    // processing: the message is lost with it.
    note_dropped();
    return;
  }
  NodeHandles& receiver = node_handles(to);
  receiver.traffic->messages_received += 1;
  receiver.traffic->bytes_received += pending.size;
  if (telemetry_->enabled()) {
    if (receiver.msgs_received == nullptr) resolve_node_telemetry(receiver, to);
    receiver.msgs_received->add();
    receiver.bytes_received->add(pending.size);
  }
  // Join the parallel plane: ordered release up to this envelope's ticket
  // publishes its open verdict (and any earlier ones) on this thread.
  if (pending.envelope.open_job != nullptr && runner_ != nullptr) {
    runner_->release_until(pending.envelope.open_job->ticket);
  }
#ifndef GPBFT_PROF_DISABLED
  // Per-event-type attribution: the whole handler invocation is accounted
  // to one "net.deliver.<TYPE>" site, resolved once per message type.
  TypeHandles& by_type = type_handles(pending.envelope.type);
  if (by_type.deliver_site == obs::Profiler::kNoSite) {
    by_type.deliver_site = obs::Profiler::instance().register_site(
        "net.deliver." + telemetry_->message_name(pending.envelope.type));
  }
  obs::ScopedProbe deliver_probe(by_type.deliver_site);
#endif
  node_it->second->handle(pending.envelope);
}

void Network::recover(NodeId id) {
  crashed_.erase(id);
  // Reboot semantics: whatever was queued on the node when it died is gone;
  // it must not resume with a pre-crash processing backlog.
  const auto it = busy_until_.find(id);
  if (it != busy_until_.end()) it->second = sim_.now();
}

void Network::broadcast(NodeId from, const std::vector<NodeId>& destinations, MessageType type,
                        Payload payload) {
  for (NodeId to : destinations) {
    if (to == from) continue;
    send(Envelope{from, to, type, payload});
  }
}

void Network::set_processing_rate(NodeId id, double msgs_per_sec) {
  if (msgs_per_sec <= 0) {
    rate_overrides_.erase(id);
  } else {
    rate_overrides_[id] = msgs_per_sec;
  }
}

double Network::processing_rate_of(NodeId id) const {
  const auto it = rate_overrides_.find(id);
  const double rate =
      it == rate_overrides_.end() ? config_.processing_rate_msgs_per_sec : it->second;
  return rate / brownout_of(id);
}

void Network::set_brownout(NodeId id, double factor) {
  if (factor <= 1.0) {
    brownouts_.erase(id);
  } else {
    brownouts_[id] = factor;
  }
}

double Network::brownout_of(NodeId id) const {
  const auto it = brownouts_.find(id);
  return it == brownouts_.end() ? 1.0 : it->second;
}

void Network::partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_group_.clear();
  int group_index = 0;
  for (const auto& group : groups) {
    for (NodeId id : group) partition_group_[id] = group_index;
    ++group_index;
  }
  partitioned_ = true;
}

void Network::heal_partition() {
  partition_group_.clear();
  partitioned_ = false;
}

void Network::block_link(NodeId from, NodeId to) {
  blocked_links_.insert({from.value, to.value});
}

void Network::unblock_link(NodeId from, NodeId to) {
  blocked_links_.erase({from.value, to.value});
}

void Network::set_link_fault(NodeId from, NodeId to, const LinkFault& fault) {
  link_faults_[{from.value, to.value}] = fault;
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  link_faults_.erase({from.value, to.value});
}

void Network::clear_link_faults() { link_faults_.clear(); }

const LinkFault* Network::link_fault(NodeId from, NodeId to) const {
  const auto it = link_faults_.find({from.value, to.value});
  return it == link_faults_.end() ? nullptr : &it->second;
}

}  // namespace gpbft::net
