#include "net/simulator.hpp"

#include "common/logging.hpp"
#include "obs/profiler.hpp"

namespace gpbft::net {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay.ns < 0) delay = Duration{0};
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handle must be copied out before pop.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  Logger::instance().set_sim_time_seconds(now_.to_seconds());
  ++events_processed_;
  {
    GPBFT_PROFILE_SCOPE("sim.event");
    event.fn();
  }
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && step()) ++fired;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
  Logger::instance().set_sim_time_seconds(now_.to_seconds());
}

}  // namespace gpbft::net
