// Wire envelope delivered between simulated nodes.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace gpbft::net {

/// Protocol-level message kind; interpreted by the receiving node. Kept in
/// the envelope (not the payload) so the network layer can account traffic
/// per message class.
using MessageType = std::uint16_t;

struct Envelope {
  NodeId from;
  NodeId to;
  MessageType type{0};
  Bytes payload;

  /// Size on the wire: payload plus a fixed transport header (addresses,
  /// type, length, checksum — 32 bytes, a realistic UDP-framing overhead).
  [[nodiscard]] std::size_t wire_size() const { return payload.size() + kHeaderBytes; }

  static constexpr std::size_t kHeaderBytes = 32;
};

}  // namespace gpbft::net
