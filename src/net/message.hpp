// Wire envelope delivered between simulated nodes.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace gpbft::net {

/// Protocol-level message kind; interpreted by the receiving node. Kept in
/// the envelope (not the payload) so the network layer can account traffic
/// per message class.
using MessageType = std::uint16_t;

/// Refcounted immutable payload buffer, optionally lazily materialized.
///
/// Broadcast fan-out used to deep-copy the payload once per destination and
/// twice more inside the delivery events; at 202 nodes that memcpy bound
/// the simulator (docs/performance.md). A Payload shares one immutable
/// Bytes buffer instead: copying an envelope bumps a refcount. The buffer
/// is never mutated after construction — senders build the bytes first and
/// hand them over, receivers only read — so sharing is safe by constraint,
/// not by locking.
///
/// The deferred constructor takes an exact size plus a compute closure and
/// materializes the bytes on first access. This is how per-receiver MAC
/// sealing rides the parallel plane: the sender pays nothing at send time
/// (wire size is computable without the tag), and the seal is computed by
/// whichever thread first needs the bytes — normally the worker running the
/// receiver's verify prologue, so seal and verify both land off the
/// simulation thread. The claim-or-compute-inline protocol makes joining
/// deadlock-free: a thread needing the bytes either computes them itself
/// (cell unclaimed) or spin-waits on the one thread actively computing —
/// never on queued work.
///
/// Reads go through the same surface Bytes offered (data/size/empty/
/// operator[]/iterators), so handler code is unchanged; to replace the
/// content, assign a freshly built Bytes.
class Payload {
 public:
  Payload() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Bytes is the natural
  // literal at every send site; conversion is the API.
  Payload(Bytes bytes) : cell_(std::make_shared<Cell>(std::move(bytes))) {}
  Payload& operator=(Bytes bytes) {
    cell_ = std::make_shared<Cell>(std::move(bytes));
    return *this;
  }
  /// Deferred payload: `size` must equal the byte count `compute` returns
  /// (asserted); size()/wire accounting never force the computation.
  Payload(std::size_t size, std::function<Bytes()> compute)
      : cell_(std::make_shared<Cell>(size, std::move(compute))) {}

  [[nodiscard]] const Bytes& bytes() const { return cell_ ? cell_->get() : empty_bytes(); }
  /// Size without materializing (exact by construction).
  [[nodiscard]] std::size_t size() const { return cell_ ? cell_->size : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const { return bytes().data(); }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const { return bytes()[i]; }
  [[nodiscard]] Bytes::const_iterator begin() const { return bytes().begin(); }
  [[nodiscard]] Bytes::const_iterator end() const { return bytes().end(); }
  [[nodiscard]] BytesView view() const { return BytesView(data(), size()); }

  friend bool operator==(const Payload& a, const Payload& b) { return a.bytes() == b.bytes(); }
  friend bool operator==(const Payload& a, const Bytes& b) { return a.bytes() == b; }

 private:
  struct Cell {
    static constexpr int kEmpty = 0;
    static constexpr int kComputing = 1;
    static constexpr int kReady = 2;

    explicit Cell(Bytes b) : buffer(std::move(b)), size(buffer.size()), state(kReady) {}
    Cell(std::size_t size_hint, std::function<Bytes()> fn)
        : compute(std::move(fn)), size(size_hint) {}

    const Bytes& get() const {
      if (state.load(std::memory_order_acquire) == kReady) return buffer;
      int expected = kEmpty;
      if (state.compare_exchange_strong(expected, kComputing, std::memory_order_acq_rel)) {
        buffer = compute();
        assert(buffer.size() == size && "lazy payload size hint must be exact");
        compute = nullptr;  // release captured material early
        state.store(kReady, std::memory_order_release);
        state.notify_all();
      } else {
        // Another thread is actively computing (it claimed the cell, so it
        // is running, not queued): wait for its release-store.
        int observed = state.load(std::memory_order_acquire);
        while (observed != kReady) {
          state.wait(observed, std::memory_order_acquire);
          observed = state.load(std::memory_order_acquire);
        }
      }
      return buffer;
    }

    mutable Bytes buffer;
    mutable std::function<Bytes()> compute;
    std::size_t size{0};
    mutable std::atomic<int> state{kEmpty};
  };

  static const Bytes& empty_bytes() {
    static const Bytes kNone;
    return kNone;
  }

  std::shared_ptr<Cell> cell_;
};

/// Result of a parallel open/verify prologue (net::OrderedRunner): the
/// framing-parsed — and, when `macs`, HMAC-verified — body of a sealed
/// payload. The worker computes the value; the runner's ordered release
/// publishes it (sets `ready`) on the simulation thread before the
/// receiver's handler runs, so handlers read it without synchronization.
struct OpenJob {
  std::uint64_t ticket{0};
  bool macs{false};
  bool ready{false};
  Result<Bytes> body{make_error("open job not released")};
};

struct Envelope {
  NodeId from;
  NodeId to;
  MessageType type{0};
  Payload payload;
  /// Set at the arrival instant when the parallel MAC plane is active;
  /// envelopes that bypass it (tamper ghosts) leave this null and are
  /// opened synchronously.
  std::shared_ptr<OpenJob> open_job{};

  /// Size on the wire: payload plus a fixed transport header (addresses,
  /// type, length, checksum — 32 bytes, a realistic UDP-framing overhead).
  [[nodiscard]] std::size_t wire_size() const { return payload.size() + kHeaderBytes; }

  static constexpr std::size_t kHeaderBytes = 32;
};

}  // namespace gpbft::net
