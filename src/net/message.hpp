// Wire envelope delivered between simulated nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace gpbft::net {

/// Protocol-level message kind; interpreted by the receiving node. Kept in
/// the envelope (not the payload) so the network layer can account traffic
/// per message class.
using MessageType = std::uint16_t;

/// Refcounted immutable payload buffer.
///
/// Broadcast fan-out used to deep-copy the payload once per destination and
/// twice more inside the delivery events; at 202 nodes that memcpy bound
/// the simulator (docs/performance.md). A Payload shares one immutable
/// Bytes buffer instead: copying an envelope bumps a refcount. The buffer
/// is never mutated after construction — senders build the bytes first and
/// hand them over, receivers only read — so sharing is safe by constraint,
/// not by locking.
///
/// Reads go through the same surface Bytes offered (data/size/empty/
/// operator[]/iterators), so handler code is unchanged; to replace the
/// content, assign a freshly built Bytes.
class Payload {
 public:
  Payload() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): Bytes is the natural
  // literal at every send site; conversion is the API.
  Payload(Bytes bytes) : data_(std::make_shared<const Bytes>(std::move(bytes))) {}
  Payload& operator=(Bytes bytes) {
    data_ = std::make_shared<const Bytes>(std::move(bytes));
    return *this;
  }

  [[nodiscard]] const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  [[nodiscard]] std::size_t size() const { return bytes().size(); }
  [[nodiscard]] bool empty() const { return bytes().empty(); }
  [[nodiscard]] const std::uint8_t* data() const { return bytes().data(); }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const { return bytes()[i]; }
  [[nodiscard]] Bytes::const_iterator begin() const { return bytes().begin(); }
  [[nodiscard]] Bytes::const_iterator end() const { return bytes().end(); }
  [[nodiscard]] BytesView view() const { return BytesView(data(), size()); }

  friend bool operator==(const Payload& a, const Payload& b) { return a.bytes() == b.bytes(); }
  friend bool operator==(const Payload& a, const Bytes& b) { return a.bytes() == b; }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const Bytes> data_;
};

struct Envelope {
  NodeId from;
  NodeId to;
  MessageType type{0};
  Payload payload;

  /// Size on the wire: payload plus a fixed transport header (addresses,
  /// type, length, checksum — 32 bytes, a realistic UDP-framing overhead).
  [[nodiscard]] std::size_t wire_size() const { return payload.size() + kHeaderBytes; }

  static constexpr std::size_t kHeaderBytes = 32;
};

}  // namespace gpbft::net
