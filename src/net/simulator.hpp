// Discrete-event simulator core.
//
// A single-threaded event loop over a simulated clock. All timing in the
// reproduced experiments (consensus latency, era-switch pauses, geo-report
// periods) is measured on this clock, so runs are bit-for-bit reproducible
// from a seed — the substitution for the paper's wall-clock measurements on
// a server cluster (see DESIGN.md §1).
//
// Events scheduled for the same instant fire in scheduling order (a stable
// sequence number breaks ties), which keeps the simulation deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace gpbft::net {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` after the current simulated time.
  /// Negative delays are clamped to zero (fire "now", after current events).
  void schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute instant (clamped to now if in the past).
  void schedule_at(TimePoint when, std::function<void()> fn);

  /// Runs one event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue is empty or `max_events` have fired.
  void run(std::uint64_t max_events = kNoEventLimit);

  /// Runs events with timestamps <= `deadline`; the clock ends at
  /// max(reached event time, deadline).
  void run_until(TimePoint deadline);

  /// True when no events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Pending events right now, and the deepest the queue has ever been —
  /// the high-water mark telemetry exports as `sim.max_queue_depth` (a
  /// backlog signal: overloaded receivers show up here before latency
  /// percentiles move).
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_depth() const { return max_queue_depth_; }

  static constexpr std::uint64_t kNoEventLimit = ~0ull;

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t events_processed_{0};
  std::size_t max_queue_depth_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace gpbft::net
