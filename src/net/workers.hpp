// Ordered worker-pool runner: parallel prologues, sequential epilogues.
//
// The discrete-event core is single-threaded by design — determinism is the
// repo's north star. The ordered runner is how CPU-heavy *pure* work (MAC
// seal/verify: a function of key material and message bytes only) escapes
// that single thread without perturbing the event stream, modeled on
// dsnet's ordered-runner design:
//
//   - submit() hands a Prologue to the pool and returns a monotonically
//     increasing ticket. Workers execute prologues concurrently, possibly
//     completing out of order. A prologue returns an Epilogue.
//   - release_until(ticket) runs epilogues strictly in submission order, on
//     the calling (simulation) thread, blocking on stragglers — so every
//     side effect a job publishes happens single-threaded, in an order
//     fixed by submission, never by worker scheduling.
//
// The tasks are tiny (an HMAC over a short message is ~1.5 us), so the
// implementation is sized for handoff cost, not fairness: a fixed
// power-of-two ring of cache-line-aligned slots, a single atomic claim
// cursor workers race on with CAS, and spin-then-park idling. No mutex or
// condition variable is touched on the steady-state submit/claim/release
// path — the lock only backs worker parking when the queue has been empty
// long enough to give up spinning. The releasing thread *help-steals*: if
// the next ticket in order has not been claimed by any worker, it runs the
// prologue itself instead of blocking, so release_until never parks and a
// starved pool degrades to inline execution rather than a stall.
//
// With `threads <= 1` the runner spawns no workers; submitted prologues
// simply stay queued until release_until help-steals them, which makes the
// single-threaded path the same code as the degraded-pool path: prologue
// and epilogue both run on the simulation thread, in ticket order.
//
// Ring capacity bounds the number of *unreleased* tickets. submit() on a
// full ring first releases the oldest tickets (it runs on the releasing
// thread, so this is safe) — callers that release before each handler, as
// the MAC plane does, never hit that path with fewer than kRingSize
// envelopes in flight.
//
// Deadlock note: prologues must never block on another *queued* prologue.
// The MAC plane obeys this by construction — its only cross-task contact is
// the lazy Payload cell, whose claim-or-compute-inline protocol (see
// net/message.hpp) only ever waits on a cell another thread is actively
// computing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpbft::net {

class OrderedRunner {
 public:
  /// Runs on the releasing thread, in submission order.
  using Epilogue = std::function<void()>;
  /// Runs on a worker (or on the releasing thread when help-stolen);
  /// returns the epilogue (may be null).
  using Prologue = std::function<Epilogue()>;

  /// `threads` counts the whole simulation: one event-loop thread plus
  /// max(0, threads - 1) workers. threads <= 1 means no workers; prologues
  /// run on the releasing thread at release time.
  explicit OrderedRunner(std::size_t threads);
  /// Drains: waits for every submitted prologue, runs every unreleased
  /// epilogue (in order), then joins the workers. Safe with zero tasks.
  ~OrderedRunner();

  OrderedRunner(const OrderedRunner&) = delete;
  OrderedRunner& operator=(const OrderedRunner&) = delete;

  /// Enqueues a prologue; returns its ticket (1, 2, 3, ...). Must be called
  /// from the releasing thread only (the simulation thread).
  std::uint64_t submit(Prologue prologue);

  /// Runs every unreleased epilogue with ticket <= `ticket`, in submission
  /// order, on this thread; finishes unclaimed prologues itself and spins
  /// (never parks) on ones a worker is actively running.
  void release_until(std::uint64_t ticket);

  /// Releases everything submitted so far.
  void drain() { release_until(next_ticket_); }

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] std::uint64_t submitted() const { return next_ticket_; }
  [[nodiscard]] std::uint64_t released() const { return released_; }
  /// Tickets whose prologue the releasing thread ran itself (help-steal).
  /// released() - stolen() = prologues that actually ran on a worker; the
  /// ratio is the pool's effective offload rate (bench diagnostics).
  [[nodiscard]] std::uint64_t stolen() const { return stolen_; }

 private:
  /// Unreleased-ticket capacity; power of two. 4096 slots x 128 B = 512 KiB.
  static constexpr std::size_t kRingSize = 4096;
  static constexpr std::uint64_t kRingMask = kRingSize - 1;
  /// Empty-queue spins before a worker parks on the condition variable.
  static constexpr int kIdleSpins = 2048;

  struct alignas(64) Slot {
    static constexpr int kEmpty = 0;   // reusable
    static constexpr int kQueued = 1;  // prologue published, unclaimed or running
    static constexpr int kDone = 2;    // epilogue stored, awaiting release

    std::atomic<int> state{kEmpty};
    Prologue run;
    Epilogue epilogue;
  };

  void worker_loop();

  std::vector<Slot> ring_;
  /// Highest ticket whose slot is fully published (submit thread writes).
  std::atomic<std::uint64_t> submitted_{0};
  /// Next ticket a worker (or the help-stealing releaser) may claim;
  /// advancing it by CAS *is* the claim.
  std::atomic<std::uint64_t> claim_{1};
  std::uint64_t next_ticket_{0};  // submit-thread local
  std::uint64_t released_{0};     // release-thread local (same thread)
  std::uint64_t stolen_{0};       // release-thread local
  std::atomic<bool> stopping_{false};

  // Parking only: untouched while workers are spinning or busy.
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::atomic<int> sleepers_{0};

  std::vector<std::thread> workers_;
};

}  // namespace gpbft::net
