// Binary wire-format writer.
//
// All protocol messages, transactions and blocks are encoded with this
// little-endian codec: fixed-width integers, LEB128 varints for lengths,
// length-prefixed byte strings. The format is deliberately simple so that
// message sizes are predictable — the communication-cost experiments
// (Figs. 5-6 of the paper) account bytes of exactly these encodings.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace gpbft::serde {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);

  /// Unsigned LEB128 varint.
  void varint(std::uint64_t v);

  /// Raw bytes, no length prefix (caller knows the width, e.g. hashes).
  void raw(BytesView data);

  /// varint length prefix followed by the bytes.
  void bytes(BytesView data);
  void string(std::string_view s);

  [[nodiscard]] const Bytes& buffer() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

}  // namespace gpbft::serde
