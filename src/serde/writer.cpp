#include "serde/writer.hpp"

#include <bit>
#include <cstring>

namespace gpbft::serde {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void Writer::bytes(BytesView data) {
  varint(data.size());
  raw(data);
}

void Writer::string(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

}  // namespace gpbft::serde
