#include "serde/reader.hpp"

#include <cstring>

namespace gpbft::serde {

Result<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return make_error("serde: truncated u8");
  return data_[pos_++];
}

Result<std::uint16_t> Reader::u16() {
  if (remaining() < 2) return make_error("serde: truncated u16");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return make_error("serde: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return make_error("serde: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::int64_t> Reader::i64() {
  auto v = u64();
  if (!v) return make_error(v.error());
  return static_cast<std::int64_t>(v.value());
}

Result<double> Reader::f64() {
  auto bits = u64();
  if (!bits) return make_error(bits.error());
  double v = 0;
  const std::uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<bool> Reader::boolean() {
  auto v = u8();
  if (!v) return make_error(v.error());
  if (v.value() > 1) return make_error("serde: invalid bool byte");
  return v.value() == 1;
}

Result<std::uint64_t> Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return make_error("serde: truncated varint");
    if (shift >= 64) return make_error("serde: varint overflow");
    const std::uint8_t byte = data_[pos_++];
    // At shift 63 only the low bit still fits in a u64; higher payload
    // bits would be shifted out silently, so two distinct encodings
    // could alias to one value.
    if (shift == 63 && (byte & 0x7e) != 0) return make_error("serde: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) return make_error("serde: truncated raw bytes");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<Bytes> Reader::bytes(std::size_t max_len) {
  auto len = varint();
  if (!len) return make_error(len.error());
  if (len.value() > max_len) return make_error("serde: length exceeds limit");
  // Clamp the declared length against what is actually left BEFORE any
  // allocation sized from it: a tampered length prefix must never drive
  // a reservation larger than the buffer it claims to describe.
  if (len.value() > remaining()) return make_error("serde: declared length exceeds remaining bytes");
  return raw(static_cast<std::size_t>(len.value()));
}

Result<BytesView> Reader::bytes_view(std::size_t max_len) {
  auto len = varint();
  if (!len) return make_error(len.error());
  if (len.value() > max_len) return make_error("serde: length exceeds limit");
  if (len.value() > remaining()) return make_error("serde: declared length exceeds remaining bytes");
  const BytesView out = data_.subspan(pos_, static_cast<std::size_t>(len.value()));
  pos_ += static_cast<std::size_t>(len.value());
  return out;
}

Result<std::string> Reader::string(std::size_t max_len) {
  auto data = bytes(max_len);
  if (!data) return make_error(data.error());
  return std::string(data.value().begin(), data.value().end());
}

}  // namespace gpbft::serde
