// Binary wire-format reader; exact inverse of serde::Writer.
//
// Reads never throw: each accessor reports malformed/truncated input through
// Result, and decoding code propagates the failure so a Byzantine peer
// cannot crash a replica with a bad payload.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace gpbft::serde {

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::int64_t> i64();
  [[nodiscard]] Result<double> f64();
  [[nodiscard]] Result<bool> boolean();
  [[nodiscard]] Result<std::uint64_t> varint();

  /// Exactly n raw bytes (e.g. a fixed-width hash).
  [[nodiscard]] Result<Bytes> raw(std::size_t n);

  /// varint length-prefixed byte string. `max_len` bounds attacker-supplied
  /// lengths before any allocation happens.
  [[nodiscard]] Result<Bytes> bytes(std::size_t max_len = kDefaultMaxLen);
  /// As bytes(), but a view into the reader's underlying buffer — no copy.
  /// Valid only while the bytes handed to the Reader's constructor live.
  [[nodiscard]] Result<BytesView> bytes_view(std::size_t max_len = kDefaultMaxLen);
  [[nodiscard]] Result<std::string> string(std::size_t max_len = kDefaultMaxLen);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  static constexpr std::size_t kDefaultMaxLen = 16 * 1024 * 1024;

 private:
  BytesView data_;
  std::size_t pos_{0};
};

}  // namespace gpbft::serde
