#include "crypto/hmac.hpp"

#include <array>

namespace gpbft::crypto {

HmacKey::HmacKey(BytesView key) {
  std::array<std::uint8_t, 64> block_key{};
  if (key.size() > 64) {
    const Hash256 hashed = sha256(key);
    std::copy(hashed.bytes.begin(), hashed.bytes.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }
  // Each pad is exactly one SHA-256 block, so after these updates the
  // contexts hold compressed mid-states with empty buffers — cloning them
  // is a 100-odd-byte copy, not a compression call.
  inner_.update(BytesView(ipad.data(), ipad.size()));
  outer_.update(BytesView(opad.data(), opad.size()));
}

Hash256 HmacKey::mac(BytesView data) const {
  const std::array<BytesView, 1> parts{data};
  return mac(std::span<const BytesView>(parts.data(), parts.size()));
}

Hash256 HmacKey::mac(std::span<const BytesView> parts) const {
  Sha256 inner = inner_;
  for (const BytesView part : parts) inner.update(part);
  const Hash256 inner_digest = inner.finalize();

  Sha256 outer = outer_;
  outer.update(inner_digest.view());
  return outer.finalize();
}

Hash256 hmac_sha256(BytesView key, BytesView data) { return HmacKey(key).mac(data); }

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace gpbft::crypto
