// Key registry and pairwise message authenticators.
//
// PBFT's well-known MAC optimisation (Castro & Liskov, OSDI'99 §5) replaces
// per-message public-key signatures with vectors of pairwise HMAC tags: a
// sender appends, for each receiver, HMAC(session_key(sender, receiver),
// message). A receiver checks only its own entry. We adopt that scheme:
//
//  * The KeyRegistry derives a deterministic identity key per node from the
//    genesis seed (trusted setup — G-PBFT targets consortium/private chains,
//    §I of the paper, where the operator provisions device keys).
//  * session_key(a, b) is HMAC(identity_key(min), "session" || max), so both
//    directions share one key and the derivation is symmetric.
//  * An Authenticator carries truncated 8-byte tags to keep wire sizes
//    realistic; tag truncation is standard for HMAC (RFC 2104 §5).
//
// The threat model (§III-A) matches: adversaries cannot forge or tamper with
// others' messages, only emit invalid ones of their own.
//
// Caching & concurrency: identity keys and pairwise session entries are
// derived once and cached (a session entry also holds the precomputed
// HmacKey pad states, so a tag costs two SHA-256 passes over the message,
// not a rederivation chain of four HMACs). Both caches are guarded by
// shared mutexes — sharded for the O(n^2) session space — because the
// parallel MAC plane (net::OrderedRunner) computes seal/verify tags from
// worker threads against one shared registry. Cache population order is
// thread-schedule-dependent; cache *contents* are pure functions of the
// genesis seed, so results never depend on interleaving.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/hmac.hpp"

namespace gpbft::crypto {

/// Truncated HMAC tag carried on the wire.
struct AuthTag {
  NodeId receiver;
  std::array<std::uint8_t, 8> tag{};

  friend bool operator==(const AuthTag&, const AuthTag&) = default;
};

/// A vector of per-receiver tags attached to one protocol message.
struct Authenticator {
  NodeId sender;
  std::vector<AuthTag> tags;

  /// Bytes this authenticator occupies on the wire (sender id + entries).
  [[nodiscard]] std::size_t wire_size() const { return 8 + tags.size() * 16; }
};

/// Deterministic identity/session key material for the whole deployment.
class KeyRegistry {
 public:
  explicit KeyRegistry(std::uint64_t genesis_seed);

  /// 32-byte identity key of a node (derived lazily, cached).
  [[nodiscard]] const Hash256& identity_key(NodeId id) const;

  /// Symmetric pairwise session key (derived lazily, cached).
  [[nodiscard]] Hash256 session_key(NodeId a, NodeId b) const;

  /// One truncated tag for a single receiver, streaming `payload_parts`
  /// (logically concatenated) into the HMAC without materializing the
  /// buffer. This is the seal/open hot path; at most 7 parts.
  [[nodiscard]] std::array<std::uint8_t, 8> tag(NodeId sender, NodeId receiver,
                                                std::span<const BytesView> payload_parts) const;

  /// Builds the authenticator `sender` attaches for `receivers` over `payload`.
  [[nodiscard]] Authenticator authenticate(NodeId sender, const std::vector<NodeId>& receivers,
                                           BytesView payload) const;
  [[nodiscard]] Authenticator authenticate(NodeId sender, const std::vector<NodeId>& receivers,
                                           std::span<const BytesView> payload_parts) const;

  /// Verifies the tag addressed to `receiver` in `auth` over `payload`.
  /// Returns false when no tag for `receiver` exists or the tag mismatches.
  [[nodiscard]] bool verify(const Authenticator& auth, NodeId receiver, BytesView payload) const;
  [[nodiscard]] bool verify(const Authenticator& auth, NodeId receiver,
                            std::span<const BytesView> payload_parts) const;

 private:
  /// Cached pairwise material: the 32-byte session key plus the HMAC pad
  /// states precomputed from it.
  struct SessionEntry {
    Hash256 key;
    HmacKey mac;
  };
  /// Stable reference into the session cache (entries are never erased).
  [[nodiscard]] const SessionEntry& session_entry(NodeId a, NodeId b) const;

  /// The pairwise space is O(n^2); shard the cache so concurrent workers
  /// sealing/verifying different links rarely contend on one lock.
  struct SessionShard {
    mutable std::shared_mutex mu;
    // std::map: node-based, so references stay valid across inserts.
    std::map<std::pair<std::uint64_t, std::uint64_t>, SessionEntry> entries;
  };
  static constexpr std::size_t kSessionShards = 16;

  std::uint64_t genesis_seed_;
  mutable std::shared_mutex identity_mu_;
  mutable std::unordered_map<NodeId, Hash256> identity_cache_;
  mutable std::array<SessionShard, kSessionShards> sessions_;
};

}  // namespace gpbft::crypto
