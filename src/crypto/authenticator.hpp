// Key registry and pairwise message authenticators.
//
// PBFT's well-known MAC optimisation (Castro & Liskov, OSDI'99 §5) replaces
// per-message public-key signatures with vectors of pairwise HMAC tags: a
// sender appends, for each receiver, HMAC(session_key(sender, receiver),
// message). A receiver checks only its own entry. We adopt that scheme:
//
//  * The KeyRegistry derives a deterministic identity key per node from the
//    genesis seed (trusted setup — G-PBFT targets consortium/private chains,
//    §I of the paper, where the operator provisions device keys).
//  * session_key(a, b) is HMAC(identity_key(min), "session" || max), so both
//    directions share one key and the derivation is symmetric.
//  * An Authenticator carries truncated 8-byte tags to keep wire sizes
//    realistic; tag truncation is standard for HMAC (RFC 2104 §5).
//
// The threat model (§III-A) matches: adversaries cannot forge or tamper with
// others' messages, only emit invalid ones of their own.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/hmac.hpp"

namespace gpbft::crypto {

/// Truncated HMAC tag carried on the wire.
struct AuthTag {
  NodeId receiver;
  std::array<std::uint8_t, 8> tag{};

  friend bool operator==(const AuthTag&, const AuthTag&) = default;
};

/// A vector of per-receiver tags attached to one protocol message.
struct Authenticator {
  NodeId sender;
  std::vector<AuthTag> tags;

  /// Bytes this authenticator occupies on the wire (sender id + entries).
  [[nodiscard]] std::size_t wire_size() const { return 8 + tags.size() * 16; }
};

/// Deterministic identity/session key material for the whole deployment.
class KeyRegistry {
 public:
  explicit KeyRegistry(std::uint64_t genesis_seed);

  /// 32-byte identity key of a node (derived lazily, cached).
  [[nodiscard]] const Hash256& identity_key(NodeId id) const;

  /// Symmetric pairwise session key.
  [[nodiscard]] Hash256 session_key(NodeId a, NodeId b) const;

  /// Builds the authenticator `sender` attaches for `receivers` over `payload`.
  [[nodiscard]] Authenticator authenticate(NodeId sender, const std::vector<NodeId>& receivers,
                                           BytesView payload) const;

  /// Verifies the tag addressed to `receiver` in `auth` over `payload`.
  /// Returns false when no tag for `receiver` exists or the tag mismatches.
  [[nodiscard]] bool verify(const Authenticator& auth, NodeId receiver, BytesView payload) const;

 private:
  [[nodiscard]] std::array<std::uint8_t, 8> tag_for(NodeId sender, NodeId receiver,
                                                    BytesView payload) const;

  std::uint64_t genesis_seed_;
  mutable std::unordered_map<NodeId, Hash256> identity_cache_;
};

}  // namespace gpbft::crypto
