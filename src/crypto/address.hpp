// Chain addresses.
//
// A node's on-chain address is derived from its identity key:
// address = first 20 bytes of sha256d(key material). Addresses appear in
// Crypto-Spatial Coordinates (geohash + address, §III-B3) and in the fee /
// reward ledger of the incentive mechanism.
#pragma once

#include <array>
#include <compare>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace gpbft::crypto {

struct Address {
  std::array<std::uint8_t, 20> bytes{};

  friend constexpr auto operator<=>(const Address&, const Address&) = default;

  [[nodiscard]] std::string hex() const;
  [[nodiscard]] BytesView view() const { return BytesView(bytes.data(), bytes.size()); }
};

/// Derives an address from arbitrary identity-key material.
[[nodiscard]] Address derive_address(BytesView key_material);

/// Deterministic per-node address used throughout the simulation.
[[nodiscard]] Address address_for_node(NodeId id);

}  // namespace gpbft::crypto

template <>
struct std::hash<gpbft::crypto::Address> {
  std::size_t operator()(const gpbft::crypto::Address& a) const noexcept {
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | a.bytes[static_cast<std::size_t>(i)];
    return v;
  }
};
