#include "crypto/address.hpp"

#include "crypto/sha256.hpp"
#include "serde/writer.hpp"

namespace gpbft::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}

std::string Address::hex() const {
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Address derive_address(BytesView key_material) {
  const Hash256 digest = sha256d(key_material);
  Address addr;
  std::copy(digest.bytes.begin(), digest.bytes.begin() + 20, addr.bytes.begin());
  return addr;
}

Address address_for_node(NodeId id) {
  serde::Writer w;
  w.string("gpbft-node-identity");
  w.u64(id.value);
  return derive_address(BytesView(w.buffer().data(), w.buffer().size()));
}

}  // namespace gpbft::crypto
