// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for transaction/block hashing, Merkle trees, chain addresses and as
// the compression function inside HMAC. Verified against the NIST example
// vectors in tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace gpbft::crypto {

/// A 256-bit digest with value semantics; ordered and hashable so it can key
/// maps (e.g. the PBFT message log indexed by request digest).
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  friend constexpr auto operator<=>(const Hash256&, const Hash256&) = default;

  [[nodiscard]] std::string hex() const;
  [[nodiscard]] BytesView view() const { return BytesView(bytes.data(), bytes.size()); }
  [[nodiscard]] bool is_zero() const;

  /// Stable short form for logs ("a1b2c3d4").
  [[nodiscard]] std::string short_hex() const;
};

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  void update(std::string_view data);

  /// Finalizes and returns the digest; the context must not be reused after.
  [[nodiscard]] Hash256 finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

/// One-shot convenience.
[[nodiscard]] Hash256 sha256(BytesView data);
[[nodiscard]] Hash256 sha256(std::string_view data);

/// sha256(sha256(x)) — used for chain addresses.
[[nodiscard]] Hash256 sha256d(BytesView data);

}  // namespace gpbft::crypto

template <>
struct std::hash<gpbft::crypto::Hash256> {
  std::size_t operator()(const gpbft::crypto::Hash256& h) const noexcept {
    // The digest is uniformly distributed; fold the first 8 bytes.
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | h.bytes[static_cast<std::size_t>(i)];
    return v;
  }
};
