// HMAC-SHA256 (RFC 2104), verified against the RFC 4231 test vectors.
//
// Message authentication in this system follows the MAC-based variant of
// Castro-Liskov PBFT: replicas share pairwise session keys (distributed via
// the genesis key registry, appropriate for the consortium chains G-PBFT
// targets) and authenticate protocol messages with HMAC tags.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace gpbft::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
[[nodiscard]] Hash256 hmac_sha256(BytesView key, BytesView data);

/// Constant-time tag comparison; prevents timing side channels on verify.
[[nodiscard]] bool constant_time_equal(BytesView a, BytesView b);

}  // namespace gpbft::crypto
