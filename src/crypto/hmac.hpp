// HMAC-SHA256 (RFC 2104), verified against the RFC 4231 test vectors.
//
// Message authentication in this system follows the MAC-based variant of
// Castro-Liskov PBFT: replicas share pairwise session keys (distributed via
// the genesis key registry, appropriate for the consortium chains G-PBFT
// targets) and authenticate protocol messages with HMAC tags.
//
// Two surfaces:
//   - hmac_sha256(): one-shot, for one-off callers (key derivation, tests).
//   - HmacKey: a precomputed key context. The ipad/opad key schedule of
//     HMAC is exactly one SHA-256 block each; a context absorbs both pads
//     once at construction and clones the two mid-states per message, so a
//     session key reused across thousands of tags pays the two extra
//     compression calls exactly once instead of per message. Output is
//     bit-identical to hmac_sha256 (proven in tests/crypto_test.cpp).
#pragma once

#include <span>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace gpbft::crypto {

/// Precomputed HMAC-SHA256 key context (keyed pads hashed once, cloned per
/// message). Copyable; safe to use concurrently from multiple threads —
/// mac() clones the stored mid-states and never mutates the context.
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(BytesView key);

  /// HMAC-SHA256 over `data`; equals hmac_sha256(key, data).
  [[nodiscard]] Hash256 mac(BytesView data) const;
  /// As above over the concatenation of `parts` — lets callers stream a
  /// prefix + payload into the MAC without materializing the buffer.
  [[nodiscard]] Hash256 mac(std::span<const BytesView> parts) const;

 private:
  Sha256 inner_;  // state after absorbing key ^ ipad
  Sha256 outer_;  // state after absorbing key ^ opad
};

/// HMAC-SHA256 over `data` with `key` (any key length).
[[nodiscard]] Hash256 hmac_sha256(BytesView key, BytesView data);

/// Constant-time tag comparison; prevents timing side channels on verify.
[[nodiscard]] bool constant_time_equal(BytesView a, BytesView b);

}  // namespace gpbft::crypto
