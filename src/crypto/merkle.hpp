// Merkle tree over transaction digests.
//
// Blocks commit to their transaction set via the Merkle root; inclusion
// proofs let lightweight IoT clients verify that a transaction was committed
// without downloading whole blocks (important for constrained devices, §I of
// the paper).
//
// Construction mirrors Bitcoin's: leaves are already-hashed items, interior
// nodes are sha256(left || right), and an odd node at any level is paired
// with itself. Leaf hashes are domain-separated from interior hashes to
// prevent second-preimage splicing attacks.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"

namespace gpbft::crypto {

/// One step of an inclusion proof: the sibling digest and its side.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_left{false};
};

using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Builds the full tree; `leaves` are item digests (already hashed data).
  explicit MerkleTree(std::vector<Hash256> leaves);

  [[nodiscard]] const Hash256& root() const { return levels_.back().front(); }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf `index`; index must be < leaf_count().
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verifies `proof` connects `leaf` to `root`.
  [[nodiscard]] static bool verify(const Hash256& leaf, const MerkleProof& proof,
                                   const Hash256& root);

  /// Root without materializing the tree (for block validation).
  [[nodiscard]] static Hash256 compute_root(const std::vector<Hash256>& leaves);

 private:
  static Hash256 hash_leaf(const Hash256& item);
  static Hash256 hash_interior(const Hash256& left, const Hash256& right);

  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = hashed leaves
  std::size_t leaf_count_;
};

}  // namespace gpbft::crypto
