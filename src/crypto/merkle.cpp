#include "crypto/merkle.hpp"

namespace gpbft::crypto {

namespace {
// Domain-separation tags, hashed in front of node payloads.
constexpr std::uint8_t kLeafTag = 0x00;
constexpr std::uint8_t kInteriorTag = 0x01;
}  // namespace

Hash256 MerkleTree::hash_leaf(const Hash256& item) {
  Sha256 ctx;
  ctx.update(BytesView(&kLeafTag, 1));
  ctx.update(item.view());
  return ctx.finalize();
}

Hash256 MerkleTree::hash_interior(const Hash256& left, const Hash256& right) {
  Sha256 ctx;
  ctx.update(BytesView(&kInteriorTag, 1));
  ctx.update(left.view());
  ctx.update(right.view());
  return ctx.finalize();
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves) : leaf_count_(leaves.size()) {
  std::vector<Hash256> level;
  if (leaves.empty()) {
    // Empty tree: root is the hash of the empty leaf tag, so empty blocks
    // still commit to a well-defined value.
    level.push_back(hash_leaf(Hash256{}));
  } else {
    level.reserve(leaves.size());
    for (const Hash256& leaf : leaves) level.push_back(hash_leaf(leaf));
  }
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    const std::vector<Hash256>& below = levels_.back();
    std::vector<Hash256> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      const Hash256& left = below[i];
      const Hash256& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      above.push_back(hash_interior(left, right));
    }
    levels_.push_back(std::move(above));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const std::vector<Hash256>& level = levels_[depth];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleStep step;
    step.sibling_on_left = (pos % 2 == 1);
    step.sibling = (sibling < level.size()) ? level[sibling] : level[pos];  // odd: self-pair
    proof.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, const MerkleProof& proof, const Hash256& root) {
  Hash256 acc = hash_leaf(leaf);
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_left ? hash_interior(step.sibling, acc)
                               : hash_interior(acc, step.sibling);
  }
  return acc == root;
}

Hash256 MerkleTree::compute_root(const std::vector<Hash256>& leaves) {
  return MerkleTree(leaves).root();
}

}  // namespace gpbft::crypto
